"""Integration tests for schedule record/replay (the DejaVu role)."""

import pytest

from repro.detector import RaceDetector, ReferenceDetector
from repro.lang import compile_source
from repro.runtime import (
    RandomPolicy,
    RecordingSink,
    ReplayDivergence,
    ScheduleTrace,
    TraceExhausted,
    record_run,
    replay_run,
)


class TestRecordReplay:
    def test_replay_reproduces_output(self, racy_two_writer_source):
        resolved = compile_source(racy_two_writer_source)
        result, trace = record_run(resolved, inner_policy=RandomPolicy(5))
        resolved2 = compile_source(racy_two_writer_source)
        replayed = replay_run(resolved2, trace)
        assert replayed.output == result.output
        assert replayed.steps == result.steps

    def test_replay_reproduces_event_stream(self, racy_two_writer_source):
        resolved = compile_source(racy_two_writer_source)
        original = RecordingSink()
        _, trace = record_run(
            resolved, sink=original, inner_policy=RandomPolicy(11)
        )
        resolved2 = compile_source(racy_two_writer_source)
        replayed_sink = RecordingSink()
        replay_run(resolved2, trace, sink=replayed_sink)
        assert replayed_sink.log == original.log

    def test_detect_online_reconstruct_offline(self, racy_two_writer_source):
        """The paper's workflow (Section 2.6): cheap detection during
        recording, full FullRace reconstruction during replay."""
        resolved = compile_source(racy_two_writer_source)
        online = RaceDetector(resolved=resolved)
        _, trace = record_run(
            resolved, sink=online, inner_policy=RandomPolicy(2)
        )
        assert online.reports.object_count == 1

        resolved2 = compile_source(racy_two_writer_source)
        offline = ReferenceDetector()
        replay_run(resolved2, trace, sink=offline)
        # The oracle's racy locations cover the online reports and
        # enumerate the full pair set.
        assert offline.racy_locations
        assert offline.full_race

    def test_divergence_on_changed_program(self, racy_two_writer_source):
        resolved = compile_source(racy_two_writer_source)
        _, trace = record_run(resolved, inner_policy=RandomPolicy(1))
        changed = racy_two_writer_source.replace(
            "t.x = t.x + 1;", "t.x = t.x + 1; t.x = t.x + 1;"
        )
        resolved2 = compile_source(changed)
        with pytest.raises(ReplayDivergence):
            replay_run(resolved2, trace)

    def test_divergence_on_truncated_trace(self, racy_two_writer_source):
        resolved = compile_source(racy_two_writer_source)
        _, trace = record_run(resolved, inner_policy=RandomPolicy(1))
        truncated = ScheduleTrace(choices=trace.choices[: len(trace) // 2])
        resolved2 = compile_source(racy_two_writer_source)
        with pytest.raises(ReplayDivergence):
            replay_run(resolved2, truncated)

    def test_trace_length_equals_steps(self, safe_two_writer_source):
        resolved = compile_source(safe_two_writer_source)
        result, trace = record_run(resolved)
        assert len(trace) == result.steps


class TestTraceExhaustion:
    """Both exhaustion directions are validated explicitly: a trace
    that runs out mid-execution, and a trace with decisions left over
    when the replayed program has already finished."""

    def test_truncated_trace_is_trace_exhausted(self, racy_two_writer_source):
        resolved = compile_source(racy_two_writer_source)
        _, trace = record_run(resolved, inner_policy=RandomPolicy(1))
        truncated = ScheduleTrace(choices=trace.choices[: len(trace) // 2])
        resolved2 = compile_source(racy_two_writer_source)
        with pytest.raises(TraceExhausted, match="trace exhausted"):
            replay_run(resolved2, truncated)

    def test_padded_trace_is_trace_exhausted(self, racy_two_writer_source):
        resolved = compile_source(racy_two_writer_source)
        _, trace = record_run(resolved, inner_policy=RandomPolicy(1))
        padded = ScheduleTrace(choices=list(trace.choices) + [0, 0, 0])
        resolved2 = compile_source(racy_two_writer_source)
        with pytest.raises(TraceExhausted, match="3 decision"):
            replay_run(resolved2, padded)

    def test_exhaustion_is_a_divergence(self):
        # Callers that already catch ReplayDivergence keep working.
        assert issubclass(TraceExhausted, ReplayDivergence)


class TestCrossEngineReplay:
    """A trace recorded on one engine replays on the other: the
    engines make identical scheduler decisions, so the decision trace
    is engine-portable."""

    @pytest.mark.parametrize(
        "record_engine,replay_engine",
        [("ast", "compiled"), ("compiled", "ast")],
    )
    def test_trace_is_engine_portable(
        self, racy_two_writer_source, record_engine, replay_engine
    ):
        resolved = compile_source(racy_two_writer_source)
        original = RecordingSink()
        result, trace = record_run(
            resolved,
            sink=original,
            inner_policy=RandomPolicy(9),
            engine=record_engine,
        )
        resolved2 = compile_source(racy_two_writer_source)
        replayed_sink = RecordingSink()
        replayed = replay_run(
            resolved2, trace, sink=replayed_sink, engine=replay_engine
        )
        assert replayed.output == result.output
        assert replayed.steps == result.steps
        assert replayed_sink.log == original.log
