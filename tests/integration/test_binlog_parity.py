"""Binary-vs-tuple detection parity, end to end.

The at-rest format's hard constraint: race reports produced over a
mapped MJBL file must be byte-identical to those produced over the
in-memory tuple log — for every workload, every committed corpus
reproducer, serial and sharded, and through every user-facing entry
point (``repro run --record-binary``, ``repro check --from-log``,
``repro log-stats``, and the harness's binary post-mortem mode).
"""

import json

import pytest

from repro.cli import main
from repro.detector import canonical_report_order, detect_from_log, detect_sharded
from repro.difflab import load_corpus
from repro.instrument import PlannerConfig, plan_instrumentation
from repro.lang.resolver import compile_source
from repro.runtime import RecordingSink, RoundRobinPolicy, dump_log, run_program
from repro.runtime.binlog import BinaryLogReader, write_binary_log
from repro.workloads import ALL_WORKLOADS

SHARD_COUNTS = (1, 2, 4)


def _record(source, policy=None):
    resolved = compile_source(source)
    plan = plan_instrumentation(resolved, PlannerConfig())
    log = RecordingSink()
    run_program(
        resolved,
        sink=log,
        trace_sites=plan.trace_sites,
        policy=policy if policy is not None else RoundRobinPolicy(),
        max_steps=50_000_000,
    )
    return resolved, log


def _report_lines(reports):
    return [
        (str(r.key), r.object_label, r.field, r.current.thread_id)
        for r in reports
    ]


def _assert_binary_parity(resolved, log, tmp_path):
    serial, _ = detect_from_log(log, resolved=resolved)
    serial_lines = _report_lines(canonical_report_order(serial.reports.reports))
    path = tmp_path / "trace.mjbl"
    write_binary_log(log, path)
    v2_path = tmp_path / "trace_v2.mjbl"
    write_binary_log(log, v2_path, compress=6)
    for mapped in (path, v2_path):
        with BinaryLogReader(mapped) as reader:
            assert list(reader.entries()) == list(log.log)
            for shards in SHARD_COUNTS:
                sharded = detect_sharded(
                    reader, shards, resolved=resolved, validate=False
                )
                assert _report_lines(sharded.reports.reports) == serial_lines
                assert (
                    sharded.reports.racy_locations
                    == serial.reports.racy_locations
                )
                assert sharded.stats.accesses == serial.stats.accesses
                assert (
                    sharded.stats.detector_processed
                    == serial.stats.detector_processed
                )
    # The path-based entry point (what --from-log uses) agrees too.
    sharded = detect_sharded(path, 2, resolved=resolved)
    assert _report_lines(sharded.reports.reports) == serial_lines


class TestWorkloadParity:
    @pytest.mark.parametrize("name", sorted(ALL_WORKLOADS))
    def test_binary_reports_identical(self, name, tmp_path):
        spec = ALL_WORKLOADS[name]
        scale = min(spec.default_scale, 2)
        resolved, log = _record(spec.build(scale))
        _assert_binary_parity(resolved, log, tmp_path)


class TestCorpusParity:
    @pytest.mark.parametrize(
        "entry", load_corpus(), ids=lambda entry: entry.name
    )
    def test_reproducer_binary_reports_identical(self, entry, tmp_path):
        resolved, log = _record(entry.source, policy=entry.schedule.policy())
        _assert_binary_parity(resolved, log, tmp_path)


class TestHarnessBinaryMode:
    def test_binary_post_mortem_matches_tuple(self, tmp_path):
        from repro.harness.runner import CONFIG_FULL, run_workload_post_mortem

        spec = ALL_WORKLOADS["tsp2"]
        config = CONFIG_FULL
        tuple_outcome = run_workload_post_mortem(
            spec, config, shards=2, scale=1, log_format="tuple"
        )
        path = tmp_path / "tsp2.mjbl"
        binary_outcome = run_workload_post_mortem(
            spec, config, shards=2, scale=1, log_format="binary", log_path=path
        )
        assert binary_outcome.log_format == "binary"
        assert binary_outcome.matches_serial
        assert binary_outcome.races_reported == tuple_outcome.races_reported
        assert binary_outcome.access_events == tuple_outcome.access_events
        assert binary_outcome.trie_nodes == tuple_outcome.trie_nodes
        assert path.exists()
        assert binary_outcome.log_bytes == path.stat().st_size


RACY = """
class Main {
  static def main() {
    var d = new Data();
    d.x = 0;
    var a = new Worker(d); var b = new Worker(d);
    start a; start b; join a; join b;
    print d.x;
  }
}
class Data { field x; }
class Worker {
  field d;
  def init(d) { this.d = d; }
  def run() { this.d.x = this.d.x + 1; }
}
"""


@pytest.fixture
def racy_file(tmp_path):
    path = tmp_path / "racy.mj"
    path.write_text(RACY)
    return path


class TestCliRecordAndReplay:
    def _race_lines(self, text):
        return [line for line in text.splitlines() if "DATARACE" in line]

    def test_record_binary_then_from_log(self, racy_file, tmp_path, capsys):
        log = tmp_path / "run.mjbl"
        assert main(["run", str(racy_file), "--record-binary", str(log)]) == 0
        err = capsys.readouterr().err
        assert "binary" in err
        assert log.exists()

        direct = main(["check", str(racy_file)])
        direct_out = capsys.readouterr().out
        replayed = main(["check", str(racy_file), "--from-log", str(log)])
        replayed_out = capsys.readouterr().out
        assert direct == replayed == 1
        assert self._race_lines(direct_out) == self._race_lines(replayed_out)

    def test_record_both_formats_agree(self, racy_file, tmp_path, capsys):
        binary = tmp_path / "run.mjbl"
        tuples = tmp_path / "run.json"
        assert main([
            "run", str(racy_file),
            "--record", str(tuples),
            "--record-binary", str(binary),
        ]) == 0
        capsys.readouterr()
        from_binary = main(["check", str(racy_file), "--from-log", str(binary)])
        binary_out = capsys.readouterr().out
        from_tuples = main(["check", str(racy_file), "--from-log", str(tuples)])
        tuple_out = capsys.readouterr().out
        assert from_binary == from_tuples == 1
        assert self._race_lines(binary_out) == self._race_lines(tuple_out)

    def test_from_log_without_program(self, racy_file, tmp_path, capsys):
        log = tmp_path / "run.mjbl"
        main(["run", str(racy_file), "--record-binary", str(log)])
        capsys.readouterr()
        code = main(["check", "--from-log", str(log)])
        out = capsys.readouterr().out
        assert code == 1
        assert "DATARACE" in out

    def test_from_log_sharded(self, racy_file, tmp_path, capsys):
        log = tmp_path / "run.mjbl"
        main(["run", str(racy_file), "--record-binary", str(log)])
        capsys.readouterr()
        serial = main(["check", str(racy_file), "--from-log", str(log)])
        serial_out = capsys.readouterr().out
        sharded = main([
            "check", str(racy_file), "--from-log", str(log), "--shards", "4"
        ])
        sharded_out = capsys.readouterr().out
        assert serial == sharded == 1
        assert self._race_lines(serial_out) == self._race_lines(sharded_out)

    def test_check_without_file_or_log_errors(self, capsys):
        assert main(["check"]) == 2
        assert "error" in capsys.readouterr().err

    def test_from_log_rejects_corrupt_file(self, tmp_path, capsys):
        noise = tmp_path / "noise.mjbl"
        noise.write_bytes(b"MJBL" + b"\x00" * 8)  # magic but truncated
        code = main(["check", "--from-log", str(noise)])
        err = capsys.readouterr().err
        assert code == 3  # corrupt bytes, distinct from generic errors
        assert "error" in err


class TestCliCompressedRecord:
    def _race_lines(self, text):
        return [line for line in text.splitlines() if "DATARACE" in line]

    def test_record_compressed_then_from_log(self, racy_file, tmp_path, capsys):
        v1 = tmp_path / "run.mjbl"
        v2 = tmp_path / "run_v2.mjbl"
        assert main(["run", str(racy_file), "--record-binary", str(v1)]) == 0
        capsys.readouterr()
        assert main([
            "run", str(racy_file), "--record-binary", str(v2), "--compress",
        ]) == 0
        err = capsys.readouterr().err
        assert "binary v2, deflate level 6" in err
        # Same schedule, same events: both logs replay to the same races.
        from_v1 = main(["check", str(racy_file), "--from-log", str(v1)])
        v1_out = capsys.readouterr().out
        from_v2 = main(["check", str(racy_file), "--from-log", str(v2)])
        v2_out = capsys.readouterr().out
        assert from_v1 == from_v2 == 1
        assert self._race_lines(v1_out) == self._race_lines(v2_out)

    def test_compress_without_record_binary_is_usage_error(
        self, racy_file, capsys
    ):
        assert main(["run", str(racy_file), "--compress", "6"]) == 2
        assert "--record-binary" in capsys.readouterr().err

    def test_compress_level_out_of_range_is_usage_error(
        self, racy_file, tmp_path, capsys
    ):
        log = tmp_path / "run.mjbl"
        code = main([
            "run", str(racy_file), "--record-binary", str(log),
            "--compress", "12",
        ])
        assert code == 2
        assert "0-9" in capsys.readouterr().err


class TestCliSynthlog:
    def test_synthlog_writes_a_detectable_log(self, tmp_path, capsys):
        out = tmp_path / "synth.mjbl"
        assert main([
            "synthlog", str(out), "--events", "20000", "--compress", "6",
        ]) == 0
        err = capsys.readouterr().err
        assert "MJBL v2" in err
        assert main(["log-stats", str(out), "--verify"]) == 0
        stats_out = capsys.readouterr().out
        assert "format: binary (MJBL v2" in stats_out
        assert "crc: ok" in stats_out
        with BinaryLogReader(out) as reader:
            assert len(reader) == 20_000
        outcome = detect_sharded(out, 2)
        assert outcome.stats.accesses > 0

    def test_synthlog_compressed_matches_uncompressed(self, tmp_path, capsys):
        a = tmp_path / "a.mjbl"
        b = tmp_path / "b.mjbl"
        assert main(["synthlog", str(a), "--events", "20000"]) == 0
        assert main([
            "synthlog", str(b), "--events", "20000", "--compress", "9",
        ]) == 0
        capsys.readouterr()
        with BinaryLogReader(a) as ra, BinaryLogReader(b) as rb:
            assert list(ra.entries()) == list(rb.entries())
        assert b.stat().st_size < a.stat().st_size

    def test_synthlog_rejects_bad_arguments(self, tmp_path, capsys):
        assert main([
            "synthlog", str(tmp_path / "x.mjbl"), "--events", "0",
        ]) == 2
        capsys.readouterr()
        assert main([
            "synthlog", str(tmp_path / "x.mjbl"), "--compress", "10",
        ]) == 2


class TestCliLogStats:
    def test_binary_log_stats(self, racy_file, tmp_path, capsys):
        log = tmp_path / "run.mjbl"
        main(["run", str(racy_file), "--record-binary", str(log)])
        capsys.readouterr()
        assert main(["log-stats", str(log), "--verify"]) == 0
        out = capsys.readouterr().out
        assert "format: binary (MJBL v1" in out
        assert "crc: ok" in out
        assert "tuple/binary size ratio:" in out
        assert "block fill:" in out

    def test_compressed_log_stats_report_ratio(self, racy_file, tmp_path, capsys):
        log = tmp_path / "run.mjbl"
        main([
            "run", str(racy_file), "--record-binary", str(log), "--compress",
        ])
        capsys.readouterr()
        assert main(["log-stats", str(log), "--verify"]) == 0
        out = capsys.readouterr().out
        assert "format: binary (MJBL v2" in out
        assert "crc: ok" in out
        assert "compression:" in out

    def test_tuple_log_stats(self, racy_file, tmp_path, capsys):
        log = tmp_path / "run.json"
        main(["run", str(racy_file), "--record", str(log)])
        capsys.readouterr()
        assert main(["log-stats", str(log)]) == 0
        out = capsys.readouterr().out
        assert "format: tuple JSON" in out
        assert "tuple/binary size ratio:" in out

    def test_stats_agree_across_formats(self, racy_file, tmp_path, capsys):
        binary = tmp_path / "run.mjbl"
        tuples = tmp_path / "run.json"
        main([
            "run", str(racy_file),
            "--record", str(tuples),
            "--record-binary", str(binary),
        ])
        capsys.readouterr()
        main(["log-stats", str(binary)])
        binary_out = capsys.readouterr().out
        main(["log-stats", str(tuples)])
        tuple_out = capsys.readouterr().out

        def facts(text):
            return [
                line for line in text.splitlines()
                if line.startswith(("events:", "  ", "distinct"))
            ]

        assert facts(binary_out) == facts(tuple_out)

    def test_log_stats_rejects_noise(self, tmp_path, capsys):
        noise = tmp_path / "noise.log"
        noise.write_text("not a log")
        # Unparseable bytes are the corrupt-log exit, not a generic error.
        assert main(["log-stats", str(noise)]) == 3
