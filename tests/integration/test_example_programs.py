"""The shipped example MJ programs behave as their headers claim."""

from pathlib import Path

import pytest

from repro.cli import main

PROGRAMS = Path(__file__).resolve().parents[2] / "examples" / "programs"


class TestBankTransfer:
    def test_no_races_but_feasible_deadlock(self, capsys):
        code = main(
            ["check", str(PROGRAMS / "bank_transfer.mj"), "--deadlocks"]
        )
        out = capsys.readouterr().out
        assert code == 0  # No dataraces.
        assert "no dataraces detected" in out
        assert "POTENTIAL DEADLOCK" in out
        assert "POTENTIAL STATIC DEADLOCK" in out

    def test_money_conserved(self, capsys):
        main(["run", str(PROGRAMS / "bank_transfer.mj")])
        out = capsys.readouterr().out
        checking = int(out.split("checking=")[1].splitlines()[0])
        savings = int(out.split("savings=")[1].splitlines()[0])
        assert checking + savings == 150


class TestRacyCounter:
    def test_race_reported_with_static_candidates(self, capsys):
        code = main(["check", str(PROGRAMS / "racy_counter.mj")])
        out = capsys.readouterr().out
        assert code == 1
        assert "DATARACE on Counter" in out
        assert "static candidates:" in out

    def test_race_stable_across_seeds(self, capsys):
        for seed in range(4):
            code = main(
                ["check", str(PROGRAMS / "racy_counter.mj"),
                 "--seed", str(seed)]
            )
            capsys.readouterr()
            assert code == 1, f"seed {seed}"


class TestProducerConsumer:
    def test_clean_under_seeds(self, capsys):
        for seed in (None, 1, 2, 3):
            argv = ["check", str(PROGRAMS / "producer_consumer.mj")]
            if seed is not None:
                argv += ["--seed", str(seed)]
            code = main(argv)
            out = capsys.readouterr().out
            assert code == 0, f"seed {seed}"
            assert "consumed=78" in out

    def test_deadlock_free(self, capsys):
        code = main(
            ["check", str(PROGRAMS / "producer_consumer.mj"), "--deadlocks"]
        )
        out = capsys.readouterr().out
        assert "no potential deadlocks detected (dynamic)" in out
        assert "no potential deadlocks detected (static)" in out
