"""Integration tests for the command-line interface."""

import pytest

from repro.cli import main

RACY = """
class Main {
  static def main() {
    var d = new Data();
    d.x = 0;
    var a = new Worker(d); var b = new Worker(d);
    start a; start b; join a; join b;
    print d.x;
  }
}
class Data { field x; }
class Worker {
  field d;
  def init(d) { this.d = d; }
  def run() { this.d.x = this.d.x + 1; }
}
"""

SAFE = RACY.replace(
    "def run() { this.d.x = this.d.x + 1; }",
    "def run() { sync (this.d) { this.d.x = this.d.x + 1; } }",
)

DEADLOCKY = """
class Main {
  static def main() {
    var l1 = new L(); var l2 = new L();
    var a = new W(l1, l2); var b = new W(l2, l1);
    start a; join a;
    start b; join b;
  }
}
class L { }
class W {
  field x; field y;
  def init(x, y) { this.x = x; this.y = y; }
  def run() { sync (this.x) { sync (this.y) { } } }
}
"""


@pytest.fixture
def racy_file(tmp_path):
    path = tmp_path / "racy.mj"
    path.write_text(RACY)
    return path


@pytest.fixture
def safe_file(tmp_path):
    path = tmp_path / "safe.mj"
    path.write_text(SAFE)
    return path


class TestCheck:
    def test_racy_exits_nonzero_and_reports(self, racy_file, capsys):
        code = main(["check", str(racy_file)])
        out = capsys.readouterr().out
        assert code == 1
        assert "DATARACE" in out
        assert "[program] 2" in out

    def test_safe_exits_zero(self, safe_file, capsys):
        code = main(["check", str(safe_file)])
        out = capsys.readouterr().out
        assert code == 0
        assert "no dataraces detected" in out

    def test_stats_flag(self, racy_file, capsys):
        main(["check", str(racy_file), "--stats"])
        out = capsys.readouterr().out
        assert "funnel:" in out
        assert "instrumented sites:" in out

    def test_seed_flag(self, racy_file, capsys):
        code = main(["check", str(racy_file), "--seed", "3"])
        assert code == 1

    def test_config_toggles(self, safe_file, capsys):
        code = main(
            [
                "check",
                str(safe_file),
                "--no-static",
                "--no-weaker",
                "--no-peeling",
                "--no-cache",
                "--no-ownership",
            ]
        )
        out = capsys.readouterr().out
        # Without ownership, the init-then-share write is reported.
        assert code == 1
        assert "DATARACE" in out

    def test_fields_merged_flag(self, safe_file, capsys):
        code = main(["check", str(safe_file), "--fields-merged"])
        assert code in (0, 1)

    def test_deadlocks_flag(self, tmp_path, capsys):
        path = tmp_path / "dead.mj"
        path.write_text(DEADLOCKY)
        main(["check", str(path), "--deadlocks"])
        out = capsys.readouterr().out
        assert "POTENTIAL DEADLOCK" in out

    def test_missing_file(self, tmp_path, capsys):
        code = main(["check", str(tmp_path / "ghost.mj")])
        assert code == 2

    def test_parse_error_reported(self, tmp_path, capsys):
        path = tmp_path / "bad.mj"
        path.write_text("class {")
        code = main(["check", str(path)])
        err = capsys.readouterr().err
        assert code == 2
        assert "error:" in err

    @pytest.mark.parametrize("engine", ["ast", "compiled"])
    def test_engine_flag_same_verdict(self, racy_file, engine, capsys):
        code = main(["check", str(racy_file), "--engine", engine])
        out = capsys.readouterr().out
        assert code == 1
        assert "DATARACE" in out
        assert "[program] 2" in out

    def test_unknown_engine_rejected(self, racy_file, capsys):
        with pytest.raises(SystemExit):
            main(["check", str(racy_file), "--engine", "jit"])

    @pytest.mark.parametrize("engine", ["ast", "compiled"])
    def test_phase_times_flag(self, racy_file, engine, capsys):
        code = main(
            ["check", str(racy_file), "--phase-times", "--engine", engine]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "phase times (wall" in out
        assert f"{engine} engine" in out
        for phase in ("interpret", "filter", "cache", "lockset/trie"):
            assert phase in out

    def test_phase_times_rejects_post_mortem(self, racy_file, capsys):
        code = main(["check", str(racy_file), "--phase-times", "--shards", "2"])
        err = capsys.readouterr().err
        assert code == 2
        assert "on-the-fly" in err


class TestRunAndExplain:
    def test_run_prints_output(self, racy_file, capsys):
        code = main(["run", str(racy_file)])
        out = capsys.readouterr().out
        assert code == 0
        assert out.strip() == "2"

    def test_explain_lists_static_decisions(self, racy_file, capsys):
        code = main(["explain", str(racy_file)])
        out = capsys.readouterr().out
        assert code == 0
        assert "static datarace set" in out
        assert "instrumented sites:" in out
        assert "Worker.run" in out
