"""Section 2.6 debugging support: static partner sites in reports."""

from repro.detector import RaceDetector
from repro.instrument import PlannerConfig, plan_instrumentation
from repro.lang import compile_source
from repro.runtime import run_program


def detect_with_static(source):
    resolved = compile_source(source)
    plan = plan_instrumentation(resolved, PlannerConfig())
    detector = RaceDetector(resolved=resolved, static_races=plan.static_races)
    run_program(resolved, sink=detector, trace_sites=plan.trace_sites)
    return detector


RACY = """
class Main {
  static def main() {
    var d = new Data();
    d.x = 0;
    var a = new Worker(d); var b = new Worker(d);
    start a; start b; join a; join b;
  }
}
class Data { field x; }
class Worker {
  field d;
  def init(d) { this.d = d; }
  def run() { this.d.x = this.d.x + 1; }
}
"""


class TestStaticPartnersInReports:
    def test_partners_attached(self):
        detector = detect_with_static(RACY)
        report = detector.reports.reports[0]
        assert report.static_partners
        assert any("Worker.run" in p for p in report.static_partners)

    def test_partners_in_description(self):
        detector = detect_with_static(RACY)
        text = detector.reports.reports[0].describe()
        assert "static candidates:" in text

    def test_no_static_set_no_partners(self):
        resolved = compile_source(RACY)
        detector = RaceDetector(resolved=resolved)
        run_program(resolved, sink=detector)
        for report in detector.reports.reports:
            assert report.static_partners == ()
            assert "static candidates" not in report.describe()

    def test_partners_survive_loop_peeling(self):
        """Peeled clone sites map back through their origins."""
        source = """
        class Main {
          static def main() {
            var d = new Data();
            d.x = 0;
            var a = new Worker(d); var b = new Worker(d);
            start a; start b; join a; join b;
          }
        }
        class Data { field x; }
        class Worker {
          field d;
          def init(d) { this.d = d; }
          def run() {
            var i = 0;
            while (i < 5) {
              this.d.x = this.d.x + 1;
              i = i + 1;
            }
          }
        }
        """
        detector = detect_with_static(source)
        assert detector.reports.reports
        for report in detector.reports.reports:
            assert report.static_partners

    def test_partner_list_capped(self):
        # A field written from many sites: the report shows at most 4
        # partners plus a summary line.
        writes = "\n".join(
            f"    if (sel == {i}) {{ this.d.x = {i}; }}" for i in range(8)
        )
        source = f"""
        class Main {{
          static def main() {{
            var d = new Data();
            d.x = 0;
            var a = new Worker(d, 1); var b = new Worker(d, 2);
            start a; start b; join a; join b;
          }}
        }}
        class Data {{ field x; }}
        class Worker {{
          field d; field sel;
          def init(d, sel) {{ this.d = d; this.sel = sel; }}
          def run() {{
            var sel = this.sel;
{writes}
          }}
        }}
        """
        detector = detect_with_static(source)
        report = detector.reports.reports[0]
        assert len(report.static_partners) <= 5
        if len(report.static_partners) == 5:
            assert "more" in report.static_partners[-1]
