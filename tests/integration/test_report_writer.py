"""Tests for the markdown report writer and its CLI entry."""

import pytest

from repro.cli import main
from repro.harness import build_report, write_report


@pytest.fixture(scope="module")
def report_text():
    # Tiny scale so the whole experiment matrix runs quickly.
    return build_report(scale=3, repeats=1)


class TestBuildReport:
    def test_contains_all_sections(self, report_text):
        assert "## Table 1" in report_text
        assert "## Table 2" in report_text
        assert "## Table 3" in report_text
        assert "## Section 8.2" in report_text

    def test_all_benchmarks_present(self, report_text):
        for name in ("mtrt2", "tsp2", "sor2", "elevator2", "hedc2"):
            assert name in report_text

    def test_paper_reference_column(self, report_text):
        assert "5/10/29" in report_text  # hedc2's paper row.
        assert "0/0/16" in report_text  # elevator2's paper row.

    def test_valid_markdown_tables(self, report_text):
        for line in report_text.splitlines():
            if line.startswith("|"):
                assert line.endswith("|")

    def test_overheads_formatted(self, report_text):
        assert "%" in report_text
        assert "s (" in report_text

    def test_phase_breakdown_section(self, report_text):
        assert "## Per-phase timing breakdown" in report_text
        assert "Lockset/trie" in report_text
        # One row per (benchmark, engine) pair.
        phase_lines = [
            line for line in report_text.splitlines()
            if line.startswith("|") and ("| ast |" in line
                                         or "| compiled |" in line)
        ]
        assert len(phase_lines) == 6


class TestWriteReport:
    def test_writes_file(self, tmp_path):
        target = write_report(tmp_path / "report.md", scale=3)
        assert target.exists()
        assert "## Table 3" in target.read_text()

    def test_cli_output_flag(self, tmp_path, capsys):
        target = tmp_path / "cli_report.md"
        code = main(["tables", "--scale", "3", "--output", str(target)])
        out = capsys.readouterr().out
        assert code == 0
        assert "wrote" in out
        assert target.exists()
