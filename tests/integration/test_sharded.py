"""Integration tests for the sharded post-mortem engine: real
workloads, all three executors, the harness runner, and the CLI flags."""

import pytest

from repro.detector import (
    canonical_report_order,
    detect_from_log,
    detect_sharded,
    detect_sharded_post_mortem,
    partition_log,
)
from repro.detector.postmortem import record_execution
from repro.instrument import PlannerConfig, plan_instrumentation
from repro.lang import compile_source
from repro.runtime import RecordingSink
from repro.workloads import ALL_WORKLOADS


@pytest.fixture(scope="module")
def tsp_recording():
    spec = ALL_WORKLOADS["tsp2"]
    resolved = compile_source(spec.build(4), filename="tsp2")
    plan = plan_instrumentation(resolved, PlannerConfig())
    _, log = record_execution(resolved, trace_sites=plan.trace_sites)
    serial, _ = detect_from_log(log, resolved=resolved)
    return resolved, log, serial


class TestPartitioning:
    def test_accesses_partition_and_syncs_replicate(self, tsp_recording):
        _, log, _ = tsp_recording
        shards = 4
        streams, accesses, syncs = partition_log(log.log, shards)
        assert len(streams) == shards
        assert accesses == log.access_count
        assert syncs == len(log.log) - accesses
        # Each shard holds every sync event plus its slice of accesses.
        assert sum(len(s) for s in streams) == accesses + shards * syncs
        for stream in streams:
            sync_count = sum(
                1 for entry in stream if entry[0] != RecordingSink.ACCESS
            )
            assert sync_count == syncs

    def test_routing_is_by_object_uid(self, tsp_recording):
        _, log, _ = tsp_recording
        streams, _, _ = partition_log(log.log, 3)
        for index, stream in enumerate(streams):
            for entry in stream:
                if entry[0] == RecordingSink.ACCESS:
                    assert entry[1] % 3 == index

    def test_zero_shards_rejected(self, tsp_recording):
        _, log, _ = tsp_recording
        with pytest.raises(ValueError):
            partition_log(log.log, 0)

    def test_unknown_executor_rejected(self, tsp_recording):
        _, log, _ = tsp_recording
        with pytest.raises(ValueError):
            detect_sharded(log, 2, executor="gpu")


class TestExecutorEquivalence:
    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_every_executor_matches_serial_detection(
        self, tsp_recording, executor, shards
    ):
        resolved, log, serial = tsp_recording
        result = detect_sharded(
            log, shards, resolved=resolved, executor=executor
        )
        assert result.reports.reports == canonical_report_order(
            serial.reports.reports
        )
        assert result.monitored_locations == serial.monitored_locations
        assert result.trie_nodes == serial.total_trie_nodes()
        assert result.stats.accesses == serial.stats.accesses
        assert result.races == serial.stats.races_reported

    def test_reports_carry_site_descriptors(self, tsp_recording):
        resolved, log, serial = tsp_recording
        result = detect_sharded(
            log, 4, resolved=resolved, executor="process"
        )
        assert result.races > 0
        for report, expected in zip(
            result.reports.reports,
            canonical_report_order(serial.reports.reports),
        ):
            assert report.site_descriptor == expected.site_descriptor
            assert report.site_descriptor  # Post-filled, not empty.

    def test_shard_summary_mentions_every_shard(self, tsp_recording):
        resolved, log, _ = tsp_recording
        result = detect_sharded(log, 3, resolved=resolved)
        summary = result.shard_summary()
        for index in range(3):
            assert f"shard {index}" in summary


class TestWholeWorkflow:
    def test_detect_sharded_post_mortem_runs_end_to_end(self):
        spec = ALL_WORKLOADS["mtrt2"]
        resolved = compile_source(spec.build(3), filename="mtrt2")
        plan = plan_instrumentation(resolved, PlannerConfig())
        result, log = detect_sharded_post_mortem(
            resolved, shards=4, trace_sites=plan.trace_sites
        )
        assert result.partitioned_accesses == log.access_count
        serial, _ = detect_from_log(log, resolved=resolved)
        assert result.reports.reports == canonical_report_order(
            serial.reports.reports
        )

    def test_harness_post_mortem_runner(self):
        from repro.harness import CONFIG_FULL, run_workload_post_mortem

        outcome = run_workload_post_mortem(
            ALL_WORKLOADS["tsp2"],
            CONFIG_FULL,
            shards=4,
            scale=4,
            executor="thread",
        )
        assert outcome.matches_serial
        assert outcome.shards == 4
        assert outcome.access_events > 0
        assert outcome.replicated_sync_events > 0


RACY = """
class Main {
  static def main() {
    var d = new Data();
    d.x = 0;
    var a = new Worker(d); var b = new Worker(d);
    start a; start b; join a; join b;
    print d.x;
  }
}
class Data { field x; }
class Worker {
  field d;
  def init(d) { this.d = d; }
  def run() { this.d.x = this.d.x + 1; }
}
"""


class TestCliFlags:
    @pytest.fixture
    def racy_file(self, tmp_path):
        path = tmp_path / "racy.mj"
        path.write_text(RACY)
        return str(path)

    def test_shards_flag_implies_post_mortem(self, racy_file, capsys):
        from repro.cli import main

        code = main(["check", racy_file, "--shards", "2", "--stats"])
        out = capsys.readouterr().out
        assert code == 1
        assert "DATARACE" in out
        assert "post-mortem: 2 shards" in out

    def test_post_mortem_matches_on_the_fly_output(self, racy_file, capsys):
        from repro.cli import main

        main(["check", racy_file])
        live = [
            line
            for line in capsys.readouterr().out.splitlines()
            if line.startswith("DATARACE")
        ]
        main(["check", racy_file, "--post-mortem"])
        offline = [
            line
            for line in capsys.readouterr().out.splitlines()
            if line.startswith("DATARACE")
        ]
        assert sorted(live) == sorted(offline)
        assert live

    def test_invalid_shard_count(self, racy_file, capsys):
        from repro.cli import main

        assert main(["check", racy_file, "--shards", "0"]) == 2
