"""Failure injection: runtime errors mid-execution with detectors attached.

MJ has no exception handling: a runtime error aborts the whole run (the
paper's PEI-everywhere reality, taken to its limit).  These tests check
the abort path is clean — monitors unwind, the detector's partial state
stays consistent and queryable, and partial logs replay."""

import pytest

from repro.detector import DeadlockDetector, RaceDetector, ReferenceDetector
from repro.lang import MJAssertionError, MJRuntimeError, compile_source
from repro.runtime import MulticastSink, RecordingSink, run_program


def run_expecting(source, exc_type, sink=None):
    resolved = compile_source(source)
    with pytest.raises(exc_type):
        run_program(resolved, sink=sink)


CRASH_IN_SYNC = """
class Main {
  static def main() {
    var s = new Shared();
    s.x = 0;
    var a = new Crasher(s);
    var b = new Worker(s);
    start a; start b;
    join a; join b;
  }
}
class Shared { field x; }
class Crasher {
  field s;
  def init(s) { this.s = s; }
  def run() {
    sync (this.s) {
      var boom = null;
      this.s.x = boom.x;      // Null deref while holding the lock.
    }
  }
}
class Worker {
  field s;
  def init(s) { this.s = s; }
  def run() {
    var i = 0;
    while (i < 30) {
      sync (this.s) { this.s.x = this.s.x + 1; }
      i = i + 1;
    }
  }
}
"""


class TestCrashMidRun:
    def test_null_deref_in_sync_propagates(self):
        run_expecting(CRASH_IN_SYNC, MJRuntimeError)

    def test_monitor_released_on_unwind(self):
        """The sync block's finally must release the monitor, so the
        detector's lock tracker never sees an unbalanced exit and the
        other thread can still make progress up to the abort."""
        resolved = compile_source(CRASH_IN_SYNC)
        detector = RaceDetector(resolved=resolved)
        with pytest.raises(MJRuntimeError):
            run_program(resolved, sink=detector)
        # The crashing thread's lockset unwound to its pseudo-lock only.
        crasher_lockset = detector.locks.lockset(1)
        assert all(lock < 0 for lock in crasher_lockset)

    def test_detector_state_queryable_after_abort(self):
        resolved = compile_source(CRASH_IN_SYNC)
        detector = RaceDetector(resolved=resolved)
        with pytest.raises(MJRuntimeError):
            run_program(resolved, sink=detector)
        # Partial statistics are consistent.
        assert detector.stats.accesses >= 0
        _ = detector.reports.object_count
        _ = detector.total_trie_nodes()

    def test_partial_log_replays(self):
        resolved = compile_source(CRASH_IN_SYNC)
        log = RecordingSink()
        with pytest.raises(MJRuntimeError):
            run_program(resolved, sink=log)
        # The truncated stream still feeds any detector.
        offline = ReferenceDetector()
        log.replay_into(offline)
        assert offline.full_race is not None

    def test_assertion_failure_in_thread(self):
        source = """
        class Main {
          static def main() {
            var w = new W();
            start w; join w;
          }
        }
        class W {
          def run() { assert 1 > 2; }
        }
        """
        run_expecting(source, MJAssertionError)

    def test_crash_with_multicast_sinks(self):
        resolved = compile_source(CRASH_IN_SYNC)
        races = RaceDetector(resolved=resolved)
        deadlocks = DeadlockDetector()
        with pytest.raises(MJRuntimeError):
            run_program(resolved, sink=MulticastSink([races, deadlocks]))
        deadlocks.analyze()  # Must not blow up on partial state.

    def test_out_of_bounds_mid_loop(self):
        source = """
        class Main {
          static def main() {
            var a = newarray(3);
            var w = new W(a);
            start w; join w;
          }
        }
        class W {
          field a;
          def init(a) { this.a = a; }
          def run() {
            var i = 0;
            while (i < 10) {
              this.a[i] = i;    // Blows up at i == 3.
              i = i + 1;
            }
          }
        }
        """
        resolved = compile_source(source)
        detector = RaceDetector(resolved=resolved)
        with pytest.raises(MJRuntimeError) as excinfo:
            run_program(resolved, sink=detector)
        assert "out of bounds" in str(excinfo.value)
        # Three successful writes were observed before the crash.
        assert detector.stats.accesses >= 1
