"""Integration tests: the Table 3 accuracy claims over the workloads.

These assert the *shape* the paper reports (Section 8.3): exact Full
counts per benchmark's documented race inventory, FieldsMerged ≥ Full,
NoOwnership strictly larger wherever initialization-then-handoff
exists, elevator clean, and the Eraser/object-granularity baselines
reporting supersets.
"""

import pytest

from repro.baselines import EraserDetector, ObjectRaceDetector
from repro.harness import (
    CONFIG_FIELDS_MERGED,
    CONFIG_FULL,
    CONFIG_NO_OWNERSHIP,
    run_workload,
)
from repro.lang import compile_source
from repro.runtime import run_program
from repro.workloads import BENCHMARKS


@pytest.fixture(scope="module")
def table3():
    results = {}
    for name, spec in BENCHMARKS.items():
        results[name] = {
            "Full": run_workload(spec, CONFIG_FULL),
            "FieldsMerged": run_workload(spec, CONFIG_FIELDS_MERGED),
            "NoOwnership": run_workload(spec, CONFIG_NO_OWNERSHIP),
        }
    return results


class TestFullCounts:
    @pytest.mark.parametrize("name", list(BENCHMARKS))
    def test_expected_full_object_count(self, table3, name):
        spec = BENCHMARKS[name]
        assert (
            table3[name]["Full"].racy_object_count == spec.expected_full_objects
        )

    @pytest.mark.parametrize("name", list(BENCHMARKS))
    def test_expected_racy_fields_reported(self, table3, name):
        spec = BENCHMARKS[name]
        detector = table3[name]["Full"].detector
        reported_fields = {r.field for r in detector.reports.reports}
        assert spec.expected_racy_fields <= reported_fields

    def test_mtrt2_reports_threadcount_and_stream(self):
        outcome = run_workload(BENCHMARKS["mtrt2"], CONFIG_FULL)
        labels = {label.split("#")[0] for label in outcome.racy_objects}
        assert labels == {"Scene", "Stream"}

    def test_tsp2_reports_solver_and_candidates(self):
        outcome = run_workload(BENCHMARKS["tsp2"], CONFIG_FULL)
        labels = sorted(label.split("#")[0] for label in outcome.racy_objects)
        assert labels == ["Candidate"] * 4 + ["Solver"]

    def test_hedc2_reports_pool_and_tasks(self):
        outcome = run_workload(BENCHMARKS["hedc2"], CONFIG_FULL)
        labels = sorted(label.split("#")[0] for label in outcome.racy_objects)
        assert labels == ["Task"] * 4 + ["TaskPool"]

    def test_sor2_reports_only_barrier_machinery(self):
        outcome = run_workload(BENCHMARKS["sor2"], CONFIG_FULL)
        kinds = {label.split("#")[0] for label in outcome.racy_objects}
        assert kinds <= {"Barrier", "SolverState", "array"}

    def test_elevator2_clean(self, table3):
        assert table3["elevator2"]["Full"].racy_object_count == 0


class TestVariantOrdering:
    @pytest.mark.parametrize("name", list(BENCHMARKS))
    def test_fields_merged_at_least_full(self, table3, name):
        assert (
            table3[name]["FieldsMerged"].racy_object_count
            >= table3[name]["Full"].racy_object_count
        )

    @pytest.mark.parametrize("name", list(BENCHMARKS))
    def test_no_ownership_strictly_more(self, table3, name):
        full = table3[name]["Full"].racy_object_count
        noown = table3[name]["NoOwnership"].racy_object_count
        assert noown > full

    def test_tsp2_fields_merged_gap(self, table3):
        """tsp shows the granularity trap (paper: 5 → 20)."""
        assert table3["tsp2"]["FieldsMerged"].racy_object_count > 5

    def test_hedc2_fields_merged_doubles(self, table3):
        """hedc: 5 → 10 in the paper; exact here by construction."""
        assert table3["hedc2"]["FieldsMerged"].racy_object_count == 10

    def test_sor2_fields_merged_equal(self, table3):
        """sor2: merging changes nothing (paper: 4 → 4)."""
        assert table3["sor2"]["FieldsMerged"].racy_object_count == 4


class TestBaselinesSuperset:
    @pytest.mark.parametrize("name", ["mtrt2", "tsp2", "hedc2", "join_stats"])
    def test_eraser_reports_superset_of_objects(self, name):
        from repro.workloads import ALL_WORKLOADS

        spec = ALL_WORKLOADS[name]
        source = spec.build()
        resolved = compile_source(source)
        from repro.detector import RaceDetector

        ours = RaceDetector(resolved=resolved)
        run_program(resolved, sink=ours)

        resolved = compile_source(source)
        eraser = EraserDetector(join_pseudolocks=True)
        run_program(resolved, sink=eraser)
        # Eraser's definition is looser: it reports at least as many
        # objects (Section 9: "they always report a superset").
        assert eraser.object_count >= ours.reports.object_count

    def test_join_stats_eraser_false_positive(self):
        from repro.workloads import ALL_WORKLOADS

        spec = ALL_WORKLOADS["join_stats"]
        source = spec.build()
        resolved = compile_source(source)
        from repro.detector import RaceDetector

        ours = RaceDetector(resolved=resolved)
        run_program(resolved, sink=ours)
        assert ours.reports.object_count == 0

        resolved = compile_source(source)
        eraser = EraserDetector(join_pseudolocks=True)
        run_program(resolved, sink=eraser)
        assert eraser.object_count == 1  # The spurious Stats report.

    def test_object_granularity_floods_hedc2(self):
        source = BENCHMARKS["hedc2"].build()
        resolved = compile_source(source)
        objrace = ObjectRaceDetector()
        run_program(resolved, sink=objrace)
        assert objrace.object_count >= 5
