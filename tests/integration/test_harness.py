"""Integration tests for the experiment harness and table builders."""

import pytest

from repro.harness import (
    CONFIG_BASE,
    CONFIG_FULL,
    CONFIG_NO_CACHE,
    CONFIG_NO_STATIC,
    overhead_percent,
    run_table2_row,
    run_table3_row,
    run_workload,
)
from repro.harness.tables import format_table, space_report, table1, table3
from repro.workloads import ALL_WORKLOADS, BENCHMARKS


class TestRunWorkload:
    def test_base_has_no_events_or_detector(self):
        outcome = run_workload(ALL_WORKLOADS["figure3"], CONFIG_BASE, scale=20)
        assert outcome.events == 0
        assert outcome.detector is None
        assert outcome.sites_instrumented == 0

    def test_full_collects_counters(self):
        outcome = run_workload(ALL_WORKLOADS["figure3"], CONFIG_FULL, scale=20)
        assert outcome.events > 0
        assert outcome.sites_instrumented > 0
        assert outcome.wall_seconds > 0

    def test_no_static_instruments_more_sites(self):
        full = run_workload(BENCHMARKS["mtrt2"], CONFIG_FULL, scale=4)
        nostatic = run_workload(BENCHMARKS["mtrt2"], CONFIG_NO_STATIC, scale=4)
        assert nostatic.sites_instrumented > full.sites_instrumented
        assert nostatic.events > full.events

    def test_no_cache_shifts_work_to_trie(self):
        full = run_workload(BENCHMARKS["tsp2"], CONFIG_FULL, scale=6)
        nocache = run_workload(BENCHMARKS["tsp2"], CONFIG_NO_CACHE, scale=6)
        full_trie_work = (
            full.detector.trie_stats.weaker_hits
            + full.detector.trie_stats.weaker_misses
        )
        nocache_trie_work = (
            nocache.detector.trie_stats.weaker_hits
            + nocache.detector.trie_stats.weaker_misses
        )
        assert nocache_trie_work > 5 * full_trie_work
        assert nocache.cache_hits == 0

    def test_scheduling_is_deterministic_across_runs(self):
        first = run_workload(BENCHMARKS["tsp2"], CONFIG_FULL, scale=5)
        second = run_workload(BENCHMARKS["tsp2"], CONFIG_FULL, scale=5)
        assert first.events == second.events
        assert first.racy_objects == second.racy_objects
        assert first.output == second.output


class TestTableRows:
    def test_table2_row_has_all_configs(self):
        outcomes = run_table2_row(
            ALL_WORKLOADS["figure3"], scale=30, repeats=1
        )
        assert set(outcomes) == {
            "Base",
            "Full",
            "NoStatic",
            "NoDominators",
            "NoPeeling",
            "NoCache",
        }

    def test_figure3_event_ordering(self):
        """The Figure 3 effect: Full traces O(1) per thread; NoPeeling
        and NoDominators trace O(iterations)."""
        outcomes = run_table2_row(ALL_WORKLOADS["figure3"], scale=50, repeats=1)
        assert outcomes["Full"].events < outcomes["NoPeeling"].events
        assert outcomes["Full"].events < outcomes["NoDominators"].events
        assert outcomes["Full"].events <= 12

    def test_overhead_percent(self):
        outcomes = run_table2_row(ALL_WORKLOADS["figure3"], scale=30, repeats=1)
        pct = overhead_percent(outcomes["Base"], outcomes["Full"])
        assert isinstance(pct, float)

    def test_table3_row(self):
        outcomes = run_table3_row(BENCHMARKS["elevator2"])
        assert outcomes["Full"].racy_object_count == 0
        assert outcomes["NoOwnership"].racy_object_count > 0


class TestRenderers:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["x", "y"], ["longer", "z"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(l) for l in lines)) <= 2

    def test_table1_renders_all_benchmarks(self):
        text = table1([BENCHMARKS["elevator2"], BENCHMARKS["hedc2"]])
        assert "elevator2" in text
        assert "hedc2" in text

    def test_table3_renders_with_paper_column(self):
        text, raw = table3([BENCHMARKS["elevator2"]])
        assert "0/0/16" in text
        assert "elevator2" in raw

    def test_space_report_mentions_trie_nodes(self):
        text = space_report(BENCHMARKS["tsp2"], scale=5)
        assert "trie nodes" in text
