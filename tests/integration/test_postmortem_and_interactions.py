"""Post-mortem mode, determinism, and the Section 7.2 interaction."""

from repro.detector import DetectorConfig, RaceDetector
from repro.instrument import PlannerConfig, plan_instrumentation
from repro.lang import compile_source
from repro.runtime import RandomPolicy, RecordingSink, run_program

from ..conftest import detect, detect_unoptimized, run_source


class TestPostMortem:
    """Section 1: "our approach could be easily modified to perform
    post-mortem datarace detection by creating a log of access events"."""

    def test_replayed_log_reproduces_reports(self, racy_two_writer_source):
        resolved = compile_source(racy_two_writer_source)
        recording = RecordingSink()
        run_program(resolved, sink=recording)

        online = RaceDetector(resolved=resolved)
        recording.replay_into(online)

        live = detect_unoptimized(racy_two_writer_source)
        assert online.reports.racy_objects == live.reports.racy_objects

    def test_replay_is_repeatable(self, racy_two_writer_source):
        resolved = compile_source(racy_two_writer_source)
        recording = RecordingSink()
        run_program(resolved, sink=recording)
        first = RaceDetector(resolved=resolved)
        second = RaceDetector(resolved=resolved)
        recording.replay_into(first)
        recording.replay_into(second)
        assert first.reports.racy_objects == second.reports.racy_objects
        assert first.stats.accesses == second.stats.accesses

    def test_log_contains_full_event_stream(self, safe_two_writer_source):
        resolved = compile_source(safe_two_writer_source)
        recording = RecordingSink()
        run_program(resolved, sink=recording)
        tags = {entry[0] for entry in recording.log}
        assert {
            RecordingSink.ACCESS,
            RecordingSink.ENTER,
            RecordingSink.EXIT,
            RecordingSink.START,
            RecordingSink.END,
            RecordingSink.JOIN,
        } <= tags


class TestDeterminism:
    def test_same_seed_same_event_log(self, racy_two_writer_source):
        logs = []
        for _ in range(2):
            resolved = compile_source(racy_two_writer_source)
            sink = RecordingSink()
            run_program(resolved, sink=sink, policy=RandomPolicy(7))
            logs.append(sink.log)
        assert logs[0] == logs[1]

    def test_different_seeds_may_differ(self, racy_two_writer_source):
        logs = []
        for seed in (1, 2, 3, 4):
            resolved = compile_source(racy_two_writer_source)
            sink = RecordingSink()
            run_program(resolved, sink=sink, policy=RandomPolicy(seed))
            logs.append(tuple(map(tuple, ((e[0],) for e in sink.log))))
        # Not required to differ, but the scheduler must not crash and
        # all runs complete with the same event multiset size modulo
        # interleaving (same program => same access count).
        resolved = compile_source(racy_two_writer_source)
        assert len({len(log) for log in logs}) >= 1


class TestSection72Interaction:
    """The documented unsound interaction between the ownership model
    and the weaker-than optimizations (Section 7.2): a statically
    eliminated trace can hide the only post-transition access, so the
    optimized run may miss a race the unoptimized run reports.  The
    paper chose to ignore this; we reproduce the behaviour exactly."""

    KERNEL = """
    class Main {
      static def main() {
        var w = new Kernel(); var w2 = new Kernel();
        var a = new A(); w.a = a; w2.a = a;
        start w; start w2; join w; join w2;
      }
    }
    class A { field f; }
    class Kernel {
      field a;
      def run() {
        var x = this.a;
        var i = 0;
        while (i < 10) {
          x.f = i;
          i = i + 1;
        }
      }
    }
    """

    def test_unoptimized_run_reports_the_race(self):
        det = detect_unoptimized(self.KERNEL)
        assert det.reports.object_count == 1

    def test_optimized_run_misses_it_in_this_interleaving(self):
        det = detect(self.KERNEL)
        # Peeling leaves one trace per thread; the first thread's only
        # event is swallowed as the location's owner, so the shared-
        # state race check never sees two threads: the paper's admitted
        # unsoundness, reproduced.
        assert det.reports.object_count == 0

    def test_disabling_ownership_restores_the_report(self):
        det = detect(
            self.KERNEL, detector_config=DetectorConfig(ownership=False)
        )
        # (Plus the usual NoOwnership init-handoff noise on the Kernel
        # objects themselves — the A object is what matters here.)
        assert any(label.startswith("A#") for label in det.reports.racy_objects)

    def test_disabling_the_static_optimizations_restores_the_report(self):
        det = detect(
            self.KERNEL,
            planner_config=PlannerConfig(static_weaker=False, loop_peeling=False),
        )
        assert det.reports.object_count == 1


class TestStepBudget:
    def test_step_limit_enforced(self):
        from repro.runtime import StepLimitExceeded
        import pytest

        source = """
        class Main {
          static def main() {
            var i = 0;
            while (true) { i = i + 1; }
          }
        }
        """
        with pytest.raises(StepLimitExceeded):
            run_source(source, max_steps=1000)

    def test_deadlock_detected(self):
        from repro.runtime import DeadlockError
        import pytest

        source = """
        class Main {
          static def main() {
            var l1 = new L(); var l2 = new L();
            var a = new W(l1, l2); var b = new W(l2, l1);
            start a; start b; join a; join b;
          }
        }
        class L { }
        class W {
          field first; field second;
          def init(first, second) { this.first = first; this.second = second; }
          def run() {
            sync (this.first) {
              var spin = 0;
              while (spin < 50) { spin = spin + 1; }
              sync (this.second) { }
            }
          }
        }
        """
        # Opposite acquisition order with a long hold: under round-robin
        # with a small quantum both workers grab their first lock, then
        # block on each other.
        with pytest.raises(DeadlockError):
            run_source(source)
