"""Tests for the post-mortem workflow module (repro.detector.postmortem)."""

from repro.detector import (
    DetectorConfig,
    detect_from_log,
    detect_post_mortem,
    record_execution,
)
from repro.lang import compile_source
from repro.runtime import RandomPolicy


class TestDetectPostMortem:
    def test_full_workflow(self, racy_two_writer_source):
        resolved = compile_source(racy_two_writer_source)
        result = detect_post_mortem(resolved, enumerate_full_race=True)
        assert result.run.output == ["2"]
        assert result.reports
        assert result.full_race
        # FullRace is a superset view: every reported location appears
        # among the enumerated pairs' locations.
        pair_locations = {pair.key for pair in result.full_race}
        for report in result.reports:
            assert report.key in pair_locations

    def test_without_enumeration(self, racy_two_writer_source):
        resolved = compile_source(racy_two_writer_source)
        result = detect_post_mortem(resolved)
        assert result.full_race is None
        assert result.reports

    def test_clean_program(self, safe_two_writer_source):
        resolved = compile_source(safe_two_writer_source)
        result = detect_post_mortem(resolved, enumerate_full_race=True)
        assert not result.reports
        assert result.full_race == []

    def test_log_reusable_for_other_configs(self, racy_two_writer_source):
        resolved = compile_source(racy_two_writer_source)
        _, log = record_execution(resolved, policy=RandomPolicy(3))
        plain, _ = detect_from_log(log)
        merged, _ = detect_from_log(
            log, config=DetectorConfig(fields_merged=True)
        )
        no_own, _ = detect_from_log(
            log, config=DetectorConfig(ownership=False)
        )
        # One execution, three analyses — the log decouples them.
        assert plain.reports.racy_objects
        assert merged.reports.object_count >= plain.reports.object_count
        assert no_own.reports.object_count >= plain.reports.object_count

    def test_respects_trace_sites(self, racy_two_writer_source):
        resolved = compile_source(racy_two_writer_source)
        result = detect_post_mortem(resolved, trace_sites=set())
        assert not result.reports
        assert not any(
            entry[0] == "access" for entry in result.log.log
        )
