"""End-to-end detection scenarios through the full pipeline."""

import pytest

from repro import check_source
from repro.detector import DetectorConfig

from ..conftest import detect, detect_unoptimized


class TestBasicScenarios:
    def test_racy_program_detected(self, racy_two_writer_source):
        det = detect(racy_two_writer_source)
        assert det.reports.object_count == 1

    def test_safe_program_clean(self, safe_two_writer_source):
        det = detect(safe_two_writer_source)
        assert det.reports.object_count == 0

    def test_check_source_api(self, racy_two_writer_source):
        reports = check_source(racy_two_writer_source)
        assert reports
        assert "DATARACE" in reports[0].describe()

    def test_racy_detected_under_many_seeds(self, racy_two_writer_source):
        for seed in range(10):
            det = detect(racy_two_writer_source, seed=seed)
            assert det.reports.object_count == 1, f"seed {seed}"

    def test_safe_clean_under_many_seeds(self, safe_two_writer_source):
        for seed in range(10):
            det = detect(safe_two_writer_source, seed=seed)
            assert det.reports.object_count == 0, f"seed {seed}"


class TestLockPatterns:
    def test_distinct_locks_race(self):
        source = """
        class Main {
          static def main() {
            var s = new Shared();
            s.x = 0;
            var a = new Worker(s, new L());
            var b = new Worker(s, new L());
            start a; start b; join a; join b;
          }
        }
        class Shared { field x; }
        class L { }
        class Worker {
          field s; field lock;
          def init(s, lock) { this.s = s; this.lock = lock; }
          def run() {
            sync (this.lock) { this.s.x = this.s.x + 1; }
          }
        }
        """
        det = detect(source)
        assert det.reports.object_count == 1

    def test_nested_common_lock_safe(self):
        source = """
        class Main {
          static def main() {
            var s = new Shared();
            s.x = 0;
            var outer = new L(); var inner = new L();
            var a = new Worker(s, outer, inner);
            var b = new Worker(s, inner, outer);
            start a; start b; join a; join b;
          }
        }
        class Shared { field x; }
        class L { }
        class Worker {
          field s; field l1; field l2;
          def init(s, l1, l2) { this.s = s; this.l1 = l1; this.l2 = l2; }
          def run() {
            // Both workers hold BOTH locks when touching x (in
            // opposite orders, but the MJ scheduler cannot deadlock
            // here because acquisition pairs are serialized enough
            // under round-robin... and the locksets intersect).
            sync (this.l1) { sync (this.l2) { this.s.x = this.s.x + 1; } }
          }
        }
        """
        # NOTE: opposite lock orders can deadlock under some schedules;
        # the deterministic round-robin default with quantum 10 lets
        # each worker pass through its critical section whole.
        det = detect(source)
        assert det.reports.object_count == 0

    def test_lock_identity_not_name(self):
        # Two *different* lock objects stored in same-named fields do
        # not protect against each other.
        source = """
        class Main {
          static def main() {
            var s = new Shared();
            s.x = 0;
            var a = new Worker(s); var b = new Worker(s);
            start a; start b; join a; join b;
          }
        }
        class Shared { field x; }
        class Worker {
          field s; field myLock;
          def init(s) { this.s = s; this.myLock = new Worker2(); }
          def run() {
            sync (this.myLock) { this.s.x = this.s.x + 1; }
          }
        }
        class Worker2 { }
        """
        det = detect(source)
        assert det.reports.object_count == 1

    def test_guarding_self_via_receiver(self):
        source = """
        class Main {
          static def main() {
            var c = new Counter();
            var a = new Worker(c); var b = new Worker(c);
            start a; start b; join a; join b;
            print c.n;
          }
        }
        class Counter {
          field n;
          def init() { this.n = 0; }
          sync def bump() { this.n = this.n + 1; }
        }
        class Worker {
          field c;
          def init(c) { this.c = c; }
          def run() { this.c.bump(); this.c.bump(); }
        }
        """
        det = detect(source)
        assert det.reports.object_count == 0


class TestReportingGuarantee:
    def test_at_least_one_report_per_racy_location(self):
        """Definition 1 on a program with three racy locations."""
        source = """
        class Main {
          static def main() {
            var s = new Shared();
            s.x = 0; s.y = 0; s.z = 0;
            var a = new Worker(s); var b = new Worker(s);
            start a; start b; join a; join b;
          }
        }
        class Shared { field x; field y; field z; }
        class Worker {
          field s;
          def init(s) { this.s = s; }
          def run() {
            this.s.x = this.s.x + 1;
            this.s.y = this.s.y + 2;
            this.s.z = this.s.z + 3;
          }
        }
        """
        det = detect_unoptimized(source)
        racy_fields = {r.field for r in det.reports.reports}
        assert racy_fields == {"x", "y", "z"}

    def test_static_field_races_detected(self):
        source = """
        class Main {
          static def main() {
            G.counter = 0;
            var a = new W(); var b = new W();
            start a; start b; join a; join b;
            print G.counter;
          }
        }
        class G { static field counter; }
        class W {
          def run() { G.counter = G.counter + 1; }
        }
        """
        det = detect(source)
        assert det.reports.object_count == 1
        assert all(r.field == "counter" for r in det.reports.reports)

    def test_array_races_detected_at_array_granularity(self):
        source = """
        class Main {
          static def main() {
            var data = newarray(10);
            var a = new W(data, 0); var b = new W(data, 5);
            start a; start b; join a; join b;
          }
        }
        class W {
          field d; field base;
          def init(d, base) { this.d = d; this.base = base; }
          def run() {
            var i = 0;
            while (i < 5) {
              this.d[this.base + i] = i;
              i = i + 1;
            }
          }
        }
        """
        # The two workers touch disjoint index ranges, but footnote 1
        # merges all elements: the array is reported (a known source of
        # imprecision the paper accepts).
        det = detect(source)
        assert det.reports.object_count == 1

    def test_read_read_mode_reports_pure_read_sharing(self):
        source = """
        class Main {
          static def main() {
            var s = new Shared();
            s.x = 1;
            var a = new R(s); var b = new R(s);
            start a; start b; join a; join b;
          }
        }
        class Shared { field x; }
        class R {
          field s;
          def init(s) { this.s = s; }
          def run() { var v = this.s.x; }
        }
        """
        default = detect(source)
        assert default.reports.object_count == 0
        relaxed = detect(
            source, detector_config=DetectorConfig(read_read_races=True)
        )
        assert relaxed.reports.object_count == 1


class TestOptimizationTransparency:
    """The paper verified "the same races were reported whether the
    optimizations ... were enabled or disabled" (Section 7.2).  We
    check it on programs where racy accesses recur."""

    RECURRING = """
    class Main {
      static def main() {
        var s = new Shared();
        s.x = 0;
        var a = new Worker(s); var b = new Worker(s);
        start a; start b; join a; join b;
      }
    }
    class Shared { field x; }
    class Worker {
      field s;
      def init(s) { this.s = s; }
      def run() {
        var i = 0;
        while (i < 20) {
          this.s.x = this.s.x + 1;
          i = i + 1;
        }
      }
    }
    """

    def test_same_racy_objects_with_and_without_optimizations(self):
        optimized = detect(self.RECURRING)
        unoptimized = detect_unoptimized(self.RECURRING)
        assert (
            optimized.reports.racy_objects == unoptimized.reports.racy_objects
        )

    def test_same_racy_objects_without_cache(self):
        plain = detect(self.RECURRING)
        nocache = detect(
            self.RECURRING, detector_config=DetectorConfig(cache=False)
        )
        assert plain.reports.racy_objects == nocache.reports.racy_objects
