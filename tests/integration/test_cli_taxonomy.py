"""CLI exit-code taxonomy for damaged, missing, and skewed event logs.

``repro check --from-log`` and ``repro log-stats`` used to fold every
log problem into one fused "neither binary nor JSON" error; the
contract now is three distinguishable failures scripts can branch on
without parsing messages:

* exit 2 — the log does not exist (or a usage/compile error),
* exit 3 — the bytes are corrupt or truncated (message carries the
  damage's byte offset),
* exit 4 — intact bytes recorded under a different schema version.

``repro serve`` maps the same classes to HTTP 404 / 422 / 400
(tested in ``test_service.py``).
"""

import json

import pytest

from repro.cli import main
from repro.runtime.binlog import write_binary_log
from repro.runtime.events import RecordingSink, dump_log

PROGRAM = """
class Main {
  static def main() {
    var d = new Data();
    d.x = 1;
    print d.x;
  }
}
class Data { field x; }
"""


@pytest.fixture
def binary_log(tmp_path):
    """A small, valid MJBL log recorded from a real run."""
    from repro.lang import compile_source
    from repro.runtime import run_program

    sink = RecordingSink()
    run_program(compile_source(PROGRAM), sink=sink)
    path = tmp_path / "run.mjbl"
    write_binary_log(sink, path)
    return path, sink


@pytest.mark.parametrize("command", ["check", "log-stats"])
class TestLogErrorExitCodes:
    def _invoke(self, command, path):
        if command == "check":
            return main(["check", "--from-log", str(path)])
        return main(["log-stats", str(path)])

    def test_missing_log_exits_2(self, command, tmp_path, capsys):
        code = self._invoke(command, tmp_path / "nope.mjbl")
        captured = capsys.readouterr()
        assert code == 2
        assert "not found" in captured.err

    def test_truncated_binary_log_exits_3_with_offset(
        self, command, binary_log, tmp_path, capsys
    ):
        path, _ = binary_log
        truncated = tmp_path / "truncated.mjbl"
        truncated.write_bytes(path.read_bytes()[:40])
        code = self._invoke(command, truncated)
        captured = capsys.readouterr()
        assert code == 3
        assert "corrupt" in captured.err
        # The message names the byte offset of the damage (the 40-byte
        # file ends before the 80-byte header).
        assert "40" in captured.err

    def test_damaged_record_region_exits_3(
        self, command, binary_log, tmp_path, capsys
    ):
        path, _ = binary_log
        blob = bytearray(path.read_bytes())
        damaged = tmp_path / "damaged.mjbl"
        damaged.write_bytes(blob[: len(blob) - 7])
        code = self._invoke(command, damaged)
        assert code == 3
        assert "corrupt" in capsys.readouterr().err

    def test_garbage_json_exits_3(self, command, tmp_path, capsys):
        path = tmp_path / "garbage.json"
        path.write_text("{ this is not json")
        code = self._invoke(command, path)
        assert code == 3
        assert "corrupt" in capsys.readouterr().err

    def test_schema_skew_exits_4(
        self, command, binary_log, tmp_path, capsys
    ):
        _, sink = binary_log
        payload = dump_log(sink)
        payload["version"] = 999
        skewed = tmp_path / "future.json"
        skewed.write_text(json.dumps(payload))
        code = self._invoke(command, skewed)
        captured = capsys.readouterr()
        assert code == 4
        assert "schema" in captured.err
        assert "999" in captured.err


@pytest.fixture
def compressed_log(tmp_path):
    """A v2-compressed synthetic log big enough for deflated blocks."""
    from repro.runtime.synthlog import synthesize_file

    path = tmp_path / "run_v2.mjbl"
    synthesize_file(path, 10_000, compress=6, records_per_block=512)
    return path


@pytest.mark.parametrize("command", ["check", "log-stats"])
class TestV2LogErrorExitCodes:
    """The v2 format plugs into the same exit-code taxonomy: damage
    inside a deflated block is exit 3 and names the block's byte
    offset; a future format version is schema skew, exit 4."""

    def _invoke(self, command, path):
        if command == "check":
            return main(["check", "--from-log", str(path)])
        return main(["log-stats", str(path)])

    def test_garbled_compressed_block_exits_3_with_offset(
        self, command, compressed_log, capsys
    ):
        from repro.runtime.binlog import BinaryLogReader

        with BinaryLogReader(compressed_log) as reader:
            block_offset = next(
                b.offset for b in reader.blocks if b.compressed
            )
        data = bytearray(compressed_log.read_bytes())
        data[block_offset] = 0xFF  # break the zlib stream header
        compressed_log.write_bytes(data)
        code = self._invoke(command, compressed_log)
        captured = capsys.readouterr()
        assert code == 3
        assert "corrupt" in captured.err
        assert str(block_offset) in captured.err

    def test_future_format_version_exits_4(
        self, command, compressed_log, capsys
    ):
        import struct

        from repro.runtime.binlog import BINLOG_VERSION_COMPRESSED

        data = bytearray(compressed_log.read_bytes())
        struct.pack_into("<I", data, 4, BINLOG_VERSION_COMPRESSED + 1)
        compressed_log.write_bytes(data)
        code = self._invoke(command, compressed_log)
        captured = capsys.readouterr()
        assert code == 4
        assert "schema" in captured.err
        assert "re-record" in captured.err


class TestReportJson:
    def test_report_json_is_canonical_and_machine_readable(
        self, tmp_path, capsys
    ):
        program = tmp_path / "prog.mj"
        program.write_text(PROGRAM)
        code = main(["check", str(program), "--report-json"])
        out = capsys.readouterr().out
        assert code == 0
        report = json.loads(out)
        assert report["verdict"] == "clean"
        assert report["schema"] == 1
        # Canonical encoding: re-serializing reproduces the bytes.
        assert out.strip() == json.dumps(
            report, sort_keys=True, separators=(",", ":"), ensure_ascii=False
        )

    def test_report_json_racy_exit_code(self, tmp_path, capsys):
        racy = PROGRAM.replace(
            "print d.x;",
            "var a = new W(d); var b = new W(d); "
            "start a; start b; join a; join b;",
        ) + (
            "class W { field d; def init(d) { this.d = d; } "
            "def run() { this.d.x = this.d.x + 1; } }"
        )
        program = tmp_path / "racy.mj"
        program.write_text(racy)
        code = main(["check", str(program), "--report-json"])
        report = json.loads(capsys.readouterr().out)
        assert code == 1
        assert report["verdict"] == "racy"
        assert report["race_count"] == len(report["races"]) >= 1

    def test_report_json_rejects_human_only_flags(self, tmp_path, capsys):
        program = tmp_path / "prog.mj"
        program.write_text(PROGRAM)
        code = main(["check", str(program), "--report-json", "--deadlocks"])
        assert code == 2
        assert "report-json" in capsys.readouterr().err
