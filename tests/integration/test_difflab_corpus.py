"""The committed reproducer corpus (``tests/corpus/``).

Every entry re-executes under its recorded schedule and must (a) raise
no violations, (b) still exhibit its annotated discrepancy classes,
and (c) reproduce its recorded per-detector verdict matrix exactly.
The corpus as a whole must cover every expected discrepancy class the
fuzzer and the hand-written cases can reach.
"""

import pytest

from repro.detector import Witness, replay_witness
from repro.difflab import load_corpus, run_case, verify_corpus
from repro.difflab.corpus import verdict_matrix

#: Classes the committed corpus must demonstrate.  The deferral-miss
#: and ownership-timing-shift classes became reachable with the
#: wait/notify/barrier vocabulary; the two predictive classes with the
#: SHB/hybrid battery axes (see docs/difflab.md and docs/prediction.md).
REACHABLE_CLASSES = {
    "eraser-deferral-miss",
    "eraser-single-lock-fp",
    "feasible-race-gap",
    "lockset-fp-refuted",
    "object-deferral-miss",
    "object-granularity-fp",
    "ownership-suppressed",
    "ownership-timing-shift",
    "predicted-not-observed",
    "static-elimination-miss",
}


@pytest.fixture(scope="module")
def corpus():
    entries = load_corpus()
    assert entries, "tests/corpus is empty"
    return {entry.name: entry for entry in entries}


class TestCorpusIntegrity:
    def test_at_least_ten_entries(self, corpus):
        assert len(corpus) >= 10

    def test_verify_corpus_is_clean(self):
        entries, problems = verify_corpus()
        assert len(entries) >= 10
        assert problems == []

    def test_fingerprints_unique(self, corpus):
        fingerprints = [entry.fingerprint for entry in corpus.values()]
        assert len(set(fingerprints)) == len(fingerprints)

    def test_every_reachable_class_covered(self, corpus):
        covered = {
            klass for entry in corpus.values() for klass in entry.classes
        }
        assert covered == REACHABLE_CLASSES

    def test_entries_are_small(self, corpus):
        from repro.difflab import count_statements

        for entry in corpus.values():
            # Hand-written entries stay tiny; shrunk fuzz finds (the
            # handoff-biased ownership-timing-shift-min is the largest
            # at 43) stay reviewable.
            assert count_statements(entry.source) <= 45, entry.name
        for name in ("eraser-deferral-miss-min", "object-deferral-miss-min"):
            assert count_statements(corpus[name].source) <= 15, name


class TestVerdictMatrices:
    """Spot-check the per-detector verdicts of the flagship entries."""

    def run(self, entry):
        result = run_case(entry.source, entry.schedule, label=entry.name)
        assert result.error is None, (entry.name, result.error)
        return result, verdict_matrix(result)

    def test_mtrt_eraser_fp(self, corpus):
        _, matrix = self.run(corpus["eraser-mtrt-fp"])
        # Eraser's single-common-lock discipline flags f0; the paper
        # detector (pairwise locks + join pseudo-locks) stays silent.
        assert matrix["eraser"]["locations"] == ["#1.f0"]
        assert matrix["paper"]["locations"] == []
        assert matrix["reference"]["locations"] == []
        assert matrix["hb"]["locations"] == []

    def test_ownership_timing_72(self, corpus):
        _, matrix = self.run(corpus["ownership-timing-72"])
        # Full instrumentation sees the race; the optimized plan's
        # peeled-iteration event is swallowed by the ownership filter
        # (§7.2's interaction) and the race disappears.
        assert matrix["paper"]["locations"] == ["#1.f0"]
        assert matrix["paper-static"]["locations"] == []

    def test_object_granularity_fp(self, corpus):
        _, matrix = self.run(corpus["object-granularity-fp"])
        # Per-field locking: no location races anywhere, but the
        # whole-object baseline merges the two disciplines and reports.
        assert matrix["paper"]["locations"] == []
        assert matrix["reference"]["locations"] == []
        assert matrix["objectrace"]["objects"] == ["Shared#1"]

    def test_eraser_deferral_miss(self, corpus):
        _, matrix = self.run(corpus["eraser-deferral-miss-min"])
        # The condition-ordered handoff keeps Eraser's state machine in
        # Exclusive through the transfer, so it never checks the
        # disjoint pair the paper detector reports (§9's miss
        # direction).
        assert matrix["paper"]["locations"] == ["#1.x"]
        assert matrix["eraser"]["locations"] == []

    def test_object_deferral_miss(self, corpus):
        _, matrix = self.run(corpus["object-deferral-miss-min"])
        # Barrier-phased handoff: both historical detectors defer —
        # Eraser per-location and the whole-object baseline per-object
        # — while the paper detector reports the pair.  Robust under
        # any schedule (the barrier edges order the accesses on every
        # interleaving).
        assert matrix["paper"]["locations"] == ["#1.x"]
        assert matrix["eraser"]["locations"] == []
        assert matrix["objectrace"]["objects"] == []

    def test_ownership_timing_shift(self, corpus):
        _, matrix = self.run(corpus["ownership-timing-shift-min"])
        # The optimized plan's yield structure shifts where the token's
        # owned→shared transition lands: paper-static reports the token
        # field, the live run's ownership filter absorbs it.
        assert matrix["paper-static"]["locations"] == ["#2.v"]
        assert matrix["paper"]["locations"] == []

    def test_rw_race_agreement(self, corpus):
        result, matrix = self.run(corpus["rw-race-min"])
        # A real unprotected read-write race: every location detector
        # agrees, and nothing in the case is even a discrepancy beyond
        # the documented reference-raw init noise.
        for name in ("paper", "paper-live", "paper-static", "reference",
                     "eraser", "hb"):
            assert matrix[name]["locations"] == ["#1.f0"], name
        assert matrix["objectrace"]["objects"] == ["Shared#1"]
        assert result.violations == []

    def test_sharded_entries_hold_parity(self, corpus):
        for name in ("sharded-tiny", "sharded-sync-replication"):
            result, matrix = self.run(corpus[name])
            for count in (1, 2, 8):
                sharded = matrix[f"paper-sharded-{count}"]
                assert sharded["locations"] == matrix["paper"]["locations"]
                assert sharded["races"] == matrix["paper"]["races"]
            assert result.violations == []

    def test_recorded_matrices_match_fresh_runs(self, corpus):
        for entry in corpus.values():
            result, matrix = self.run(entry)
            assert matrix == entry.verdicts, entry.name

    def test_predicted_not_observed_min(self, corpus):
        result, matrix = self.run(corpus["predicted-not-observed-min"])
        # The recorded schedule orders the unlocked write before the
        # locked read through the lock's release/acquire HB edge, so hb
        # observes nothing; SHB has no such edge (no same-lock
        # write-read communication) and both predictors report, and the
        # lockset conjunct agrees the pair is unprotected.
        assert matrix["hb"]["locations"] == []
        assert "#1.f2" in matrix["shb"]["locations"]
        assert "#1.f2" in matrix["hybrid"]["locations"]
        assert result.violations == []

    def test_lockset_fp_refuted_min(self, corpus):
        result, matrix = self.run(corpus["lockset-fp-refuted-min"])
        # reference-raw flags the init handoff on disjoint locksets; the
        # hybrid's SHB conjunct sees the start edge ordering the pair in
        # every reordering and refutes the report.
        assert "#1.f2" in matrix["reference-raw"]["locations"]
        assert matrix["hybrid"]["locations"] == []
        assert result.violations == []


class TestWitnessReplay:
    """Every predicted-not-observed entry carries an executable proof:
    a recorded decision trace whose exact replay makes the plain HB
    detector observe the predicted race — on both engines."""

    def test_predicted_entries_carry_witnesses(self, corpus):
        predicted = [
            entry for entry in corpus.values()
            if "predicted-not-observed" in entry.classes
        ]
        assert predicted, "no predicted-not-observed entries committed"
        for entry in predicted:
            assert entry.witness is not None, entry.name

    @pytest.mark.parametrize("engine", ["ast", "compiled"])
    def test_witnesses_replay_to_observed_races(self, corpus, engine):
        for entry in corpus.values():
            if entry.witness is None:
                continue
            witness = Witness.from_json(entry.witness)
            assert replay_witness(
                entry.source, witness, engine=engine
            ), (entry.name, engine)

    def test_witness_locations_match_predictions(self, corpus):
        for entry in corpus.values():
            if entry.witness is None:
                continue
            witness = Witness.from_json(entry.witness)
            result, matrix = TestVerdictMatrices().run(entry)
            assert witness.location in matrix["shb"]["locations"], entry.name
            assert witness.location not in matrix["hb"]["locations"], entry.name
