"""The tiering contract, end to end: with ``--tiering on`` the compiled
engine's race reports, report-JSON bytes, counters, and difflab
verdicts are identical to the untired run — and a tiering bug that
breaks the contract is *caught*, not silently shipped."""

import json

import pytest

from repro.detector import (
    RaceDetector,
    canonical_report_order,
    detect_from_log,
    detect_sharded,
)
from repro.detector.postmortem import record_execution
from repro.harness import CONFIG_FULL, run_workload
from repro.instrument import PlannerConfig, plan_instrumentation
from repro.lang import compile_source
from repro.runtime import RandomPolicy, engine_runner
from repro.service.protocol import canonical_json, detection_report
from repro.workloads import ALL_WORKLOADS

SETTLING = """
class Main {
  static def main() {
    var d = new Data();
    d.x = 0;
    var a = new Worker(d); var b = new Worker(d);
    start a; start b; join a; join b;
    var f = new Data();
    f.x = 0;
    var i = 0;
    while (i < 8) { f.bump(); i = i + 1; }
    print d.x; print f.x;
  }
}
class Data { field x; def bump() { this.x = this.x + 1; } }
class Worker {
  field d;
  def init(d) { this.d = d; }
  def run() { this.d.bump(); }
}
"""

RACY = """
class Main {
  static def main() {
    var d = new Data();
    d.x = 0;
    var a = new Worker(d); var b = new Worker(d);
    start a; start b; join a; join b;
    print d.x;
  }
}
class Data { field x; }
class Worker {
  field d;
  def init(d) { this.d = d; }
  def run() { this.d.x = this.d.x + 1; }
}
"""


def _report_bytes(source: str, tiering: str, seed: int = 3) -> str:
    """Canonical report-JSON of one compiled run, CLI-equivalent."""
    resolved = compile_source(source, filename="parity.mj")
    plan = plan_instrumentation(resolved, PlannerConfig())
    detector = RaceDetector(
        resolved=resolved, static_races=plan.static_races
    )
    result = engine_runner("compiled")(
        resolved,
        sink=detector,
        trace_sites=plan.trace_sites,
        policy=RandomPolicy(seed),
        tiering=tiering,
    )
    return canonical_json(
        detection_report(
            detector.reports.reports,
            detector.stats,
            detector.cache.stats if detector.cache else None,
            output=result.output,
        )
    )


class TestReportParity:
    @pytest.mark.parametrize("source", [RACY, SETTLING], ids=["racy", "settling"])
    @pytest.mark.parametrize("seed", [1, 3, 9])
    def test_report_json_byte_identical_across_tiers(self, source, seed):
        off = _report_bytes(source, "off", seed=seed)
        on = _report_bytes(source, "on", seed=seed)
        assert on == off

    @pytest.mark.parametrize("name", ["tsp2", "sor2", "mtrt2"])
    def test_workload_outcomes_identical_across_tiers(self, name):
        spec = ALL_WORKLOADS[name]
        scale = 4 if name != "sor2" else 6
        outcomes = {
            mode: run_workload(
                spec,
                CONFIG_FULL,
                scale=scale,
                policy=RandomPolicy(5),
                engine="compiled",
                tiering=mode,
            )
            for mode in ("off", "on")
        }
        off, on = outcomes["off"], outcomes["on"]
        assert on.output == off.output
        assert on.steps == off.steps
        assert on.races_reported == off.races_reported
        assert on.racy_objects == off.racy_objects
        assert on.events == off.events
        assert on.owned_filtered == off.owned_filtered
        assert on.cache_hits == off.cache_hits
        assert on.trie_nodes == off.trie_nodes
        assert off.tiering is None
        assert on.tiering is not None
        assert on.tiering.sites_tier0 > 0

    def test_settling_run_actually_elides(self):
        resolved = compile_source(SETTLING, filename="settle.mj")
        detector = RaceDetector(resolved=resolved)
        engine_runner("compiled")(
            resolved,
            sink=detector,
            policy=RandomPolicy(3),
            tiering="on",
        )
        counters = detector.tiering
        assert counters.settled
        assert counters.elided_settled > 0
        assert counters.elided_static > 0  # the f-only sites


class TestShardedSettlementParity:
    """Ownership terminal states across shard boundaries: a recorded
    run in which locations transition to SHARED and others settle into
    a sole survivor mid-log must detect identically whether the log is
    replayed serially or sharded (the shard holding the settling
    location sees its full transition history — partitioning is by
    object uid)."""

    @pytest.fixture(scope="class")
    def settling_recording(self):
        resolved = compile_source(SETTLING, filename="settle.mj")
        plan = plan_instrumentation(resolved, PlannerConfig())
        _, log = record_execution(
            resolved,
            trace_sites=plan.trace_sites,
            policy=RandomPolicy(7),
        )
        serial, _ = detect_from_log(log, resolved=resolved)
        return resolved, log, serial

    @pytest.mark.parametrize("shards", [1, 2, 3])
    def test_sharded_matches_serial(self, settling_recording, shards):
        resolved, log, serial = settling_recording
        result = detect_sharded(log, shards, resolved=resolved)
        assert result.reports.reports == canonical_report_order(
            serial.reports.reports
        )
        assert result.stats.accesses == serial.stats.accesses
        assert (
            result.stats.owned_filtered == serial.stats.owned_filtered
        )
        assert result.monitored_locations == serial.monitored_locations

    def test_log_contains_a_mid_run_transition(self, settling_recording):
        # The scenario is only meaningful if ownership actually
        # transitions inside the recorded window.
        _, _, serial = settling_recording
        assert serial.ownership.stats.transitions > 0


class TestDivergenceGate:
    """The difflab cross-tier gate must catch a tiering layer that
    breaks counter parity — here simulated by a fold() that forgets to
    restore the elided accesses."""

    def test_execute_case_passes_clean(self):
        from repro.difflab import ScheduleSpec, execute_case

        execute_case(
            RACY, ScheduleSpec(kind="random", seed=2), engine="compiled", tiering="on"
        )

    def test_broken_fold_raises_tiering_divergence(self, monkeypatch):
        from repro.difflab import ScheduleSpec, TieringDivergence, execute_case
        from repro.runtime.tiering import TieringState

        def lossy_fold(self):
            if self._folded:
                return 0
            self._folded = True
            return 0  # drop every deferred counter

        monkeypatch.setattr(TieringState, "fold", lossy_fold)
        with pytest.raises(TieringDivergence):
            execute_case(
                SETTLING, ScheduleSpec(kind="random", seed=3), engine="compiled", tiering="on"
            )

    def test_run_case_surfaces_divergence_as_case_error(self, monkeypatch):
        from repro.difflab import ScheduleSpec, run_case
        from repro.runtime.tiering import TieringState

        def lossy_fold(self):
            self._folded = True
            return 0

        monkeypatch.setattr(TieringState, "fold", lossy_fold)
        result = run_case(
            SETTLING, ScheduleSpec(kind="random", seed=3), engine="compiled", tiering="on"
        )
        assert result.error is not None
        assert "TieringDivergence" in result.error


class TestCliParity:
    def test_check_report_json_byte_identical(self, tmp_path, capsys):
        from repro.cli import main

        program = tmp_path / "racy.mj"
        program.write_text(RACY)
        reports = {}
        for mode in ("off", "on"):
            main([
                "check", str(program), "--engine", "compiled",
                "--seed", "4", "--tiering", mode, "--report-json",
            ])
            reports[mode] = capsys.readouterr().out
        assert reports["on"] == reports["off"]

    def test_tiering_with_ast_engine_is_a_usage_error(self, tmp_path, capsys):
        from repro.cli import main

        program = tmp_path / "racy.mj"
        program.write_text(RACY)
        code = main([
            "check", str(program), "--engine", "ast", "--tiering", "on",
        ])
        assert code == 2
        assert "requires --engine compiled" in capsys.readouterr().err
