"""End-to-end CLI tests for the predictive axis.

``repro check --predict {shb,hybrid}`` (live and over recorded logs of
both formats) and the ``repro difflab --predict`` hunt that shrinks
predictive finds into reproducers with witness schedules.
"""

import json

import pytest

from repro.cli import main

#: The §2.2 predictive shape: Worker0 publishes under lock0 *after* an
#: unlocked write; Worker1 syncs on lock0 (without reading the guarded
#: field) and then touches x unlocked.  Under round-robin Worker0's
#: critical section completes before Worker1's, so plain HB orders the
#: x accesses through the release→acquire edge — observed races: none.
#: SHB drops that edge (no write-read communication couples the
#: threads) and predicts the x race.
PREDICTIVE = """
class Main {
  static def main() {
    var s = new S();
    var l = new LockObj();
    var w0 = new W0(s, l);
    var w1 = new W1(s, l);
    start w0;
    start w1;
    join w0;
    join w1;
  }
}
class S { field x; field y; }
class LockObj { }
class W0 {
  field s; field l;
  def init(a, b) { this.s = a; this.l = b; }
  def run() {
    this.s.x = 1;
    sync (this.l) { this.s.y = 1; }
  }
}
class W1 {
  field s; field l;
  def init(a, b) { this.s = a; this.l = b; }
  def run() {
    sync (this.l) { this.s.y = 2; }
    this.s.x = 2;
  }
}
"""

SAFE = """
class Main {
  static def main() {
    var s = new S();
    var w = new W(s);
    start w;
    join w;
    var r = s.x;
  }
}
class S { field x; }
class W {
  field s;
  def init(a) { this.s = a; }
  def run() { this.s.x = 1; }
}
"""


@pytest.fixture
def predictive_file(tmp_path):
    path = tmp_path / "predictive.mj"
    path.write_text(PREDICTIVE)
    return path


@pytest.fixture
def safe_file(tmp_path):
    path = tmp_path / "safe.mj"
    path.write_text(SAFE)
    return path


class TestCheckPredict:
    def test_predict_flags_unobserved_race(self, predictive_file, capsys):
        exit_code = main(["check", str(predictive_file), "--predict", "shb"])
        out = capsys.readouterr().out
        # The paper detector reports the lockset race; prediction
        # additionally explains it is real in a reordering but not in
        # this interleaving.
        assert "[shb] predicted race on #1.x" in out
        assert "predicted only — not observed in this interleaving" in out
        assert exit_code == 1

    def test_hybrid_refutes_lock_protected_fp(self, predictive_file, capsys):
        exit_code = main(
            ["check", str(predictive_file), "--predict", "hybrid"]
        )
        out = capsys.readouterr().out
        # Pure SHB also predicts y (same-lock critical sections); the
        # hybrid's lockset conjunct refutes that one.
        assert "[hybrid] predicted race on #1.x" in out
        assert "#1.y" not in out
        assert exit_code == 1

    def test_safe_program_predicts_nothing(self, safe_file, capsys):
        exit_code = main(["check", str(safe_file), "--predict", "hybrid"])
        out = capsys.readouterr().out
        assert "no dataraces detected" in out
        assert "no races predicted in reorderings" in out
        assert exit_code == 0

    def test_predict_exit_code_without_observed_reports(
        self, predictive_file, capsys
    ):
        """Prediction alone forces a nonzero exit even when the
        on-the-fly battery would have been silent: detection-off run
        first to confirm the shape, then predict."""
        # Plain HB-style observation: the paper detector *does* report
        # this lockset race, so exercise the predicted-only exit path
        # through a no-report program instead: a run whose only finding
        # is predictive cannot exist for the paper detector (hybrid ⊆
        # reference-raw ⊆ paper-without-ownership), so assert the
        # composite condition: reports or predictions → exit 1.
        assert main(["check", str(predictive_file), "--predict", "shb"]) == 1
        capsys.readouterr()

    @pytest.mark.parametrize("record_flag,suffix", [
        ("--record", "log.json"),
        ("--record-binary", "log.mjbl"),
    ])
    def test_predict_from_recorded_logs(
        self, predictive_file, tmp_path, capsys, record_flag, suffix
    ):
        log_path = tmp_path / suffix
        assert main(
            ["run", str(predictive_file), record_flag, str(log_path)]
        ) == 0
        capsys.readouterr()
        exit_code = main(
            ["check", str(predictive_file), "--from-log", str(log_path),
             "--predict", "hybrid"]
        )
        out = capsys.readouterr().out
        assert "[hybrid] predicted race on #1.x" in out
        assert exit_code == 1

    def test_unfinalized_binary_log_errors_cleanly(
        self, predictive_file, tmp_path, capsys
    ):
        from repro.runtime import BinaryLogSink

        crashed = tmp_path / "crashed.mjbl"
        sink = BinaryLogSink(crashed)
        sink._file.flush()
        sink._file = None  # crash before close(): provisional header
        exit_code = main(
            ["check", str(predictive_file), "--from-log", str(crashed),
             "--predict", "shb"]
        )
        err = capsys.readouterr().err
        assert exit_code == 3  # corrupt-log exit, distinct from front-end errors
        assert "never finalized" in err
        assert "byte offset 12" in err


class TestDifflabPredictHunt:
    def test_hunt_writes_find_with_witness(self, tmp_path, capsys):
        out_dir = tmp_path / "finds"
        exit_code = main([
            "difflab", "--skip-corpus", "--programs", "12",
            "--schedules", "2", "--predict", "hybrid",
            "--out", str(out_dir),
        ])
        out = capsys.readouterr().out
        assert exit_code == 0, out
        finds = sorted(out_dir.glob("find-*.json"))
        assert finds, out
        classes = set()
        for path in finds:
            payload = json.loads(path.read_text())
            classes.add(payload["class"])
            assert path.with_suffix(".mj").exists()
            assert payload["items"]
            if payload["class"] == "predicted-not-observed":
                assert payload["witness"] is not None
                witness = payload["witness"]
                assert witness["location"] in payload["items"]
                from repro.detector import Witness, replay_witness

                assert replay_witness(
                    path.with_suffix(".mj").read_text(),
                    Witness.from_json(witness),
                )
        assert "lockset-fp-refuted" in classes
        assert "FIND" in out
