"""End-to-end CLI tests for ``repro difflab``.

The acceptance path: a clean corpus run exits 0 and names every
reproduced discrepancy class; a hand-injected detector bug is caught
by the campaign, shrunk to a ≤15-statement reproducer, and written to
the --out directory with a nonzero exit.
"""

import json

import pytest

from repro.cli import main
from repro.difflab import count_statements


class TestCorpusMode:
    def test_corpus_only_run_is_clean(self, capsys):
        exit_code = main(["difflab", "--programs", "0"])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "zero violations" in out
        for klass in (
            "eraser-single-lock-fp",
            "feasible-race-gap",
            "object-granularity-fp",
            "ownership-suppressed",
            "static-elimination-miss",
        ):
            assert klass in out

    def test_small_campaign_is_clean(self, capsys):
        exit_code = main([
            "difflab", "--skip-corpus", "--programs", "2",
            "--schedules", "2",
        ])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "0 violation(s)" in out
        assert "expected" in out  # the battery has teeth


class TestInjection:
    def test_injected_bug_is_caught_and_shrunk(self, capsys, tmp_path):
        out_dir = tmp_path / "violations"
        exit_code = main([
            "difflab", "--skip-corpus", "--programs", "1",
            "--schedules", "1", "--inject", "read-write-blind",
            "--out", str(out_dir),
        ])
        out = capsys.readouterr().out
        assert exit_code == 1
        assert "definition1-miss" in out
        programs = list(out_dir.glob("*.mj"))
        assert programs, "no shrunk reproducer written"
        for program in programs:
            # The acceptance bound: automatic shrinking lands at a
            # human-readable counterexample.
            assert count_statements(program.read_text()) <= 15
            meta = json.loads(program.with_suffix(".json").read_text())
            assert "definition1-miss" in meta["classes"]
            assert meta["fingerprint"] == program.stem
            assert "statements" in meta["shrink"]

    def test_drop_tbottom_meet_caught_on_corpus_trigger(self):
        # The t⊥ meet is unreachable under join pseudo-locks (see
        # docs/difflab.md), so this injection carries its own
        # pseudolock-free battery config; the committed tbottom-merge
        # entry is its trigger program.
        from repro.difflab import case_classes, load_corpus, run_case
        from repro.difflab.inject import INJECTIONS

        injection = INJECTIONS["drop-tbottom-meet"]
        entry = {e.name: e for e in load_corpus()}["tbottom-merge"]
        broken = run_case(
            entry.source, entry.schedule,
            detector_factory=injection.factory, config=injection.config,
        )
        assert broken.error is None
        assert "definition1-miss" in case_classes(broken)
        # Sanity: the correct detector under the same config is clean.
        correct = run_case(entry.source, entry.schedule,
                           config=injection.config)
        assert correct.error is None
        assert case_classes(correct) == frozenset()

    def test_unknown_injection_rejected(self, capsys):
        assert main(["difflab", "--inject", "no-such-bug"]) == 2
        assert "unknown injection" in capsys.readouterr().err

    def test_list_injections(self, capsys):
        assert main(["difflab", "--list-injections"]) == 0
        out = capsys.readouterr().out
        for name in ("read-write-blind", "drop-tbottom-meet",
                     "drop-join-pseudolocks"):
            assert name in out


class TestBudgetParsing:
    def test_bad_budget_is_a_clean_error(self, capsys):
        exit_code = main(["difflab", "--skip-corpus", "--budget", "soon"])
        assert exit_code == 2
        assert "budget" in capsys.readouterr().err

    @pytest.mark.parametrize("text,seconds", [
        ("120s", 120.0), ("2m", 120.0), ("90", 90.0), ("500ms", 0.5),
        ("1h", 3600.0),
    ])
    def test_parse_budget(self, text, seconds):
        from repro.cli import _parse_budget

        assert _parse_budget(text) == seconds

    def test_tiny_budget_terminates(self, capsys):
        exit_code = main([
            "difflab", "--skip-corpus", "--budget", "500ms",
            "--schedules", "1",
        ])
        assert exit_code == 0
        assert "violation(s)" in capsys.readouterr().out
