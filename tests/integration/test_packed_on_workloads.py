"""Packed-trie equivalence on the real benchmark workloads (not just
synthetic streams): identical reports, strictly fewer trie nodes."""

import pytest

from repro.detector import DetectorConfig, RaceDetector
from repro.instrument import plan_instrumentation
from repro.lang import compile_source
from repro.runtime import run_program
from repro.workloads import BENCHMARKS

SCALES = {"mtrt2": 4, "tsp2": 5, "sor2": 4, "elevator2": 6, "hedc2": 3}


def run_detector(source, config):
    resolved = compile_source(source)
    plan = plan_instrumentation(resolved)
    detector = RaceDetector(config=config, resolved=resolved)
    run_program(resolved, sink=detector, trace_sites=plan.trace_sites)
    return detector


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_packed_equivalent_on_benchmark(name):
    source = BENCHMARKS[name].build(SCALES[name])
    plain = run_detector(source, DetectorConfig())
    packed = run_detector(source, DetectorConfig(packed_tries=True))

    assert packed.reports.racy_objects == plain.reports.racy_objects
    assert packed.reports.racy_locations == plain.reports.racy_locations
    assert packed.stats.detector_processed == plain.stats.detector_processed
    assert (
        packed.stats.detector_weaker_filtered
        == plain.stats.detector_weaker_filtered
    )
    assert packed.monitored_locations == plain.monitored_locations


@pytest.mark.parametrize("name", ["tsp2", "mtrt2"])
def test_packing_saves_nodes_on_benchmark(name):
    source = BENCHMARKS[name].build(SCALES[name])
    plain = run_detector(source, DetectorConfig())
    packed = run_detector(source, DetectorConfig(packed_tries=True))
    if plain.monitored_locations > 5:
        assert packed.total_trie_nodes() < plain.total_trie_nodes()
