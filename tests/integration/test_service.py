"""Lifecycle tests for the ``repro serve`` daemon, over real HTTP.

Each fixture starts the daemon as a subprocess on an OS-assigned port
(the banner line prints it), drives it with ``http.client``, and tears
it down with SIGTERM — the same drain path production uses.  Covered
here, per the service contract (docs/service.md):

* service reports byte-identical to ``repro check --report-json``,
  for source submissions and for recorded MJBL logs;
* compile-cache hits return byte-identical reports to cold runs;
* queue-full submissions answer 429 + ``Retry-After``;
* a job overrunning its wall-clock budget is killed, reported as
  ``timeout``, and the pool keeps serving afterwards;
* malformed uploads fail at submit time with the log-error taxonomy
  mapped to 404/422/400 (422 bodies carry the byte offset);
* NDJSON streaming emits one verdict per detector axis;
* SIGTERM drains in-flight jobs before exit.
"""

import http.client
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.cli import main

SRC_DIR = str(Path(repro.__file__).resolve().parent.parent)

RACY = """
class Main {
  static def main() {
    var d = new Data();
    d.x = 0;
    var a = new Worker(d); var b = new Worker(d);
    start a; start b; join a; join b;
    print d.x;
  }
}
class Data { field x; }
class Worker {
  field d;
  def init(d) { this.d = d; }
  def run() { this.d.x = this.d.x + 1; }
}
"""

SLOW = """
class Main {
  static def main() {
    var i = 0;
    while (i < 5000000) { i = i + 1; }
    print i;
  }
}
"""

MEDIUM = SLOW.replace("5000000", "300000")

TERMINAL = ("done", "error", "timeout")


class Daemon:
    def __init__(self, *extra_args):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             *extra_args],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        banner = self.proc.stdout.readline()
        match = re.search(r":(\d+) \(", banner)
        assert match, f"no port in banner: {banner!r}"
        self.port = int(match.group(1))

    def request(self, method, path, body=b"", timeout=60):
        conn = http.client.HTTPConnection(
            "127.0.0.1", self.port, timeout=timeout
        )
        try:
            conn.request(method, path, body=body)
            response = conn.getresponse()
            return (
                response.status,
                dict(response.getheaders()),
                response.read(),
            )
        finally:
            conn.close()

    def submit_json(self, path, body, expect=None):
        status, headers, data = self.request("POST", path, body)
        if expect is not None:
            assert status == expect, (status, data)
        return status, headers, json.loads(data)

    def poll_until_terminal(self, job_id, budget=30.0):
        deadline = time.monotonic() + budget
        while time.monotonic() < deadline:
            _, _, data = self.request("GET", f"/jobs/{job_id}")
            record = json.loads(data)
            if record["job"]["state"] in TERMINAL:
                return record
            time.sleep(0.05)
        raise AssertionError(f"job {job_id} never finished")

    def terminate(self, budget=30.0):
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
        try:
            return self.proc.wait(timeout=budget)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait(timeout=10)
            raise

    def kill(self):
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=10)


@pytest.fixture(scope="module")
def daemon():
    """One shared single-worker daemon for the functional tests (a
    single worker makes compile-cache behavior deterministic)."""
    instance = Daemon("--workers", "1")
    yield instance
    instance.kill()


def canonical(payload) -> str:
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=False
    )


def cli_report_json(capsys, *args) -> str:
    main(["check", *args, "--report-json"])
    return capsys.readouterr().out.strip()


class TestEndpoints:
    def test_healthz(self, daemon):
        status, _, payload = daemon.submit_json("/healthz", b"")
        assert (status, payload) == (200, {"ok": True, "draining": False})

    def test_unknown_route_404(self, daemon):
        status, _, data = daemon.request("GET", "/nope")
        assert status == 404
        assert json.loads(data)["taxonomy"] == "not-found"

    def test_unknown_job_404(self, daemon):
        status, _, data = daemon.request("GET", "/jobs/deadbeef")
        assert status == 404

    def test_submit_requires_post(self, daemon):
        status, _, _ = daemon.request("GET", "/submit")
        assert status == 405

    def test_unknown_engine_400(self, daemon):
        status, _, data = daemon.request(
            "POST", "/submit?engine=jit", RACY.encode()
        )
        assert status == 400
        assert "jit" in json.loads(data)["error"]

    def test_bad_seed_400(self, daemon):
        status, _, _ = daemon.request(
            "POST", "/submit?seed=banana", RACY.encode()
        )
        assert status == 400


class TestProgramJobs:
    def test_report_byte_identical_to_cli(self, daemon, tmp_path, capsys):
        program = tmp_path / "racy.mj"
        program.write_text(RACY)
        _, _, record = daemon.submit_json(
            f"/submit?wait=1&seed=1&filename={program}",
            RACY.encode(),
            expect=200,
        )
        assert record["job"]["state"] == "done"
        expected = cli_report_json(capsys, str(program), "--seed", "1")
        assert canonical(record["result"]["report"]) == expected

    def test_cache_hit_report_byte_identical_to_cold_run(self, daemon):
        body = RACY.encode()
        _, _, cold = daemon.submit_json(
            "/submit?wait=1&seed=7&filename=cached.mj", body, expect=200
        )
        _, _, warm = daemon.submit_json(
            "/submit?wait=1&seed=7&filename=cached.mj", body, expect=200
        )
        assert cold["result"]["cache"]["status"] == "miss"
        assert warm["result"]["cache"]["status"] == "hit"
        assert (
            warm["result"]["cache"]["fingerprint"]
            == cold["result"]["cache"]["fingerprint"]
        )
        assert canonical(warm["result"]["report"]) == canonical(
            cold["result"]["report"]
        )

    def test_async_submit_then_poll(self, daemon):
        status, _, accepted = daemon.submit_json(
            "/submit", RACY.encode(), expect=202
        )
        record = daemon.poll_until_terminal(accepted["job"]["id"])
        assert record["job"]["state"] == "done"
        assert record["result"]["report"]["verdict"] == "racy"
        assert [axis["axis"] for axis in record["axes"]] == [
            "paper", "hb", "eraser",
        ]

    def test_compile_error_is_422_job_error(self, daemon):
        status, _, record = daemon.submit_json(
            "/submit?wait=1", b"class Main { oops }"
        )
        assert status == 422
        assert record["job"]["state"] == "error"
        assert record["error"]["taxonomy"] == "compile-error"

    def test_stream_emits_one_line_per_axis(self, daemon):
        conn = http.client.HTTPConnection(
            "127.0.0.1", daemon.port, timeout=60
        )
        try:
            conn.request(
                "POST", "/submit?stream=1&seed=2", RACY.encode()
            )
            response = conn.getresponse()
            assert response.status == 200
            assert (
                response.getheader("Content-Type")
                == "application/x-ndjson"
            )
            lines = [
                json.loads(line)
                for line in response.read().decode().splitlines()
            ]
        finally:
            conn.close()
        assert lines[0]["job"]["state"] in ("queued", "running")
        assert [line["axis"] for line in lines[1:-1]] == [
            "paper", "hb", "eraser",
        ]
        assert lines[-1]["job"]["state"] == "done"

    def test_stats_counts_cache_and_jobs(self, daemon):
        _, _, stats = daemon.submit_json("/stats", b"")
        assert stats["workers"] == 1
        assert stats["jobs"]["done"] >= 1
        cache = stats["compile_cache"]
        assert cache["hits"] + cache["misses"] == pytest.approx(
            cache["hits"] + cache["misses"]
        )


SETTLING = """
class Main {
  static def main() {
    var d = new Data();
    d.x = 0;
    var a = new Worker(d); var b = new Worker(d);
    start a; start b; join a; join b;
    var f = new Data();
    f.x = 0;
    var i = 0;
    while (i < 8) { f.bump(); i = i + 1; }
    print d.x; print f.x;
  }
}
class Data { field x; def bump() { this.x = this.x + 1; } }
class Worker {
  field d;
  def init(d) { this.d = d; }
  def run() { this.d.bump(); }
}
"""


class TestTieredJobs:
    def test_tiered_report_byte_identical_and_counters_surface(self, daemon):
        body = SETTLING.encode()
        _, _, plain = daemon.submit_json(
            "/submit?wait=1&seed=3&engine=compiled&filename=tiered.mj",
            body,
            expect=200,
        )
        _, _, tiered = daemon.submit_json(
            "/submit?wait=1&seed=3&engine=compiled&tiering=on"
            "&filename=tiered.mj",
            body,
            expect=200,
        )
        assert canonical(tiered["result"]["report"]) == canonical(
            plain["result"]["report"]
        )
        assert plain["result"]["tiering"] is None
        counters = tiered["result"]["tiering"]
        assert counters["sites_tier0"] > 0
        assert counters["settled"] is True
        assert counters["elided_total"] == (
            counters["elided_static"] + counters["elided_settled"]
        )
        # The tiered run still feeds every replay axis.
        assert [axis["axis"] for axis in tiered["axes"]] == [
            "paper", "hb", "eraser",
        ]

    def test_stats_aggregate_tiering_totals(self, daemon):
        _, _, stats = daemon.submit_json("/stats", b"")
        totals = stats["tiering"]
        assert totals["tiered_jobs"] >= 1
        assert totals["elided_total"] >= 1
        assert stats["compile_cache"]["plan_fingerprint"]

    def test_unknown_tiering_mode_400(self, daemon):
        status, _, data = daemon.request(
            "POST", "/submit?tiering=sideways", RACY.encode()
        )
        assert status == 400
        assert "sideways" in json.loads(data)["error"]


class TestKeepAlive:
    def test_connection_is_reused_across_requests(self, daemon):
        conn = http.client.HTTPConnection(
            "127.0.0.1", daemon.port, timeout=60
        )
        try:
            sock = None
            for _ in range(3):
                conn.request("GET", "/healthz")
                response = conn.getresponse()
                assert response.status == 200
                assert response.getheader("Connection") == "keep-alive"
                assert json.loads(response.read())["ok"] is True
                if sock is None:
                    sock = conn.sock
                else:
                    # http.client only keeps the socket if the server
                    # honored keep-alive — same object means reuse.
                    assert conn.sock is sock
        finally:
            conn.close()

    def test_submissions_work_over_one_connection(self, daemon):
        conn = http.client.HTTPConnection(
            "127.0.0.1", daemon.port, timeout=60
        )
        try:
            for seed in (11, 12):
                conn.request(
                    "POST", f"/submit?wait=1&seed={seed}", RACY.encode()
                )
                response = conn.getresponse()
                assert response.status == 200
                record = json.loads(response.read())
                assert record["job"]["state"] == "done"
        finally:
            conn.close()

    def test_connection_close_is_honored(self, daemon):
        import socket

        with socket.create_connection(
            ("127.0.0.1", daemon.port), timeout=30
        ) as sock:
            sock.sendall(
                b"GET /healthz HTTP/1.1\r\n"
                b"Host: x\r\nConnection: close\r\n\r\n"
            )
            data = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break  # server closed, as requested
                data = data + chunk
        head = data.split(b"\r\n\r\n", 1)[0].decode()
        assert "Connection: close" in head

    def test_http_10_defaults_to_close(self, daemon):
        import socket

        with socket.create_connection(
            ("127.0.0.1", daemon.port), timeout=30
        ) as sock:
            sock.sendall(b"GET /healthz HTTP/1.0\r\nHost: x\r\n\r\n")
            data = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                data = data + chunk
        head = data.split(b"\r\n\r\n", 1)[0].decode()
        assert "Connection: close" in head


class TestLogJobs:
    @pytest.fixture(scope="class")
    def binary_log(self, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("logs")
        program = tmp_path / "racy.mj"
        program.write_text(RACY)
        log_path = tmp_path / "racy.mjbl"
        assert main([
            "run", str(program), "--record-binary", str(log_path),
        ]) == 0
        return log_path

    def test_mjbl_report_byte_identical_to_cli(
        self, daemon, binary_log, capsys
    ):
        _, _, record = daemon.submit_json(
            "/submit?wait=1", binary_log.read_bytes(), expect=200
        )
        assert record["job"]["kind"] == "binary-log"
        expected = cli_report_json(capsys, "--from-log", str(binary_log))
        assert canonical(record["result"]["report"]) == expected

    def test_tuple_log_round_trips(self, daemon, binary_log):
        from repro.runtime.binlog import read_binary_log
        from repro.runtime.events import dump_log

        payload = json.dumps(dump_log(read_binary_log(binary_log)))
        _, _, record = daemon.submit_json(
            "/submit?wait=1", payload.encode(), expect=200
        )
        assert record["job"]["kind"] == "tuple-log"
        assert record["result"]["report"]["verdict"] == "racy"

    def test_truncated_mjbl_is_422_with_offset(self, daemon, binary_log):
        status, _, data = daemon.request(
            "POST", "/submit", binary_log.read_bytes()[:40]
        )
        payload = json.loads(data)
        assert status == 422
        assert payload["taxonomy"] == "corrupt"
        assert payload["offset"] == 40

    def test_compressed_mjbl_report_matches_v1(
        self, daemon, binary_log, tmp_path
    ):
        from repro.runtime.binlog import read_binary_log, write_binary_log

        v2_path = tmp_path / "racy_v2.mjbl"
        write_binary_log(read_binary_log(binary_log), v2_path, compress=6)
        _, _, v1_record = daemon.submit_json(
            "/submit?wait=1", binary_log.read_bytes(), expect=200
        )
        _, _, v2_record = daemon.submit_json(
            "/submit?wait=1", v2_path.read_bytes(), expect=200
        )
        assert v2_record["job"]["kind"] == "binary-log"
        assert canonical(v2_record["result"]["report"]) == canonical(
            v1_record["result"]["report"]
        )

    def test_garbled_compressed_block_is_422_with_offset(
        self, daemon, tmp_path
    ):
        from repro.runtime.binlog import BinaryLogReader
        from repro.runtime.synthlog import synthesize_file

        path = tmp_path / "synth_v2.mjbl"
        synthesize_file(path, 10_000, compress=6, records_per_block=512)
        with BinaryLogReader(path) as reader:
            block_offset = next(
                b.offset for b in reader.blocks if b.compressed
            )
        data = bytearray(path.read_bytes())
        data[block_offset] = 0xFF  # break the zlib stream header
        status, _, body = daemon.request("POST", "/submit", bytes(data))
        payload = json.loads(body)
        assert status == 422
        assert payload["taxonomy"] == "corrupt"
        assert payload["offset"] == block_offset

    def test_future_mjbl_version_is_400(self, daemon, binary_log):
        import struct

        from repro.runtime.binlog import BINLOG_VERSION_COMPRESSED

        data = bytearray(binary_log.read_bytes())
        struct.pack_into("<I", data, 4, BINLOG_VERSION_COMPRESSED + 1)
        status, _, body = daemon.request("POST", "/submit", bytes(data))
        assert status == 400
        assert json.loads(body)["taxonomy"] == "schema-mismatch"

    def test_schema_skew_is_400(self, daemon):
        skewed = json.dumps({"version": 999, "entries": []})
        status, _, data = daemon.request("POST", "/submit", skewed.encode())
        assert status == 400
        assert json.loads(data)["taxonomy"] == "schema-mismatch"

    def test_damaged_json_log_is_422(self, daemon):
        status, _, data = daemon.request(
            "POST", "/submit", b'{"version": 3, "entries": [['
        )
        assert status == 422
        assert json.loads(data)["taxonomy"] == "corrupt"


class TestBackpressure:
    def test_queue_full_answers_429_with_retry_after(self):
        daemon = Daemon(
            "--workers", "1", "--queue-depth", "1", "--timeout", "60"
        )
        try:
            daemon.submit_json("/submit", SLOW.encode(), expect=202)
            # Give the dispatcher a beat to hand the slow job to the
            # worker, freeing the queue slot for exactly one more.
            time.sleep(0.3)
            daemon.submit_json("/submit", RACY.encode(), expect=202)
            status, headers, data = daemon.request(
                "POST", "/submit", RACY.encode()
            )
            assert status == 429
            assert headers.get("Retry-After") == "1"
            assert json.loads(data)["taxonomy"] == "backpressure"
        finally:
            daemon.kill()


class TestTimeouts:
    def test_overrunning_job_is_killed_and_pool_recovers(self):
        daemon = Daemon("--workers", "1", "--timeout", "1.0")
        try:
            _, _, accepted = daemon.submit_json(
                "/submit", SLOW.encode(), expect=202
            )
            record = daemon.poll_until_terminal(accepted["job"]["id"])
            assert record["job"]["state"] == "timeout"
            assert record["error"]["taxonomy"] == "timeout"
            # The worker was killed and respawned: the pool still
            # serves new jobs afterwards.
            _, _, after = daemon.submit_json(
                "/submit?wait=1", RACY.encode(), expect=200
            )
            assert after["job"]["state"] == "done"
            _, _, stats = daemon.submit_json("/stats", b"")
            assert stats["jobs"]["timeout"] == 1
        finally:
            daemon.kill()


class TestGracefulDrain:
    def test_sigterm_finishes_in_flight_jobs(self):
        daemon = Daemon("--workers", "1")
        outcome = {}

        def waiter():
            outcome["response"] = daemon.submit_json(
                "/submit?wait=1", MEDIUM.encode()
            )

        thread = threading.Thread(target=waiter)
        try:
            thread.start()
            time.sleep(0.3)  # let the submission land before the signal
            exit_code = daemon.terminate()
            thread.join(timeout=30)
            assert not thread.is_alive()
            assert exit_code == 0
            status, _, record = outcome["response"]
            assert status == 200
            assert record["job"]["state"] == "done"
            assert record["result"]["report"]["output"] == ["300000"]
        finally:
            daemon.kill()
            thread.join(timeout=5)

    def test_draining_daemon_rejects_new_submissions(self):
        daemon = Daemon("--workers", "1")
        try:
            daemon.submit_json("/submit", SLOW.encode(), expect=202)
            time.sleep(0.2)
            daemon.proc.send_signal(signal.SIGTERM)
            time.sleep(0.2)
            # The listener socket is closed during drain; either the
            # connection is refused outright or (if raced) answered 503.
            try:
                status, _, _ = daemon.request(
                    "POST", "/submit", RACY.encode(), timeout=5
                )
            except (ConnectionError, OSError):
                return
            assert status == 503
        finally:
            daemon.kill()
