"""Tests for schedule exploration (dynamic coverage widening)."""

from repro.harness import explore_schedules


SCHEDULE_DEPENDENT = """
class Main {
  static def main() {
    var s = new Shared();
    s.flag = 0;
    s.hot = 0;
    var a = new Setter(s);
    var b = new Conditional(s);
    start a; start b; join a; join b;
  }
}
class Shared { field flag; field hot; }
class Setter {
  field s;
  def init(s) { this.s = s; }
  def run() {
    var i = 0;
    while (i < 5) { i = i + 1; }   // Delay under some schedules.
    this.s.flag = 1;
  }
}
class Conditional {
  field s;
  def init(s) { this.s = s; }
  def run() {
    // The racy write to `hot` only executes when the setter already
    // ran: whether the race is *observable* depends on the schedule.
    if (this.s.flag == 1) {
      this.s.hot = this.s.hot + 1;
      this.s.hot = this.s.hot + 1;
    }
    this.s.flag = 2;
  }
}
"""


class TestExploration:
    def test_union_over_seeds(self, racy_two_writer_source):
        result = explore_schedules(racy_two_writer_source, seeds=range(5))
        assert any(label.startswith("Shared#") for label in result.racy_objects)
        assert result.per_seed.keys() == set(range(5))

    def test_first_seen_recorded(self, racy_two_writer_source):
        result = explore_schedules(racy_two_writer_source, seeds=range(3))
        for label in result.racy_objects:
            assert result.first_seen[label] in range(3)

    def test_stable_objects_on_always_racy_program(self, racy_two_writer_source):
        result = explore_schedules(racy_two_writer_source, seeds=range(5))
        assert result.stable_objects  # Reported under every schedule.

    def test_clean_program_stays_clean(self, safe_two_writer_source):
        result = explore_schedules(safe_two_writer_source, seeds=range(6))
        assert not result.racy_objects

    def test_schedule_dependent_race_found_by_exploration(self):
        result = explore_schedules(SCHEDULE_DEPENDENT, seeds=range(12))
        # The `flag` race is structural (reported everywhere); the
        # `hot` race needs a schedule where the setter wins.
        fields_seen = result.racy_objects
        assert fields_seen  # At least the flag race.
        # Exploration classifies the findings:
        assert result.stable_objects | result.schedule_dependent_objects == (
            result.racy_objects
        )
