"""Dining philosophers through both deadlock analyses.

The static/dynamic precision story in one workload: all forks come
from a single allocation site, so the static analysis cannot tell the
naive fork order from the globally-ordered fix (it reports the
conflated self-cycle for both — conservative).  The dynamic lock-order
graph sees concrete fork identities and separates them exactly.
"""

import pytest

from repro.analysis import analyze_static_deadlocks
from repro.detector import DeadlockDetector, RaceDetector
from repro.lang import compile_source
from repro.runtime import MulticastSink, RandomPolicy, run_program
from repro.workloads import ALL_WORKLOADS, philosophers


def run_with_detectors(source, policy=None):
    resolved = compile_source(source)
    deadlocks = DeadlockDetector()
    races = RaceDetector(resolved=resolved)
    result = run_program(
        resolved, sink=MulticastSink([deadlocks, races]), policy=policy
    )
    return result, deadlocks, races


class TestNaiveVariant:
    def test_completes_yet_reports_potential_cycle(self):
        result, deadlocks, races = run_with_detectors(philosophers.source(3))
        assert result.output == ["meals=6"]  # The run itself succeeded.
        assert len(deadlocks.reports) >= 1

    def test_no_dataraces(self):
        _, _, races = run_with_detectors(philosophers.source(3))
        assert races.reports.object_count == 0

    def test_static_analysis_reports(self):
        reports = analyze_static_deadlocks(
            compile_source(philosophers.source(3))
        )
        assert len(reports) >= 1

    def test_cycle_detected_across_sizes(self):
        for n in (2, 3, 4):
            _, deadlocks, _ = run_with_detectors(philosophers.source(n))
            assert deadlocks.reports, f"n={n}"


class TestOrderedVariant:
    def test_dynamic_analysis_is_silent(self):
        _, deadlocks, _ = run_with_detectors(
            philosophers.source(3, ordered=True)
        )
        assert not deadlocks.reports

    def test_dynamic_silent_across_seeds(self):
        for seed in range(5):
            _, deadlocks, _ = run_with_detectors(
                philosophers.source(3, ordered=True),
                policy=RandomPolicy(seed),
            )
            assert not deadlocks.reports, f"seed {seed}"

    def test_static_analysis_is_conservative_here(self):
        """One allocation site for every fork: the static abstraction
        cannot express the index ordering, so it (soundly) still
        reports — the precision gap the dynamic analysis closes."""
        reports = analyze_static_deadlocks(
            compile_source(philosophers.source(3, ordered=True))
        )
        assert len(reports) >= 1


class TestSpecs:
    def test_registered(self):
        assert "philosophers" in ALL_WORKLOADS
        assert "philosophers-ordered" in ALL_WORKLOADS

    def test_thread_counts(self):
        result, _, _ = run_with_detectors(philosophers.source(3))
        assert result.threads_created == 4
