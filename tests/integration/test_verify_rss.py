"""CRC verification must stream, not materialize.

``BinaryLogReader.verify()`` walks the record region as memoryview
chunks fed to ``zlib.crc32``.  The regression this pins: an
implementation that slices the mmap into one ``bytes`` object doubles
the verification footprint (mapped pages *plus* a file-sized copy),
which at the 100M-event tier is gigabytes.  The child process verifies
a 1M-event file and reports its peak RSS growth; the budget allows the
mapped pages themselves plus slack, not a second copy.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.runtime.synthlog import synthesize_file

ROOT = Path(__file__).resolve().parents[2]

_CHILD = """
import json, resource, sys
from repro.runtime.binlog import BinaryLogReader

path = sys.argv[1]
before = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
with BinaryLogReader(path) as reader:
    reader.verify()
    records = reader.record_count
after = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
print(json.dumps({"before_kb": before, "after_kb": after, "records": records}))
"""


@pytest.fixture(scope="module")
def million_event_log(tmp_path_factory):
    path = tmp_path_factory.mktemp("rss") / "million.mjbl"
    synthesize_file(path, 1_000_000)
    return path


def test_verify_rss_stays_within_mapped_pages(million_event_log):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    result = subprocess.run(
        [sys.executable, "-c", _CHILD, str(million_event_log)],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    report = json.loads(result.stdout)
    assert report["records"] == 1_000_000
    grown_kb = report["after_kb"] - report["before_kb"]
    file_kb = million_event_log.stat().st_size // 1024
    # The CRC pass touches every mapped page once (that is the floor for
    # reading the file) plus bounded chunk scratch.  A materializing
    # implementation adds another file-sized allocation on top and blows
    # this budget.
    assert grown_kb <= file_kb + 8 * 1024, (
        f"verify() grew RSS by {grown_kb} KB on a {file_kb} KB file — "
        f"is the record region being materialized?"
    )
