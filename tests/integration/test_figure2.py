"""Integration tests reproducing Figure 2's example (Sections 2.1–2.2)."""

import pytest

from repro.baselines import HappensBeforeDetector
from repro.lang import compile_source
from repro.runtime import RoundRobinPolicy, run_program
from repro.workloads import figure2

from ..conftest import detect, detect_unoptimized


class TestScenarioA:
    """a, b, d, x alias; all locks distinct."""

    def test_race_on_field_f_reported(self):
        det = detect(figure2.source(shared_lock=False))
        assert det.reports.object_count == 1
        assert all(r.field == "f" for r in det.reports.reports)

    def test_no_race_on_field_g(self):
        det = detect(figure2.source(shared_lock=False))
        assert ("Data#1", "g") not in {
            (r.object_label, r.field) for r in det.reports.reports
        }

    def test_t01_protected_by_start_ordering(self):
        """main's x.f write (T01) precedes the starts; the ownership
        model must keep it out of every report."""
        det = detect(figure2.source(shared_lock=False))
        descriptors = [r.site_descriptor for r in det.reports.reports]
        assert all("Main.main" not in d for d in descriptors)

    def test_racing_sites_are_in_foo_and_bar(self):
        det = detect_unoptimized(figure2.source(shared_lock=False))
        methods = {r.site_descriptor for r in det.reports.reports}
        assert any("ChildTwo.bar" in m or "ChildOne.foo" in m for m in methods)

    def test_detected_across_seeds(self):
        for seed in range(8):
            det = detect(figure2.source(shared_lock=False), seed=seed)
            assert det.reports.object_count == 1, f"seed {seed}"


class TestScenarioB:
    """p and q alias: the feasible-race scenario of Section 2.2."""

    def test_lockset_detector_still_reports(self):
        det = detect(figure2.source(shared_lock=True))
        assert det.reports.object_count == 1

    def test_happens_before_detector_misses_when_t1_locks_first(self):
        """With round-robin scheduling T1 acquires the shared lock
        before T2, creating the happened-before edge of Section 2.2:
        the HB baseline reports nothing while ours reports the feasible
        race."""
        resolved = compile_source(figure2.source(shared_lock=True))
        hb = HappensBeforeDetector()
        run_program(resolved, sink=hb, policy=RoundRobinPolicy(quantum=100))
        racy_fields = {loc.field for loc in hb.racy_locations}
        assert "f" not in racy_fields

    def test_detected_across_seeds_shared_lock(self):
        for seed in range(8):
            det = detect(figure2.source(shared_lock=True), seed=seed)
            assert det.reports.object_count >= 1, f"seed {seed}"


class TestProgramBehaviour:
    def test_program_terminates_cleanly(self):
        resolved = compile_source(figure2.source())
        result = run_program(resolved)
        assert result.threads_created == 3

    def test_spec_metadata(self):
        assert figure2.SPEC.threads == 3
        assert figure2.SPEC_SHARED_LOCK.expected_full_objects == 1
