"""Property tests for the predictive detectors.

Two layers, mirroring the battery's soundness story:

* **Stream-level theorems** (hypothesis event streams, no interpreter):
  ``hb ⊆ shb`` (dropping the lock edge only removes order, so
  prediction only adds reports), ``hybrid ⊆ shb`` (the conjunct only
  filters), and ``hybrid ⊆ reference-raw`` (every hybrid report is a
  disjoint-lockset pair the FullRace enumeration also admits).

* **Whole-program checks** (fuzzed MJ programs through both engines,
  including the ``sync_vocab``/``handoff_bias`` vocabularies): the same
  inclusions on real recorded traces, plus the MJBL round-trip — the
  predictors must report identically whether the log arrives as
  in-memory tuples, a JSON file, a mapped binary log, or per-shard
  streams decoded lazily by the sharded binary reader.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import HappensBeforeDetector
from repro.detector import (
    DetectorConfig,
    ReferenceDetector,
    partition_log,
    predict_races,
)
from repro.lang import compile_source
from repro.lang.ast import AccessKind
from repro.runtime import (
    RandomPolicy,
    RecordingSink,
    engine_runner,
    replay_entries,
)
from repro.runtime.binlog import BinaryLogReader, write_binary_log
from repro.runtime.events import AccessEvent, MemoryLocation, ObjectKind, dump_log
from repro.workloads.fuzz import generate_program

N_THREADS = 3
N_LOCATIONS = 3
N_LOCKS = 3

step = st.one_of(
    st.tuples(
        st.just("access"),
        st.integers(0, N_LOCATIONS - 1),
        st.sampled_from([AccessKind.READ, AccessKind.WRITE]),
    ),
    st.tuples(st.just("enter"), st.integers(100, 100 + N_LOCKS - 1)),
    st.tuples(st.just("exit")),
)

streams = st.lists(
    st.tuples(st.integers(0, N_THREADS - 1), step), max_size=60
)


def materialize_exclusive(raw):
    """Well-formed, mutually-exclusive event sequence (block-structured
    locking, an enter is dropped while another thread holds the lock) —
    the streams a real monitor-based execution can produce, which is
    the domain of every happens-before theorem."""
    stacks = {t: [] for t in range(N_THREADS)}
    holder: dict = {}
    events = []
    for thread, action in raw:
        if action[0] == "access":
            _, loc, kind = action
            events.append(("access", thread, loc, kind))
        elif action[0] == "enter":
            _, lock = action
            if lock in stacks[thread] or holder.get(lock) is not None:
                continue
            holder[lock] = thread
            stacks[thread].append(lock)
            events.append(("enter", thread, lock))
        else:
            if stacks[thread]:
                lock = stacks[thread].pop()
                holder.pop(lock, None)
                events.append(("exit", thread, lock))
    for thread, stack in stacks.items():
        while stack:
            lock = stack.pop()
            holder.pop(lock, None)
            events.append(("exit", thread, lock))
    return events


def feed(sink, events):
    """Deliver a materialized stream; worker threads are properly
    started from thread 0 first so join pseudo-locks and start edges
    exist (matching what the runtime always emits)."""
    for child in range(1, N_THREADS):
        sink.on_thread_start(0, child)
    for event in events:
        if event[0] == "access":
            _, thread, loc, kind = event
            sink.on_access(
                AccessEvent(
                    location=MemoryLocation(loc, "f"),
                    thread_id=thread,
                    kind=kind,
                    site_id=0,
                    object_kind=ObjectKind.INSTANCE,
                    object_label=f"Obj#{loc}",
                )
            )
        elif event[0] == "enter":
            sink.on_monitor_enter(event[1], event[2], reentrant=False)
        else:
            sink.on_monitor_exit(event[1], event[2], reentrant=False)


def locations(detector) -> set:
    return {str(location) for location in detector.racy_locations}


class TestStreamTheorems:
    @settings(max_examples=250, deadline=None)
    @given(streams)
    def test_hb_subset_of_shb(self, raw):
        """Prediction only adds reports: every HB-observed race is
        SHB-predicted (the predictive-superset-break violation class
        guards exactly this at the battery level)."""
        from repro.detector import SHBPredictor

        events = materialize_exclusive(raw)
        hb, shb = HappensBeforeDetector(), SHBPredictor()
        feed(hb, events)
        feed(shb, events)
        assert locations(hb) <= locations(shb)

    @settings(max_examples=250, deadline=None)
    @given(streams)
    def test_hybrid_subset_of_shb(self, raw):
        from repro.detector import HybridPredictor, SHBPredictor

        events = materialize_exclusive(raw)
        shb, hybrid = SHBPredictor(), HybridPredictor()
        feed(shb, events)
        feed(hybrid, events)
        assert locations(hybrid) <= locations(shb)

    @settings(max_examples=250, deadline=None)
    @given(streams)
    def test_hybrid_subset_of_reference_raw(self, raw):
        """Every hybrid report is a lockset race: the conjunct uses the
        reference-raw admission rule (real locks + S_j pseudo-locks, no
        ownership), so FullRace without ownership enumerates it too."""
        from repro.detector import HybridPredictor

        events = materialize_exclusive(raw)
        hybrid = HybridPredictor()
        raw_ref = ReferenceDetector(DetectorConfig(ownership=False))
        feed(hybrid, events)
        feed(raw_ref, events)
        assert locations(hybrid) <= locations(raw_ref)

    @settings(max_examples=150, deadline=None)
    @given(streams)
    def test_shb_reports_only_multi_thread_locations(self, raw):
        """Precision sanity for the predictor: a predicted location was
        touched by ≥2 threads with a write involved — prediction never
        invents accesses."""
        from repro.detector import SHBPredictor

        events = materialize_exclusive(raw)
        shb = SHBPredictor()
        feed(shb, events)
        for key in shb.racy_locations:
            touches = [
                (e[1], e[3])
                for e in events
                if e[0] == "access" and e[2] == key.object_uid
            ]
            assert len({t for t, _ in touches}) >= 2
            assert any(kind is AccessKind.WRITE for _, kind in touches)


class TestBinlogRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(raw=streams, mode=st.sampled_from(["shb", "hybrid"]))
    def test_tuple_json_binary_and_sharded_paths_agree(
        self, raw, mode, tmp_path_factory
    ):
        """The MJBL round-trip contract extended to prediction: the
        same reports through every log shape, and the lazy sharded
        binary reader decodes exactly the per-shard stream
        partition_log builds from the tuples."""
        events = materialize_exclusive(raw)
        sink = RecordingSink()
        feed(sink, events)

        tmp = tmp_path_factory.mktemp("predictlog")
        json_path = tmp / "log.json"
        json_path.write_text(json.dumps(dump_log(sink)))
        bin_path = write_binary_log(sink, tmp / "log.mjbl")

        def key(predictor):
            return [
                (str(r.location), r.kind, r.prior_thread, r.current_thread)
                for r in predictor.reports
            ]

        baseline = key(predict_races(sink, mode))
        assert key(predict_races(list(sink.log), mode)) == baseline
        assert key(predict_races(json_path, mode)) == baseline
        assert key(predict_races(bin_path, mode)) == baseline

        with BinaryLogReader(bin_path) as reader:
            assert key(predict_races(reader, mode)) == baseline
            for shards in (1, 2, 3):
                tuple_shards, _, _ = partition_log(list(sink.log), shards)
                for shard in range(shards):
                    lazy = list(reader.shard_entries(shard, shards))
                    assert lazy == tuple_shards[shard]
                    assert key(predict_races(lazy, mode)) == key(
                        predict_races(tuple_shards[shard], mode)
                    )


#: (program kwargs, label) pairs covering the plain, condition-sync,
#: and handoff vocabularies.
VOCABULARIES = [
    ({}, "plain"),
    ({"sync_vocab": True}, "sync-vocab"),
    ({"handoff_bias": True}, "handoff"),
]


class TestFuzzedPrograms:
    def record(self, source, engine, schedule_seed):
        sink = RecordingSink()
        engine_runner(engine)(
            compile_source(source),
            sink=sink,
            policy=RandomPolicy(schedule_seed),
            max_steps=3_000_000,
        )
        return sink

    @pytest.mark.parametrize("engine", ["ast", "compiled"])
    @pytest.mark.parametrize("kwargs,label", VOCABULARIES)
    def test_inclusions_hold_on_recorded_traces(self, engine, kwargs, label):
        for program_seed in range(6):
            source = generate_program(
                program_seed, n_workers=3, n_fields=3, n_locks=2, **kwargs
            )
            for schedule_seed in (0, 3):
                sink = self.record(source, engine, schedule_seed)
                hb = HappensBeforeDetector()
                replay_entries(sink.log, hb)
                raw_ref = ReferenceDetector(DetectorConfig(ownership=False))
                replay_entries(sink.log, raw_ref)
                shb = predict_races(sink, "shb")
                hybrid = predict_races(sink, "hybrid")
                context = (label, engine, program_seed, schedule_seed)
                assert locations(hb) <= locations(shb), context
                assert locations(hybrid) <= locations(shb), context
                assert locations(hybrid) <= locations(raw_ref), context

    @pytest.mark.parametrize("kwargs,label", VOCABULARIES)
    def test_engines_predict_identically(self, kwargs, label):
        """Same (program, schedule) on both engines → the recorded
        traces yield identical predicted reports."""
        for program_seed in range(4):
            source = generate_program(
                program_seed, n_workers=3, n_fields=3, n_locks=2, **kwargs
            )
            per_engine = []
            for engine in ("ast", "compiled"):
                sink = self.record(source, engine, schedule_seed=1)
                per_engine.append(
                    [
                        (str(r.location), r.kind)
                        for r in predict_races(sink, "hybrid").reports
                    ]
                )
            assert per_engine[0] == per_engine[1], (label, program_seed)
