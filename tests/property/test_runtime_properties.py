"""Property tests over the runtime and front end.

* front-end round-trip: rendering a parsed program and re-parsing it
  yields the same rendered text (printer/parser fixpoint), for every
  workload source;
* scheduler determinism: identical seeds give identical event logs;
* schedule independence of final state for race-free programs: the
  lock-disciplined workloads print the same output under many seeds;
* Definition 1 end-to-end: for the racy workloads, over many seeds,
  the optimized-pipeline detector reports a superset of the reference
  oracle's racy locations on the *same* event log.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.detector import DetectorConfig, RaceDetector, ReferenceDetector
from repro.lang import compile_source, parse, render_program
from repro.runtime import RandomPolicy, RecordingSink, run_program
from repro.workloads import ALL_WORKLOADS

SMALL_SCALES = {
    "mtrt2": 3,
    "tsp2": 5,
    "sor2": 3,
    "elevator2": 5,
    "hedc2": 3,
    "figure2": 0,
    "figure2-shared-lock": 0,
    "figure3": 10,
    "join_stats": 4,
    "philosophers": 3,
    "philosophers-ordered": 3,
}


def small_source(name):
    return ALL_WORKLOADS[name].build(SMALL_SCALES[name])


class TestFrontEndRoundTrip:
    @pytest.mark.parametrize("name", sorted(ALL_WORKLOADS))
    def test_render_parse_fixpoint(self, name):
        source = small_source(name)
        first = render_program(parse(source))
        second = render_program(parse(first))
        assert first == second


class TestSchedulerDeterminism:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_same_seed_same_log(self, seed):
        source = small_source("join_stats")
        logs = []
        for _ in range(2):
            resolved = compile_source(source)
            sink = RecordingSink()
            run_program(resolved, sink=sink, policy=RandomPolicy(seed))
            logs.append(sink.log)
        assert logs[0] == logs[1]


class TestRaceFreeOutputsStable:
    @pytest.mark.parametrize("name", ["join_stats", "elevator2"])
    def test_output_schedule_independent(self, name):
        source = small_source(name)
        outputs = set()
        for seed in range(6):
            resolved = compile_source(source)
            result = run_program(resolved, policy=RandomPolicy(seed))
            outputs.add(tuple(result.output))
        assert len(outputs) == 1


class TestDefinition1EndToEnd:
    @pytest.mark.parametrize(
        "name", ["figure2", "mtrt2", "tsp2", "hedc2", "sor2"]
    )
    def test_detector_covers_reference_locations(self, name):
        source = small_source(name)
        for seed in range(4):
            resolved = compile_source(source)
            recording = RecordingSink()
            run_program(resolved, sink=recording, policy=RandomPolicy(seed))

            reference = ReferenceDetector()
            detector = RaceDetector()
            recording.replay_into(reference)
            recording.replay_into(detector)
            assert (
                reference.racy_locations <= detector.reports.racy_locations
            ), f"{name} seed {seed}"

    @pytest.mark.parametrize("name", ["elevator2", "join_stats"])
    def test_clean_workloads_have_empty_reference(self, name):
        source = small_source(name)
        for seed in range(4):
            resolved = compile_source(source)
            reference = ReferenceDetector()
            run_program(resolved, sink=reference, policy=RandomPolicy(seed))
            assert not reference.racy_locations, f"{name} seed {seed}"
