"""Property tests: the shrinker preserves the fuzzer's guarantees.

Whatever the delta-debugger deletes, its output must remain a valid
member of the fuzz corpus family — it compiles, terminates under the
step budget, keeps the global ascending lock order, runs
deterministically under its schedule — and must still fail for the
same classified reason it was kept for.  Anything less and a "shrunk
reproducer" could be an artifact of the shrinking itself.
"""

import pytest

from repro.difflab import (
    ScheduleSpec,
    case_classes,
    count_statements,
    lock_order_ascending,
    run_case,
    shrink_case,
    validate_structure,
)
from repro.difflab.inject import INJECTIONS
from repro.workloads.fuzz import generate_program

RR = ScheduleSpec(kind="roundrobin")


def output_of(source, schedule=RR):
    from repro.difflab.verdicts import execute_case

    return execute_case(source, schedule, include_static_axis=False).output


def assert_fuzzer_guarantees(source, schedule):
    """The structural contract every shrunk program must keep."""
    assert lock_order_ascending(source)
    assert validate_structure(
        source, lambda src: output_of(src, schedule), check_determinism=True
    )
    assert source.count("class Worker") >= 1
    # Loops stay bounded: structure validation above ran to completion
    # under the default step budget, and a second run agreed exactly.


class TestShrunkViolationsStayViolations:
    @pytest.mark.parametrize("seed", [0, 2])
    def test_read_write_blind(self, seed):
        injection = INJECTIONS["read-write-blind"]
        source = generate_program(seed, n_workers=3, n_fields=3, n_locks=2)
        before = run_case(
            source, RR,
            detector_factory=injection.factory, config=injection.config,
        )
        assert before.error is None
        target = case_classes(before, violations_only=True)
        assert "definition1-miss" in target
        small, small_spec, stats = shrink_case(
            source, RR, target,
            detector_factory=injection.factory, config=injection.config,
        )
        assert_fuzzer_guarantees(small, small_spec)
        assert count_statements(small) <= count_statements(source)
        assert stats.final_statements <= stats.initial_statements
        # Still fails for the same classified reason.
        after = run_case(
            small, small_spec,
            detector_factory=injection.factory, config=injection.config,
        )
        assert after.error is None
        assert target <= case_classes(after, violations_only=True)

    def test_shrink_is_deterministic(self):
        injection = INJECTIONS["read-write-blind"]
        source = generate_program(0, n_workers=3, n_fields=3, n_locks=2)
        target = frozenset(["definition1-miss"])
        results = [
            shrink_case(
                source, RR, target,
                detector_factory=injection.factory, config=injection.config,
            )
            for _ in range(2)
        ]
        assert results[0][0] == results[1][0]
        assert results[0][1] == results[1][1]


class TestShrunkExpectedClassesSurvive:
    @pytest.mark.parametrize("klass,seed", [
        ("feasible-race-gap", 4),
        ("ownership-suppressed", 4),
        ("eraser-single-lock-fp", 6),
    ])
    def test_expected_class_preserved(self, klass, seed):
        source = generate_program(seed, n_workers=3, n_fields=3, n_locks=2)
        before = run_case(source, RR)
        assert before.error is None
        assert klass in case_classes(before, violations_only=False)
        small, small_spec, _ = shrink_case(
            source, RR, frozenset([klass]), violations_only=False
        )
        assert_fuzzer_guarantees(small, small_spec)
        after = run_case(small, small_spec)
        assert after.error is None
        assert after.violations == []
        assert klass in case_classes(after, violations_only=False)


class TestScheduleShrinking:
    def test_random_schedule_prefers_simpler_spec(self):
        # Whatever the shrinker picks, it must be one of the allowed
        # forms and still satisfy the predicate (checked inside
        # shrink_case's final validation).
        injection = INJECTIONS["read-write-blind"]
        source = generate_program(5, n_workers=3, n_fields=3, n_locks=2)
        spec = ScheduleSpec(kind="random", seed=5)
        before = run_case(
            source, spec,
            detector_factory=injection.factory, config=injection.config,
        )
        target = case_classes(before, violations_only=True)
        if not target:
            pytest.skip("seed 5 under random(5) shows no miss")
        small, small_spec, _ = shrink_case(
            source, spec, target,
            detector_factory=injection.factory, config=injection.config,
        )
        assert small_spec.kind in ("roundrobin", "random", "prefix")
        after = run_case(
            small, small_spec,
            detector_factory=injection.factory, config=injection.config,
        )
        assert target <= case_classes(after, violations_only=True)
