"""Property tests: the shrinker preserves the fuzzer's guarantees.

Whatever the delta-debugger deletes, its output must remain a valid
member of the fuzz corpus family — it compiles, terminates under the
step budget, keeps the global ascending lock order, runs
deterministically under its schedule — and must still fail for the
same classified reason it was kept for.  Anything less and a "shrunk
reproducer" could be an artifact of the shrinking itself.
"""

import pytest

from repro.difflab import (
    ScheduleSpec,
    case_classes,
    count_statements,
    lock_order_ascending,
    run_case,
    shrink_case,
    validate_structure,
)
from repro.difflab.inject import INJECTIONS
from repro.workloads.fuzz import generate_program

RR = ScheduleSpec(kind="roundrobin")


def output_of(source, schedule=RR):
    from repro.difflab.verdicts import execute_case

    return execute_case(source, schedule, include_static_axis=False).output


def assert_fuzzer_guarantees(source, schedule):
    """The structural contract every shrunk program must keep."""
    assert lock_order_ascending(source)
    assert validate_structure(
        source, lambda src: output_of(src, schedule), check_determinism=True
    )
    assert source.count("class Worker") >= 1
    # Loops stay bounded: structure validation above ran to completion
    # under the default step budget, and a second run agreed exactly.


class TestShrunkViolationsStayViolations:
    @pytest.mark.parametrize("seed", [0, 2])
    def test_read_write_blind(self, seed):
        injection = INJECTIONS["read-write-blind"]
        source = generate_program(seed, n_workers=3, n_fields=3, n_locks=2)
        before = run_case(
            source, RR,
            detector_factory=injection.factory, config=injection.config,
        )
        assert before.error is None
        target = case_classes(before, violations_only=True)
        assert "definition1-miss" in target
        small, small_spec, stats = shrink_case(
            source, RR, target,
            detector_factory=injection.factory, config=injection.config,
        )
        assert_fuzzer_guarantees(small, small_spec)
        assert count_statements(small) <= count_statements(source)
        assert stats.final_statements <= stats.initial_statements
        # Still fails for the same classified reason.
        after = run_case(
            small, small_spec,
            detector_factory=injection.factory, config=injection.config,
        )
        assert after.error is None
        assert target <= case_classes(after, violations_only=True)

    def test_shrink_is_deterministic(self):
        injection = INJECTIONS["read-write-blind"]
        source = generate_program(0, n_workers=3, n_fields=3, n_locks=2)
        target = frozenset(["definition1-miss"])
        results = [
            shrink_case(
                source, RR, target,
                detector_factory=injection.factory, config=injection.config,
            )
            for _ in range(2)
        ]
        assert results[0][0] == results[1][0]
        assert results[0][1] == results[1][1]


class TestShrunkExpectedClassesSurvive:
    @pytest.mark.parametrize("klass,seed", [
        ("feasible-race-gap", 4),
        ("ownership-suppressed", 4),
        ("eraser-single-lock-fp", 6),
    ])
    def test_expected_class_preserved(self, klass, seed):
        source = generate_program(seed, n_workers=3, n_fields=3, n_locks=2)
        before = run_case(source, RR)
        assert before.error is None
        assert klass in case_classes(before, violations_only=False)
        small, small_spec, _ = shrink_case(
            source, RR, frozenset([klass]), violations_only=False
        )
        assert_fuzzer_guarantees(small, small_spec)
        after = run_case(small, small_spec)
        assert after.error is None
        assert after.violations == []
        assert klass in case_classes(after, violations_only=False)


class TestDecisionTraceDDmin:
    """Regression: long decision traces must be ddmin-reduced, not
    abandoned.  The shrinker used to bail to the unreduced seed spec
    whenever the interesting prefix exceeded a fixed cap (64), so any
    failure that hinged on a late decision shipped with a hundreds-long
    opaque trace."""

    @staticmethod
    def _shrink(trace, needed, original):
        from repro.difflab.shrink import shrink_schedule

        needed = set(needed)
        calls = []

        def interesting(source, spec):
            calls.append(spec)
            if spec.kind == original.kind and spec.seed == original.seed:
                return True
            if spec.kind == "prefix":
                return needed <= set(spec.choices)
            return False

        def record_trace(source, spec):
            assert spec == original
            return list(trace)

        result = shrink_schedule("ignored", original, interesting, record_trace)
        return result, calls

    def test_200_decision_trace_reduces_to_load_bearing_choices(self):
        # 200 recorded decisions, of which only #5 and #150 matter: the
        # binary-searched prefix (151 long — far past the old cap) must
        # ddmin down to exactly those two, in order.
        original = ScheduleSpec(kind="random", seed=99)
        result, _ = self._shrink(list(range(200)), {5, 150}, original)
        assert result == ScheduleSpec(kind="prefix", choices=(5, 150))

    def test_single_late_decision(self):
        original = ScheduleSpec(kind="random", seed=99)
        result, _ = self._shrink(list(range(200)), {150}, original)
        assert result == ScheduleSpec(kind="prefix", choices=(150,))

    def test_predicate_call_budget_stays_polynomial(self):
        # ddmin is O(n log n)-ish on this shape; guard against an
        # accidental exponential blowup.
        original = ScheduleSpec(kind="random", seed=99)
        _, calls = self._shrink(list(range(200)), {5, 150}, original)
        assert len(calls) < 400

    def test_unreproducible_trace_falls_back_to_adopted(self):
        # If even the full recorded trace cannot reproduce the failure
        # (nondeterminism leaked in), keep the adopted spec untouched.
        from repro.difflab.shrink import shrink_schedule

        original = ScheduleSpec(kind="random", seed=99)

        def interesting(source, spec):
            return spec.kind == "random" and spec.seed == 99

        result = shrink_schedule(
            "ignored", original, interesting, lambda s, spec: list(range(30))
        )
        assert result == original


class TestScheduleShrinking:
    def test_random_schedule_prefers_simpler_spec(self):
        # Whatever the shrinker picks, it must be one of the allowed
        # forms and still satisfy the predicate (checked inside
        # shrink_case's final validation).
        injection = INJECTIONS["read-write-blind"]
        source = generate_program(5, n_workers=3, n_fields=3, n_locks=2)
        spec = ScheduleSpec(kind="random", seed=5)
        before = run_case(
            source, spec,
            detector_factory=injection.factory, config=injection.config,
        )
        target = case_classes(before, violations_only=True)
        if not target:
            pytest.skip("seed 5 under random(5) shows no miss")
        small, small_spec, _ = shrink_case(
            source, spec, target,
            detector_factory=injection.factory, config=injection.config,
        )
        assert small_spec.kind in ("roundrobin", "random", "prefix")
        after = run_case(
            small, small_spec,
            detector_factory=injection.factory, config=injection.config,
        )
        assert target <= case_classes(after, violations_only=True)
