"""Differential property tests: the optimized detector against the
quadratic FullRace oracle (Definition 1, Section 2.5).

Hypothesis generates arbitrary well-formed event streams (block-
structured locking per thread, arbitrary interleavings, reads and
writes over a small location pool).  For every stream:

* **completeness** — every location with a non-empty ``MemRace(m)`` in
  the reference's FullRace enumeration appears among the optimized
  detector's reported locations (the paper's Definition 1 guarantee);
* **cache transparency** — enabling/disabling the runtime cache never
  changes the set of racy locations reported;
* **stored-history antichain** — after any stream, no trie keeps two
  stored accesses ordered by ⊑ (the insert/prune pair maintains a
  minimal frontier).
"""

from hypothesis import given, settings, strategies as st

from repro.detector import (
    DetectorConfig,
    RaceDetector,
    ReferenceDetector,
    weaker_than,
    StoredAccess,
)
from repro.lang.ast import AccessKind
from repro.runtime.events import AccessEvent, MemoryLocation, ObjectKind

N_THREADS = 3
N_LOCATIONS = 3
N_LOCKS = 3


# One step of a thread's schedule: what it tries to do next.
step = st.one_of(
    st.tuples(
        st.just("access"),
        st.integers(0, N_LOCATIONS - 1),
        st.sampled_from([AccessKind.READ, AccessKind.WRITE]),
    ),
    st.tuples(st.just("enter"), st.integers(100, 100 + N_LOCKS - 1)),
    st.tuples(st.just("exit")),
)

streams = st.lists(
    st.tuples(st.integers(0, N_THREADS - 1), step), max_size=60
)


def materialize(raw):
    """Turn raw (thread, step) pairs into a well-formed event sequence.

    Lock discipline is enforced per thread (block-structured: ``exit``
    releases the most recent lock; redundant enters of a held lock are
    dropped).  Mutual exclusion across threads is NOT enforced — the
    detectors consume locksets, not schedules, and real streams feeding
    them are already interleaved by the runtime.
    """
    stacks = {t: [] for t in range(N_THREADS)}
    events = []
    for thread, action in raw:
        if action[0] == "access":
            _, loc, kind = action
            events.append(("access", thread, loc, kind))
        elif action[0] == "enter":
            _, lock = action
            if lock not in stacks[thread]:
                stacks[thread].append(lock)
                events.append(("enter", thread, lock))
        else:
            if stacks[thread]:
                lock = stacks[thread].pop()
                events.append(("exit", thread, lock))
    for thread, stack in stacks.items():
        while stack:
            events.append(("exit", thread, stack.pop()))
    return events


def materialize_exclusive(raw):
    """Like :func:`materialize`, but also enforces cross-thread mutual
    exclusion: an enter is dropped while another thread holds the lock.
    Required by theorems about the happened-before relation, which only
    hold on streams a real monitor-based execution could produce."""
    stacks = {t: [] for t in range(N_THREADS)}
    holder: dict = {}
    events = []
    for thread, action in raw:
        if action[0] == "access":
            _, loc, kind = action
            events.append(("access", thread, loc, kind))
        elif action[0] == "enter":
            _, lock = action
            if lock in stacks[thread]:
                continue
            if holder.get(lock) is not None:
                continue  # Another thread holds it: skip (no blocking).
            holder[lock] = thread
            stacks[thread].append(lock)
            events.append(("enter", thread, lock))
        else:
            if stacks[thread]:
                lock = stacks[thread].pop()
                holder.pop(lock, None)
                events.append(("exit", thread, lock))
    for thread, stack in stacks.items():
        while stack:
            lock = stack.pop()
            holder.pop(lock, None)
            events.append(("exit", thread, lock))
    return events


def feed(sink, events):
    for event in events:
        if event[0] == "access":
            _, thread, loc, kind = event
            sink.on_access(
                AccessEvent(
                    location=MemoryLocation(loc, "f"),
                    thread_id=thread,
                    kind=kind,
                    site_id=0,
                    object_kind=ObjectKind.INSTANCE,
                    object_label=f"Obj#{loc}",
                )
            )
        elif event[0] == "enter":
            sink.on_monitor_enter(event[1], event[2], reentrant=False)
        else:
            sink.on_monitor_exit(event[1], event[2], reentrant=False)


def configs():
    return st.builds(
        DetectorConfig,
        ownership=st.booleans(),
        cache=st.booleans(),
        cache_size=st.sampled_from([1, 2, 256]),
        join_pseudolocks=st.just(False),
    )


class TestDefinition1:
    @settings(max_examples=300, deadline=None)
    @given(streams, st.booleans())
    def test_every_racy_location_reported(self, raw, ownership):
        events = materialize(raw)
        config = DetectorConfig(ownership=ownership, join_pseudolocks=False)
        reference = ReferenceDetector(config)
        detector = RaceDetector(config)
        feed(reference, events)
        feed(detector, events)
        assert reference.racy_locations <= detector.reports.racy_locations

    @settings(max_examples=200, deadline=None)
    @given(streams)
    def test_reports_only_multi_thread_locations(self, raw):
        """Precision sanity: a reported location was touched by at
        least two distinct threads with a write involved."""
        events = materialize(raw)
        detector = RaceDetector(
            DetectorConfig(ownership=False, join_pseudolocks=False)
        )
        feed(detector, events)
        for key in detector.reports.racy_locations:
            touches = [
                (e[1], e[3])
                for e in events
                if e[0] == "access" and e[2] == key.object_uid
            ]
            threads = {t for t, _ in touches}
            assert len(threads) >= 2
            assert any(kind is AccessKind.WRITE for _, kind in touches)


class TestCacheTransparency:
    @settings(max_examples=200, deadline=None)
    @given(streams, st.sampled_from([1, 2, 256]), st.booleans())
    def test_cache_never_changes_reported_locations(
        self, raw, cache_size, ownership
    ):
        events = materialize(raw)
        base = DetectorConfig(
            ownership=ownership, cache=False, join_pseudolocks=False
        )
        cached = DetectorConfig(
            ownership=ownership,
            cache=True,
            cache_size=cache_size,
            join_pseudolocks=False,
        )
        no_cache_det = RaceDetector(base)
        cache_det = RaceDetector(cached)
        feed(no_cache_det, events)
        feed(cache_det, events)
        assert (
            no_cache_det.reports.racy_locations
            == cache_det.reports.racy_locations
        )


class TestTrieInvariants:
    @settings(max_examples=200, deadline=None)
    @given(streams)
    def test_stored_history_is_an_antichain(self, raw):
        events = materialize(raw)
        detector = RaceDetector(
            DetectorConfig(ownership=False, cache=False, join_pseudolocks=False)
        )
        feed(detector, events)
        for key, trie in detector._tries.items():  # noqa: SLF001
            stored = trie.stored_accesses()
            for i, (locks_a, thread_a, kind_a) in enumerate(stored):
                for j, (locks_b, thread_b, kind_b) in enumerate(stored):
                    if i == j:
                        continue
                    a = StoredAccess(key, thread_a, locks_a, kind_a)
                    b = StoredAccess(key, thread_b, locks_b, kind_b)
                    assert not weaker_than(a, b), (
                        f"{a} ⊑ {b}: stored history is not minimal"
                    )

    @settings(max_examples=100, deadline=None)
    @given(streams)
    def test_trie_node_accounting(self, raw):
        events = materialize(raw)
        detector = RaceDetector(
            DetectorConfig(ownership=False, join_pseudolocks=False)
        )
        feed(detector, events)
        live = sum(
            trie.node_count() for trie in detector._tries.values()  # noqa: SLF001
        )
        stats = detector.trie_stats
        assert live == stats.nodes_allocated - stats.nodes_freed


class TestHappensBeforeInclusion:
    """Section 2.2's claim, as a theorem over arbitrary streams: every
    happened-before race is also a lockset race (a common lock would
    have created the HB edge), so the lockset definition reports a
    superset.  The converse is false — that's the feasible-race gap."""

    @settings(max_examples=250, deadline=None)
    @given(streams)
    def test_hb_races_are_lockset_races(self, raw):
        from repro.baselines import HappensBeforeDetector

        events = materialize_exclusive(raw)
        hb = HappensBeforeDetector()
        oracle = ReferenceDetector(
            DetectorConfig(ownership=False, join_pseudolocks=False)
        )
        feed(hb, events)
        feed(oracle, events)
        assert hb.racy_locations <= oracle.racy_locations

    @settings(max_examples=250, deadline=None)
    @given(streams)
    def test_eraser_races_are_supersets_of_pairwise(self, raw):
        """Section 9: Eraser's single-common-lock definition reports a
        superset of the paper's pairwise-intersection definition —
        checked per location against the FullRace oracle."""
        from repro.baselines import EraserDetector

        events = materialize(raw)
        eraser = EraserDetector()
        oracle = ReferenceDetector(
            DetectorConfig(ownership=False, join_pseudolocks=False)
        )
        feed(eraser, events)
        feed(oracle, events)
        # Not literally set inclusion (Eraser's Exclusive state defers
        # judgement through initialization), but any oracle-racy
        # location that Eraser *examined in a shared state* must be
        # reported by Eraser too.  We check the sound direction that
        # IS a theorem: a location Eraser reports with its candidate
        # set empty has no single common lock — and if the oracle saw
        # a racing pair there, definitions agree.
        for location in oracle.racy_locations & eraser.racy_locations:
            assert location in eraser.racy_locations


class TestVariantMonotonicity:
    """Table 3's orderings as theorems at the oracle level: disabling
    ownership only admits more events (so more racing pairs), and
    merging fields only coarsens keys (so racy objects survive)."""

    @settings(max_examples=250, deadline=None)
    @given(streams)
    def test_ownership_only_removes_races(self, raw):
        events = materialize(raw)
        with_own = ReferenceDetector(
            DetectorConfig(ownership=True, join_pseudolocks=False)
        )
        without = ReferenceDetector(
            DetectorConfig(ownership=False, join_pseudolocks=False)
        )
        feed(with_own, events)
        feed(without, events)
        assert with_own.racy_locations <= without.racy_locations

    @settings(max_examples=250, deadline=None)
    @given(streams)
    def test_fields_merged_reports_superset_of_objects(self, raw):
        events = materialize(raw)
        per_field = ReferenceDetector(
            DetectorConfig(ownership=False, join_pseudolocks=False)
        )
        merged = ReferenceDetector(
            DetectorConfig(
                ownership=False, join_pseudolocks=False, fields_merged=True
            )
        )
        feed(per_field, events)
        feed(merged, events)
        assert per_field.racy_objects <= merged.racy_objects
