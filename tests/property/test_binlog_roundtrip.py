"""Property: the ``tuple → binary → tuple`` round trip is the identity.

The MJBL at-rest format (``repro/runtime/binlog.py``) claims lossless
encoding of every schema-v3 entry shape.  Hypothesis drives that claim
two ways:

* synthetic entry streams covering all eight event kinds with
  adversarial column values (huge uids, empty and unicode strings,
  duplicate and colliding labels);
* recorded logs of fuzzer-generated programs, executed on **both**
  engines — and since the engines are stream-identical, the binary
  files they produce must be byte-identical too.

The v2 format and the columnar decoder widen the claim: the round trip
must hold for every ``compress`` setting (v1, v2-raw, v2-deflated) at
every block size, and the batched :meth:`BinaryLogReader.replay_into`
path must deliver the same stream as the scalar per-record decode —
unfiltered and for every shard of a partition.
"""

import tempfile
from pathlib import Path

from hypothesis import given, settings, strategies as st

from repro.instrument import PlannerConfig, plan_instrumentation
from repro.lang.ast import AccessKind
from repro.lang.resolver import compile_source
from repro.runtime import RandomPolicy, RecordingSink, engine_runner
from repro.runtime.binlog import read_binary_log, write_binary_log
from repro.runtime.events import ObjectKind
from repro.workloads.fuzz import generate_program

ACCESS = RecordingSink.ACCESS
ENTER = RecordingSink.ENTER
EXIT = RecordingSink.EXIT
START = RecordingSink.START
END = RecordingSink.END
JOIN = RecordingSink.JOIN
WAIT = RecordingSink.WAIT
NOTIFY = RecordingSink.NOTIFY

u64 = st.integers(min_value=0, max_value=2**64 - 1)
u32 = st.integers(min_value=0, max_value=2**32 - 1)
names = st.text(max_size=24)  # empty strings and full unicode included

access_entries = st.tuples(
    st.just(ACCESS),
    u64,
    names,
    u32,
    st.sampled_from((AccessKind.READ, AccessKind.WRITE)),
    u32,
    st.sampled_from((ObjectKind.INSTANCE, ObjectKind.ARRAY, ObjectKind.CLASS)),
    names,
)
monitor_entries = st.tuples(
    st.sampled_from((ENTER, EXIT)), u32, u64, st.booleans()
)
start_entries = st.tuples(st.just(START), u32, u32)
end_entries = st.tuples(st.just(END), u32)
join_entries = st.tuples(st.just(JOIN), u32, u32)
wait_entries = st.tuples(st.just(WAIT), u32, u64)
notify_entries = st.tuples(st.just(NOTIFY), u32, u64, st.booleans())

entries_strategy = st.lists(
    st.one_of(
        access_entries,
        monitor_entries,
        start_entries,
        end_entries,
        join_entries,
        wait_entries,
        notify_entries,
    ),
    max_size=60,
)


#: The three at-rest flavors: v1, v2 with deflate disabled, v2 deflated.
compress_strategy = st.sampled_from((None, 0, 6))


def _write(entries, path, records_per_block=None, compress=None):
    if records_per_block is None and compress is None:
        write_binary_log(entries, path)
        return
    from repro.runtime.binlog import DEFAULT_RECORDS_PER_BLOCK, BinaryLogSink
    from repro.runtime.events import replay_entries

    if records_per_block is None:
        records_per_block = DEFAULT_RECORDS_PER_BLOCK
    with BinaryLogSink(
        path, records_per_block=records_per_block, compress=compress
    ) as sink:
        replay_entries(entries, sink)


def _roundtrip(entries, records_per_block=None, compress=None):
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "log.mjbl"
        _write(entries, path, records_per_block, compress)
        return read_binary_log(path)


@settings(max_examples=60, deadline=None)
@given(entries_strategy, compress_strategy)
def test_arbitrary_entry_streams_roundtrip(entries, compress):
    assert _roundtrip(entries, compress=compress) == entries


@settings(max_examples=25, deadline=None)
@given(entries_strategy, st.integers(min_value=1, max_value=7), compress_strategy)
def test_roundtrip_is_block_size_invariant(entries, records_per_block, compress):
    # Tiny blocks force record runs to straddle many index entries;
    # the decoded stream must not notice — raw or deflated.
    assert _roundtrip(entries, records_per_block, compress) == entries


@settings(max_examples=30, deadline=None)
@given(
    entries_strategy,
    st.integers(min_value=1, max_value=7),
    compress_strategy,
    st.integers(min_value=1, max_value=4),
)
def test_columnar_replay_matches_scalar_decode(
    entries, records_per_block, compress, shards
):
    # The batched replay_into path (whole-block sweeps, run detection,
    # uid-column masking) must be observationally identical to the
    # scalar per-record decode, unfiltered and per shard.
    from repro.runtime.binlog import BinaryLogReader

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "log.mjbl"
        _write(entries, path, records_per_block, compress)
        with BinaryLogReader(path) as reader:
            sink = RecordingSink()
            reader.replay_into(sink)
            assert sink.log == list(reader.entries()) == entries
            for shard in range(shards):
                sink = RecordingSink()
                reader.replay_into(sink, shard, shards)
                assert sink.log == list(reader.shard_entries(shard, shards))
            # Demultiplexed single-pass decode: each sink must see
            # exactly its filtered stream, in the same order.
            demux = [RecordingSink() for _ in range(shards)]
            reader.replay_sharded_into(demux)
            for shard in range(shards):
                assert demux[shard].log == list(
                    reader.shard_entries(shard, shards)
                )


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=0, max_value=10_000),
    st.integers(min_value=0, max_value=10_000),
)
def test_recorded_program_logs_roundtrip_on_both_engines(
    program_seed, schedule_seed
):
    source = generate_program(program_seed)
    resolved = compile_source(source)
    plan = plan_instrumentation(resolved, PlannerConfig())
    binaries = []
    with tempfile.TemporaryDirectory() as tmp:
        for engine in ("ast", "compiled"):
            log = RecordingSink()
            engine_runner(engine)(
                resolved,
                sink=log,
                trace_sites=plan.trace_sites,
                policy=RandomPolicy(schedule_seed),
                max_steps=3_000_000,
            )
            path = Path(tmp) / f"{engine}.mjbl"
            write_binary_log(log, path)
            assert read_binary_log(path) == list(log.log), engine
            binaries.append(path.read_bytes())
    # Stream-identical engines ⇒ byte-identical at-rest logs.
    assert binaries[0] == binaries[1]
