"""Cross-engine parity: the compiled backend against the AST interpreter.

The closure-compiled engine is a drop-in replacement: for any program,
schedule, and instrumentation plan it must make the same scheduler
decisions, allocate the same object uids, emit a byte-identical
schema-v3 event stream, print the same output, and raise the same
errors as the AST interpreter.  These tests enforce that contract on

* every workload in the benchmark suite (Full plan, all-sites, Base);
* seeded random schedules (including one that deadlocks);
* the detector funnel — identical :class:`PipelineStats`, racy-object
  sets, monitored locations, and trie shapes;
* a fuzzer battery, including the wait/notify/barrier vocabulary
  (``sync_vocab``) and condition-handoff-biased programs
  (``handoff_bias``);
* every committed reproducer in ``tests/corpus/``, replayed under its
  recorded schedule.
"""

import json

import pytest

from repro.detector import DetectorConfig, RaceDetector
from repro.difflab import load_corpus
from repro.instrument import PlannerConfig, plan_instrumentation
from repro.lang.resolver import compile_source
from repro.runtime import (
    ENGINES,
    RandomPolicy,
    RecordingSink,
    dump_log,
    engine_runner,
)
from repro.workloads import ALL_WORKLOADS
from repro.workloads.fuzz import ProgramFuzzer

SCALE = 3

run_ast = engine_runner("ast")
run_compiled = engine_runner("compiled")


def observe(runner, resolved, trace_sites, policy, with_sink=True):
    """Everything parity compares, as one comparable tuple.

    Errors are part of the contract too: a failing program must fail
    identically (same exception type, same message) on both engines.
    """
    sink = RecordingSink() if with_sink else None
    try:
        result = runner(
            resolved, sink=sink, trace_sites=trace_sites, policy=policy
        )
    except Exception as error:  # noqa: BLE001 — error parity is the point.
        return ("error", type(error).__name__, str(error))
    log = json.dumps(dump_log(sink), sort_keys=True) if with_sink else ""
    return (
        result.steps,
        result.threads_created,
        result.accesses_executed,
        result.accesses_emitted,
        tuple(result.output),
        log,
    )


def assert_parity(resolved, trace_sites, make_policy, with_sink=True):
    ast_side = observe(
        run_ast, resolved, trace_sites, make_policy(), with_sink
    )
    compiled_side = observe(
        run_compiled, resolved, trace_sites, make_policy(), with_sink
    )
    assert ast_side == compiled_side


def compiled_workload(name, scale=SCALE):
    spec = ALL_WORKLOADS[name]
    resolved = compile_source(spec.build(scale), filename=name)
    plan = plan_instrumentation(resolved, PlannerConfig())
    return resolved, plan


class TestEngineRegistry:
    def test_both_engines_registered(self):
        assert set(ENGINES) >= {"ast", "compiled"}

    def test_unknown_engine_rejected(self):
        from repro.runtime import engine_class

        with pytest.raises(ValueError):
            engine_runner("jit")
        with pytest.raises(ValueError):
            engine_class("jit")


class TestWorkloadParity:
    """Byte-identical logs on every benchmark workload."""

    @pytest.mark.parametrize("name", sorted(ALL_WORKLOADS))
    def test_full_plan_log_identical(self, name):
        resolved, plan = compiled_workload(name)
        assert_parity(resolved, plan.trace_sites, lambda: None)

    @pytest.mark.parametrize("name", ["tsp2", "figure2", "join_stats"])
    def test_all_sites_log_identical(self, name):
        resolved, _ = compiled_workload(name)
        assert_parity(resolved, None, lambda: None)

    @pytest.mark.parametrize("name", ["tsp2", "sor2"])
    def test_base_uninstrumented_identical(self, name):
        resolved, _ = compiled_workload(name)
        assert_parity(resolved, None, lambda: None, with_sink=False)


class TestScheduleParity:
    """Same decisions under seeded random policies — including one
    seed whose schedule deadlocks, so error parity is exercised."""

    @pytest.mark.parametrize("name", ["tsp2", "figure2", "philosophers"])
    @pytest.mark.parametrize("seed", [0, 1, 7])
    def test_random_policy_identical(self, name, seed):
        resolved, plan = compiled_workload(name)
        assert_parity(
            resolved, plan.trace_sites, lambda: RandomPolicy(seed=seed)
        )

    def test_a_deadlocking_seed_exists(self):
        # Guard the guard: at least one (name, seed) cell above must
        # actually fail, or the error-parity branch is dead code.
        resolved, plan = compiled_workload("philosophers")
        outcomes = {
            observe(
                run_ast, resolved, plan.trace_sites, RandomPolicy(seed=seed)
            )[0]
            for seed in (0, 1, 7)
        }
        assert "error" in outcomes


class TestDetectorFunnelParity:
    """Identical PipelineStats funnel, reports, and trie shape."""

    @pytest.mark.parametrize("name", ["tsp2", "mtrt2", "sor2", "hedc2"])
    def test_funnel_identical(self, name):
        resolved, plan = compiled_workload(name)
        funnels = []
        for runner in (run_ast, run_compiled):
            detector = RaceDetector(
                config=DetectorConfig(),
                resolved=resolved,
                static_races=plan.static_races,
            )
            result = runner(
                resolved, sink=detector, trace_sites=plan.trace_sites
            )
            funnels.append(
                (
                    result.steps,
                    result.accesses_emitted,
                    detector.stats.funnel(),
                    detector.stats.races_reported,
                    detector.stats.owned_filtered,
                    detector.stats.detector_weaker_filtered,
                    detector.monitored_locations,
                    detector.total_trie_nodes(),
                    tuple(sorted(detector.reports.racy_objects)),
                )
            )
        assert funnels[0] == funnels[1]


class TestFuzzerParity:
    """The fuzz generator's whole vocabulary, both engines."""

    @pytest.mark.parametrize("seed", range(6))
    def test_plain_vocabulary(self, seed):
        self._check(ProgramFuzzer(seed))

    @pytest.mark.parametrize("seed", range(4))
    def test_sync_vocabulary(self, seed):
        self._check(ProgramFuzzer(seed, sync_vocab=True))

    @pytest.mark.parametrize("seed", range(4))
    def test_handoff_bias(self, seed):
        self._check(ProgramFuzzer(seed, handoff_bias=True))

    @staticmethod
    def _check(fuzzer):
        source = fuzzer.generate()
        resolved = compile_source(source, filename="fuzz")
        assert_parity(resolved, None, lambda: None)
        assert_parity(resolved, None, lambda: RandomPolicy(seed=2))


class TestCorpusParity:
    """Every committed reproducer, under its recorded schedule."""

    @pytest.mark.parametrize(
        "entry", load_corpus(), ids=lambda entry: entry.name
    )
    def test_reproducer_log_identical(self, entry):
        resolved = compile_source(entry.source, filename=entry.name)
        plan = plan_instrumentation(resolved, PlannerConfig())
        assert_parity(
            resolved, plan.trace_sites, lambda: entry.schedule.policy()
        )
