"""Equivalence of the packed (lockset-major) trie and the per-location
tries — the Section 8.2 packing scheme must be a pure representation
change."""

from hypothesis import given, settings, strategies as st

from repro.detector import DetectorConfig, RaceDetector
from repro.detector.trie import LockTrie
from repro.detector.trie_packed import PackedLockTrie
from repro.lang.ast import AccessKind

from .test_detector_vs_reference import feed, materialize, streams


class TestDetectorEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(streams, st.booleans(), st.booleans())
    def test_packed_pipeline_reports_identically(self, raw, ownership, cache):
        events = materialize(raw)
        base = DetectorConfig(
            ownership=ownership, cache=cache, join_pseudolocks=False
        )
        per_location = RaceDetector(base)
        packed = RaceDetector(base.but(packed_tries=True))
        feed(per_location, events)
        feed(packed, events)
        assert (
            per_location.reports.racy_locations
            == packed.reports.racy_locations
        )
        assert per_location.stats.detector_processed == packed.stats.detector_processed
        assert (
            per_location.stats.detector_weaker_filtered
            == packed.stats.detector_weaker_filtered
        )

    @settings(max_examples=150, deadline=None)
    @given(streams)
    def test_packed_stored_sets_match_per_location(self, raw):
        events = materialize(raw)
        config = DetectorConfig(
            ownership=False, cache=False, join_pseudolocks=False
        )
        per_location = RaceDetector(config)
        packed = RaceDetector(config.but(packed_tries=True))
        feed(per_location, events)
        feed(packed, events)
        per_tries = per_location._tries  # noqa: SLF001
        packed_trie = packed._packed  # noqa: SLF001
        for key, trie in per_tries.items():
            expected = sorted(
                (tuple(sorted(l)), repr(t), k.value)
                for l, t, k in trie.stored_accesses()
            )
            actual = sorted(
                (tuple(sorted(l)), repr(t), k.value)
                for l, t, k in packed_trie.stored_accesses(key)
            )
            assert actual == expected, key

    @settings(max_examples=100, deadline=None)
    @given(streams)
    def test_packing_never_uses_more_nodes(self, raw):
        events = materialize(raw)
        config = DetectorConfig(
            ownership=False, cache=False, join_pseudolocks=False
        )
        per_location = RaceDetector(config)
        packed = RaceDetector(config.but(packed_tries=True))
        feed(per_location, events)
        feed(packed, events)
        assert packed.total_trie_nodes() <= max(
            per_location.total_trie_nodes(), 1
        )


class TestDirectStructures:
    def test_single_location_behaves_like_plain_trie(self):
        plain = LockTrie()
        packed = PackedLockTrie()
        key = "m"
        history = [
            (frozenset(), 1, AccessKind.READ),
            (frozenset({1}), 2, AccessKind.WRITE),
            (frozenset({1, 2}), 1, AccessKind.READ),
            (frozenset(), 2, AccessKind.WRITE),
        ]
        for lockset, thread, kind in history:
            if not plain.find_weaker(lockset, thread, kind):
                node = plain.insert(lockset, thread, kind)
                plain.prune_stronger(lockset, node.thread, node.kind, keep=node)
            if not packed.find_weaker(key, lockset, thread, kind):
                node, merged = packed.insert(key, lockset, thread, kind)
                packed.prune_stronger(
                    key, lockset, merged[0], merged[1], keep=node
                )
        normalize = lambda entries: sorted(
            (tuple(sorted(l)), repr(t), k.value) for l, t, k in entries
        )
        assert normalize(packed.stored_accesses(key)) == normalize(
            plain.stored_accesses()
        )

    def test_locations_are_isolated(self):
        packed = PackedLockTrie()
        packed.insert("a", frozenset({1}), 1, AccessKind.WRITE)
        packed.insert("b", frozenset({2}), 2, AccessKind.READ)
        assert packed.find_weaker("a", frozenset({1}), 1, AccessKind.WRITE)
        assert not packed.find_weaker("b", frozenset({1}), 1, AccessKind.WRITE)
        assert packed.find_race("a", frozenset(), 2, AccessKind.READ)
        assert packed.find_race("b", frozenset(), 1, AccessKind.WRITE)
        assert packed.location_count == 2

    def test_entry_count_and_node_sharing(self):
        packed = PackedLockTrie()
        for key in ("a", "b", "c"):
            packed.insert(key, frozenset({7, 8}), 1, AccessKind.READ)
        # Three locations share one lock path: 3 nodes (root, 7, 78),
        # three entries at the leaf.
        assert packed.node_count() == 3
        assert packed.entry_count() == 3
