"""Property tests pitting the lockset trie against brute-force scans.

The trie is an indexed representation of a set of stored accesses; its
three traversals must agree with the obvious linear-scan definitions:

* ``find_weaker(e)``  ⇔  ∃ stored s . s ⊑ e;
* ``find_race(e)``    ⇔  ∃ stored s . locks disjoint ∧ threads "differ"
  (concrete-or-t⊥ meet) ∧ a write involved — and Case I pruning never
  hides such an s;
* after ``insert`` + ``prune_stronger`` the stored set equals the
  brute-force minimal frontier.
"""

from hypothesis import given, settings, strategies as st

from repro.detector import LockTrie, THREAD_BOTTOM
from repro.detector.weaker import (
    access_leq,
    access_meet,
    thread_leq,
    thread_meet,
)
from repro.lang.ast import AccessKind

locksets = st.frozensets(st.integers(1, 5), max_size=3)
threads = st.integers(0, 3)
kinds = st.sampled_from([AccessKind.READ, AccessKind.WRITE])
events = st.tuples(locksets, threads, kinds)
event_lists = st.lists(events, max_size=12)


def build_trie_like_detector(history):
    """Feed events through the detector's trie protocol, mirroring the
    _detect flow, and maintain a brute-force model alongside."""
    trie = LockTrie()
    model = []  # List of (lockset, thread_value, kind) — the stored set.
    for lockset, thread, kind in history:
        if trie.find_weaker(lockset, thread, kind):
            continue
        node = trie.insert(lockset, thread, kind)
        _model_insert(model, lockset, thread, kind)
        trie.prune_stronger(lockset, node.thread, node.kind, keep=node)
        _model_prune(model, lockset)
    return trie, model


def _model_insert(model, lockset, thread, kind):
    for index, (locks, t, a) in enumerate(model):
        if locks == lockset:
            model[index] = (locks, thread_meet(t, thread), access_meet(a, kind))
            return
    model.append((lockset, thread, kind))


def _model_prune(model, lockset):
    # Remove entries strictly stronger than the (post-meet) entry at
    # `lockset`.
    new_entry = next(e for e in model if e[0] == lockset)
    locks_n, t_n, a_n = new_entry
    model[:] = [
        entry
        for entry in model
        if entry == new_entry
        or not (
            locks_n <= entry[0]
            and thread_leq(t_n, entry[1])
            and access_leq(a_n, entry[2])
        )
    ]


class TestTrieMatchesModel:
    @settings(max_examples=300, deadline=None)
    @given(event_lists)
    def test_stored_set_equals_model(self, history):
        trie, model = build_trie_like_detector(history)
        assert sorted(
            (tuple(sorted(l)), repr(t), k.value)
            for l, t, k in trie.stored_accesses()
        ) == sorted(
            (tuple(sorted(l)), repr(t), k.value) for l, t, k in model
        )

    @settings(max_examples=300, deadline=None)
    @given(event_lists, events)
    def test_find_weaker_equals_linear_scan(self, history, probe):
        trie, model = build_trie_like_detector(history)
        lockset, thread, kind = probe
        expected = any(
            locks <= lockset and thread_leq(t, thread) and access_leq(a, kind)
            for locks, t, a in model
        )
        assert trie.find_weaker(lockset, thread, kind) == expected

    @settings(max_examples=300, deadline=None)
    @given(event_lists, events)
    def test_find_race_equals_linear_scan(self, history, probe):
        trie, model = build_trie_like_detector(history)
        lockset, thread, kind = probe
        expected = any(
            not (locks & lockset)
            and thread_meet(t, thread) is THREAD_BOTTOM
            and access_meet(a, kind) is AccessKind.WRITE
            for locks, t, a in model
        )
        assert (trie.find_race(lockset, thread, kind) is not None) == expected

    @settings(max_examples=200, deadline=None)
    @given(event_lists, events)
    def test_find_race_read_read_mode(self, history, probe):
        trie, model = build_trie_like_detector(history)
        lockset, thread, kind = probe
        expected = any(
            not (locks & lockset)
            and thread_meet(t, thread) is THREAD_BOTTOM
            for locks, t, _ in model
        )
        found = trie.find_race(lockset, thread, kind, read_read_races=True)
        assert (found is not None) == expected

    @settings(max_examples=200, deadline=None)
    @given(event_lists)
    def test_race_report_lockset_is_genuinely_disjoint(self, history):
        trie, model = build_trie_like_detector(history)
        probe_lockset = frozenset({9})  # Never used by the generator.
        prior = trie.find_race(probe_lockset, 7, AccessKind.WRITE)
        if prior is not None:
            assert not (prior.lockset & probe_lockset)
