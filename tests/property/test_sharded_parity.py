"""Property: sharded post-mortem detection is exactly equivalent to
serial detection — on-the-fly, serial post-mortem, and every shard
count produce the same races and the same funnel invariants.

The invariants (see ``repro/detector/sharded.py`` for the argument):

* race reports are identical (modulo the canonical cross-shard
  ordering), as are racy-location/object summaries;
* ``monitored_locations`` and trie node totals are identical — the
  caches only ever suppress events the weaker-than check would also
  suppress, so the tries see the same effective stream;
* ``accesses``, ``owned_filtered`` and ``detector_processed`` are
  invariant, and ``cache_hits + detector_weaker_filtered`` is
  invariant as a sum (individual values may redistribute between the
  two counters when a cache is split across shards).
"""

from hypothesis import given, settings, strategies as st

from repro.detector import (
    DetectorConfig,
    RaceDetector,
    canonical_report_order,
    detect_from_log,
    detect_sharded,
)
from repro.instrument import PlannerConfig, plan_instrumentation
from repro.lang import compile_source
from repro.runtime import RandomPolicy, RecordingSink, run_program
from repro.workloads.fuzz import generate_program

program_seeds = st.integers(min_value=0, max_value=10_000)
schedule_seeds = st.integers(min_value=0, max_value=10_000)

SHARD_COUNTS = (1, 2, 8)


def _record(program_seed, schedule_seed):
    source = generate_program(program_seed)
    resolved = compile_source(source)
    plan = plan_instrumentation(resolved, PlannerConfig())
    log = RecordingSink()
    run_program(
        resolved,
        sink=log,
        trace_sites=plan.trace_sites,
        policy=RandomPolicy(schedule_seed),
        max_steps=3_000_000,
    )
    return resolved, log


def _assert_parity(serial, sharded):
    assert sharded.reports.reports == canonical_report_order(
        serial.reports.reports
    )
    assert sharded.reports.racy_locations == serial.reports.racy_locations
    assert sharded.reports.racy_objects == serial.reports.racy_objects
    assert sharded.monitored_locations == serial.monitored_locations
    assert sharded.trie_nodes == serial.total_trie_nodes()
    assert sharded.stats.accesses == serial.stats.accesses
    assert sharded.stats.owned_filtered == serial.stats.owned_filtered
    assert sharded.stats.detector_processed == serial.stats.detector_processed
    assert sharded.stats.races_reported == serial.stats.races_reported
    assert (
        sharded.stats.cache_hits + sharded.stats.detector_weaker_filtered
        == serial.stats.cache_hits + serial.stats.detector_weaker_filtered
    )


@settings(max_examples=25, deadline=None)
@given(program_seeds, schedule_seeds)
def test_sharded_equals_serial_post_mortem(program_seed, schedule_seed):
    resolved, log = _record(program_seed, schedule_seed)
    serial, _ = detect_from_log(log, resolved=resolved)
    for shards in SHARD_COUNTS:
        sharded = detect_sharded(log, shards, resolved=resolved)
        _assert_parity(serial, sharded)


@settings(max_examples=15, deadline=None)
@given(program_seeds, schedule_seeds)
def test_sharded_equals_on_the_fly(program_seed, schedule_seed):
    # One execution observed twice: a live detector attached to the
    # run, and a recording replayed through the sharded engine.  The
    # deterministic scheduler ignores the sink, so both see the same
    # event stream.
    source = generate_program(program_seed)

    resolved = compile_source(source)
    plan = plan_instrumentation(resolved, PlannerConfig())
    live = RaceDetector(resolved=resolved)
    log = RecordingSink()
    from repro.runtime import MulticastSink

    run_program(
        resolved,
        sink=MulticastSink([live, log]),
        trace_sites=plan.trace_sites,
        policy=RandomPolicy(schedule_seed),
        max_steps=3_000_000,
    )
    for shards in SHARD_COUNTS:
        sharded = detect_sharded(log, shards, resolved=resolved)
        _assert_parity(live, sharded)


@settings(max_examples=15, deadline=None)
@given(program_seeds, schedule_seeds)
def test_sharded_parity_under_fields_merged(program_seed, schedule_seed):
    # Coarsened keying routes by the same object uid, so sharding must
    # stay exact under the FieldsMerged configuration too.
    resolved, log = _record(program_seed, schedule_seed)
    config = DetectorConfig(fields_merged=True)
    serial, _ = detect_from_log(log, config=config, resolved=resolved)
    for shards in SHARD_COUNTS:
        sharded = detect_sharded(log, shards, config=config, resolved=resolved)
        _assert_parity(serial, sharded)


@settings(max_examples=10, deadline=None)
@given(program_seeds, schedule_seeds)
def test_sharded_parity_without_cache_is_counter_exact(
    program_seed, schedule_seed
):
    # With the caches disabled the redistribution degree of freedom
    # disappears: every counter must match exactly, shard by shard sum.
    resolved, log = _record(program_seed, schedule_seed)
    config = DetectorConfig(cache=False)
    serial, _ = detect_from_log(log, config=config, resolved=resolved)
    for shards in SHARD_COUNTS:
        sharded = detect_sharded(log, shards, config=config, resolved=resolved)
        _assert_parity(serial, sharded)
        assert sharded.stats == serial.stats


@settings(max_examples=15, deadline=None)
@given(program_seeds, schedule_seeds)
def test_sharded_parity_with_condition_sync(program_seed, schedule_seed):
    # Wait/notify/barrier events are broadcast to every shard (like
    # monitor events), so the paper detector's pass-through of them
    # must not perturb the funnel invariants.
    source = generate_program(
        program_seed, n_workers=3, n_fields=3, n_locks=2, handoff_bias=True
    )
    resolved = compile_source(source)
    plan = plan_instrumentation(resolved, PlannerConfig())
    log = RecordingSink()
    run_program(
        resolved,
        sink=log,
        trace_sites=plan.trace_sites,
        policy=RandomPolicy(schedule_seed),
        max_steps=3_000_000,
    )
    serial, _ = detect_from_log(log, resolved=resolved)
    for shards in SHARD_COUNTS:
        sharded = detect_sharded(log, shards, resolved=resolved)
        _assert_parity(serial, sharded)
