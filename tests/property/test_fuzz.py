"""Fuzz-driven differential properties over whole programs.

Hundreds of random-but-well-formed MJ programs (terminating,
deadlock-free by construction) are pushed through the entire stack:

* the interpreter completes them under multiple schedules, printing
  identical output for identical (program, schedule) pairs;
* loop peeling — an actual program transformation — preserves output
  exactly, per schedule;
* the full static pipeline (race set + weaker-than + peeling) never
  crashes and yields a trace set within bounds;
* the Definition 1 guarantee holds on the live event stream: the
  FullRace oracle's racy locations are covered by the unoptimized
  detector's reports;
* schedule record/replay reproduces the event stream bit-for-bit.
"""

from hypothesis import given, settings, strategies as st

from repro.detector import RaceDetector, ReferenceDetector
from repro.instrument import PlannerConfig, peel_loops, plan_instrumentation
from repro.lang import compile_source
from repro.runtime import (
    RandomPolicy,
    RecordingSink,
    record_run,
    replay_run,
    run_program,
)
from repro.workloads.fuzz import generate_program

program_seeds = st.integers(min_value=0, max_value=10_000)
schedule_seeds = st.integers(min_value=0, max_value=10_000)


@settings(max_examples=60, deadline=None)
@given(program_seeds, schedule_seeds)
def test_programs_terminate_deterministically(program_seed, schedule_seed):
    source = generate_program(program_seed)
    outputs = []
    for _ in range(2):
        resolved = compile_source(source)
        result = run_program(
            resolved, policy=RandomPolicy(schedule_seed), max_steps=3_000_000
        )
        outputs.append(result.output)
    assert outputs[0] == outputs[1]


@settings(max_examples=50, deadline=None)
@given(program_seeds, schedule_seeds)
def test_loop_peeling_preserves_semantics(program_seed, schedule_seed):
    # Single-worker programs: main blocks on the join, so execution is
    # sequential and the output is interleaving-independent.  (On racy
    # multi-worker programs peeling legitimately perturbs the schedule
    # — it changes the preemption-point structure — so outputs can
    # differ the same way two seeds' outputs differ.)
    source = generate_program(program_seed, n_workers=1)
    resolved_plain = compile_source(source)
    plain = run_program(
        resolved_plain, policy=RandomPolicy(schedule_seed), max_steps=3_000_000
    )
    resolved_peeled = compile_source(source)
    peel_loops(resolved_peeled)
    peeled = run_program(
        resolved_peeled, policy=RandomPolicy(schedule_seed), max_steps=3_000_000
    )
    assert peeled.output == plain.output


@settings(max_examples=30, deadline=None)
@given(program_seeds, schedule_seeds)
def test_loop_peeling_preserves_synchronized_totals(program_seed, schedule_seed):
    # Multi-worker version of the same property, on the schedule-
    # independent part of the state: every generated program's printed
    # values depend only on data, not schedule, once all accesses are
    # forced through one lock.  We approximate by checking the peeled
    # program still terminates and prints the same *number* of lines.
    source = generate_program(program_seed)
    resolved_plain = compile_source(source)
    plain = run_program(
        resolved_plain, policy=RandomPolicy(schedule_seed), max_steps=3_000_000
    )
    resolved_peeled = compile_source(source)
    peel_loops(resolved_peeled)
    peeled = run_program(
        resolved_peeled, policy=RandomPolicy(schedule_seed), max_steps=3_000_000
    )
    assert len(peeled.output) == len(plain.output)


@settings(max_examples=40, deadline=None)
@given(program_seeds)
def test_full_static_pipeline_is_robust(program_seed):
    source = generate_program(program_seed)
    resolved = compile_source(source)
    plan = plan_instrumentation(resolved, PlannerConfig())
    assert plan.stats.sites_instrumented <= len(resolved.sites)
    for site_id in plan.trace_sites:
        assert site_id in resolved.sites


@settings(max_examples=40, deadline=None)
@given(program_seeds, schedule_seeds)
def test_definition1_on_live_streams(program_seed, schedule_seed):
    source = generate_program(program_seed)
    resolved = compile_source(source)
    recording = RecordingSink()
    run_program(
        resolved,
        sink=recording,
        policy=RandomPolicy(schedule_seed),
        max_steps=3_000_000,
    )
    oracle = ReferenceDetector()
    detector = RaceDetector()
    recording.replay_into(oracle)
    recording.replay_into(detector)
    assert oracle.racy_locations <= detector.reports.racy_locations


@settings(max_examples=30, deadline=None)
@given(program_seeds, schedule_seeds)
def test_record_replay_reproduces_event_stream(program_seed, schedule_seed):
    source = generate_program(program_seed)
    resolved = compile_source(source)
    original = RecordingSink()
    _, trace = record_run(
        resolved,
        sink=original,
        inner_policy=RandomPolicy(schedule_seed),
        max_steps=3_000_000,
    )
    resolved2 = compile_source(source)
    replayed = RecordingSink()
    replay_run(resolved2, trace, sink=replayed, max_steps=3_000_000)
    assert replayed.log == original.log


# -- condition-synchronization vocabulary (sync_vocab / handoff_bias) -----


def test_default_vocabulary_emits_no_condition_sync():
    # Byte-stability contract: without the opt-in flags the generator
    # draws nothing from the sync vocabulary, so existing (seed →
    # program) mappings — and the committed corpus built on them —
    # cannot shift.
    for seed in range(40):
        source = generate_program(seed)
        assert "wait " not in source
        assert "notify" not in source
        assert "barrier " not in source
        assert "class Token" not in source


def test_sync_vocab_reaches_condition_statements():
    waits = barriers = 0
    for seed in range(30):
        source = generate_program(
            seed, n_workers=3, n_fields=3, n_locks=2, sync_vocab=True
        )
        if "wait " in source:
            # Every emitted wait sits under a guard released by a
            # published flag + notifyall.
            assert "notifyall" in source
            waits += 1
        if "barrier " in source:
            barriers += 1
    assert waits > 0 and barriers > 0


def test_handoff_bias_threads_tokens_through_handshakes():
    tokens = 0
    for seed in range(30):
        source = generate_program(
            seed, n_workers=3, n_fields=3, n_locks=2, handoff_bias=True
        )
        if "class Token" in source:
            assert ".v =" in source or ".v;" in source
            tokens += 1
    assert tokens > 0


@settings(max_examples=40, deadline=None)
@given(program_seeds, schedule_seeds)
def test_sync_vocab_programs_terminate_deterministically(
    program_seed, schedule_seed
):
    # Deadlock freedom by construction: flags are published (set +
    # notifyall) before any blocking statement, barriers use a global
    # party count between top-level phases, and guard re-checks absorb
    # spurious or early wakeups.  Plus the usual determinism contract.
    source = generate_program(
        program_seed, n_workers=3, n_fields=3, n_locks=2, sync_vocab=True
    )
    outputs = []
    for _ in range(2):
        resolved = compile_source(source)
        result = run_program(
            resolved, policy=RandomPolicy(schedule_seed), max_steps=3_000_000
        )
        outputs.append(result.output)
    assert outputs[0] == outputs[1]


@settings(max_examples=25, deadline=None)
@given(program_seeds, schedule_seeds)
def test_handoff_bias_record_replay_reproduces_event_stream(
    program_seed, schedule_seed
):
    # Notify wakeup choices (pick_waiter) are scheduling decisions:
    # the recorded trace must reproduce the log bit-for-bit, waits,
    # notifies and all.
    source = generate_program(
        program_seed, n_workers=3, n_fields=3, n_locks=2, handoff_bias=True
    )
    resolved = compile_source(source)
    original = RecordingSink()
    _, trace = record_run(
        resolved,
        sink=original,
        inner_policy=RandomPolicy(schedule_seed),
        max_steps=3_000_000,
    )
    replayed = RecordingSink()
    replay_run(compile_source(source), trace, sink=replayed, max_steps=3_000_000)
    assert replayed.log == original.log
