"""Property-based tests for the weaker-than relation (Section 3.1).

Hypothesis generates arbitrary access events; we check the partial-order
laws and — most importantly — Theorem 1, the soundness statement the
entire optimization stack rests on.
"""

from hypothesis import given, strategies as st

from repro.detector import (
    THREAD_BOTTOM,
    StoredAccess,
    access_leq,
    access_meet,
    is_race,
    thread_leq,
    thread_meet,
    weaker_than,
)
from repro.lang.ast import AccessKind

locations = st.sampled_from(["m1", "m2", "m3"])
concrete_threads = st.integers(min_value=0, max_value=4)
threads = st.one_of(concrete_threads, st.just(THREAD_BOTTOM))
locksets = st.frozensets(st.integers(min_value=1, max_value=6), max_size=4)
kinds = st.sampled_from([AccessKind.READ, AccessKind.WRITE])


def accesses(thread_strategy=threads):
    return st.builds(
        StoredAccess,
        location=locations,
        thread=thread_strategy,
        lockset=locksets,
        kind=kinds,
    )


class TestPartialOrderLaws:
    @given(accesses())
    def test_reflexive(self, p):
        assert weaker_than(p, p)

    @given(accesses(), accesses(), accesses())
    def test_transitive(self, p, q, r):
        if weaker_than(p, q) and weaker_than(q, r):
            assert weaker_than(p, r)

    @given(accesses(), accesses())
    def test_antisymmetric(self, p, q):
        if weaker_than(p, q) and weaker_than(q, p):
            assert p == q

    @given(threads, threads, threads)
    def test_thread_meet_is_lower_bound(self, a, b, c):
        meet = thread_meet(a, b)
        assert thread_leq(meet, a)
        assert thread_leq(meet, b)

    @given(kinds, kinds)
    def test_access_meet_is_lower_bound(self, a, b):
        meet = access_meet(a, b)
        assert access_leq(meet, a)
        assert access_leq(meet, b)

    @given(threads, threads)
    def test_thread_meet_commutative(self, a, b):
        assert thread_meet(a, b) == thread_meet(b, a)

    @given(threads, threads, threads)
    def test_thread_meet_associative(self, a, b, c):
        assert thread_meet(thread_meet(a, b), c) == thread_meet(
            a, thread_meet(b, c)
        )


class TestTheorem1:
    @given(
        accesses(),
        accesses(st.just(0) | concrete_threads),
        accesses(concrete_threads),
    )
    def test_weaker_preserves_future_races(self, p, q, r):
        """p ⊑ q ⟹ (IsRace(q, r) ⟹ IsRace(p, r)).

        q and r have concrete threads (a new access cannot be t⊥); p
        may be merged history (t⊥).  For a t⊥ p, "IsRace" means the
        merged node would race, which the trie realizes via Case II —
        here we check the underlying lockset/kind implications by
        instantiating p's thread with "some thread different from
        r's", which t⊥ guarantees exists.
        """
        if not isinstance(q.thread, int):
            return
        if not weaker_than(p, q):
            return
        if not is_race(q, r):
            return
        # Lockset and kind implications:
        assert p.location == r.location
        assert not (p.lockset & r.lockset)
        assert (
            p.kind is AccessKind.WRITE
            or r.kind is AccessKind.WRITE
            or q.kind is not AccessKind.WRITE
        )
        if isinstance(p.thread, int):
            assert p.thread != r.thread
            assert is_race(p, r)

    @given(accesses(concrete_threads), accesses(concrete_threads))
    def test_is_race_symmetric(self, a, b):
        assert is_race(a, b) == is_race(b, a)

    @given(accesses(concrete_threads))
    def test_never_races_with_itself(self, a):
        assert not is_race(a, a)
