"""Shared helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.detector import DetectorConfig, RaceDetector
from repro.instrument import PlannerConfig, plan_instrumentation
from repro.lang import compile_source
from repro.runtime import RandomPolicy, RoundRobinPolicy, run_program


def run_source(source: str, seed=None, sink=None, trace_sites=None, max_steps=2_000_000):
    """Compile and execute MJ source; returns the RunResult."""
    resolved = compile_source(source)
    policy = RandomPolicy(seed) if seed is not None else RoundRobinPolicy()
    return run_program(
        resolved, sink=sink, trace_sites=trace_sites, policy=policy,
        max_steps=max_steps,
    )


def detect(source: str, seed=None, detector_config=None, planner_config=None):
    """Full pipeline: compile, plan, run with a detector; returns it."""
    resolved = compile_source(source)
    plan = plan_instrumentation(
        resolved, planner_config if planner_config is not None else PlannerConfig()
    )
    detector = RaceDetector(
        config=detector_config if detector_config is not None else DetectorConfig(),
        resolved=resolved,
    )
    policy = RandomPolicy(seed) if seed is not None else RoundRobinPolicy()
    run_program(resolved, sink=detector, trace_sites=plan.trace_sites, policy=policy)
    return detector


def detect_unoptimized(source: str, seed=None, detector_config=None):
    """Run with every access site traced (no static phases at all)."""
    resolved = compile_source(source)
    detector = RaceDetector(
        config=detector_config if detector_config is not None else DetectorConfig(),
        resolved=resolved,
    )
    policy = RandomPolicy(seed) if seed is not None else RoundRobinPolicy()
    run_program(resolved, sink=detector, trace_sites=None, policy=policy)
    return detector


@pytest.fixture
def racy_two_writer_source() -> str:
    """Two threads increment a shared counter with no locks."""
    return """
    class Main {
      static def main() {
        var s = new Shared();
        s.x = 0;
        var a = new Worker(s);
        var b = new Worker(s);
        start a; start b;
        join a; join b;
        print s.x;
      }
    }
    class Shared { field x; }
    class Worker {
      field target;
      def init(s) { this.target = s; }
      def run() {
        var t = this.target;
        t.x = t.x + 1;
      }
    }
    """


@pytest.fixture
def safe_two_writer_source() -> str:
    """Two threads increment a shared counter under a common lock."""
    return """
    class Main {
      static def main() {
        var s = new Shared();
        s.x = 0;
        var a = new Worker(s);
        var b = new Worker(s);
        start a; start b;
        join a; join b;
        print s.x;
      }
    }
    class Shared { field x; }
    class Worker {
      field target;
      def init(s) { this.target = s; }
      def run() {
        var t = this.target;
        sync (t) {
          t.x = t.x + 1;
        }
      }
    }
    """
