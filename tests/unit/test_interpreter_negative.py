"""Negative-path interpreter tests: every runtime error fires correctly."""

import pytest

from repro.lang import MJRuntimeError

from ..conftest import run_source


def expect_error(body: str, extra: str = "", fragment: str = ""):
    source = "class Main { static def main() { " + body + " } }\n" + extra
    with pytest.raises(MJRuntimeError) as excinfo:
        run_source(source)
    if fragment:
        assert fragment in str(excinfo.value)
    return excinfo.value


class TestCallErrors:
    def test_call_on_integer(self):
        expect_error("var x = 1; x.m();", fragment="cannot call")

    def test_call_on_null(self):
        expect_error(
            "var x = null; x.m();", fragment="null dereference"
        )

    def test_static_method_via_instance_rejected(self):
        expect_error(
            "var p = new P(); p.s();",
            "class P { static def s() { } }",
            fragment="no instance method",
        )

    def test_unknown_method_on_instance(self):
        expect_error(
            "var p = new P(); p.ghost();", "class P { }",
            fragment="no instance method",
        )

    def test_arity_error_names_method(self):
        error = expect_error(
            "var p = new P(); p.m(1, 2, 3);",
            "class P { def m(a) { } }",
        )
        assert "P.m" in str(error)


class TestMemoryErrors:
    def test_sync_on_integer(self):
        expect_error("sync (5) { }", fragment="sync requires an object")

    def test_sync_on_null(self):
        expect_error("var x = null; sync (x) { }", fragment="sync requires")

    def test_field_on_string(self):
        expect_error('var s = "str"; print s.f;', fragment="cannot read")

    def test_field_write_on_array(self):
        expect_error(
            "var a = newarray(2); a.f = 1;",
            fragment="cannot write field",
        )

    def test_array_read_on_object(self):
        expect_error(
            "var p = new P(); print p[0];", "class P { }",
            fragment="array read applied",
        )

    def test_array_write_on_null(self):
        expect_error("var a = null; a[0] = 1;", fragment="null dereference")

    def test_array_length_write_rejected(self):
        expect_error(
            "var a = newarray(2); a.length = 5;",
            fragment="cannot write field",
        )

    def test_error_location_points_to_source(self):
        error = expect_error("var x = null;\nprint x.f;", "class D { field f; }")
        assert error.location is not None
        assert error.location.line == 2


class TestThreadErrors:
    def test_start_on_null(self):
        expect_error("var x = null; start x;", fragment="start requires")

    def test_start_on_non_thread_value(self):
        expect_error("start 5;", fragment="start requires")

    def test_join_on_int(self):
        expect_error("join 5;", fragment="join requires")

    def test_start_class_with_static_run_rejected(self):
        expect_error(
            "var p = new P(); start p;",
            "class P { static def run() { } }",
            fragment="no 'run' method",
        )

    def test_errors_in_child_thread_propagate(self):
        expect_error(
            "var w = new W(); start w; join w;",
            "class W { def run() { var x = null; print x.f; } }",
            fragment="null dereference",
        )
