"""Unit tests for the MJ lexer."""

import pytest

from repro.lang import LexError, tokenize
from repro.lang.tokens import TokenKind


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestBasicTokens:
    def test_empty_input_yields_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_whitespace_only_yields_eof(self):
        assert kinds("  \t \n\r\n ") == [TokenKind.EOF]

    def test_integer_literal(self):
        token = tokenize("42")[0]
        assert token.kind is TokenKind.INT
        assert token.value == 42

    def test_zero(self):
        assert tokenize("0")[0].value == 0

    def test_large_integer(self):
        assert tokenize("123456789012345")[0].value == 123456789012345

    def test_identifier(self):
        token = tokenize("fooBar_12")[0]
        assert token.kind is TokenKind.IDENT
        assert token.text == "fooBar_12"

    def test_identifier_leading_underscore(self):
        assert tokenize("_x")[0].kind is TokenKind.IDENT

    @pytest.mark.parametrize(
        "keyword,kind",
        [
            ("class", TokenKind.CLASS),
            ("extends", TokenKind.EXTENDS),
            ("field", TokenKind.FIELD),
            ("static", TokenKind.STATIC),
            ("def", TokenKind.DEF),
            ("sync", TokenKind.SYNC),
            ("var", TokenKind.VAR),
            ("if", TokenKind.IF),
            ("else", TokenKind.ELSE),
            ("while", TokenKind.WHILE),
            ("return", TokenKind.RETURN),
            ("print", TokenKind.PRINT),
            ("assert", TokenKind.ASSERT),
            ("start", TokenKind.START),
            ("join", TokenKind.JOIN),
            ("new", TokenKind.NEW),
            ("newarray", TokenKind.NEWARRAY),
            ("true", TokenKind.TRUE),
            ("false", TokenKind.FALSE),
            ("null", TokenKind.NULL),
            ("this", TokenKind.THIS),
        ],
    )
    def test_keywords(self, keyword, kind):
        assert tokenize(keyword)[0].kind is kind

    def test_keyword_prefix_is_identifier(self):
        # "classes" starts with the keyword "class" but is an identifier.
        assert tokenize("classes")[0].kind is TokenKind.IDENT

    @pytest.mark.parametrize(
        "op,kind",
        [
            ("==", TokenKind.EQ),
            ("!=", TokenKind.NE),
            ("<=", TokenKind.LE),
            (">=", TokenKind.GE),
            ("&&", TokenKind.AND),
            ("||", TokenKind.OR),
            ("<", TokenKind.LT),
            (">", TokenKind.GT),
            ("=", TokenKind.ASSIGN),
            ("!", TokenKind.NOT),
            ("+", TokenKind.PLUS),
            ("-", TokenKind.MINUS),
            ("*", TokenKind.STAR),
            ("/", TokenKind.SLASH),
            ("%", TokenKind.PERCENT),
        ],
    )
    def test_operators(self, op, kind):
        assert tokenize(op)[0].kind is kind

    def test_two_char_operator_beats_one_char(self):
        # "<=" must not lex as "<" then "=".
        assert kinds("a <= b")[:3] == [
            TokenKind.IDENT,
            TokenKind.LE,
            TokenKind.IDENT,
        ]


class TestStrings:
    def test_simple_string(self):
        token = tokenize('"hello"')[0]
        assert token.kind is TokenKind.STRING
        assert token.value == "hello"

    def test_empty_string(self):
        assert tokenize('""')[0].value == ""

    def test_escapes(self):
        assert tokenize(r'"a\nb\tc\"d\\e"')[0].value == 'a\nb\tc"d\\e'

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"oops')

    def test_newline_in_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"a\nb"')

    def test_invalid_escape_raises(self):
        with pytest.raises(LexError):
            tokenize(r'"\q"')


class TestComments:
    def test_line_comment_skipped(self):
        assert kinds("1 // comment\n2") == [
            TokenKind.INT,
            TokenKind.INT,
            TokenKind.EOF,
        ]

    def test_line_comment_at_eof(self):
        assert kinds("1 // trailing") == [TokenKind.INT, TokenKind.EOF]

    def test_block_comment_skipped(self):
        assert kinds("1 /* x\ny */ 2") == [
            TokenKind.INT,
            TokenKind.INT,
            TokenKind.EOF,
        ]

    def test_block_comment_with_stars(self):
        assert kinds("/* ** * */ 7") == [TokenKind.INT, TokenKind.EOF]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("/* never ends")


class TestLocations:
    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].location.line == 1
        assert tokens[0].location.column == 1
        assert tokens[1].location.line == 2
        assert tokens[1].location.column == 3

    def test_filename_propagates(self):
        token = tokenize("x", filename="prog.mj")[0]
        assert token.location.filename == "prog.mj"

    def test_unexpected_character_reports_location(self):
        with pytest.raises(LexError) as excinfo:
            tokenize("a\n  @")
        assert excinfo.value.location.line == 2
        assert excinfo.value.location.column == 3


class TestRealisticInput:
    def test_method_declaration(self):
        source = "sync def foo(a, b) { return a + b; }"
        assert kinds(source) == [
            TokenKind.SYNC,
            TokenKind.DEF,
            TokenKind.IDENT,
            TokenKind.LPAREN,
            TokenKind.IDENT,
            TokenKind.COMMA,
            TokenKind.IDENT,
            TokenKind.RPAREN,
            TokenKind.LBRACE,
            TokenKind.RETURN,
            TokenKind.IDENT,
            TokenKind.PLUS,
            TokenKind.IDENT,
            TokenKind.SEMI,
            TokenKind.RBRACE,
            TokenKind.EOF,
        ]

    def test_field_access_chain(self):
        assert texts("a.b.c") == ["a", ".", "b", ".", "c"]
