"""Unit tests for the difflab's declarative core.

The expectation matrix is exercised with hand-built Verdict objects —
no interpreter involved — so every classification path (each expected
class, each violation class, the mode- and sharded-parity checks) is
pinned independently of what the fuzzer happens to generate.
"""

import pytest

from repro.difflab import (
    EXPECTED,
    MATRIX,
    VIOLATION,
    ScheduleSpec,
    Verdict,
    case_classes,
    classify_case,
    count_statements,
    expected_classes,
    fingerprint,
    lock_order_ascending,
    violation_classes,
)
from repro.difflab.lab import CaseResult
from repro.runtime import RandomPolicy, RoundRobinPolicy
from repro.runtime.replay import FallbackReplayPolicy


def verdict(name, locations=(), objects=(), races=0, counters=()):
    return Verdict(
        detector=name,
        locations=frozenset(locations),
        objects=frozenset(objects),
        races=races,
        counters=tuple(counters),
    )


def paper_counters(**overrides):
    base = {
        "accesses": 10,
        "owned_filtered": 2,
        "detector_processed": 8,
        "filtered_sum": 3,
        "monitored_locations": 4,
        "trie_nodes": 5,
        "report_signature": (),
    }
    base.update(overrides)
    return tuple(base.items())


class TestScheduleSpec:
    def test_roundtrip_all_kinds(self):
        for spec in (
            ScheduleSpec(kind="roundrobin"),
            ScheduleSpec(kind="random", seed=7),
            ScheduleSpec(kind="prefix", choices=(0, 1, 1, 0)),
        ):
            assert ScheduleSpec.from_json(spec.to_json()) == spec

    def test_policy_types(self):
        assert isinstance(ScheduleSpec(kind="roundrobin").policy(),
                          RoundRobinPolicy)
        assert isinstance(ScheduleSpec(kind="random", seed=3).policy(),
                          RandomPolicy)
        assert isinstance(
            ScheduleSpec(kind="prefix", choices=(1, 0)).policy(),
            FallbackReplayPolicy,
        )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ScheduleSpec(kind="quantum").policy()

    def test_describe(self):
        assert ScheduleSpec(kind="roundrobin").describe() == "round-robin"
        assert "seed=4" in ScheduleSpec(kind="random", seed=4).describe()
        assert "2 steps" in ScheduleSpec(
            kind="prefix", choices=(0, 1)
        ).describe()


class TestMatrixShape:
    def test_class_inventories(self):
        assert set(expected_classes()) == {
            "eraser-single-lock-fp",
            "eraser-deferral-miss",
            "feasible-race-gap",
            "object-granularity-fp",
            "object-deferral-miss",
            "ownership-suppressed",
            "ownership-timing-shift",
            "static-elimination-miss",
            "predicted-not-observed",
            "lockset-fp-refuted",
        }
        assert set(violation_classes()) == {
            "definition1-miss",
            "precision-loss",
            "ownership-admitted-extra",
            "hb-inclusion-break",
            "mode-parity-break",
            "sharded-parity-break",
            "binlog-parity-break",
            "predictive-superset-break",
            "hybrid-exceeds-shb",
            "hybrid-lockset-break",
        }

    def test_every_row_names_sides_and_reason(self):
        for row in MATRIX:
            assert row.domain in ("locations", "objects")
            assert row.why
            assert row.on_left_extra or row.on_right_extra


class TestClassification:
    def test_agreement_is_silent(self):
        verdicts = {
            "reference": verdict("reference", {"#1.f0"}),
            "paper": verdict("paper", {"#1.f0"}),
        }
        assert classify_case(verdicts) == []

    def test_definition1_miss_is_violation(self):
        verdicts = {
            "reference": verdict("reference", {"#1.f0", "#1.f1"}),
            "paper": verdict("paper", {"#1.f0"}),
        }
        (d,) = classify_case(verdicts)
        assert d.klass == "definition1-miss"
        assert d.classification == VIOLATION
        assert d.items == ("#1.f1",)

    def test_precision_loss_is_violation(self):
        verdicts = {
            "reference": verdict("reference"),
            "paper": verdict("paper", {"#1.f0"}),
        }
        (d,) = classify_case(verdicts)
        assert d.klass == "precision-loss"
        assert d.is_violation

    def test_ownership_suppressed_is_expected(self):
        verdicts = {
            "paper": verdict("paper"),
            "reference-raw": verdict("reference-raw", {"#2.s"}),
        }
        (d,) = classify_case(verdicts)
        assert d.klass == "ownership-suppressed"
        assert d.classification == EXPECTED

    def test_hb_inclusion_break_vs_feasible_gap(self):
        verdicts = {
            "hb": verdict("hb", {"#1.f0"}),
            "reference-raw": verdict("reference-raw", {"#1.f1"}),
        }
        classes = {d.klass: d for d in classify_case(verdicts)}
        assert classes["hb-inclusion-break"].is_violation
        assert not classes["feasible-race-gap"].is_violation

    def test_eraser_row_expected_both_ways(self):
        verdicts = {
            "eraser": verdict("eraser", {"#1.f0"}),
            "paper": verdict("paper", {"#1.f1"}),
        }
        classes = {d.klass for d in classify_case(verdicts)}
        assert classes == {"eraser-single-lock-fp", "eraser-deferral-miss"}
        assert all(not d.is_violation for d in classify_case(verdicts))

    def test_object_row_uses_object_domain(self):
        verdicts = {
            "objectrace": verdict("objectrace", objects={"Shared#1"}),
            "paper": verdict("paper", {"#1.f0"}),  # locations ignored here
        }
        (d,) = classify_case(verdicts)
        assert d.klass == "object-granularity-fp"
        assert d.domain == "objects"

    def test_missing_detectors_skip_rows(self):
        # Injection runs drop the sharded battery; static axis optional.
        verdicts = {"paper": verdict("paper", {"#1.f0"})}
        assert classify_case(verdicts) == []


class TestPredictiveClassification:
    """The three predictive matrix rows, each direction pinned."""

    def test_predicted_not_observed_is_expected(self):
        verdicts = {
            "shb": verdict("shb", {"#1.x", "#1.y"}),
            "hb": verdict("hb", {"#1.y"}),
        }
        (d,) = classify_case(verdicts)
        assert d.klass == "predicted-not-observed"
        assert d.classification == EXPECTED
        assert d.items == ("#1.x",)

    def test_predictive_superset_break_is_violation(self):
        # An HB-observed race the predictor missed: the superset
        # theorem is broken, which only a detector bug can cause.
        verdicts = {
            "shb": verdict("shb"),
            "hb": verdict("hb", {"#1.x"}),
        }
        (d,) = classify_case(verdicts)
        assert d.klass == "predictive-superset-break"
        assert d.is_violation

    def test_hybrid_exceeds_shb_is_violation(self):
        verdicts = {
            "hybrid": verdict("hybrid", {"#1.x"}),
            "shb": verdict("shb"),
        }
        classes = {d.klass: d for d in classify_case(verdicts)}
        assert classes["hybrid-exceeds-shb"].is_violation

    def test_hybrid_filtering_shb_is_silent(self):
        # The conjunct dropping pure-SHB false positives is the design
        # working, not a discrepancy class.
        verdicts = {
            "hybrid": verdict("hybrid"),
            "shb": verdict("shb", {"#1.x"}),
        }
        assert classify_case(verdicts) == []

    def test_lockset_fp_refuted_is_expected(self):
        verdicts = {
            "hybrid": verdict("hybrid"),
            "reference-raw": verdict("reference-raw", {"#2.s"}),
        }
        (d,) = classify_case(verdicts)
        assert d.klass == "lockset-fp-refuted"
        assert d.classification == EXPECTED

    def test_hybrid_lockset_break_is_violation(self):
        verdicts = {
            "hybrid": verdict("hybrid", {"#1.x"}),
            "reference-raw": verdict("reference-raw"),
        }
        classes = {d.klass: d for d in classify_case(verdicts)}
        assert classes["hybrid-lockset-break"].is_violation

    def test_agreement_across_predictive_axes_is_silent(self):
        verdicts = {
            "hb": verdict("hb", {"#1.x"}),
            "shb": verdict("shb", {"#1.x"}),
            "hybrid": verdict("hybrid", {"#1.x"}),
            "reference-raw": verdict("reference-raw", {"#1.x"}),
        }
        assert classify_case(verdicts) == []


class TestFindHelpers:
    def test_class_items_collects_sorted_union(self):
        from repro.difflab import class_items

        verdicts = {
            "shb": verdict("shb", {"#1.y", "#1.x"}),
            "hb": verdict("hb"),
        }
        result = CaseResult(
            label="synthetic",
            source="",
            schedule=ScheduleSpec(),
            discrepancies=classify_case(verdicts),
        )
        assert class_items(result, "predicted-not-observed") == (
            "#1.x", "#1.y",
        )
        assert class_items(result, "lockset-fp-refuted") == ()

    def test_campaign_summary_lists_finds(self):
        from repro.difflab import Find
        from repro.difflab.lab import CampaignResult
        from repro.difflab.shrink import ShrinkStats

        result = CampaignResult(cases_run=1)
        result.finds.append(Find(
            fingerprint="cafebabe",
            klass="predicted-not-observed",
            source="",
            schedule=ScheduleSpec(),
            original_label="fuzz-0",
            stats=ShrinkStats(),
            items=("#1.x",),
            witness={"location": "#1.x", "choices": [0, 1]},
        ))
        result.finds.append(Find(
            fingerprint="deadbeef",
            klass="lockset-fp-refuted",
            source="",
            schedule=ScheduleSpec(),
            original_label="fuzz-1",
            stats=ShrinkStats(),
            items=("#2.s",),
        ))
        summary = result.summary()
        assert "FIND cafebabe [predicted-not-observed] (with witness)" in summary
        assert "FIND deadbeef [lockset-fp-refuted] (no witness)" in summary


class TestParityChecks:
    def test_mode_parity_break(self):
        verdicts = {
            "paper-live": verdict("paper-live", {"#1.f0"}, races=1),
            "paper": verdict("paper", races=0),
        }
        (d,) = classify_case(verdicts)
        assert d.klass == "mode-parity-break"
        assert d.is_violation

    def test_sharded_parity_checks_counters_not_just_reports(self):
        verdicts = {
            "paper": verdict("paper", {"#1.f0"}, races=1,
                             counters=paper_counters()),
            "paper-sharded-2": verdict(
                "paper-sharded-2", {"#1.f0"}, races=1,
                counters=paper_counters(trie_nodes=99),
            ),
        }
        (d,) = classify_case(verdicts, shards=(2,))
        assert d.klass == "sharded-parity-break"
        assert "trie_nodes" in d.detail

    def test_sharded_parity_ok(self):
        verdicts = {
            "paper": verdict("paper", {"#1.f0"}, races=1,
                             counters=paper_counters()),
            "paper-sharded-2": verdict(
                "paper-sharded-2", {"#1.f0"}, races=1,
                counters=paper_counters(),
            ),
        }
        assert classify_case(verdicts, shards=(2,)) == []


class TestCaseHelpers:
    def _result(self):
        verdicts = {
            "reference": verdict("reference", {"#1.f0"}),
            "paper": verdict("paper"),
            "reference-raw": verdict("reference-raw", {"#2.s"}),
        }
        return CaseResult(
            label="synthetic",
            source="",
            schedule=ScheduleSpec(),
            discrepancies=classify_case(verdicts),
        )

    def test_case_classes_split(self):
        result = self._result()
        assert case_classes(result) == {"definition1-miss"}
        assert case_classes(result, violations_only=False) == {
            "definition1-miss",
            "ownership-suppressed",
        }

    def test_fingerprint_stable_and_sensitive(self):
        rr = ScheduleSpec(kind="roundrobin")
        a = fingerprint("src", rr, ["x"])
        assert a == fingerprint("src", rr, ["x"])
        assert a != fingerprint("src2", rr, ["x"])
        assert a != fingerprint("src", ScheduleSpec(kind="random"), ["x"])
        assert a != fingerprint("src", rr, ["y"])


class TestSourceMetrics:
    SOURCE = """\
class Main {
  static def main() {
    var shared = new Shared();
    var w0 = new Worker0(shared);
    start w0;
    while (shared.f0 < 1) {
      shared.f0 = 1;
    }
    join w0;
  }
}
class Shared { field f0; }
class Worker0 {
  field s;
  def init(shared) { this.s = shared; }
  def run() { }
}
"""

    def test_count_statements(self):
        # 5 semicolon-terminated lines + the while header; class/field
        # declarations and one-line method bodies don't count.
        assert count_statements(self.SOURCE) == 6

    def test_lock_order_ascending(self):
        good = "sync (this.lock0) {\n  sync (this.lock1) {\n  }\n}\n"
        bad = "sync (this.lock1) {\n  sync (this.lock0) {\n  }\n}\n"
        assert lock_order_ascending(good)
        assert not lock_order_ascending(bad)
        assert lock_order_ascending(self.SOURCE)
