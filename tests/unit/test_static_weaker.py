"""Unit tests for the static weaker-than elimination (Section 6.1)."""

from repro.analysis import lower_program
from repro.instrument import eliminate_redundant_traces
from repro.lang import compile_source


def eliminate(body: str, extra: str = "", method: str = "Main.main"):
    source = "class Main { static def main() { " + body + " } }\n" + extra
    resolved = compile_source(source)
    function = lower_program(resolved)[method]
    result = eliminate_redundant_traces(function, traced_sites=None)
    sites = {
        info.site_id: info for info in resolved.sites.values()
    }
    return result, sites, resolved


def surviving_fields(body: str, extra: str = "") -> list:
    result, sites, resolved = eliminate(body, extra)
    survivors = [
        sites[sid].field_name
        for sid in sorted(sites)
        if sid not in result.eliminated
    ]
    return survivors


class TestStraightLine:
    def test_repeated_read_eliminated(self):
        result, sites, _ = eliminate(
            "var p = new P(); var a = p.f; var b = p.f;",
            "class P { field f; }",
        )
        assert len(result.eliminated) == 1

    def test_write_covers_subsequent_read(self):
        result, _, _ = eliminate(
            "var p = new P(); p.f = 1; var a = p.f;",
            "class P { field f; }",
        )
        assert len(result.eliminated) == 1

    def test_read_does_not_cover_write(self):
        result, _, _ = eliminate(
            "var p = new P(); var a = p.f; p.f = 1;",
            "class P { field f; }",
        )
        # The read survives AND the write survives (read not weaker
        # than write), but the *second* read-after-write would go.
        assert len(result.eliminated) == 0

    def test_repeated_write_eliminated(self):
        result, _, _ = eliminate(
            "var p = new P(); p.f = 1; p.f = 2;",
            "class P { field f; }",
        )
        assert len(result.eliminated) == 1

    def test_different_fields_not_eliminated(self):
        result, _, _ = eliminate(
            "var p = new P(); var a = p.f; var b = p.g;",
            "class P { field f; field g; }",
        )
        assert not result.eliminated

    def test_different_bases_not_eliminated(self):
        result, _, _ = eliminate(
            "var p = new P(); var q = new P(); var a = p.f; var b = q.f;",
            "class P { field f; }",
        )
        assert not result.eliminated

    def test_copy_of_base_still_matches(self):
        result, _, _ = eliminate(
            "var p = new P(); var q = p; var a = p.f; var b = q.f;",
            "class P { field f; }",
        )
        assert len(result.eliminated) == 1

    def test_static_field_repeat_eliminated(self):
        result, _, _ = eliminate(
            "var a = G.x; var b = G.x;", "class G { static field x; }"
        )
        assert len(result.eliminated) == 1

    def test_array_repeat_base_only_matching(self):
        # Footnote 1: one location per array — different indices still
        # hit the same location, so the second access is redundant.
        result, _, _ = eliminate(
            "var a = newarray(4); var x = a[0]; var y = a[1];"
        )
        assert len(result.eliminated) == 1

    def test_array_index_sensitive_mode_keeps_different_indices(self):
        source = (
            "class Main { static def main() { "
            "var a = newarray(4); var x = a[0]; var y = a[1]; } }"
        )
        resolved = compile_source(source)
        function = lower_program(resolved)["Main.main"]
        result = eliminate_redundant_traces(
            function, traced_sites=None, array_index_sensitive=True
        )
        assert not result.eliminated


class TestBarriers:
    def test_call_is_a_barrier(self):
        source = """
        class Main {
          static def nop() { }
          static def main() {
            var p = new P(); var a = p.f; nop(); var b = p.f;
          }
        }
        class P { field f; }
        """
        resolved = compile_source(source)
        function = lower_program(resolved)["Main.main"]
        result = eliminate_redundant_traces(function, traced_sites=None)
        assert not result.eliminated

    def test_constructor_call_is_a_barrier(self):
        result, _, _ = eliminate(
            "var p = new P(); var a = p.f; var q = new Q(1); var b = p.f;",
            "class P { field f; } class Q { field v; def init(v) { this.v = v; } }",
        )
        assert not result.eliminated

    def test_start_is_a_barrier(self):
        result, _, _ = eliminate(
            "var p = new P(); var w = new W(); var a = p.f; start w; var b = p.f;",
            "class P { field f; } class W { def run() { } }",
        )
        assert not result.eliminated

    def test_join_is_a_barrier(self):
        result, _, _ = eliminate(
            "var p = new P(); var w = new W(); start w; "
            "var a = p.f; join w; var b = p.f;",
            "class P { field f; } class W { def run() { } }",
        )
        assert not result.eliminated

    def test_plain_allocation_not_a_barrier(self):
        result, _, _ = eliminate(
            "var p = new P(); var a = p.f; var q = new P(); var b = p.f;",
            "class P { field f; }",
        )
        assert len(result.eliminated) == 1


class TestControlFlow:
    def test_dominating_read_covers_join_point_read(self):
        result, _, _ = eliminate(
            "var p = new P(); var a = p.f; if (a > 0) { } var b = p.f;",
            "class P { field f; }",
        )
        assert len(result.eliminated) == 1

    def test_branch_arm_does_not_cover_join_point(self):
        result, _, _ = eliminate(
            "var p = new P(); if (true) { var a = p.f; } var b = p.f;",
            "class P { field f; }",
        )
        assert not result.eliminated

    def test_access_in_both_arms_does_not_cover_join(self):
        # dom-based Exec: neither arm dominates the join.  (pdom would
        # help here; the paper explains why it is useless in Java.)
        result, _, _ = eliminate(
            "var p = new P(); if (true) { var a = p.f; } "
            "else { var c = p.f; } var b = p.f;",
            "class P { field f; }",
        )
        assert not result.eliminated

    def test_pre_loop_access_covers_in_loop_access(self):
        result, _, _ = eliminate(
            "var p = new P(); var a = p.f; var i = 0; "
            "while (i < 3) { var b = p.f; i = i + 1; }",
            "class P { field f; }",
        )
        assert len(result.eliminated) == 1

    def test_loop_with_call_blocks_coverage(self):
        source = """
        class Main {
          static def nop() { }
          static def main() {
            var p = new P(); var a = p.f; var i = 0;
            while (i < 3) { nop(); var b = p.f; i = i + 1; }
          }
        }
        class P { field f; }
        """
        resolved = compile_source(source)
        function = lower_program(resolved)["Main.main"]
        result = eliminate_redundant_traces(function, traced_sites=None)
        assert not result.eliminated

    def test_in_loop_access_covers_itself_across_iterations(self):
        # A single in-loop access: nothing else can cover it, and it
        # must not be eliminated by its own earlier iterations via an
        # unsound cycle.
        result, _, _ = eliminate(
            "var p = new P(); var i = 0; "
            "while (i < 3) { var b = p.f; i = i + 1; }",
            "class P { field f; }",
        )
        assert not result.eliminated

    def test_two_in_loop_accesses_one_eliminated(self):
        result, _, _ = eliminate(
            "var p = new P(); var i = 0; "
            "while (i < 3) { var a = p.f; var b = p.f; i = i + 1; }",
            "class P { field f; }",
        )
        assert len(result.eliminated) == 1


class TestSyncNesting:
    def test_same_sync_block_eliminates(self):
        result, _, _ = eliminate(
            "var p = new P(); sync (p) { var a = p.f; var b = p.f; }",
            "class P { field f; }",
        )
        assert len(result.eliminated) == 1

    def test_outer_covers_deeper_nesting(self):
        result, _, _ = eliminate(
            "var p = new P(); var l = new L(); "
            "var a = p.f; sync (l) { var b = p.f; }",
            "class P { field f; } class L { }",
        )
        assert len(result.eliminated) == 1

    def test_inner_does_not_cover_outer(self):
        result, _, _ = eliminate(
            "var p = new P(); var l = new L(); "
            "sync (l) { var a = p.f; } var b = p.f;",
            "class P { field f; } class L { }",
        )
        # `a`'s lockset {l} is not a subset guarantee for `b`'s {}.
        assert not result.eliminated

    def test_sibling_sync_blocks_do_not_cover(self):
        result, _, _ = eliminate(
            "var p = new P(); var l = new L(); "
            "sync (l) { var a = p.f; } sync (l) { var b = p.f; }",
            "class P { field f; } class L { }",
        )
        # Different acquisitions of the same lock: distinct sync ids,
        # and neither stack is a prefix of the other beyond the shared
        # root — the `outer` condition fails.
        assert not result.eliminated


class TestTracedSiteRestriction:
    def test_untraced_source_cannot_justify(self):
        source = (
            "class Main { static def main() { "
            "var p = new P(); var a = p.f; var b = p.f; } }\n"
            "class P { field f; }"
        )
        resolved = compile_source(source)
        function = lower_program(resolved)["Main.main"]
        first_site = min(resolved.sites)
        # Pretend static analysis pruned the first read: it emits no
        # event and must not justify removing the second.
        result = eliminate_redundant_traces(
            function, traced_sites={sid for sid in resolved.sites if sid != first_site}
        )
        assert not result.eliminated

    def test_justification_map_points_to_weaker_site(self):
        result, sites, resolved = eliminate(
            "var p = new P(); p.f = 1; var a = p.f;",
            "class P { field f; }",
        )
        ((eliminated, justifier),) = result.justification.items()
        assert sites[justifier].access_kind.value == "WRITE"
        assert sites[eliminated].access_kind.value == "READ"
