"""Unit tests for escape analysis and the thread-specific extension (§5.4)."""

from repro.analysis import analyze_escape, analyze_points_to
from repro.lang import compile_source


def analyze(body: str, extra: str = ""):
    source = "class Main { static def main() { " + body + " } }\n" + extra
    resolved = compile_source(source)
    pts = analyze_points_to(resolved)
    return resolved, pts, analyze_escape(resolved, pts)


def objects_of_class(pts, method, register, class_name):
    return [
        o
        for o in pts.may_point_to_register(method, register)
        if o.class_name == class_name
    ]


class TestThreadLocal:
    def test_unshared_object_is_thread_local(self):
        _, pts, esc = analyze("var p = new P();", "class P { field f; }")
        (obj,) = pts.may_point_to_register("Main.main", "p")
        assert esc.is_thread_local(obj)

    def test_object_in_static_field_escapes(self):
        _, pts, esc = analyze(
            "G.slot = new P();",
            "class G { static field slot; } class P { }",
        )
        (obj,) = pts.may_point_to_register("Main.main", "G") if False else (
            next(iter(pts.points_to(("static", "G", "slot")))),
        )
        assert not esc.is_thread_local(obj)
        assert obj in esc.shared_objects

    def test_started_thread_object_escapes(self):
        _, pts, esc = analyze(
            "var w = new W(); start w;", "class W { def run() { } }"
        )
        (obj,) = pts.may_point_to_register("Main.main", "w")
        assert not esc.is_thread_local(obj)

    def test_object_reachable_from_thread_escapes(self):
        _, pts, esc = analyze(
            "var w = new W(); var d = new D(); w.data = d; start w;",
            "class W { field data; def run() { } } class D { }",
        )
        (obj,) = pts.may_point_to_register("Main.main", "d")
        assert not esc.is_thread_local(obj)

    def test_transitively_reachable_escapes(self):
        _, pts, esc = analyze(
            "var w = new W(); var box = new Box(); box.inner = new D(); "
            "w.data = box; start w;",
            "class W { field data; def run() { } } "
            "class Box { field inner; } class D { }",
        )
        inner_objs = objects_of_class(pts, "Main.main", "box", "Box")
        assert inner_objs and not esc.is_thread_local(inner_objs[0])
        d_objs = [o for o in esc.shared_objects if o.class_name == "D"]
        assert d_objs

    def test_object_local_to_worker_thread(self):
        _, pts, esc = analyze(
            "var w = new W(); start w;",
            "class W { def run() { var scratch = new S(); scratch.v = 1; } } "
            "class S { field v; }",
        )
        s_objs = [
            o
            for o in pts.may_point_to_register("W.run", "scratch")
        ]
        assert s_objs and esc.is_thread_local(s_objs[0])


class TestThreadSpecificMethods:
    WORKER = """
    class W {
      field acc;
      def init() { this.acc = 0; }
      def step() { this.acc = this.acc + 1; }
      def run() { step(); }
    }
    """

    def test_init_and_run_are_thread_specific(self):
        _, _, esc = analyze("var w = new W(); start w;", self.WORKER)
        specific = esc.thread_specific_methods["W"]
        assert "W.init" in specific
        assert "W.run" in specific

    def test_this_passed_helper_is_thread_specific(self):
        _, _, esc = analyze("var w = new W(); start w;", self.WORKER)
        assert "W.step" in esc.thread_specific_methods["W"]

    def test_explicitly_invoked_run_not_thread_specific(self):
        _, _, esc = analyze(
            "var w = new W(); w.run(); start w;", self.WORKER
        )
        assert "W.run" not in esc.thread_specific_methods["W"]

    def test_externally_called_helper_not_thread_specific(self):
        _, _, esc = analyze(
            "var w = new W(); w.step(); start w;", self.WORKER
        )
        assert "W.step" not in esc.thread_specific_methods["W"]


class TestSafeThreads:
    def test_plain_constructor_safe(self):
        _, _, esc = analyze(
            "var w = new W(); start w;",
            "class W { field a; def init() { this.a = 0; } def run() { } }",
        )
        assert "W" in esc.safe_thread_classes

    def test_constructor_starting_thread_unsafe(self):
        _, _, esc = analyze(
            "var w = new W(new H()); start w;",
            "class H { def run() { } } "
            "class W { field h; def init(h) { this.h = h; start h; } "
            "def run() { } }",
        )
        assert "W" not in esc.safe_thread_classes

    def test_this_leak_via_field_unsafe(self):
        _, _, esc = analyze(
            "var reg = new Registry(); var w = new W(reg); start w;",
            "class Registry { field last; } "
            "class W { field r; def init(r) { this.r = r; r.last = this; } "
            "def run() { } }",
        )
        assert "W" not in esc.safe_thread_classes

    def test_this_leak_via_argument_unsafe(self):
        _, _, esc = analyze(
            "var w = new W(); start w;",
            "class W { def init() { Util.register(this); } def run() { } } "
            "class Util { static def register(x) { } }",
        )
        assert "W" not in esc.safe_thread_classes

    def test_no_constructor_safe(self):
        _, _, esc = analyze(
            "var w = new W(); start w;", "class W { def run() { } }"
        )
        assert "W" in esc.safe_thread_classes


class TestThreadSpecificFields:
    def test_this_only_field_is_thread_specific(self):
        _, _, esc = analyze(
            "var w = new W(); start w;",
            "class W { field acc; def init() { this.acc = 0; } "
            "def run() { this.acc = this.acc + 1; } }",
        )
        assert "acc" in esc.thread_specific_fields["W"]

    def test_externally_written_field_not_thread_specific(self):
        _, _, esc = analyze(
            "var w = new W(); w.acc = 5; start w;",
            "class W { field acc; def run() { this.acc = this.acc + 1; } }",
        )
        assert "acc" not in esc.thread_specific_fields["W"]

    def test_field_accessed_by_non_specific_method_not_thread_specific(self):
        _, _, esc = analyze(
            "var w = new W(); w.peek(); start w;",
            "class W { field acc; def peek() { return this.acc; } "
            "def run() { this.acc = 1; } }",
        )
        assert "acc" not in esc.thread_specific_fields["W"]
