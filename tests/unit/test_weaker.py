"""Unit tests for the weaker-than relation (Section 3.1)."""

import pytest

from repro.detector import (
    THREAD_BOTTOM,
    THREAD_TOP,
    StoredAccess,
    access_leq,
    access_meet,
    is_race,
    thread_leq,
    thread_meet,
    weaker_than,
)
from repro.lang.ast import AccessKind

READ = AccessKind.READ
WRITE = AccessKind.WRITE


def acc(loc="m", thread=1, locks=(), kind=READ):
    return StoredAccess(
        location=loc, thread=thread, lockset=frozenset(locks), kind=kind
    )


class TestThreadOrder:
    def test_reflexive(self):
        assert thread_leq(1, 1)
        assert thread_leq(THREAD_BOTTOM, THREAD_BOTTOM)

    def test_bottom_below_everything(self):
        assert thread_leq(THREAD_BOTTOM, 1)
        assert thread_leq(THREAD_BOTTOM, THREAD_TOP)

    def test_distinct_threads_incomparable(self):
        assert not thread_leq(1, 2)
        assert not thread_leq(2, 1)

    def test_top_not_below_concrete(self):
        assert not thread_leq(THREAD_TOP, 1)

    def test_concrete_not_below_bottom(self):
        assert not thread_leq(1, THREAD_BOTTOM)


class TestAccessOrder:
    def test_reflexive(self):
        assert access_leq(READ, READ)
        assert access_leq(WRITE, WRITE)

    def test_write_below_read(self):
        assert access_leq(WRITE, READ)

    def test_read_not_below_write(self):
        assert not access_leq(READ, WRITE)


class TestMeets:
    def test_thread_meet_identity(self):
        assert thread_meet(3, 3) == 3

    def test_thread_meet_with_top(self):
        assert thread_meet(THREAD_TOP, 5) == 5
        assert thread_meet(5, THREAD_TOP) == 5

    def test_thread_meet_distinct_is_bottom(self):
        assert thread_meet(1, 2) is THREAD_BOTTOM

    def test_thread_meet_with_bottom(self):
        assert thread_meet(THREAD_BOTTOM, 7) is THREAD_BOTTOM

    def test_access_meet(self):
        assert access_meet(READ, READ) is READ
        assert access_meet(WRITE, WRITE) is WRITE
        assert access_meet(READ, WRITE) is WRITE
        assert access_meet(WRITE, READ) is WRITE


class TestWeakerThan:
    def test_reflexive(self):
        a = acc(locks={1, 2}, kind=WRITE)
        assert weaker_than(a, a)

    def test_subset_lockset_is_weaker(self):
        assert weaker_than(acc(locks={1}), acc(locks={1, 2}))

    def test_superset_lockset_not_weaker(self):
        assert not weaker_than(acc(locks={1, 2}), acc(locks={1}))

    def test_different_location_never_weaker(self):
        assert not weaker_than(acc(loc="a"), acc(loc="b"))

    def test_write_weaker_than_read(self):
        assert weaker_than(acc(kind=WRITE), acc(kind=READ))

    def test_read_not_weaker_than_write(self):
        assert not weaker_than(acc(kind=READ), acc(kind=WRITE))

    def test_bottom_thread_weaker(self):
        assert weaker_than(acc(thread=THREAD_BOTTOM), acc(thread=3))

    def test_different_threads_incomparable(self):
        assert not weaker_than(acc(thread=1), acc(thread=2))

    def test_antisymmetry_on_strict_pair(self):
        p = acc(locks={1})
        q = acc(locks={1, 2})
        assert weaker_than(p, q) and not weaker_than(q, p)


class TestIsRace:
    def test_basic_write_write_race(self):
        assert is_race(acc(thread=1, kind=WRITE), acc(thread=2, kind=WRITE))

    def test_read_read_not_race(self):
        assert not is_race(acc(thread=1, kind=READ), acc(thread=2, kind=READ))

    def test_read_read_race_under_footnote2_mode(self):
        assert is_race(
            acc(thread=1, kind=READ), acc(thread=2, kind=READ),
            read_read_races=True,
        )

    def test_common_lock_prevents_race(self):
        assert not is_race(
            acc(thread=1, locks={9}, kind=WRITE),
            acc(thread=2, locks={9, 4}, kind=WRITE),
        )

    def test_same_thread_not_race(self):
        assert not is_race(acc(thread=1, kind=WRITE), acc(thread=1, kind=WRITE))

    def test_different_locations_not_race(self):
        assert not is_race(
            acc(loc="a", thread=1, kind=WRITE), acc(loc="b", thread=2, kind=WRITE)
        )

    def test_rejects_pseudothread(self):
        with pytest.raises(ValueError):
            is_race(acc(thread=THREAD_BOTTOM), acc(thread=2))


class TestTheorem1:
    """Spot-check the weaker-than theorem: p ⊑ q ∧ IsRace(q, r) ⟹ IsRace(p, r)."""

    @pytest.mark.parametrize(
        "p,q,r",
        [
            (
                acc(thread=1, locks={1}, kind=WRITE),
                acc(thread=1, locks={1, 2}, kind=READ),
                acc(thread=2, locks={3}, kind=WRITE),
            ),
            (
                acc(thread=1, locks=set(), kind=WRITE),
                acc(thread=1, locks={5}, kind=WRITE),
                acc(thread=3, locks={9}, kind=READ),
            ),
        ],
    )
    def test_examples(self, p, q, r):
        assert weaker_than(p, q)
        if is_race(q, r):
            assert is_race(p, r)
