"""Unit tests for the MJ parser."""

import pytest

from repro.lang import ParseError, ast, parse


def parse_stmts(body: str):
    program = parse(
        "class Main { static def main() { " + body + " } }"
    )
    return program.classes[0].methods[0].body.body


def parse_expr(expr: str):
    stmt = parse_stmts("var x = " + expr + ";")[0]
    return stmt.init


class TestClassDeclarations:
    def test_empty_class(self):
        program = parse("class A { }")
        assert len(program.classes) == 1
        assert program.classes[0].name == "A"
        assert program.classes[0].superclass is None

    def test_extends(self):
        program = parse("class A { } class B extends A { }")
        assert program.classes[1].superclass == "A"

    def test_fields(self):
        program = parse("class A { field x; static field y; }")
        fields = program.classes[0].fields
        assert [f.name for f in fields] == ["x", "y"]
        assert [f.is_static for f in fields] == [False, True]

    def test_method_modifiers(self):
        program = parse(
            "class A { def a() { } sync def b() { } "
            "static def c() { } static sync def d() { } }"
        )
        methods = program.classes[0].methods
        assert [(m.is_sync, m.is_static) for m in methods] == [
            (False, False),
            (True, False),
            (False, True),
            (True, True),
        ]

    def test_method_params(self):
        program = parse("class A { def m(p, q, r) { } }")
        assert program.classes[0].methods[0].params == ["p", "q", "r"]

    def test_missing_brace_raises(self):
        with pytest.raises(ParseError):
            parse("class A {")

    def test_stray_token_raises(self):
        with pytest.raises(ParseError):
            parse("class A { } ;")


class TestStatements:
    def test_var_decl(self):
        (stmt,) = parse_stmts("var x = 1;")
        assert isinstance(stmt, ast.VarDecl)
        assert stmt.name == "x"

    def test_local_assignment(self):
        stmts = parse_stmts("var x = 1; x = 2;")
        assert isinstance(stmts[1], ast.AssignLocal)

    def test_field_write(self):
        (stmt,) = parse_stmts("this.f = 1;")
        assert isinstance(stmt, ast.FieldWrite)
        assert stmt.field_name == "f"

    def test_array_write(self):
        (stmt,) = parse_stmts("a[0] = 1;")
        assert isinstance(stmt, ast.ArrayWrite)

    def test_nested_lvalue(self):
        (stmt,) = parse_stmts("a.b.c = 1;")
        assert isinstance(stmt, ast.FieldWrite)
        assert stmt.field_name == "c"
        assert isinstance(stmt.obj, ast.FieldRead)

    def test_if_without_else(self):
        (stmt,) = parse_stmts("if (true) { return; }")
        assert isinstance(stmt, ast.If)
        assert stmt.else_block is None

    def test_if_else(self):
        (stmt,) = parse_stmts("if (true) { } else { }")
        assert stmt.else_block is not None

    def test_else_if_chain(self):
        (stmt,) = parse_stmts("if (true) { } else if (false) { } else { }")
        nested = stmt.else_block.body[0]
        assert isinstance(nested, ast.If)
        assert nested.else_block is not None

    def test_while(self):
        (stmt,) = parse_stmts("while (true) { }")
        assert isinstance(stmt, ast.While)

    def test_sync(self):
        (stmt,) = parse_stmts("sync (this) { }")
        assert isinstance(stmt, ast.Sync)

    def test_start_join(self):
        stmts = parse_stmts("start t; join t;")
        assert isinstance(stmts[0], ast.Start)
        assert isinstance(stmts[1], ast.Join)

    def test_wait(self):
        (stmt,) = parse_stmts("wait this.cond;")
        assert isinstance(stmt, ast.Wait)
        assert isinstance(stmt.target, ast.FieldRead)

    def test_notify_and_notifyall(self):
        stmts = parse_stmts("notify c; notifyall c;")
        assert isinstance(stmts[0], ast.Notify)
        assert stmts[0].notify_all is False
        assert isinstance(stmts[1], ast.Notify)
        assert stmts[1].notify_all is True

    def test_barrier(self):
        (stmt,) = parse_stmts("barrier b, n + 1;")
        assert isinstance(stmt, ast.Barrier)
        assert isinstance(stmt.parties, ast.Binary)

    def test_wait_takes_arbitrary_expression(self):
        (stmt,) = parse_stmts("wait this.pool.slot;")
        assert isinstance(stmt.target, ast.FieldRead)

    def test_wait_requires_target(self):
        with pytest.raises(ParseError):
            parse_stmts("wait;")

    def test_barrier_requires_parties(self):
        with pytest.raises(ParseError):
            parse_stmts("barrier b;")

    def test_sync_keywords_not_identifiers(self):
        # ``wait``/``notify``/``notifyall``/``barrier`` are reserved.
        for name in ("wait", "notify", "notifyall", "barrier"):
            with pytest.raises(ParseError):
                parse_stmts(f"var {name} = 1;")

    def test_return_value_and_void(self):
        stmts = parse_stmts("return 1; return;")
        assert stmts[0].value is not None
        assert stmts[1].value is None

    def test_print_and_assert(self):
        stmts = parse_stmts("print 1; assert true;")
        assert isinstance(stmts[0], ast.Print)
        assert isinstance(stmts[1], ast.Assert)

    def test_call_statement(self):
        (stmt,) = parse_stmts("foo();")
        assert isinstance(stmt, ast.ExprStmt)
        assert isinstance(stmt.expr, ast.Call)

    def test_non_call_expression_statement_rejected(self):
        with pytest.raises(ParseError):
            parse_stmts("1 + 2;")

    def test_invalid_assignment_target_rejected(self):
        with pytest.raises(ParseError):
            parse_stmts("foo() = 1;")

    def test_missing_semicolon_raises(self):
        with pytest.raises(ParseError):
            parse_stmts("var x = 1")


class TestExpressions:
    def test_literals(self):
        assert isinstance(parse_expr("42"), ast.IntLiteral)
        assert isinstance(parse_expr("true"), ast.BoolLiteral)
        assert isinstance(parse_expr("false"), ast.BoolLiteral)
        assert isinstance(parse_expr("null"), ast.NullLiteral)
        assert isinstance(parse_expr('"s"'), ast.StringLiteral)
        assert isinstance(parse_expr("this"), ast.ThisRef)

    def test_precedence_mul_over_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_precedence_add_over_compare(self):
        expr = parse_expr("1 + 2 < 3")
        assert expr.op == "<"

    def test_precedence_compare_over_equality(self):
        expr = parse_expr("1 < 2 == true")
        assert expr.op == "=="

    def test_precedence_and_over_or(self):
        expr = parse_expr("a || b && c")
        assert expr.op == "||"
        assert expr.right.op == "&&"

    def test_left_associativity(self):
        expr = parse_expr("1 - 2 - 3")
        assert expr.op == "-"
        assert expr.left.op == "-"

    def test_parentheses_override(self):
        expr = parse_expr("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_unary_operators(self):
        assert parse_expr("!x").op == "!"
        assert parse_expr("-x").op == "-"
        nested = parse_expr("!!x")
        assert nested.operand.op == "!"

    def test_new_with_args(self):
        expr = parse_expr("new Point(1, 2)")
        assert isinstance(expr, ast.New)
        assert expr.class_name == "Point"
        assert len(expr.args) == 2

    def test_newarray(self):
        expr = parse_expr("newarray(10)")
        assert isinstance(expr, ast.NewArray)

    def test_field_read_chain(self):
        expr = parse_expr("a.b.c")
        assert isinstance(expr, ast.FieldRead)
        assert expr.field_name == "c"
        assert isinstance(expr.obj, ast.FieldRead)

    def test_array_read(self):
        expr = parse_expr("a[i + 1]")
        assert isinstance(expr, ast.ArrayRead)
        assert isinstance(expr.index, ast.Binary)

    def test_method_call_with_receiver(self):
        expr = parse_expr("obj.m(1)")
        assert isinstance(expr, ast.Call)
        assert expr.method_name == "m"
        assert expr.receiver is not None

    def test_bare_call(self):
        expr = parse_expr("m()")
        assert isinstance(expr, ast.Call)
        assert expr.receiver is None

    def test_chained_calls(self):
        expr = parse_expr("a.b().c()")
        assert expr.method_name == "c"
        assert expr.receiver.method_name == "b"

    def test_call_then_field(self):
        expr = parse_expr("a.b().f")
        assert isinstance(expr, ast.FieldRead)
        assert isinstance(expr.obj, ast.Call)

    def test_mixed_postfix(self):
        expr = parse_expr("a.rows[1].data")
        assert isinstance(expr, ast.FieldRead)
        assert isinstance(expr.obj, ast.ArrayRead)

    def test_unclosed_paren_raises(self):
        with pytest.raises(ParseError):
            parse_expr("(1 + 2")
