"""The versioned tuple-encoded event-log schema.

RecordingSink logs cross process boundaries (sharded detection) and —
via dump_log/load_log — build boundaries.  These tests pin the schema
contract: validation catches version skew, unknown tags, wrong arity,
and mistyped columns; serialization round-trips losslessly; and the
post-mortem loaders refuse corrupt logs instead of misdecoding them.
"""

import pytest

from repro.detector import detect_from_log, detect_sharded
from repro.lang.ast import AccessKind
from repro.runtime import RecordingSink
from repro.runtime.events import (
    LogSchemaError,
    ObjectKind,
    dump_log,
    load_log,
    validate_entries,
)

from ..conftest import run_source

SMALL = """\
class Main {
  static def main() {
    var shared = new Shared();
    var lock0 = new LockObj();
    var w0 = new Worker0(shared, lock0);
    start w0;
    join w0;
    print shared.f0;
  }
}
class Shared { field f0; }
class LockObj { }
class Worker0 {
  field s;
  field lock0;
  def init(shared, l0) { this.s = shared; this.lock0 = l0; }
  def run() {
    var s = this.s;
    sync (this.lock0) { s.f0 = 1; }
  }
}
"""


@pytest.fixture(scope="module")
def recorded():
    log = RecordingSink()
    run_source(SMALL, sink=log)
    return log


class TestValidateEntries:
    def test_fresh_recording_validates(self, recorded):
        validate_entries(recorded.log)

    def test_version_mismatch_rejected(self, recorded):
        with pytest.raises(LogSchemaError, match="schema version"):
            validate_entries(recorded.log, version=1)

    def test_v2_log_rejected_with_remediation(self, recorded):
        # v2 predates the wait/notify tags; a v2 reader must be told to
        # re-record rather than silently dropping condition edges.
        with pytest.raises(LogSchemaError, match="re-record"):
            validate_entries(recorded.log, version=2)

    def test_unknown_tag_rejected(self):
        with pytest.raises(LogSchemaError, match="unknown tag"):
            validate_entries([("teleport", 1, 2)])

    def test_wrong_arity_rejected(self, recorded):
        truncated = recorded.log[0][:-1]
        with pytest.raises(LogSchemaError, match="columns"):
            validate_entries([truncated])

    def test_non_tuple_entry_rejected(self):
        with pytest.raises(LogSchemaError, match="tagged tuple"):
            validate_entries([["access", 1]])
        with pytest.raises(LogSchemaError, match="tagged tuple"):
            validate_entries([()])

    def test_mistyped_access_columns_rejected(self):
        bad = (RecordingSink.ACCESS, "one", "f0", 0,
               AccessKind.WRITE, 1, ObjectKind.INSTANCE, "Shared#1")
        with pytest.raises(LogSchemaError, match="mistyped"):
            validate_entries([bad])
        bad_kind = (RecordingSink.ACCESS, 1, "f0", 0,
                    "write", 1, ObjectKind.INSTANCE, "Shared#1")
        with pytest.raises(LogSchemaError, match="mistyped"):
            validate_entries([bad_kind])

    def test_error_names_offending_index(self, recorded):
        entries = list(recorded.log) + [("bogus",)]
        with pytest.raises(LogSchemaError, match=str(len(recorded.log))):
            validate_entries(entries)


class TestDumpLoadRoundtrip:
    def test_roundtrip_is_lossless(self, recorded):
        payload = dump_log(recorded)
        assert payload["version"] == RecordingSink.SCHEMA_VERSION
        restored = load_log(payload)
        assert restored == recorded.log

    def test_roundtrip_survives_json(self, recorded):
        import json

        payload = json.loads(json.dumps(dump_log(recorded)))
        assert load_log(payload) == recorded.log

    def test_roundtrip_detects_same_races(self, recorded):
        serial, _ = detect_from_log(recorded)
        restored, _ = detect_from_log(load_log(dump_log(recorded)))
        assert [str(r.key) for r in restored.reports.reports] == [
            str(r.key) for r in serial.reports.reports
        ]

    def test_load_rejects_wrong_version(self, recorded):
        payload = dump_log(recorded)
        payload["version"] = 1
        with pytest.raises(LogSchemaError, match="schema version"):
            load_log(payload)

    def test_load_rejects_v2_payload_with_remediation(self, recorded):
        payload = dump_log(recorded)
        payload["version"] = 2
        with pytest.raises(LogSchemaError, match="re-record the execution"):
            load_log(payload)

    def test_wait_notify_entries_roundtrip(self):
        # The v3 additions themselves: condition-sync tags validate and
        # survive serialization.
        source = """
        class Main {
          static def main() {
            var s = new Shared();
            var c = new C(s);
            start c;
            sync (s) { while (s.flag != 1) { wait s; } }
            join c;
          }
        }
        class Shared { field flag; }
        class C {
          field s;
          def init(s) { this.s = s; }
          def run() {
            sync (this.s) { this.s.flag = 1; notifyall this.s; }
          }
        }
        """
        log = RecordingSink()
        run_source(source, sink=log)
        tags = {entry[0] for entry in log.log}
        assert RecordingSink.WAIT in tags
        assert RecordingSink.NOTIFY in tags
        validate_entries(log.log)
        assert load_log(dump_log(log)) == log.log

    def test_load_rejects_non_log_payload(self):
        with pytest.raises(LogSchemaError, match="entries"):
            load_log({"version": RecordingSink.SCHEMA_VERSION})
        with pytest.raises(LogSchemaError):
            load_log("not a payload")

    def test_load_rejects_unknown_enum_value(self, recorded):
        payload = dump_log(recorded)
        for raw in payload["entries"]:
            if raw[0] == RecordingSink.ACCESS:
                raw[4] = "teleport"
                break
        with pytest.raises(LogSchemaError, match="enum"):
            load_log(payload)


class TestLoadersValidate:
    def test_detect_from_log_refuses_corrupt_log(self, recorded):
        entries = list(recorded.log) + [("bogus", 1)]
        sink = RecordingSink()
        sink.log = entries
        with pytest.raises(LogSchemaError):
            detect_from_log(sink)

    def test_detect_sharded_refuses_corrupt_log(self, recorded):
        entries = list(recorded.log) + [("bogus", 1)]
        with pytest.raises(LogSchemaError):
            detect_sharded(entries, 2)

    def test_validation_can_be_disabled(self, recorded):
        # Trusted in-process logs may skip the scan (the difflab replays
        # the same recording many times).
        serial, _ = detect_from_log(recorded, validate=False)
        assert serial.stats.accesses == recorded.access_count
