"""Unit tests for the baseline detectors (Eraser, object race, HB)."""

from repro.baselines import (
    EraserDetector,
    HappensBeforeDetector,
    ObjectRaceDetector,
    VectorClock,
)
from repro.lang.ast import AccessKind
from repro.runtime.events import AccessEvent, MemoryLocation, ObjectKind

READ = AccessKind.READ
WRITE = AccessKind.WRITE


def access(uid, field, thread, kind):
    return AccessEvent(
        location=MemoryLocation(uid, field),
        thread_id=thread,
        kind=kind,
        site_id=0,
        object_kind=ObjectKind.INSTANCE,
        object_label=f"Obj#{uid}",
    )


class TestEraser:
    def test_virgin_to_exclusive_silent(self):
        det = EraserDetector()
        det.on_access(access(1, "f", 1, WRITE))
        det.on_access(access(1, "f", 1, WRITE))
        assert not det.reports

    def test_unlocked_sharing_reported(self):
        det = EraserDetector()
        det.on_access(access(1, "f", 1, WRITE))
        det.on_access(access(1, "f", 2, WRITE))
        assert det.object_count == 1

    def test_consistent_lock_discipline_silent(self):
        det = EraserDetector()
        for thread in (1, 2, 1):
            det.on_monitor_enter(thread, 9, reentrant=False)
            det.on_access(access(1, "f", thread, WRITE))
            det.on_monitor_exit(thread, 9, reentrant=False)
        assert not det.reports

    def test_read_sharing_without_writes_silent(self):
        det = EraserDetector()
        det.on_access(access(1, "f", 1, READ))
        det.on_access(access(1, "f", 2, READ))
        det.on_access(access(1, "f", 3, READ))
        assert not det.reports

    def test_write_after_read_sharing_reported(self):
        det = EraserDetector()
        det.on_access(access(1, "f", 1, READ))
        det.on_access(access(1, "f", 2, READ))
        det.on_access(access(1, "f", 3, WRITE))
        assert det.object_count == 1

    def test_initialization_pattern_tolerated(self):
        # Eraser's Exclusive state absorbs unlocked initialization by
        # one thread before handoff under consistent locking.
        det = EraserDetector()
        det.on_access(access(1, "f", 1, WRITE))
        det.on_monitor_enter(2, 9, reentrant=False)
        det.on_access(access(1, "f", 2, READ))
        det.on_monitor_exit(2, 9, reentrant=False)
        assert not det.reports

    def test_single_common_lock_requirement(self):
        """Mutually-intersecting-but-no-common-lock → Eraser reports
        (the Section 8.3 difference)."""
        det = EraserDetector(join_pseudolocks=True)
        det.on_thread_start(0, 1)
        det.on_thread_start(0, 2)
        # Children update the statistics repeatedly under the common
        # lock (as mtrt's do).  Eraser's candidate set starts at the
        # first *shared* access, so the repeat visits are what drive it
        # down to {50}.
        for _ in range(2):
            for child in (1, 2):
                det.on_monitor_enter(child, 50, reentrant=False)
                det.on_access(access(1, "f", child, WRITE))
                det.on_monitor_exit(child, 50, reentrant=False)
        det.on_thread_end(1)
        det.on_thread_end(2)
        det.on_thread_join(0, 1)
        det.on_thread_join(0, 2)
        assert det.object_count == 0  # So far the discipline holds.
        det.on_access(access(1, "f", 0, READ))
        # Candidate set {50} ∩ parent's {S1, S2} = ∅ → spurious report.
        assert det.object_count == 1

    def test_one_report_per_location(self):
        det = EraserDetector()
        det.on_access(access(1, "f", 1, WRITE))
        det.on_access(access(1, "f", 2, WRITE))
        det.on_access(access(1, "f", 1, WRITE))
        assert len(det.reports) == 1


class TestObjectRaceDetector:
    def test_field_granularity_confusion(self):
        # Field f is written under lock by thread 2; field g is read
        # lock-free by thread 3.  Per-field there is no race; at object
        # granularity the candidate set empties with a write present.
        det = ObjectRaceDetector()
        det.on_access(access(1, "f", 1, WRITE))  # Owner (thread 1).
        det.on_monitor_enter(2, 9, reentrant=False)
        det.on_access(access(1, "f", 2, WRITE))  # Shared transition.
        det.on_monitor_exit(2, 9, reentrant=False)
        det.on_access(access(1, "g", 3, READ))  # Lock-free other field.
        assert det.object_count == 1

    def test_ownership_filters_initialization(self):
        det = ObjectRaceDetector()
        det.on_access(access(1, "f", 1, WRITE))
        det.on_access(access(1, "f", 1, WRITE))
        assert det.object_count == 0

    def test_consistent_object_lock_silent(self):
        det = ObjectRaceDetector()
        for thread in (1, 2, 3):
            det.on_monitor_enter(thread, 9, reentrant=False)
            det.on_access(access(1, "f", thread, WRITE))
            det.on_monitor_exit(thread, 9, reentrant=False)
        assert det.object_count == 0

    def test_reads_only_never_reported(self):
        det = ObjectRaceDetector()
        det.on_access(access(1, "f", 1, READ))
        det.on_access(access(1, "g", 2, READ))
        det.on_access(access(1, "h", 3, READ))
        assert det.object_count == 0


class TestVectorClock:
    def test_join_takes_maximum(self):
        a = VectorClock({1: 3, 2: 1})
        a.join({1: 2, 2: 5, 3: 7})
        assert a == {1: 3, 2: 5, 3: 7}

    def test_happened_before(self):
        a = VectorClock({1: 3})
        assert a.happened_before(1, 3)
        assert a.happened_before(1, 2)
        assert not a.happened_before(1, 4)
        assert not a.happened_before(2, 1)


class TestHappensBefore:
    def test_unordered_writes_race(self):
        det = HappensBeforeDetector()
        det.on_thread_start(0, 1)
        det.on_thread_start(0, 2)
        det.on_access(access(1, "f", 1, WRITE))
        det.on_access(access(1, "f", 2, WRITE))
        assert det.object_count == 1

    def test_start_edge_orders_parent_init(self):
        det = HappensBeforeDetector()
        det.on_access(access(1, "f", 0, WRITE))
        det.on_thread_start(0, 1)
        det.on_access(access(1, "f", 1, READ))
        assert det.object_count == 0

    def test_join_edge_orders_post_join_reads(self):
        det = HappensBeforeDetector()
        det.on_thread_start(0, 1)
        det.on_access(access(1, "f", 1, WRITE))
        det.on_thread_join(0, 1)
        det.on_access(access(1, "f", 0, READ))
        assert det.object_count == 0

    def test_lock_edge_hides_feasible_race(self):
        """Section 2.2: the acquisition order creates an HB edge and the
        feasible race disappears for an HB detector."""
        det = HappensBeforeDetector()
        det.on_thread_start(0, 1)
        det.on_thread_start(0, 2)
        # Thread 1: unlocked write, then a critical section on lock 9.
        det.on_access(access(1, "f", 1, WRITE))
        det.on_monitor_enter(1, 9, reentrant=False)
        det.on_monitor_exit(1, 9, reentrant=False)
        # Thread 2: critical section on 9 *after* thread 1's, then a
        # write — HB-ordered after thread 1's write via the lock.
        det.on_monitor_enter(2, 9, reentrant=False)
        det.on_monitor_exit(2, 9, reentrant=False)
        det.on_access(access(1, "f", 2, WRITE))
        assert det.object_count == 0  # HB misses the feasible race.

    def test_read_write_race(self):
        det = HappensBeforeDetector()
        det.on_thread_start(0, 1)
        det.on_thread_start(0, 2)
        det.on_access(access(1, "f", 1, READ))
        det.on_access(access(1, "f", 2, WRITE))
        assert det.object_count == 1

    def test_write_read_race(self):
        det = HappensBeforeDetector()
        det.on_thread_start(0, 1)
        det.on_thread_start(0, 2)
        det.on_access(access(1, "f", 1, WRITE))
        det.on_access(access(1, "f", 2, READ))
        assert det.object_count == 1

    def test_read_read_no_race(self):
        det = HappensBeforeDetector()
        det.on_thread_start(0, 1)
        det.on_thread_start(0, 2)
        det.on_access(access(1, "f", 1, READ))
        det.on_access(access(1, "f", 2, READ))
        assert det.object_count == 0

    def test_lock_protected_accesses_ordered(self):
        det = HappensBeforeDetector()
        det.on_thread_start(0, 1)
        det.on_thread_start(0, 2)
        for thread in (1, 2):
            det.on_monitor_enter(thread, 9, reentrant=False)
            det.on_access(access(1, "f", thread, WRITE))
            det.on_monitor_exit(thread, 9, reentrant=False)
        assert det.object_count == 0
