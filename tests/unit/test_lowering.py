"""Unit tests for AST → IR lowering."""

from repro.analysis import ir, lower_program
from repro.lang import compile_source


def lower_main(body: str, extra: str = ""):
    source = "class Main { static def main() { " + body + " } }\n" + extra
    resolved = compile_source(source)
    return lower_program(resolved)["Main.main"], resolved


def instructions(function, cls):
    return [i for _, _, i in function.instructions() if isinstance(i, cls)]


class TestBasicLowering:
    def test_constants_and_moves(self):
        function, _ = lower_main("var x = 1; var y = x;")
        assert instructions(function, ir.Const)
        moves = instructions(function, ir.Move)
        assert any(m.dest == "y" for m in moves)

    def test_field_access_lowering(self):
        function, resolved = lower_main(
            "var p = new P(); p.f = 1; var v = p.f;", "class P { field f; }"
        )
        puts = instructions(function, ir.PutField)
        gets = instructions(function, ir.GetField)
        assert len(puts) == 1 and len(gets) == 1
        assert puts[0].site_id in resolved.sites
        assert gets[0].site_id in resolved.sites
        assert puts[0].site_id != gets[0].site_id

    def test_array_lowering(self):
        function, _ = lower_main("var a = newarray(2); a[0] = 1; var v = a[1];")
        assert instructions(function, ir.NewArr)
        assert instructions(function, ir.AStore)
        assert instructions(function, ir.ALoad)

    def test_static_lowering(self):
        function, _ = lower_main(
            "G.c = 1; var v = G.c;", "class G { static field c; }"
        )
        assert instructions(function, ir.PutStatic)
        assert instructions(function, ir.GetStatic)

    def test_new_with_init_emits_invoke(self):
        function, _ = lower_main(
            "var p = new P(3);",
            "class P { field v; def init(v) { this.v = v; } }",
        )
        invokes = instructions(function, ir.Invoke)
        assert len(invokes) == 1
        assert invokes[0].is_init
        assert invokes[0].method_name == "init"

    def test_new_without_init_emits_no_invoke(self):
        function, _ = lower_main("var p = new P();", "class P { }")
        assert not instructions(function, ir.Invoke)

    def test_calls_are_barriers(self):
        function, _ = lower_main(
            "Util.f();", "class Util { static def f() { } }"
        )
        (invoke,) = instructions(function, ir.Invoke)
        assert invoke.is_barrier
        assert invoke.static_class == "Util"

    def test_start_join_lowering(self):
        function, _ = lower_main(
            "var w = new W(); start w; join w;", "class W { def run() { } }"
        )
        assert instructions(function, ir.StartT)
        assert instructions(function, ir.JoinT)
        assert instructions(function, ir.StartT)[0].is_barrier

    def test_condition_sync_lowering(self):
        function, _ = lower_main(
            "var c = new C(); sync (c) { wait c; notify c; notifyall c; } "
            "barrier c, 2;",
            "class C { }",
        )
        (wait,) = instructions(function, ir.WaitI)
        notifies = instructions(function, ir.NotifyI)
        (barrier,) = instructions(function, ir.BarrierI)
        # All three are analysis barriers: the static weaker-than
        # relation must not carry access summaries across them.
        assert wait.is_barrier and barrier.is_barrier
        assert [n.notify_all for n in notifies] == [False, True]
        assert all(n.is_barrier for n in notifies)
        # The party-count operand is a use (it feeds liveness/valnum).
        assert len(barrier.uses()) == 2


class TestSyncContext:
    def test_sync_emits_enter_exit_pair(self):
        function, _ = lower_main(
            "var p = new P(); sync (p) { p.f = 1; }", "class P { field f; }"
        )
        enters = instructions(function, ir.MonitorEnter)
        exits = instructions(function, ir.MonitorExit)
        assert len(enters) == len(exits) == 1
        assert enters[0].sync_id == exits[0].sync_id

    def test_sync_stack_annotation(self):
        function, _ = lower_main(
            "var p = new P(); var q = new P(); "
            "sync (p) { sync (q) { p.f = 1; } p.f = 2; } p.f = 3;",
            "class P { field f; }",
        )
        puts = instructions(function, ir.PutField)
        depths = sorted(len(put.sync_stack) for put in puts)
        assert depths == [0, 1, 2]
        inner = max(puts, key=lambda p: len(p.sync_stack))
        outer = [p for p in puts if len(p.sync_stack) == 1][0]
        # Nesting: the outer block's id prefixes the inner stack.
        assert inner.sync_stack[: 1] == outer.sync_stack

    def test_monitor_enter_carries_enclosing_stack(self):
        function, _ = lower_main(
            "var p = new P(); sync (p) { sync (p) { } }", "class P { field f; }"
        )
        enters = instructions(function, ir.MonitorEnter)
        stacks = sorted(len(e.sync_stack) for e in enters)
        # The outer enter sits at depth 0, the inner at depth 1.
        assert stacks == [0, 1]

    def test_sync_method_normalization_reaches_ir(self):
        source = (
            "class Main { static def main() { } }\n"
            "class A { field f; sync def m() { this.f = 1; } }"
        )
        resolved = compile_source(source)
        function = lower_program(resolved)["A.m"]
        (put,) = instructions(function, ir.PutField)
        assert len(put.sync_stack) == 1


class TestLoopDepth:
    def test_loop_depth_annotation(self):
        function, _ = lower_main(
            "var p = new P(); p.f = 0; var i = 0; "
            "while (i < 2) { p.f = 1; var j = 0; "
            "while (j < 2) { p.f = 2; j = j + 1; } i = i + 1; }",
            "class P { field f; }",
        )
        puts = instructions(function, ir.PutField)
        assert sorted(p.loop_depth for p in puts) == [0, 1, 2]

    def test_loop_condition_counts_as_inside(self):
        function, _ = lower_main(
            "var p = new P(); p.f = 1; while (p.f < 3) { p.f = p.f + 1; }",
            "class P { field f; }",
        )
        gets = instructions(function, ir.GetField)
        # The condition read executes once per iteration: depth 1.
        assert any(g.loop_depth == 1 for g in gets)

    def test_alloc_in_loop_depth(self):
        function, _ = lower_main(
            "var i = 0; while (i < 2) { var p = new P(); i = i + 1; }",
            "class P { }",
        )
        (new_obj,) = instructions(function, ir.NewObj)
        assert new_obj.loop_depth == 1


class TestControlFlowShape:
    def test_return_ends_block(self):
        function, _ = lower_main("return; print 1;")
        rets = instructions(function, ir.Ret)
        assert rets  # At least the explicit one.

    def test_short_circuit_produces_branches(self):
        function, _ = lower_main("var x = true && false; print x;")
        branching = [b for b in function.blocks if b.branch_reg is not None]
        assert branching

    def test_every_block_terminates_well(self):
        function, _ = lower_main(
            "var i = 0; if (i < 1) { i = 2; } else { i = 3; } "
            "while (i < 5) { i = i + 1; }"
        )
        for block in function.blocks:
            if block.branch_reg is not None:
                assert len(block.successors) == 2
            else:
                assert len(block.successors) <= 1
