"""Table-driven MJ conformance suite: program → expected output.

Each case is a complete program and its exact printed output under the
deterministic default scheduler.  These pin the language semantics the
rest of the reproduction rests on.
"""

import pytest

from ..conftest import run_source

CASES = [
    # --- arithmetic and operators ------------------------------------
    ("int-arith", "print 2 + 3 * 4 - 1;", ["13"]),
    ("division-truncates", "print 9 / 2; print (0 - 9) / 2;", ["4", "-4"]),
    ("modulo-java-sign", "print 9 % 4; print (0 - 9) % 4;", ["1", "-1"]),
    ("comparison-chain", "print 1 < 2; print 2 <= 1;", ["true", "false"]),
    ("equality-mixed", "print 1 == 1; print 1 != 2;", ["true", "true"]),
    ("unary", "print -3; print !false;", ["-3", "true"]),
    ("precedence-parens", "print (2 + 3) * (4 - 2);", ["10"]),
    ("bool-ops", "print true && false || true;", ["true"]),
    (
        "short-circuit-order",
        "var x = 0; print false && (1 / x == 0); print true || (1 / x == 0);",
        ["false", "true"],
    ),
    # --- strings -------------------------------------------------------
    ("string-concat", 'print "a" + "b" + "c";', ["abc"]),
    ("string-int-concat", 'print "n=" + (1 + 2);', ["n=3"]),
    ("string-eq", 'print "x" == "x"; print "x" == "y";', ["true", "false"]),
    ("string-escapes", r'print "a\tb";', ["a\tb"]),
    # --- control flow ----------------------------------------------------
    ("if-else-chain",
     "var n = 5; if (n < 3) { print 1; } else if (n < 7) { print 2; } "
     "else { print 3; }",
     ["2"]),
    ("while-sum",
     "var i = 0; var s = 0; while (i < 10) { s = s + i; i = i + 1; } print s;",
     ["45"]),
    ("nested-loops",
     "var c = 0; var i = 0; while (i < 3) { var j = 0; "
     "while (j < 3) { c = c + 1; j = j + 1; } i = i + 1; } print c;",
     ["9"]),
    ("loop-never-entered",
     "var i = 9; while (i < 3) { i = 100; } print i;",
     ["9"]),
    # --- objects ----------------------------------------------------------
    ("field-defaults", "var p = new Pair(); print p.a; print p.b;", ["null", "null"]),
    ("constructor-order",
     "var p = new Pair2(1, 2); print p.a; print p.b;",
     ["1", "2"]),
    ("aliasing",
     "var p = new Pair(); var q = p; p.a = 7; print q.a;",
     ["7"]),
    ("null-checks",
     "var p = new Pair(); print p.a == null; p.a = 0; print p.a == null;",
     ["true", "false"]),
    ("method-return",
     "var c = new Calc(); print c.add(20, 22);",
     ["42"]),
    ("this-dispatch",
     "var c = new Calc(); print c.twiceAdd(10, 11);",
     ["42"]),
    ("inheritance-override",
     "var d = new Derived(); print d.describe(); var b = new Base2(); "
     "print b.describe();",
     ["derived", "base"]),
    ("inherited-field",
     "var d = new Derived(); d.tag = 5; print d.tag;",
     ["5"]),
    ("recursion-fib",
     "print Fib.of(10);",
     ["55"]),
    # --- arrays ------------------------------------------------------------
    ("array-sum",
     "var a = newarray(5); var i = 0; while (i < 5) { a[i] = i * i; "
     "i = i + 1; } var s = 0; i = 0; while (i < 5) { s = s + a[i]; "
     "i = i + 1; } print s;",
     ["30"]),
    ("array-of-objects",
     "var a = newarray(2); a[0] = new Pair(); a[0].a = 3; print a[0].a;",
     ["3"]),
    ("array-length-expr",
     "var a = newarray(7); print a.length - 2;",
     ["5"]),
    # --- statics ------------------------------------------------------------
    ("static-counter",
     "Counter.n = 0; Counter.bump(); Counter.bump(); print Counter.n;",
     ["2"]),
    ("static-method-args",
     "print MathUtil.max(3, 9); print MathUtil.max(9, 3);",
     ["9", "9"]),
    # --- threads -------------------------------------------------------------
    ("thread-result",
     "var w = new Doubler(21); start w; join w; print w.result;",
     ["42"]),
    ("two-threads-locked",
     "var acc = new Acc(); var x = new Adder(acc, 10); "
     "var y = new Adder(acc, 32); start x; start y; join x; join y; "
     "print acc.total;",
     ["42"]),
    ("sync-method-on-shared",
     "var acc = new Acc(); acc.bump(); acc.bump(); print acc.total;",
     ["2"]),
]

SUPPORT = """
class Pair { field a; field b; }
class Pair2 {
  field a; field b;
  def init(a, b) { this.a = a; this.b = b; }
}
class Calc {
  def add(x, y) { return x + y; }
  def twiceAdd(x, y) { return add(x, y) * 2; }
}
class Base2 {
  field tag;
  def describe() { return "base"; }
}
class Derived extends Base2 {
  def describe() { return "derived"; }
}
class Fib {
  static def of(n) {
    if (n < 2) { return n; }
    return Fib.of(n - 1) + Fib.of(n - 2);
  }
}
class Counter {
  static field n;
  static def bump() { Counter.n = Counter.n + 1; }
}
class MathUtil {
  static def max(a, b) {
    if (a > b) { return a; }
    return b;
  }
}
class Doubler {
  field input; field result;
  def init(input) { this.input = input; this.result = 0; }
  def run() { this.result = this.input * 2; }
}
class Acc {
  field total;
  def init() { this.total = 0; }
  sync def bump() { this.total = this.total + 1; }
}
class Adder {
  field acc; field amount;
  def init(acc, amount) { this.acc = acc; this.amount = amount; }
  def run() {
    sync (this.acc) { this.acc.total = this.acc.total + this.amount; }
  }
}
"""


@pytest.mark.parametrize(
    "body,expected", [(body, exp) for _, body, exp in CASES],
    ids=[name for name, _, _ in CASES],
)
def test_conformance(body, expected):
    source = (
        "class Main { static def main() { " + body + " } }\n" + SUPPORT
    )
    assert run_source(source).output == expected


@pytest.mark.parametrize("seed", range(4))
def test_conformance_race_free_cases_schedule_independent(seed):
    """The threaded cases print the same values under random seeds."""
    threaded = [case for case in CASES if "thread" in case[0] or "locked" in case[0]]
    for name, body, expected in threaded:
        source = (
            "class Main { static def main() { " + body + " } }\n" + SUPPORT
        )
        assert run_source(source, seed=seed).output == expected, name
