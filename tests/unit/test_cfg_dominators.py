"""Unit tests for CFG utilities, dominators, and dominance frontiers."""

from repro.analysis import FlowGraph, DominatorInfo, lower_program
from repro.lang import compile_source


def graph_of(body: str, extra: str = "") -> tuple:
    source = "class Main { static def main() { " + body + " } }\n" + extra
    resolved = compile_source(source)
    function = lower_program(resolved)["Main.main"]
    graph = FlowGraph(function)
    return function, graph, DominatorInfo(graph)


class TestFlowGraph:
    def test_straight_line_single_block(self):
        _, graph, _ = graph_of("var x = 1; var y = 2;")
        assert graph.reachable == {0}

    def test_if_produces_diamond_or_triangle(self):
        _, graph, _ = graph_of("if (true) { var x = 1; }")
        # Entry, then-block, join.
        assert len(graph.reachable) == 3

    def test_if_else_diamond(self):
        _, graph, _ = graph_of("if (true) { var x = 1; } else { var y = 2; }")
        assert len(graph.reachable) == 4

    def test_while_creates_cycle(self):
        function, graph, _ = graph_of("var i = 0; while (i < 3) { i = i + 1; }")
        # There must be a back edge: some block's successor has a
        # smaller RPO index.
        has_back_edge = any(
            graph.rpo_index[succ] <= graph.rpo_index[block_id]
            for block_id in graph.reachable
            for succ in graph.successors(block_id)
        )
        assert has_back_edge

    def test_code_after_return_is_unreachable(self):
        _, graph, _ = graph_of("return; var x = 1;")
        total_blocks = len(graph.function.blocks)
        assert len(graph.reachable) < total_blocks

    def test_rpo_starts_at_entry(self):
        _, graph, _ = graph_of("if (true) { } else { }")
        assert graph.rpo[0] == 0

    def test_rpo_visits_preds_before_succs_in_acyclic_graph(self):
        _, graph, _ = graph_of("if (true) { var x = 1; } else { var y = 2; }")
        for block_id in graph.reachable:
            for succ in graph.successors(block_id):
                if graph.rpo_index[succ] > graph.rpo_index[block_id]:
                    continue
                # Back edge in acyclic graph would be a bug.
                raise AssertionError("unexpected back edge")

    def test_preds_are_inverse_of_succs(self):
        _, graph, _ = graph_of("if (true) { } while (false) { }")
        for block_id in graph.reachable:
            for succ in graph.successors(block_id):
                assert block_id in graph.preds[succ]


class TestDominators:
    def test_entry_dominates_everything(self):
        _, graph, dom = graph_of(
            "if (true) { var x = 1; } else { var y = 2; } var z = 3;"
        )
        for block_id in graph.reachable:
            assert dom.dominates(0, block_id)

    def test_entry_has_no_idom(self):
        _, _, dom = graph_of("var x = 1;")
        assert dom.idom[0] is None

    def test_branch_arms_do_not_dominate_join(self):
        function, graph, dom = graph_of(
            "if (true) { var x = 1; } else { var y = 2; } var z = 3;"
        )
        # Identify the join block: the one with two predecessors.
        join = next(b for b in graph.reachable if len(graph.preds[b]) == 2)
        for pred in graph.preds[join]:
            assert not dom.dominates(pred, join)
        assert dom.idom[join] == 0

    def test_dominance_is_reflexive(self):
        _, graph, dom = graph_of("if (true) { }")
        for block_id in graph.reachable:
            assert dom.dominates(block_id, block_id)

    def test_strict_dominance_excludes_self(self):
        _, _, dom = graph_of("var x = 1;")
        assert not dom.strictly_dominates(0, 0)

    def test_loop_header_dominates_body(self):
        _, graph, dom = graph_of("var i = 0; while (i < 3) { i = i + 1; }")
        # The loop header is the block with a predecessor whose RPO
        # index is larger (target of the back edge).
        header = next(
            b
            for b in graph.reachable
            for p in graph.preds[b]
            if graph.rpo_index[p] > graph.rpo_index[b]
        )
        body = next(
            s
            for s in graph.successors(header)
            if graph.rpo_index[s] > graph.rpo_index[header]
        )
        assert dom.dominates(header, body)

    def test_dominance_transitivity_sample(self):
        _, graph, dom = graph_of(
            "if (true) { if (true) { var x = 1; } } var z = 3;"
        )
        blocks = sorted(graph.reachable)
        for a in blocks:
            for b in blocks:
                for c in blocks:
                    if dom.dominates(a, b) and dom.dominates(b, c):
                        assert dom.dominates(a, c)


class TestDominanceFrontiers:
    def test_join_block_in_frontier_of_both_arms(self):
        _, graph, dom = graph_of(
            "if (true) { var x = 1; } else { var y = 2; } var z = 3;"
        )
        join = next(b for b in graph.reachable if len(graph.preds[b]) == 2)
        for pred in graph.preds[join]:
            assert join in dom.frontiers[pred]

    def test_straight_line_has_empty_frontiers(self):
        _, graph, dom = graph_of("var x = 1; var y = 2;")
        assert all(not dom.frontiers[b] for b in graph.reachable)

    def test_loop_header_in_own_frontier(self):
        _, graph, dom = graph_of("var i = 0; while (i < 3) { i = i + 1; }")
        header = next(
            b
            for b in graph.reachable
            for p in graph.preds[b]
            if graph.rpo_index[p] > graph.rpo_index[b]
        )
        assert header in dom.frontiers[header]
