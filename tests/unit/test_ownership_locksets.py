"""Unit tests for the ownership filter (Section 7) and lockset tracking."""

import pytest

from repro.detector import (
    SHARED,
    LockTracker,
    OwnershipFilter,
    join_pseudo_lock,
)


class TestOwnershipFilter:
    def test_first_access_claims_ownership_and_is_filtered(self):
        own = OwnershipFilter()
        admit, transitioned = own.admit("m", 1)
        assert not admit and not transitioned
        assert own.owner_of("m") == 1

    def test_owner_accesses_stay_filtered(self):
        own = OwnershipFilter()
        own.admit("m", 1)
        admit, transitioned = own.admit("m", 1)
        assert not admit and not transitioned

    def test_second_thread_triggers_transition(self):
        own = OwnershipFilter()
        own.admit("m", 1)
        admit, transitioned = own.admit("m", 2)
        assert admit and transitioned
        assert own.is_shared("m")

    def test_after_transition_everything_admitted(self):
        own = OwnershipFilter()
        own.admit("m", 1)
        own.admit("m", 2)
        admit, transitioned = own.admit("m", 1)
        assert admit and not transitioned

    def test_locations_independent(self):
        own = OwnershipFilter()
        own.admit("a", 1)
        own.admit("a", 2)
        admit, _ = own.admit("b", 2)
        assert not admit
        assert own.owner_of("b") == 2

    def test_stats(self):
        own = OwnershipFilter()
        own.admit("m", 1)
        own.admit("m", 1)
        own.admit("m", 2)
        own.admit("m", 3)
        assert own.stats.owned_filtered == 2
        assert own.stats.transitions == 1
        assert own.stats.shared_passed == 1

    def test_owner_of_untouched_location_is_none(self):
        assert OwnershipFilter().owner_of("ghost") is None


class TestLockTracker:
    def test_empty_lockset(self):
        tracker = LockTracker()
        assert tracker.lockset(1) == frozenset()

    def test_enter_exit_roundtrip(self):
        tracker = LockTracker()
        tracker.enter(1, 10)
        assert tracker.lockset(1) == frozenset({10})
        tracker.exit(1, 10)
        assert tracker.lockset(1) == frozenset()

    def test_nested_locks(self):
        tracker = LockTracker()
        tracker.enter(1, 10)
        tracker.enter(1, 20)
        assert tracker.lockset(1) == frozenset({10, 20})
        assert tracker.last_real_lock(1) == 20
        tracker.exit(1, 20)
        assert tracker.last_real_lock(1) == 10

    def test_non_lifo_exit_asserts(self):
        tracker = LockTracker()
        tracker.enter(1, 10)
        tracker.enter(1, 20)
        with pytest.raises(AssertionError):
            tracker.exit(1, 10)

    def test_threads_independent(self):
        tracker = LockTracker()
        tracker.enter(1, 10)
        assert tracker.lockset(2) == frozenset()

    def test_pseudo_locks_join_the_lockset(self):
        tracker = LockTracker()
        tracker.acquire_pseudo(1, join_pseudo_lock(1))
        tracker.enter(1, 10)
        assert tracker.lockset(1) == frozenset({10, join_pseudo_lock(1)})

    def test_pseudo_locks_are_not_eviction_anchors(self):
        tracker = LockTracker()
        tracker.acquire_pseudo(1, join_pseudo_lock(3))
        assert tracker.last_real_lock(1) is None

    def test_release_pseudo(self):
        tracker = LockTracker()
        tracker.acquire_pseudo(1, join_pseudo_lock(1))
        tracker.release_pseudo(1, join_pseudo_lock(1))
        assert tracker.lockset(1) == frozenset()

    def test_pseudo_lock_ids_negative_and_distinct(self):
        assert join_pseudo_lock(0) == -1
        assert join_pseudo_lock(5) == -6
        assert join_pseudo_lock(0) != join_pseudo_lock(1)

    def test_holds(self):
        tracker = LockTracker()
        tracker.enter(1, 10)
        assert tracker.holds(1, 10)
        assert not tracker.holds(1, 11)

    def test_lockset_cache_invalidation(self):
        tracker = LockTracker()
        first = tracker.lockset(1)
        tracker.enter(1, 10)
        second = tracker.lockset(1)
        assert first != second
        tracker.exit(1, 10)
        assert tracker.lockset(1) == frozenset()
