"""Unit tests for the static datarace analysis (IsMayRace, Section 5)."""

from repro.analysis import analyze_static_races
from repro.lang import compile_source


def racy_fields(body: str, extra: str = "") -> set:
    source = "class Main { static def main() { " + body + " } }\n" + extra
    resolved = compile_source(source)
    result = analyze_static_races(resolved)
    return {
        resolved.sites[site_id].field_name for site_id in result.racy_sites
    }


TWO_WORKERS = """
class Shared { field hot; field cold; }
class LockObj { }
class W {
  field s; field lock;
  def run() {
    this.s.hot = this.s.hot + 1;
    sync (this.lock) {
      this.s.cold = this.s.cold + 1;
    }
  }
}
"""


def two_worker_main(extra_main: str = "") -> str:
    return (
        "var s = new Shared(); var l = new LockObj(); "
        "var a = new W(); a.s = s; a.lock = l; "
        "var b = new W(); b.s = s; b.lock = l; "
        "start a; start b; join a; join b; " + extra_main
    )


class TestConflictDetection:
    def test_unguarded_shared_write_is_racy(self):
        fields = racy_fields(two_worker_main(), TWO_WORKERS)
        assert "hot" in fields

    def test_common_must_lock_prunes(self):
        fields = racy_fields(two_worker_main(), TWO_WORKERS)
        assert "cold" not in fields

    def test_read_only_data_not_racy(self):
        fields = racy_fields(
            "var c = new Cfg(); c.limit = 10; "
            "var a = new R(); a.cfg = c; var b = new R(); b.cfg = c; "
            "start a; start b;",
            """
            class Cfg { field limit; }
            class R {
              field cfg;
              def run() { var v = this.cfg.limit; }
            }
            """,
        )
        # main writes before start; workers only read.  Statically the
        # write/read pair remains (the static phase ignores start
        # ordering, footnote 5), but the read-read worker pairs alone
        # would not be racy.  The write must be present for `limit` to
        # appear at all — which it is, via main's init write.
        assert "limit" in fields  # Conservative, as the paper's is.

    def test_main_only_program_has_no_races(self):
        fields = racy_fields(
            "var p = new P(); p.f = 1; var v = p.f;", "class P { field f; }"
        )
        assert fields == set()

    def test_per_worker_object_behind_thread_specific_field_pruned(self):
        fields = racy_fields(
            "var a = new W2(); var b = new W2(); start a; start b;",
            """
            class W2 {
              field own;
              def run() { this.own = new P(); this.own.f = 1; }
            }
            class P { field f; }
            """,
        )
        # `own` is a thread-specific field (only this-accessed in run),
        # so each P is a thread-specific *object* of a safe thread: the
        # Section 5.4 extension prunes both `own` and `f`.
        assert "f" not in fields
        assert "own" not in fields

    def test_thread_local_object_pruned(self):
        fields = racy_fields(
            "var a = new W3(); var b = new W3(); start a; start b;",
            """
            class W3 {
              def run() {
                var scratch = new P();
                scratch.f = 1;
                var v = scratch.f;
              }
            }
            class P { field f; }
            """,
        )
        assert "f" not in fields

    def test_thread_specific_fields_pruned(self):
        fields = racy_fields(
            "var a = new W4(); var b = new W4(); start a; start b;",
            """
            class W4 {
              field acc;
              def init() { this.acc = 0; }
              def run() { this.acc = this.acc + 1; }
            }
            """,
        )
        assert "acc" not in fields

    def test_different_fields_never_conflict(self):
        fields = racy_fields(
            "var s = new Two(); "
            "var a = new WA(); a.s = s; var b = new WB(); b.s = s; "
            "start a; start b;",
            """
            class Two { field left; field right; }
            class WA { field s; def run() { this.s.left = 1; } }
            class WB { field s; def run() { this.s.right = 1; } }
            """,
        )
        # Each field has a single writer thread... but MustThread can't
        # prove main-write/worker-write apart, so presence depends on
        # main init.  Here main never writes left/right: single-site
        # same-field diagonal pairs remain because two WA instances
        # could run the same statement — but only one WA exists and it
        # is single-instance... the must-thread of WA.run is the unique
        # thread object, so the diagonal is pruned.
        assert "left" not in fields
        assert "right" not in fields

    def test_static_field_conflicts(self):
        fields = racy_fields(
            "var a = new WS(); var b = new WS(); start a; start b;",
            """
            class G { static field counter; }
            class WS { def run() { G.counter = G.counter + 1; } }
            """,
        )
        assert "counter" in fields


class TestMustSameThreadPruning:
    def test_single_thread_diagonal_pruned(self):
        # One worker object, started once: its run statements are all
        # executed by one thread, so they cannot race with themselves.
        fields = racy_fields(
            "var a = new W5(); start a;",
            """
            class W5 {
              field s;
              def init() { this.s = new P(); }
              def run() { this.s.f = this.s.f + 1; }
            }
            class P { field f; }
            """,
        )
        assert "f" not in fields

    def test_two_instances_of_worker_class_not_pruned(self):
        fields = racy_fields(
            "var s = new P(); "
            "var a = new W6(); a.s = s; var b = new W6(); b.s = s; "
            "start a; start b;",
            """
            class W6 { field s; def run() { this.s.f = this.s.f + 1; } }
            class P { field f; }
            """,
        )
        assert "f" in fields


class TestStats:
    def test_stats_populated(self):
        source = (
            "class Main { static def main() { "
            + two_worker_main()
            + "} }\n"
            + TWO_WORKERS
        )
        resolved = compile_source(source)
        result = analyze_static_races(resolved)
        assert result.stats.pairs_checked > 0
        assert result.stats.pairs_pruned_common_sync > 0
        assert result.stats.sites_racy == len(result.racy_sites)

    def test_partners_of(self):
        source = (
            "class Main { static def main() { "
            + two_worker_main()
            + "} }\n"
            + TWO_WORKERS
        )
        resolved = compile_source(source)
        result = analyze_static_races(resolved)
        hot_sites = [
            sid
            for sid in result.racy_sites
            if resolved.sites[sid].field_name == "hot"
        ]
        assert hot_sites
        assert result.partners_of(hot_sites[0])
