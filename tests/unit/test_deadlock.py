"""Unit tests for the lock-order deadlock detector (Section 10 extension)."""

import pytest

from repro.detector import DeadlockDetector


def enters(det, thread, *locks):
    for lock in locks:
        det.on_monitor_enter(thread, lock, reentrant=False)


def exits(det, thread, *locks):
    for lock in locks:
        det.on_monitor_exit(thread, lock, reentrant=False)


def nest(det, thread, *locks):
    """Acquire locks in order, then release in LIFO order."""
    enters(det, thread, *locks)
    exits(det, thread, *reversed(locks))


class TestTwoLockCycles:
    def test_ab_ba_reported(self):
        det = DeadlockDetector()
        nest(det, 1, 10, 20)
        nest(det, 2, 20, 10)
        det.analyze()
        assert len(det.reports) == 1
        report = det.reports[0]
        assert set(report.cycle) == {10, 20}
        assert set(report.threads) == {1, 2}

    def test_consistent_order_silent(self):
        det = DeadlockDetector()
        nest(det, 1, 10, 20)
        nest(det, 2, 10, 20)
        det.analyze()
        assert not det.reports

    def test_single_thread_inversion_silent(self):
        # One thread alone acquiring in both orders (at different
        # times) cannot deadlock with itself.
        det = DeadlockDetector()
        nest(det, 1, 10, 20)
        nest(det, 1, 20, 10)
        det.analyze()
        assert not det.reports

    def test_gate_lock_suppresses(self):
        det = DeadlockDetector()
        nest(det, 1, 99, 10, 20)  # Gate 99 held around both orders.
        nest(det, 2, 99, 20, 10)
        det.analyze()
        assert not det.reports

    def test_gate_on_one_side_only_still_reported(self):
        det = DeadlockDetector()
        nest(det, 1, 99, 10, 20)
        nest(det, 2, 20, 10)  # No gate here: the cycle is feasible.
        det.analyze()
        assert len(det.reports) == 1

    def test_reentrant_events_ignored(self):
        det = DeadlockDetector()
        det.on_monitor_enter(1, 10, reentrant=False)
        det.on_monitor_enter(1, 10, reentrant=True)
        det.on_monitor_enter(1, 20, reentrant=False)
        exits(det, 1, 20)
        det.on_monitor_exit(1, 10, reentrant=True)
        exits(det, 1, 10)
        nest(det, 2, 20, 10)
        det.analyze()
        assert len(det.reports) == 1

    def test_duplicate_cycles_reported_once(self):
        det = DeadlockDetector()
        for _ in range(3):
            nest(det, 1, 10, 20)
            nest(det, 2, 20, 10)
        det.analyze()
        det.analyze()
        assert len(det.reports) == 1


class TestLongerCycles:
    def test_three_way_cycle(self):
        det = DeadlockDetector()
        nest(det, 1, 10, 20)
        nest(det, 2, 20, 30)
        nest(det, 3, 30, 10)
        det.analyze()
        assert len(det.reports) == 1
        assert set(det.reports[0].cycle) == {10, 20, 30}
        assert set(det.reports[0].threads) == {1, 2, 3}

    def test_three_way_needs_three_threads(self):
        # Two threads cannot realize a 3-cycle where each hop must be
        # blocked simultaneously... our witness rule requires pairwise
        # distinct threads per edge.
        det = DeadlockDetector()
        nest(det, 1, 10, 20)
        nest(det, 2, 20, 30)
        nest(det, 1, 30, 10)
        det.analyze()
        assert not det.reports

    def test_cycle_length_cap(self):
        det = DeadlockDetector(max_cycle_length=2)
        nest(det, 1, 10, 20)
        nest(det, 2, 20, 30)
        nest(det, 3, 30, 10)
        det.analyze()
        assert not det.reports

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            DeadlockDetector(max_cycle_length=1)


class TestEdgeBookkeeping:
    def test_edges_deduplicated(self):
        det = DeadlockDetector()
        for _ in range(5):
            nest(det, 1, 10, 20)
        assert det.edge_count == 1

    def test_distinct_contexts_kept(self):
        det = DeadlockDetector()
        nest(det, 1, 10, 20)
        nest(det, 2, 10, 20)
        assert det.edge_count == 2

    def test_deep_nest_generates_all_pairs(self):
        det = DeadlockDetector()
        nest(det, 1, 1, 2, 3)
        # Edges: 1→2, 1→3, 2→3.
        assert det.edge_count == 3

    def test_describe(self):
        det = DeadlockDetector()
        nest(det, 1, 10, 20)
        nest(det, 2, 20, 10)
        det.analyze()
        text = det.describe_all()
        assert "POTENTIAL DEADLOCK" in text
        assert "thread 1" in text and "thread 2" in text


class TestOnPrograms:
    def test_potential_deadlock_from_serialized_run(self):
        """The whole point: the run never deadlocks (workers are
        serialized by joins) but the order inversion is reported."""
        from repro.lang import compile_source
        from repro.runtime import run_program

        source = """
        class Main {
          static def main() {
            var l1 = new L(); var l2 = new L();
            var a = new W(l1, l2); var b = new W(l2, l1);
            start a; join a;
            start b; join b;
          }
        }
        class L { }
        class W {
          field x; field y;
          def init(x, y) { this.x = x; this.y = y; }
          def run() { sync (this.x) { sync (this.y) { } } }
        }
        """
        resolved = compile_source(source)
        det = DeadlockDetector()
        run_program(resolved, sink=det)
        assert len(det.reports) == 1

    def test_lock_ordered_program_silent(self):
        from repro.lang import compile_source
        from repro.runtime import run_program

        source = """
        class Main {
          static def main() {
            var l1 = new L(); var l2 = new L();
            var a = new W(l1, l2); var b = new W(l1, l2);
            start a; start b; join a; join b;
          }
        }
        class L { }
        class W {
          field x; field y;
          def init(x, y) { this.x = x; this.y = y; }
          def run() { sync (this.x) { sync (this.y) { } } }
        }
        """
        resolved = compile_source(source)
        det = DeadlockDetector()
        run_program(resolved, sink=det)
        assert not det.reports
