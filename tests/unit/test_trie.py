"""Unit tests for the lockset trie (Section 3.2)."""

from repro.detector import THREAD_BOTTOM, THREAD_TOP, LockTrie
from repro.lang.ast import AccessKind

READ = AccessKind.READ
WRITE = AccessKind.WRITE


def fs(*locks):
    return frozenset(locks)


class TestFindWeaker:
    def test_empty_trie_has_nothing_weaker(self):
        trie = LockTrie()
        assert not trie.find_weaker(fs(), 1, READ)

    def test_exact_duplicate_is_weaker(self):
        trie = LockTrie()
        trie.insert(fs(1), 1, READ)
        assert trie.find_weaker(fs(1), 1, READ)

    def test_subset_lockset_is_weaker(self):
        trie = LockTrie()
        trie.insert(fs(1), 1, READ)
        assert trie.find_weaker(fs(1, 2), 1, READ)

    def test_superset_lockset_not_weaker(self):
        trie = LockTrie()
        trie.insert(fs(1, 2), 1, READ)
        assert not trie.find_weaker(fs(1), 1, READ)

    def test_write_covers_later_read(self):
        trie = LockTrie()
        trie.insert(fs(), 1, WRITE)
        assert trie.find_weaker(fs(), 1, READ)

    def test_read_does_not_cover_write(self):
        trie = LockTrie()
        trie.insert(fs(), 1, READ)
        assert not trie.find_weaker(fs(), 1, WRITE)

    def test_other_thread_not_weaker(self):
        trie = LockTrie()
        trie.insert(fs(), 1, WRITE)
        assert not trie.find_weaker(fs(), 2, WRITE)

    def test_bottom_node_weaker_than_any_thread(self):
        trie = LockTrie()
        trie.insert(fs(), 1, WRITE)
        trie.insert(fs(), 2, WRITE)  # Meets to t⊥.
        assert trie.find_weaker(fs(), 3, WRITE)

    def test_internal_node_not_weaker(self):
        trie = LockTrie()
        trie.insert(fs(1, 2), 1, READ)
        # The node for {1} alone is internal (t⊤) and holds no access.
        assert not trie.find_weaker(fs(1), 1, READ)

    def test_stats_track_hits_and_misses(self):
        trie = LockTrie()
        trie.insert(fs(), 1, READ)
        trie.find_weaker(fs(), 1, READ)
        trie.find_weaker(fs(), 2, WRITE)
        assert trie.stats.weaker_hits == 1
        assert trie.stats.weaker_misses == 1


class TestFindRace:
    def test_no_history_no_race(self):
        trie = LockTrie()
        assert trie.find_race(fs(), 1, WRITE) is None

    def test_write_write_race(self):
        trie = LockTrie()
        trie.insert(fs(1), 1, WRITE)
        prior = trie.find_race(fs(2), 2, WRITE)
        assert prior is not None
        assert prior.thread == 1
        assert prior.lockset == fs(1)
        assert prior.kind is WRITE

    def test_case_one_common_lock_prunes_subtree(self):
        trie = LockTrie()
        trie.insert(fs(1, 2), 1, WRITE)
        # Lock 1 is shared: the whole subtree under edge 1 is safe.
        assert trie.find_race(fs(1), 2, WRITE) is None

    def test_read_read_no_race(self):
        trie = LockTrie()
        trie.insert(fs(), 1, READ)
        assert trie.find_race(fs(), 2, READ) is None

    def test_read_read_race_in_footnote2_mode(self):
        trie = LockTrie()
        trie.insert(fs(), 1, READ)
        assert trie.find_race(fs(), 2, READ, read_read_races=True) is not None

    def test_same_thread_no_race(self):
        trie = LockTrie()
        trie.insert(fs(), 1, WRITE)
        assert trie.find_race(fs(9), 1, WRITE) is None

    def test_race_against_merged_bottom_node(self):
        trie = LockTrie()
        trie.insert(fs(5), 1, WRITE)
        trie.insert(fs(5), 2, WRITE)  # Node becomes (t⊥, WRITE).
        # Even the *same* threads race against the merged node.
        prior = trie.find_race(fs(), 1, READ)
        assert prior is not None
        assert prior.thread is THREAD_BOTTOM

    def test_internal_nodes_never_race(self):
        trie = LockTrie()
        trie.insert(fs(3, 4), 1, WRITE)
        # Traversal passes the internal {3} node; it must not report.
        prior = trie.find_race(fs(4), 2, WRITE)
        assert prior is None  # Case I kills it at edge 4... via edge 3 the
        # leaf is {3,4}, and 4 ∈ e.L — pruned at the 4-edge below 3.

    def test_disjoint_deep_locksets_race(self):
        trie = LockTrie()
        trie.insert(fs(1, 2, 3), 1, WRITE)
        prior = trie.find_race(fs(4, 5), 2, READ)
        assert prior is not None
        assert prior.lockset == fs(1, 2, 3)

    def test_race_found_counts(self):
        trie = LockTrie()
        trie.insert(fs(), 1, WRITE)
        trie.find_race(fs(), 2, WRITE)
        assert trie.stats.races_found == 1


class TestInsertAndMeet:
    def test_insert_creates_sorted_path(self):
        trie = LockTrie()
        trie.insert(fs(3, 1, 2), 1, READ)
        stored = trie.stored_accesses()
        assert stored == [(fs(1, 2, 3), 1, READ)]

    def test_same_lockset_merges_threads_to_bottom(self):
        trie = LockTrie()
        trie.insert(fs(1), 1, READ)
        trie.insert(fs(1), 2, READ)
        ((_, thread, _),) = trie.stored_accesses()
        assert thread is THREAD_BOTTOM

    def test_same_lockset_merges_kinds_to_write(self):
        trie = LockTrie()
        trie.insert(fs(1), 1, READ)
        trie.insert(fs(1), 1, WRITE)
        ((_, _, kind),) = trie.stored_accesses()
        assert kind is WRITE

    def test_node_count_grows_by_path_length(self):
        trie = LockTrie()
        assert trie.node_count() == 1
        trie.insert(fs(1, 2), 1, READ)
        assert trie.node_count() == 3


class TestPruneStronger:
    def test_weaker_insert_removes_stronger_entry(self):
        trie = LockTrie()
        trie.insert(fs(1, 2), 1, READ)
        node = trie.insert(fs(1), 1, READ)
        removed = trie.prune_stronger(fs(1), 1, READ, keep=node)
        assert removed == 1
        assert trie.stored_accesses() == [(fs(1), 1, READ)]

    def test_prune_frees_dead_nodes(self):
        trie = LockTrie()
        trie.insert(fs(1, 2, 3), 1, READ)
        node = trie.insert(fs(), 1, WRITE)
        trie.prune_stronger(fs(), 1, WRITE, keep=node)
        assert trie.node_count() == 1  # Only the root remains.

    def test_prune_keeps_incomparable_entries(self):
        trie = LockTrie()
        trie.insert(fs(1), 2, WRITE)  # Different thread: incomparable.
        node = trie.insert(fs(), 1, READ)
        trie.prune_stronger(fs(), 1, READ, keep=node)
        assert (fs(1), 2, WRITE) in trie.stored_accesses()

    def test_prune_does_not_remove_new_node(self):
        trie = LockTrie()
        node = trie.insert(fs(1), 1, READ)
        trie.prune_stronger(fs(1), 1, READ, keep=node)
        assert trie.stored_accesses() == [(fs(1), 1, READ)]

    def test_write_prunes_read_with_superset_locks(self):
        trie = LockTrie()
        trie.insert(fs(1), 1, READ)
        node = trie.insert(fs(), 1, WRITE)
        trie.prune_stronger(fs(), 1, WRITE, keep=node)
        assert trie.stored_accesses() == [(fs(), 1, WRITE)]

    def test_bottom_prunes_concrete_thread(self):
        trie = LockTrie()
        trie.insert(fs(1), 1, READ)
        trie.insert(fs(), 1, READ)
        trie.insert(fs(), 2, READ)  # Root node becomes t⊥.
        node = trie.insert(fs(), 3, READ)  # Still t⊥.
        trie.prune_stronger(fs(), THREAD_BOTTOM, READ, keep=node)
        # The {1}-node (thread 1, READ) is stronger than (t⊥, READ) at {}.
        assert trie.stored_accesses() == [(fs(), THREAD_BOTTOM, READ)]
