"""Unit tests for the points-to analysis and on-the-fly call graph."""

from repro.analysis import (
    ObjectCategory,
    analyze_points_to,
    local_node,
)
from repro.lang import compile_source


def analyze(body: str, extra: str = ""):
    source = "class Main { static def main() { " + body + " } }\n" + extra
    resolved = compile_source(source)
    return resolved, analyze_points_to(resolved)


def class_names(pts_set):
    return sorted(obj.class_name for obj in pts_set)


class TestBasicPointsTo:
    def test_allocation_flows_to_local(self):
        _, pts = analyze("var p = new P();", "class P { }")
        objs = pts.may_point_to_register("Main.main", "p")
        assert class_names(objs) == ["P"]

    def test_copy_propagates(self):
        _, pts = analyze("var p = new P(); var q = p;", "class P { }")
        assert class_names(pts.may_point_to_register("Main.main", "q")) == ["P"]

    def test_distinct_allocation_sites_distinct_objects(self):
        _, pts = analyze("var p = new P(); var q = new P();", "class P { }")
        p_objs = pts.may_point_to_register("Main.main", "p")
        q_objs = pts.may_point_to_register("Main.main", "q")
        assert p_objs != q_objs

    def test_field_store_then_load(self):
        _, pts = analyze(
            "var box = new Box(); box.item = new P(); var got = box.item;",
            "class Box { field item; } class P { }",
        )
        assert class_names(pts.may_point_to_register("Main.main", "got")) == ["P"]

    def test_array_store_then_load(self):
        _, pts = analyze(
            "var a = newarray(2); a[0] = new P(); var got = a[1];",
            "class P { }",
        )
        # One location per array: any element load sees any stored object.
        assert class_names(pts.may_point_to_register("Main.main", "got")) == ["P"]

    def test_static_field_flow(self):
        _, pts = analyze(
            "G.holder = new P(); var got = G.holder;",
            "class G { static field holder; } class P { }",
        )
        assert class_names(pts.may_point_to_register("Main.main", "got")) == ["P"]

    def test_merging_over_branches(self):
        _, pts = analyze(
            "var p = new A(); if (true) { p = new B(); }",
            "class A { } class B { }",
        )
        assert class_names(pts.may_point_to_register("Main.main", "p")) == ["A", "B"]


class TestCalls:
    def test_static_call_params_and_return(self):
        _, pts = analyze(
            "var got = Util.pass(new P());",
            "class Util { static def pass(x) { return x; } } class P { }",
        )
        assert class_names(pts.may_point_to_register("Main.main", "got")) == ["P"]

    def test_instance_call_binds_this(self):
        _, pts = analyze(
            "var p = new P(); p.me();",
            "class P { def me() { return this; } }",
        )
        this_objs = pts.may_point_to_register("P.me", "this")
        assert class_names(this_objs) == ["P"]

    def test_dispatch_by_receiver_class(self):
        _, pts = analyze(
            "var a = new A(); var b = new B(); a.m(); b.m();",
            "class A { def m() { } } class B { def m() { } }",
        )
        callees = pts.callees_of("Main.main")
        assert {"A.m", "B.m"} <= callees

    def test_receiver_filtered_dispatch(self):
        # Only classes actually flowing to the receiver produce edges.
        _, pts = analyze(
            "var a = new A(); a.m();",
            "class A { def m() { } } class B { def m() { } }",
        )
        assert "B.m" not in pts.callees_of("Main.main")

    def test_only_reachable_methods_analyzed(self):
        _, pts = analyze(
            "var a = new A(); a.m();",
            "class A { def m() { } def dead() { } }",
        )
        assert "A.dead" not in pts.reachable_methods

    def test_init_edge_recorded(self):
        _, pts = analyze(
            "var p = new P(1);",
            "class P { field x; def init(v) { this.x = v; } }",
        )
        init_edges = [e for e in pts.call_edges if e.is_init]
        assert len(init_edges) == 1
        assert init_edges[0].callee == "P.init"

    def test_override_dispatch(self):
        _, pts = analyze(
            "var b = new B(); b.m();",
            "class A { def m() { } } class B extends A { def m() { } }",
        )
        assert pts.callees_of("Main.main") >= {"B.m"}
        assert "A.m" not in pts.callees_of("Main.main")


class TestStartEdges:
    SOURCE = (
        "class W { field item; def run() { var x = this.item; } }"
    )

    def test_start_creates_edge_and_binds_this(self):
        _, pts = analyze(
            "var w = new W(); start w; join w;", self.SOURCE
        )
        assert len(pts.start_edges) == 1
        edge = pts.start_edges[0]
        assert edge.run_method == "W.run"
        assert edge.thread_object.class_name == "W"
        this_objs = pts.may_point_to_register("W.run", "this")
        assert class_names(this_objs) == ["W"]

    def test_run_reachable_via_start_only(self):
        _, pts = analyze("var w = new W(); start w;", self.SOURCE)
        assert "W.run" in pts.reachable_methods

    def test_start_edge_records_loop_depth(self):
        _, pts = analyze(
            "var i = 0; while (i < 2) { var w = new W(); start w; i = i + 1; }",
            self.SOURCE,
        )
        assert pts.start_edges[0].loop_depth == 1


class TestSiteBases:
    def test_site_objects_for_field_access(self):
        resolved, pts = analyze(
            "var p = new P(); p.f = 1;", "class P { field f; }"
        )
        (write_site,) = [
            s for s in resolved.sites.values() if s.access_kind.value == "WRITE"
        ]
        objs = pts.site_objects(write_site.site_id)
        assert class_names(objs) == ["P"]

    def test_static_site_objects_are_class_objects(self):
        resolved, pts = analyze(
            "C.x = 1;", "class C { static field x; }"
        )
        (site_id,) = resolved.sites
        (obj,) = pts.site_objects(site_id)
        assert obj.category is ObjectCategory.CLASS

    def test_sync_stack_recorded_on_sites(self):
        resolved, pts = analyze(
            "var p = new P(); sync (p) { p.f = 1; }", "class P { field f; }"
        )
        write = next(
            s for s in pts.site_bases.values() if s.is_write
        )
        assert len(write.sync_stack) == 1
