"""Regression tests: temp event-log files must never outlive failures.

Three call sites spool event logs through throwaway ``.mjbl`` files —
the harness's binary post-mortem mode, difflab's binlog round-trip
axis, and the service's upload validation/spooling.  All of them now
route through :func:`repro.runtime.binlog.temporary_binary_log`; these
tests pin the cleanup contract, including the historical leak where
``run_workload_post_mortem`` dropped the temp file *and* left the
``BinaryLogSink`` open when the recording run raised mid-execution.
"""

import tempfile

import pytest

from repro.runtime.binlog import BinaryLogSink, temporary_binary_log


@pytest.fixture
def private_tmp(tmp_path, monkeypatch):
    """Route ``tempfile`` into an empty directory we can audit."""
    monkeypatch.setattr(tempfile, "tempdir", str(tmp_path))
    return tmp_path


class TestTemporaryBinaryLog:
    def test_removes_file_on_clean_exit(self, private_tmp):
        with temporary_binary_log() as path:
            assert path.exists()
            assert path.suffix == ".mjbl"
        assert not path.exists()
        assert list(private_tmp.iterdir()) == []

    def test_removes_file_when_body_raises(self, private_tmp):
        with pytest.raises(RuntimeError, match="mid-record failure"):
            with temporary_binary_log() as path:
                path.write_bytes(b"partial")
                raise RuntimeError("mid-record failure")
        assert list(private_tmp.iterdir()) == []

    def test_tolerates_body_unlinking_the_file(self, private_tmp):
        with temporary_binary_log() as path:
            path.unlink()
        assert list(private_tmp.iterdir()) == []

    def test_custom_suffix_and_dir(self, tmp_path):
        with temporary_binary_log(suffix=".json", dir=tmp_path) as path:
            assert path.parent == tmp_path
            assert path.suffix == ".json"
        assert list(tmp_path.iterdir()) == []


class TestHarnessPostMortemCleanup:
    def _run_with_step_budget_failure(self, monkeypatch, tmp_path):
        """Force ``recorder.run()`` to raise mid-record in binary mode,
        spying on sink closes; returns the list of closed sinks."""
        import repro.runtime.binlog as binlog
        from repro.harness.runner import CONFIG_FULL, run_workload_post_mortem
        from repro.runtime.scheduler import StepLimitExceeded
        from repro.workloads import ALL_WORKLOADS

        monkeypatch.setattr(tempfile, "tempdir", str(tmp_path))
        closed = []
        real_sink = BinaryLogSink

        class SpySink(real_sink):
            def close(self):
                closed.append(self)
                super().close()

        monkeypatch.setattr(binlog, "BinaryLogSink", SpySink)
        with pytest.raises(StepLimitExceeded):
            run_workload_post_mortem(
                ALL_WORKLOADS["tsp2"],
                CONFIG_FULL,
                shards=2,
                scale=1,
                log_format="binary",
                max_steps=3,
            )
        return closed

    def test_mid_record_failure_leaves_no_temp_file(
        self, monkeypatch, tmp_path
    ):
        self._run_with_step_budget_failure(monkeypatch, tmp_path)
        assert list(tmp_path.iterdir()) == []

    def test_mid_record_failure_closes_the_sink(
        self, monkeypatch, tmp_path
    ):
        closed = self._run_with_step_budget_failure(monkeypatch, tmp_path)
        assert closed, "BinaryLogSink.close() never ran after the failure"


class TestDifflabRoundTripCleanup:
    def test_roundtrip_failure_leaves_no_temp_file(
        self, monkeypatch, private_tmp
    ):
        import repro.difflab.verdicts as verdicts_module
        from repro.difflab.verdicts import (
            ScheduleSpec,
            compute_verdicts,
            execute_case,
        )

        source = """
class Main {
  static def main() {
    var d = new Data();
    d.x = 1;
    print d.x;
  }
}
class Data { field x; }
"""
        case = execute_case(source, ScheduleSpec())
        import repro.runtime.binlog as binlog

        def exploding_read(path):
            raise RuntimeError("decode blew up mid-roundtrip")

        monkeypatch.setattr(binlog, "read_binary_log", exploding_read)
        with pytest.raises(RuntimeError, match="mid-roundtrip"):
            compute_verdicts(case, shards=(2,))
        assert list(private_tmp.iterdir()) == []

    def test_roundtrip_success_leaves_no_temp_file(self, private_tmp):
        from repro.difflab.verdicts import (
            ScheduleSpec,
            compute_verdicts,
            execute_case,
        )

        source = """
class Main {
  static def main() {
    var d = new Data();
    d.x = 1;
    print d.x;
  }
}
class Data { field x; }
"""
        case = execute_case(source, ScheduleSpec())
        verdicts = compute_verdicts(case, shards=(2,))
        assert "paper-binlog" in verdicts
        assert list(private_tmp.iterdir()) == []
