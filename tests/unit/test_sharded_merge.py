"""Merge-edge unit tests for the sharded post-mortem engine.

The difflab's sharded-parity axis sweeps these same invariants over
fuzzed cases; here each edge gets a focused, deterministic check:
an empty log, a single shard, more shards than objects, and the
counter bookkeeping under sync-event replication.
"""

import pytest

from repro.detector import detect_from_log, detect_sharded, partition_log
from repro.runtime import RecordingSink

from ..conftest import run_source

TINY = """\
class Main {
  static def main() {
    var shared = new Shared();
    var w0 = new Worker0(shared);
    start w0;
    join w0;
    print shared.f0;
  }
}
class Shared { field f0; }
class Worker0 {
  field s;
  def init(shared) { this.s = shared; }
  def run() {
    var s = this.s;
    s.f0 = 1;
  }
}
"""

SYNC_HEAVY = """\
class Main {
  static def main() {
    var shared = new Shared();
    shared.f0 = 0;
    shared.f1 = 0;
    var lock0 = new LockObj();
    var w0 = new Worker0(shared, lock0);
    var w1 = new Worker1(shared, lock0);
    start w0;
    start w1;
    join w0;
    join w1;
    print shared.f0;
  }
}
class Shared { field f0; field f1; }
class LockObj { }
class Worker0 {
  field s;
  field lock0;
  def init(shared, l0) { this.s = shared; this.lock0 = l0; }
  def run() {
    var s = this.s;
    var i0 = 0;
    while (i0 < 6) {
      sync (this.lock0) { s.f0 = s.f0 + 1; }
      s.f1 = s.f1 + 1;
      i0 = i0 + 1;
    }
  }
}
class Worker1 {
  field s;
  field lock0;
  def init(shared, l0) { this.s = shared; this.lock0 = l0; }
  def run() {
    var s = this.s;
    var i1 = 0;
    while (i1 < 6) {
      sync (this.lock0) { s.f0 = s.f0 + 1; }
      s.f1 = s.f1 + 1;
      i1 = i1 + 1;
    }
  }
}
"""


def record(source):
    log = RecordingSink()
    run_source(source, sink=log)
    return log


def counter_tuple(result):
    """The counters the parity theorem says are shard-count invariant."""
    return (
        result.stats.accesses,
        result.stats.owned_filtered,
        result.stats.detector_processed,
        result.stats.cache_hits + result.stats.detector_weaker_filtered,
        result.monitored_locations,
        result.trie_nodes,
        tuple(str(r.key) for r in result.reports.reports),
    )


class TestEmptyLog:
    def test_empty_log_any_shard_count(self):
        for shards in (1, 2, 8):
            result = detect_sharded([], shards)
            assert result.races == 0
            assert result.monitored_locations == 0
            assert result.trie_nodes == 0
            assert result.partitioned_accesses == 0
            assert result.replicated_sync_events == 0
            assert len(result.outcomes) == shards

    def test_partition_empty(self):
        streams, accesses, syncs = partition_log([], 3)
        assert streams == [[], [], []]
        assert accesses == 0 and syncs == 0

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError):
            partition_log([], 0)
        with pytest.raises(ValueError):
            detect_sharded([], 0)


class TestSingleShard:
    def test_single_shard_equals_serial(self):
        log = record(SYNC_HEAVY)
        serial, _ = detect_from_log(log)
        sharded = detect_sharded(log, 1)
        assert sharded.races == len(serial.reports.reports)
        assert sharded.monitored_locations == serial.monitored_locations
        assert sharded.trie_nodes == serial.total_trie_nodes()
        assert [str(r.key) for r in sharded.reports.reports] == [
            str(r.key) for r in serial.reports.reports
        ]
        # One shard holds the whole log: nothing is replicated extra.
        only = sharded.outcomes[0]
        assert only.access_events == log.access_count


class TestShardsExceedObjects:
    def test_more_shards_than_objects(self):
        log = record(TINY)
        uids = {entry[1] for entry in log.log
                if entry[0] == RecordingSink.ACCESS}
        shards = len(uids) + 13
        serial, _ = detect_from_log(log)
        sharded = detect_sharded(log, shards)
        # Most shards are empty of accesses, yet the merge is exact.
        populated = [o for o in sharded.outcomes if o.access_events]
        assert len(populated) <= len(uids)
        assert counter_tuple(sharded)[:-1] == (
            serial.stats.accesses,
            serial.stats.owned_filtered,
            serial.stats.detector_processed,
            serial.stats.cache_hits + serial.stats.detector_weaker_filtered,
            serial.monitored_locations,
            serial.total_trie_nodes(),
        )
        assert [str(r.key) for r in sharded.reports.reports] == [
            str(r.key) for r in serial.reports.reports
        ]


class TestSyncReplication:
    def test_counters_invariant_across_shard_counts(self):
        log = record(SYNC_HEAVY)
        serial, _ = detect_from_log(log)
        expected = (
            serial.stats.accesses,
            serial.stats.owned_filtered,
            serial.stats.detector_processed,
            serial.stats.cache_hits + serial.stats.detector_weaker_filtered,
            serial.monitored_locations,
            serial.total_trie_nodes(),
            tuple(str(r.key) for r in serial.reports.reports),
        )
        for shards in (1, 2, 3, 8):
            result = detect_sharded(log, shards)
            assert counter_tuple(result) == expected, shards

    def test_every_shard_sees_every_sync_event(self):
        log = record(SYNC_HEAVY)
        syncs = len(log.log) - log.access_count
        assert syncs > 0
        streams, accesses, replicated = partition_log(log.log, 4)
        assert replicated == syncs
        assert accesses == log.access_count
        for stream in streams:
            non_access = [e for e in stream
                          if e[0] != RecordingSink.ACCESS]
            assert len(non_access) == syncs

    def test_replicated_syncs_do_not_inflate_access_counters(self):
        log = record(SYNC_HEAVY)
        for shards in (2, 8):
            result = detect_sharded(log, shards)
            # Per-shard access counts partition the recorded accesses
            # exactly; sync replication never leaks into them.
            assert sum(o.access_events for o in result.outcomes) == (
                log.access_count
            )
            assert result.partitioned_accesses == log.access_count
