"""Unit tests for the loop peeling transformation (Section 6.3)."""

from repro.instrument import PlannerConfig, peel_loops, plan_instrumentation
from repro.lang import ast, compile_source, render_program

from ..conftest import run_source


def compile_and_peel(body: str, extra: str = ""):
    source = "class Main { static def main() { " + body + " } }\n" + extra
    resolved = compile_source(source)
    stats = peel_loops(resolved)
    return resolved, stats


class TestShape:
    def test_loop_with_access_is_peeled(self):
        resolved, stats = compile_and_peel(
            "var p = new P(); var i = 0; "
            "while (i < 3) { p.f = i; i = i + 1; }",
            "class P { field f; }",
        )
        assert stats.loops_peeled == 1
        # The loop statement is replaced by an if guarding peel + loop.
        main_body = resolved.main_method.body.body
        guard = next(s for s in main_body if isinstance(s, ast.If))
        assert isinstance(guard.then_block.body[-1], ast.While)
        assert guard.then_block.body[-1].peeled

    def test_loop_without_accesses_not_peeled(self):
        _, stats = compile_and_peel(
            "var i = 0; while (i < 3) { i = i + 1; }"
        )
        assert stats.loops_peeled == 0

    def test_nested_loops_peeled_inner_first(self):
        resolved, stats = compile_and_peel(
            "var p = new P(); var i = 0; "
            "while (i < 3) { var j = 0; while (j < 3) { p.f = j; j = j + 1; } "
            "i = i + 1; }",
            "class P { field f; }",
        )
        # Inner loop peeled, then the outer (which now contains the
        # peeled inner structure): 2 original loops peeled, plus the
        # cloned inner loop inside the outer peel is already marked.
        assert stats.loops_peeled == 2

    def test_cloned_sites_get_fresh_ids_with_origins(self):
        resolved, stats = compile_and_peel(
            "var p = new P(); var i = 0; "
            "while (i < 3) { p.f = i; i = i + 1; }",
            "class P { field f; }",
        )
        assert stats.sites_cloned >= 1
        clones = [
            sid
            for sid in resolved.sites
            if resolved.origin_of(sid) != sid
        ]
        assert len(clones) == stats.sites_cloned
        for clone in clones:
            assert resolved.origin_of(clone) in resolved.sites

    def test_cloned_sync_blocks_get_fresh_sync_ids(self):
        resolved, _ = compile_and_peel(
            "var p = new P(); var i = 0; "
            "while (i < 3) { sync (p) { p.f = i; } i = i + 1; }",
            "class P { field f; }",
        )
        sync_ids = [
            node.sync_id
            for node in resolved.main_method.body.walk()
            if isinstance(node, ast.Sync)
        ]
        assert len(sync_ids) == len(set(sync_ids)) == 2

    def test_peeling_is_idempotent(self):
        resolved, first = compile_and_peel(
            "var p = new P(); var i = 0; "
            "while (i < 3) { p.f = i; i = i + 1; }",
            "class P { field f; }",
        )
        second = peel_loops(resolved)
        assert second.loops_peeled == 0

    def test_rendered_output_reparses(self):
        resolved, _ = compile_and_peel(
            "var p = new P(); var i = 0; "
            "while (i < 3) { p.f = i; i = i + 1; }",
            "class P { field f; }",
        )
        text = render_program(resolved.program)
        recompiled = compile_source(text)
        assert recompiled is not None


class TestSemanticsPreserved:
    def kernel(self, n):
        return f"""
        class Main {{
          static def main() {{
            var p = new P();
            p.f = 0;
            var i = 0;
            while (i < {n}) {{
              p.f = p.f + i;
              i = i + 1;
            }}
            print p.f;
            print i;
          }}
        }}
        class P {{ field f; }}
        """

    def test_same_output_after_peeling(self):
        for n in (0, 1, 2, 7):
            source = self.kernel(n)
            plain = run_source(source).output
            resolved = compile_source(source)
            peel_loops(resolved)
            from repro.runtime import run_program

            peeled = run_program(resolved).output
            assert peeled == plain

    def test_condition_side_effects_preserved(self):
        source = """
        class Main {
          static def main() {
            var c = new Counter();
            var i = 0;
            while (c.tick() < 4) {
              i = i + 1;
            }
            print c.n;
            print i;
          }
        }
        class Counter {
          field n;
          def init() { this.n = 0; }
          def tick() { this.n = this.n + 1; return this.n; }
        }
        """
        plain = run_source(source).output
        resolved = compile_source(source)
        peel_loops(resolved)
        from repro.runtime import run_program

        assert run_program(resolved).output == plain

    def test_multithreaded_output_preserved(self):
        source = """
        class Main {
          static def main() {
            var s = new S();
            s.total = 0;
            var a = new W(s); var b = new W(s);
            start a; start b; join a; join b;
            print s.total;
          }
        }
        class S { field total; }
        class W {
          field s;
          def init(s) { this.s = s; }
          def run() {
            var i = 0;
            while (i < 10) {
              sync (this.s) { this.s.total = this.s.total + 1; }
              i = i + 1;
            }
          }
        }
        """
        plain = run_source(source, seed=3).output
        resolved = compile_source(source)
        peel_loops(resolved)
        from repro.runtime import RandomPolicy, run_program

        assert run_program(resolved, policy=RandomPolicy(3)).output == plain


class TestPlannerIntegration:
    def test_full_plan_removes_in_loop_trace(self):
        source = """
        class Main {
          static def main() {
            var shared = new P();
            var w1 = new K(shared); var w2 = new K(shared);
            start w1; start w2; join w1; join w2;
          }
        }
        class P { field f; }
        class K {
          field a;
          def init(shared) { this.a = shared; }
          def run() {
            var a = this.a;
            var i = 0;
            while (i < 50) { a.f = i; i = i + 1; }
          }
        }
        """
        resolved = compile_source(source)
        plan = plan_instrumentation(resolved, PlannerConfig())
        assert plan.stats.loops_peeled >= 1
        assert plan.stats.sites_eliminated_weaker >= 1

    def test_no_peeling_config_keeps_loop_trace(self):
        source = """
        class Main {
          static def main() {
            var shared = new P();
            var w1 = new K(shared); var w2 = new K(shared);
            start w1; start w2; join w1; join w2;
          }
        }
        class P { field f; }
        class K {
          field a;
          def init(shared) { this.a = shared; }
          def run() {
            var a = this.a;
            var i = 0;
            while (i < 50) { a.f = i; i = i + 1; }
          }
        }
        """
        resolved = compile_source(source)
        plan = plan_instrumentation(
            resolved, PlannerConfig(loop_peeling=False)
        )
        assert plan.stats.loops_peeled == 0
