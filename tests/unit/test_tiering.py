"""Unit tests for the tiered compilation layer
(:mod:`repro.runtime.tiering`): ownership terminal states, the static
start-reach/thread-local analyses, the settlement tracker, engagement
rules, and counter folding."""

import random

import pytest

from repro.detector import DetectorConfig, OwnershipFilter, RaceDetector
from repro.lang import compile_source
from repro.runtime import (
    CompiledInterpreter,
    MulticastSink,
    RandomPolicy,
    RecordingSink,
)
from repro.runtime.tiering import (
    TIERING_MODES,
    TierCounters,
    TieringState,
    analyze_start_reach,
    attach_tiering,
    main_flip_index,
    run_can_start,
    thread_local_sites,
    validate_tiering,
)

#: Two workers race on d.x; after both join, main hammers a fresh
#: object through the *same* traced site — the accesses a settled
#: (terminal-state) run elides.
SETTLING = """
class Main {
  static def main() {
    var d = new Data();
    d.x = 0;
    var a = new Worker(d); var b = new Worker(d);
    start a; start b; join a; join b;
    var f = new Data();
    f.x = 0;
    var i = 0;
    while (i < 8) { f.bump(); i = i + 1; }
    print d.x; print f.x;
  }
}
class Data { field x; def bump() { this.x = this.x + 1; } }
class Worker {
  field d;
  def init(d) { this.d = d; }
  def run() { this.d.bump(); }
}
"""

NO_THREADS = """
class Main {
  static def main() {
    var d = new Data();
    d.x = 1;
    print d.x;
  }
}
class Data { field x; }
"""

#: ``run`` itself contains a ``start`` — a child that can spawn
#: further threads, so its class must block settlement while live.
NESTED_START = """
class Main {
  static def main() {
    var s = new Spawner();
    start s; join s;
    print 1;
  }
}
class Leaf { def run() { var x = 1; } }
class Spawner {
  def run() { var l = new Leaf(); start l; join l; }
}
"""


class TestTieringModes:
    def test_validate_accepts_every_mode(self):
        for mode in TIERING_MODES:
            assert validate_tiering(mode) == mode

    def test_validate_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="auto"):
            validate_tiering("auto")

    def test_env_default_rejects_garbage(self, monkeypatch):
        from repro.runtime import tiering

        monkeypatch.setenv("REPRO_TIERING", "fast")
        with pytest.raises(ValueError, match="REPRO_TIERING"):
            tiering._env_default()

    def test_env_default_unset_is_off(self, monkeypatch):
        from repro.runtime import tiering

        monkeypatch.delenv("REPRO_TIERING", raising=False)
        assert tiering._env_default() == "off"


class TestWouldFilter:
    """``would_filter`` is the elision-eligibility predicate: it must
    agree with ``admit`` on every reachable ownership state and never
    mutate anything."""

    def test_agrees_with_admit_on_random_traffic(self):
        rng = random.Random(42)
        own = OwnershipFilter()
        for _ in range(500):
            key = rng.choice("abcdef")
            thread = rng.randrange(3)
            predicted = own.would_filter(key, thread)
            admit, _ = own.admit(key, thread)
            assert predicted == (not admit)

    def test_is_pure(self):
        own = OwnershipFilter()
        own.admit("k", 1)
        before = (dict(own._owners), own.stats.owned_filtered)
        own.would_filter("k", 1)
        own.would_filter("k", 2)
        own.would_filter("fresh", 7)
        assert (dict(own._owners), own.stats.owned_filtered) == before
        assert own.owner_of("fresh") is None

    def test_shared_is_terminal(self):
        own = OwnershipFilter()
        own.admit("k", 1)
        own.admit("k", 2)  # transition to SHARED
        assert own.is_shared("k")
        for thread in range(4):
            assert not own.would_filter("k", thread)
            admit, transitioned = own.admit("k", thread)
            assert admit and not transitioned
        assert own.is_shared("k")  # no edge leaves SHARED

    def test_fold_elided_matches_the_admits_it_replaces(self):
        # N elided accesses must account exactly like N filtered admits.
        folded, admitted = OwnershipFilter(), OwnershipFilter()
        admitted.admit("k", 1)
        for _ in range(9):
            admitted.admit("k", 1)
        folded._owners["k"] = 1
        folded.fold_elided(10)
        assert folded.stats.owned_filtered == admitted.stats.owned_filtered
        assert folded.stats.transitions == admitted.stats.transitions
        assert folded.stats.shared_passed == admitted.stats.shared_passed


class TestStartReach:
    def test_no_threads_means_nothing_reaches(self):
        resolved = compile_source(NO_THREADS, filename="nt.mj")
        assert analyze_start_reach(resolved) == set()
        assert main_flip_index(resolved, set()) == -1

    def test_direct_and_transitive_reach(self):
        resolved = compile_source(NESTED_START, filename="ns.mj")
        reaches = analyze_start_reach(resolved)
        assert "Main.main" in reaches
        assert "Spawner.run" in reaches
        assert "Leaf.run" not in reaches

    def test_run_can_start_blocks_settlement_for_spawners(self):
        resolved = compile_source(NESTED_START, filename="ns.mj")
        reaches = analyze_start_reach(resolved)
        can = run_can_start(resolved, reaches)
        assert can["Spawner"] is True
        assert can["Leaf"] is False
        assert can["Main"] is False  # no run method: never a thread

    def test_flip_index_is_the_last_start_reaching_statement(self):
        resolved = compile_source(SETTLING, filename="settle.mj")
        reaches = analyze_start_reach(resolved)
        index = main_flip_index(resolved, reaches)
        body = resolved.main_method.body.body
        # The flip statement is the one containing `start b`; every
        # later top-level statement (joins, the loop, prints) must not
        # reach a start, or settlement could fire too early.
        assert 0 <= index < len(body) - 1
        from repro.lang import ast

        starts = [
            i
            for i, stmt in enumerate(body)
            if type(stmt) is ast.Start
            or any(type(n) is ast.Start for n in stmt.children())
        ]
        assert index == max(starts)


class TestThreadLocalSites:
    def test_fresh_main_object_sites_qualify_and_shared_do_not(self):
        resolved = compile_source(SETTLING, filename="settle.mj")
        sites = thread_local_sites(resolved, None)
        # Some site must be proven thread-local (accesses through `f`
        # never escape main)...
        assert sites
        # ...but the racy site inside Data.bump reaches the shared `d`
        # too, so it must never be promoted statically.
        origins = {resolved.origin_of(site) for site in sites}
        for origin in origins:
            assert "Data.bump" not in getattr(origin, "qualified_name", "")

    def test_no_threads_program_is_entirely_thread_local(self):
        resolved = compile_source(NO_THREADS, filename="nt.mj")
        sites = thread_local_sites(resolved, None)
        assert sites == set(resolved.sites)

    def test_respects_the_trace_site_restriction(self):
        resolved = compile_source(NO_THREADS, filename="nt.mj")
        assert thread_local_sites(resolved, set()) == set()


def _engine(source, sink, tiering="on", trace_sites=None, seed=3):
    resolved = compile_source(source, filename="tiering-test.mj")
    return CompiledInterpreter(
        resolved,
        sink=sink,
        trace_sites=trace_sites,
        policy=RandomPolicy(seed),
        tiering=tiering,
    )


class TestEngagement:
    def test_plain_detector_engages(self):
        engine = _engine(SETTLING, RaceDetector())
        assert isinstance(engine._tiering, TieringState)

    def test_off_mode_never_engages(self):
        engine = _engine(SETTLING, RaceDetector(), tiering="off")
        assert engine._tiering is None

    def test_recording_sink_never_engages(self):
        engine = _engine(SETTLING, RecordingSink())
        assert engine._tiering is None

    def test_multicast_sink_never_engages(self):
        sink = MulticastSink([RecordingSink(), RaceDetector()])
        engine = _engine(SETTLING, sink)
        assert engine._tiering is None

    def test_no_sink_never_engages(self):
        engine = _engine(SETTLING, None)
        assert engine._tiering is None

    def test_ownership_disabled_never_engages(self):
        detector = RaceDetector(config=DetectorConfig(ownership=False))
        engine = _engine(SETTLING, detector)
        assert engine._tiering is None

    def test_ast_engine_validates_and_ignores(self):
        from repro.runtime import Interpreter

        resolved = compile_source(NO_THREADS, filename="nt.mj")
        engine = Interpreter(resolved, sink=RaceDetector(), tiering="on")
        assert engine._tiering is None
        with pytest.raises(ValueError):
            Interpreter(resolved, sink=RaceDetector(), tiering="sideways")


class TestSettlementTracker:
    def _state(self, source=SETTLING):
        engine = _engine(source, RaceDetector())
        return engine._tiering

    def test_single_threaded_program_settles_at_step_zero(self):
        state = self._state(NO_THREADS)
        assert state.flip_index == -1
        assert state.settled_cell[0]
        assert state.survivor_cell[0] == 0

    def test_threaded_program_starts_unsettled(self):
        state = self._state()
        assert state.flip_index >= 0
        assert not state.settled_cell[0]

    def test_settles_only_when_sole_survivor_cannot_start(self):
        state = self._state()
        state.note_start(1, "Worker")
        state.note_start(2, "Worker")
        state.note_main_past_starts()
        assert not state.settled_cell[0]  # three live threads
        state.note_end(1)
        assert not state.settled_cell[0]  # two live threads
        state.note_end(2)
        assert state.settled_cell[0]
        assert state.survivor_cell[0] == 0

    def test_does_not_settle_before_main_passes_its_starts(self):
        state = self._state()
        state.note_start(1, "Worker")
        state.note_end(1)
        # Main is the sole survivor but has not crossed its last
        # start-reaching statement: another start is still possible.
        assert not state.settled_cell[0]

    def test_child_survivor_settles_when_its_run_cannot_start(self):
        state = self._state()
        state.note_start(1, "Worker")
        state.note_main_past_starts()
        state.note_end(0)
        assert state.settled_cell[0]
        assert state.survivor_cell[0] == 1

    def test_spawning_child_blocks_settlement(self):
        state = self._state(NESTED_START)
        state.note_start(1, "Spawner")
        state.note_main_past_starts()
        state.note_end(0)
        assert not state.settled_cell[0]  # Spawner.run reaches a start

    def test_unknown_class_is_conservatively_a_spawner(self):
        state = self._state()
        state.note_start(1, "Mystery")
        state.note_main_past_starts()
        state.note_end(0)
        assert not state.settled_cell[0]

    def test_start_after_settlement_is_a_hard_error(self):
        state = self._state()
        state.note_start(1, "Worker")
        state.note_main_past_starts()
        state.note_end(1)
        assert state.settled_cell[0]
        with pytest.raises(RuntimeError, match="settlement violated"):
            state.note_start(2, "Worker")


class TestFold:
    def test_fold_restores_exact_counter_parity(self):
        detector_on = RaceDetector()
        engine = _engine(SETTLING, detector_on)
        engine.run()
        detector_off = RaceDetector()
        _engine(SETTLING, detector_off, tiering="off").run()

        assert detector_on.tiering is not None
        assert detector_on.tiering.elided_settled > 0
        assert detector_on.stats == detector_off.stats
        assert detector_on.ownership.stats == detector_off.ownership.stats
        assert detector_on.cache.stats.hits == detector_off.cache.stats.hits
        assert [str(r) for r in detector_on.reports.reports] == [
            str(r) for r in detector_off.reports.reports
        ]

    def test_fold_is_idempotent(self):
        detector = RaceDetector()
        engine = _engine(SETTLING, detector)
        engine.run()
        accesses = detector.stats.accesses
        assert engine._tiering.fold() == 0  # run() already folded
        assert detector.stats.accesses == accesses

    def test_untraced_sites_produce_no_tiering_work(self):
        detector = RaceDetector()
        engine = _engine(SETTLING, detector, trace_sites=set())
        engine.run()
        counters = detector.tiering
        assert counters.sites_tier0 == 0
        assert counters.elided == 0

    def test_static_tier1_sites_elide_when_every_site_is_traced(self):
        # With all sites traced, the f-only sites (thread-local by
        # escape analysis) compile to bare tier-1 stubs.
        detector = RaceDetector()
        engine = _engine(SETTLING, detector)
        engine.run()
        counters = detector.tiering
        assert counters.sites_tier1_static > 0
        assert counters.elided_static > 0
        assert counters.settled
        assert counters.survivor == 0


class TestTierCounters:
    def test_elided_total_and_dict_shape(self):
        counters = TierCounters(
            sites_tier0=4,
            sites_tier1_static=2,
            inline_owned=10,
            inline_cache_hits=3,
            elided_static=7,
            elided_settled=5,
            settled=True,
            survivor=0,
        )
        assert counters.elided == 12
        payload = counters.as_dict()
        assert payload["elided_total"] == 12
        assert payload["settled"] is True
        assert payload["survivor"] == 0
        import json

        json.dumps(payload)  # /stats aggregation needs JSON-safety


class TestAttachHelper:
    def test_attach_matches_engine_wiring(self):
        engine = _engine(SETTLING, RaceDetector(), tiering="off")
        state = attach_tiering(engine)
        assert isinstance(state, TieringState)
        assert state.detector is engine._sink
