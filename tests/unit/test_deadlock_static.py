"""Unit tests for the static lock-order deadlock analysis."""

from repro.analysis import analyze_static_deadlocks
from repro.lang import compile_source


def analyze(source: str):
    return analyze_static_deadlocks(compile_source(source))


TWO_LOCK_TEMPLATE = """
class Main {{
  static def main() {{
    var l1 = new L(); var l2 = new L();
    var a = new W({a_args}); var b = new W({b_args});
    start a; start b; join a; join b;
  }}
}}
class L {{ }}
class W {{
  field x; field y;
  def init(x, y) {{ this.x = x; this.y = y; }}
  def run() {{ sync (this.x) {{ sync (this.y) {{ }} }} }}
}}
"""


class TestTwoLockCycles:
    def test_opposite_orders_reported(self):
        reports = analyze(
            TWO_LOCK_TEMPLATE.format(a_args="l1, l2", b_args="l2, l1")
        )
        assert len(reports) == 1
        assert "POTENTIAL STATIC DEADLOCK" in reports[0].describe()
        assert len(reports[0].cycle) == 2

    def test_consistent_order_clean(self):
        reports = analyze(
            TWO_LOCK_TEMPLATE.format(a_args="l1, l2", b_args="l1, l2")
        )
        assert not reports

    def test_single_worker_both_orders_pruned_by_must_thread(self):
        source = """
        class Main {
          static def main() {
            var l1 = new L(); var l2 = new L();
            var a = new W(l1, l2);
            start a; join a;
          }
        }
        class L { }
        class W {
          field x; field y;
          def init(x, y) { this.x = x; this.y = y; }
          def run() {
            sync (this.x) { sync (this.y) { } }
            sync (this.y) { sync (this.x) { } }
          }
        }
        """
        assert not analyze(source)

    def test_two_workers_both_orders_reported(self):
        source = """
        class Main {
          static def main() {
            var l1 = new L(); var l2 = new L();
            var a = new W(l1, l2); var b = new W(l1, l2);
            start a; start b; join a; join b;
          }
        }
        class L { }
        class W {
          field x; field y;
          def init(x, y) { this.x = x; this.y = y; }
          def run() {
            sync (this.x) { sync (this.y) { } }
            sync (this.y) { sync (this.x) { } }
          }
        }
        """
        # Two W objects → MustThread of W.run is empty → a real cycle.
        assert len(analyze(source)) == 1

    def test_gate_lock_prunes(self):
        source = """
        class Main {
          static def main() {
            var g = new L(); var l1 = new L(); var l2 = new L();
            var a = new W(l1, l2, g); var b = new W(l2, l1, g);
            start a; start b; join a; join b;
          }
        }
        class L { }
        class W {
          field x; field y; field g;
          def init(x, y, g) { this.x = x; this.y = y; this.g = g; }
          def run() {
            sync (this.g) { sync (this.x) { sync (this.y) { } } }
          }
        }
        """
        assert not analyze(source)

    def test_gate_on_one_path_only_still_reported(self):
        source = """
        class Main {
          static def main() {
            var g = new L(); var l1 = new L(); var l2 = new L();
            var a = new WGated(l1, l2, g); var b = new WBare(l2, l1);
            start a; start b; join a; join b;
          }
        }
        class L { }
        class WGated {
          field x; field y; field g;
          def init(x, y, g) { this.x = x; this.y = y; this.g = g; }
          def run() { sync (this.g) { sync (this.x) { sync (this.y) { } } } }
        }
        class WBare {
          field x; field y;
          def init(x, y) { this.x = x; this.y = y; }
          def run() { sync (this.x) { sync (this.y) { } } }
        }
        """
        assert len(analyze(source)) >= 1


class TestInterprocedural:
    def test_cycle_through_calls_detected(self):
        source = """
        class Main {
          static def main() {
            var l1 = new L(); var l2 = new L();
            var a = new W(l1, l2); var b = new W(l2, l1);
            start a; start b; join a; join b;
          }
        }
        class L { }
        class W {
          field x; field y;
          def init(x, y) { this.x = x; this.y = y; }
          def inner() { sync (this.y) { } }
          def run() { sync (this.x) { inner(); } }
        }
        """
        # The second acquisition happens in a callee: the may-held set
        # flows over the ICG call edge.
        assert len(analyze(source)) == 1

    def test_no_nesting_no_report(self):
        source = """
        class Main {
          static def main() {
            var l1 = new L(); var l2 = new L();
            var a = new W(l1, l2); var b = new W(l2, l1);
            start a; start b; join a; join b;
          }
        }
        class L { }
        class W {
          field x; field y;
          def init(x, y) { this.x = x; this.y = y; }
          def run() {
            sync (this.x) { }
            sync (this.y) { }
          }
        }
        """
        assert not analyze(source)

    def test_three_lock_cycle(self):
        # Three distinct worker classes so the context-insensitive
        # points-to keeps the three lock pairs apart.
        worker = """
        class W{n} {{
          field x; field y;
          def init(x, y) {{ this.x = x; this.y = y; }}
          def run() {{ sync (this.x) {{ sync (this.y) {{ }} }} }}
        }}
        """
        source = (
            """
        class Main {
          static def main() {
            var l1 = new L(); var l2 = new L(); var l3 = new L();
            var a = new W1(l1, l2); var b = new W2(l2, l3);
            var c = new W3(l3, l1);
            start a; start b; start c;
            join a; join b; join c;
          }
        }
        class L { }
        """
            + worker.format(n=1)
            + worker.format(n=2)
            + worker.format(n=3)
        )
        reports = analyze(source)
        assert len(reports) == 1
        assert len(reports[0].cycle) == 3

    def test_one_worker_class_conflates_conservatively(self):
        # With a single worker class, the context-insensitive analysis
        # merges all lock fields; it still reports (conservatively),
        # just with coarser cycles.
        source = """
        class Main {
          static def main() {
            var l1 = new L(); var l2 = new L(); var l3 = new L();
            var a = new W(l1, l2); var b = new W(l2, l3);
            var c = new W(l3, l1);
            start a; start b; start c;
            join a; join b; join c;
          }
        }
        class L { }
        class W {
          field x; field y;
          def init(x, y) { this.x = x; this.y = y; }
          def run() { sync (this.x) { sync (this.y) { } } }
        }
        """
        assert analyze(source)

    def test_conflation_is_conservative(self):
        # One allocation site in a loop produces MANY locks; a nested
        # acquisition of "the same" abstract lock from another order
        # still reports — conservative, like IsMayRace.
        source = """
        class Main {
          static def main() {
            var l1 = new L(); var l2 = new L();
            var a = new W(l1, l2); var b = new W(l2, l1);
            start a; start b; join a; join b;
          }
        }
        class L { }
        class W {
          field x; field y;
          def init(x, y) { this.x = x; this.y = y; }
          def run() { sync (this.x) { sync (this.y) { } } }
        }
        """
        assert analyze(source)
