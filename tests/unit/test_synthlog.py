"""The synthetic trace generator behind the 10M-event benchmarks.

Its contract: exactly the requested event count, deterministic per
seed, well-formed (validates as schema v3, monitors balance, lifecycle
ordering holds), all eight event kinds present, and a race-report
volume bounded by the per-trace racy budget rather than the trace size.
"""

import pytest

from repro.detector import detect_from_log
from repro.runtime import RecordingSink
from repro.runtime.events import validate_entries
from repro.runtime.synthlog import synthesize_into


def _synth(events, **kwargs):
    sink = RecordingSink()
    count = synthesize_into(sink, events, **kwargs)
    return sink, count


class TestSynthlog:
    @pytest.mark.parametrize("events", [2_000, 10_000, 50_001])
    def test_exact_event_count(self, events):
        sink, count = _synth(events)
        assert count == events == len(sink.log)

    def test_deterministic_per_seed(self):
        first, _ = _synth(5_000, seed=7)
        second, _ = _synth(5_000, seed=7)
        other, _ = _synth(5_000, seed=8)
        assert first.log == second.log
        assert first.log != other.log

    def test_stream_is_valid_schema_v3(self):
        sink, _ = _synth(10_000)
        validate_entries(sink.log)

    def test_all_eight_kinds_present(self):
        sink, _ = _synth(10_000)
        tags = {entry[0] for entry in sink.log}
        assert tags == {
            RecordingSink.ACCESS, RecordingSink.ENTER, RecordingSink.EXIT,
            RecordingSink.START, RecordingSink.END, RecordingSink.JOIN,
            RecordingSink.WAIT, RecordingSink.NOTIFY,
        }

    def test_monitors_balance_per_thread(self):
        sink, _ = _synth(20_000)
        depth: dict = {}
        for entry in sink.log:
            if entry[0] == RecordingSink.ENTER:
                depth[entry[1]] = depth.get(entry[1], 0) + 1
            elif entry[0] == RecordingSink.EXIT:
                depth[entry[1]] = depth[entry[1]] - 1
                assert depth[entry[1]] >= 0
        assert all(d == 0 for d in depth.values())

    def test_race_volume_tracks_budget_not_scale(self):
        small, _ = _synth(20_000, racy_total=64)
        large, _ = _synth(80_000, racy_total=64)
        small_races = len(detect_from_log(small)[0].reports.reports)
        large_races = len(detect_from_log(large)[0].reports.reports)
        assert 0 < small_races <= 64
        assert 0 < large_races <= 64

    def test_rejects_infeasible_budget(self):
        sink = RecordingSink()
        with pytest.raises(ValueError, match="too small"):
            synthesize_into(sink, 100)
