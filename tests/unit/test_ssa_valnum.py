"""Unit tests for SSA construction and global value numbering."""

from repro.analysis import ir, lower_program, build_ssa, value_numbering
from repro.lang import compile_source


def ssa_of(body: str, extra: str = ""):
    source = "class Main { static def main() { " + body + " } }\n" + extra
    resolved = compile_source(source)
    function = lower_program(resolved)["Main.main"]
    graph, dom = build_ssa(function)
    return function, graph, value_numbering(function, graph)


def defs_of(function, base_name):
    """All SSA versions of a variable that are defined in the function."""
    names = set()
    for _, _, instr in function.instructions():
        dest = instr.defs()
        if dest is not None and dest.split("#")[0] == base_name:
            names.add(dest)
    return names


class TestSSAConstruction:
    def test_single_assignment_single_version(self):
        function, _, _ = ssa_of("var x = 1; print x;")
        assert defs_of(function, "x") == {"x#1"}

    def test_reassignment_creates_versions(self):
        function, _, _ = ssa_of("var x = 1; x = 2; print x;")
        assert defs_of(function, "x") == {"x#1", "x#2"}

    def test_branch_assignment_inserts_phi(self):
        function, _, _ = ssa_of(
            "var x = 1; if (true) { x = 2; } print x;"
        )
        phis = [
            instr
            for _, _, instr in function.instructions()
            if isinstance(instr, ir.Phi) and instr.var == "x"
        ]
        assert len(phis) >= 1
        # The phi merging the two reaching versions of x has 2 operands.
        merge = max(phis, key=lambda p: len(p.operands))
        assert len(merge.operands) == 2

    def test_loop_variable_gets_header_phi(self):
        function, graph, _ = ssa_of(
            "var i = 0; while (i < 3) { i = i + 1; } print i;"
        )
        phis = [
            (block_id, instr)
            for block_id, _, instr in function.instructions()
            if isinstance(instr, ir.Phi) and instr.var == "i"
        ]
        assert phis
        # At least one phi sits in a block targeted by a back edge.
        headers = {
            b
            for b in graph.reachable
            for p in graph.preds[b]
            if graph.rpo_index[p] > graph.rpo_index[b]
        }
        assert any(block_id in headers for block_id, _ in phis)

    def test_uses_renamed_to_reaching_version(self):
        function, _, _ = ssa_of("var x = 1; x = 2; print x;")
        prints = [
            instr
            for _, _, instr in function.instructions()
            if isinstance(instr, ir.PrintI)
        ]
        assert prints[0].src == "x#2"

    def test_params_become_version_one(self):
        source = (
            "class Main { static def main() { } }\n"
            "class A { def m(p) { return p; } }"
        )
        resolved = compile_source(source)
        function = lower_program(resolved)["A.m"]
        build_ssa(function)
        rets = [
            instr
            for _, _, instr in function.instructions()
            if isinstance(instr, ir.Ret) and instr.src is not None
        ]
        assert rets[0].src == "p#1"


class TestValueNumbering:
    def test_same_constant_same_number(self):
        _, _, vn = ssa_of("var x = 7; var y = 7; print x + y;")
        function, graph, vn = ssa_of("var x = 7; var y = 7; print x + y;")
        assert vn.same_value("x#1", "y#1")

    def test_different_constants_differ(self):
        function, _, vn = ssa_of("var x = 7; var y = 8;")
        assert not vn.same_value("x#1", "y#1")

    def test_copy_propagation(self):
        function, _, vn = ssa_of("var x = 7; var y = x;")
        assert vn.same_value("x#1", "y#1")

    def test_common_subexpression_detected(self):
        function, _, vn = ssa_of(
            "var a = 1; var b = 2; var x = a + b; var y = a + b;"
        )
        assert vn.same_value("x#1", "y#1")

    def test_different_operations_differ(self):
        function, _, vn = ssa_of(
            "var a = 1; var b = 2; var x = a + b; var y = a - b;"
        )
        assert not vn.same_value("x#1", "y#1")

    def test_allocations_always_fresh(self):
        function, _, vn = ssa_of(
            "var x = new P(); var y = new P();", "class P { }"
        )
        assert not vn.same_value("x#1", "y#1")

    def test_loads_are_opaque(self):
        function, _, vn = ssa_of(
            "var p = new P(); var x = p.f; var y = p.f;",
            "class P { field f; }",
        )
        # Two loads of the same field may yield different values
        # (another thread can write in between): never merged.
        assert not vn.same_value("x#1", "y#1")

    def test_base_object_stable_through_branches(self):
        # The key property the static weaker-than relation needs: a
        # local holding an object reference keeps one value number when
        # never reassigned, even across control flow.
        function, _, vn = ssa_of(
            "var p = new P(); if (true) { p.f = 1; } else { p.f = 2; }",
            "class P { field f; }",
        )
        puts = [
            instr
            for _, _, instr in function.instructions()
            if isinstance(instr, ir.PutField)
        ]
        assert len(puts) == 2
        assert vn.same_value(puts[0].obj, puts[1].obj)

    def test_reassigned_base_gets_new_number(self):
        function, _, vn = ssa_of(
            "var p = new P(); p.f = 1; p = new P(); p.f = 2;",
            "class P { field f; }",
        )
        puts = [
            instr
            for _, _, instr in function.instructions()
            if isinstance(instr, ir.PutField)
        ]
        assert not vn.same_value(puts[0].obj, puts[1].obj)

    def test_loop_carried_value_conservatively_fresh(self):
        function, _, vn = ssa_of(
            "var i = 0; var j = 0; while (i < 3) { i = i + 1; j = j + 1; }"
        )
        # i and j evolve identically (their initializers even share a
        # value number), but the loop-carried phis must stay distinct —
        # soundness over precision.
        phi_dests = {
            var: [
                instr.dest
                for _, _, instr in function.instructions()
                if isinstance(instr, ir.Phi) and instr.var == var
            ]
            for var in ("i", "j")
        }
        assert phi_dests["i"] and phi_dests["j"]
        phis_equal = any(
            vn.same_value(iv, jv)
            for iv in phi_dests["i"]
            for jv in phi_dests["j"]
        )
        assert not phis_equal

    def test_class_constants_merge(self):
        source = (
            "class Main { static def main() { } }\n"
            "class A { static sync def m() { } static sync def n() { } }"
        )
        resolved = compile_source(source)
        functions = lower_program(resolved)
        function = functions["A.m"]
        graph, _ = build_ssa(function)
        vn = value_numbering(function, graph)
        consts = [
            instr
            for _, _, instr in function.instructions()
            if isinstance(instr, ir.ClassConst)
        ]
        assert consts  # Static sync methods lock the class object.
