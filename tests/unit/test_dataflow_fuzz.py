"""Unit tests for the generic dataflow solver and the program fuzzer."""

import pytest

from repro.analysis.dataflow import (
    TOP,
    DataflowProblem,
    meet_intersection,
    solve_forward,
)
from repro.lang import compile_source
from repro.runtime import run_program
from repro.workloads.fuzz import ProgramFuzzer, generate_program


class TestMeetIntersection:
    def test_empty_iterable_is_top(self):
        assert meet_intersection([]) is TOP

    def test_top_is_identity(self):
        assert meet_intersection([TOP, {1, 2}]) == {1, 2}

    def test_intersects(self):
        assert meet_intersection([{1, 2}, {2, 3}]) == {2}

    def test_all_top(self):
        assert meet_intersection([TOP, TOP]) is TOP


class TestSolveForward:
    def diamond(self, gens):
        """entry → {left, right} → exit, gen sets per node."""
        preds = {"entry": [], "left": ["entry"], "right": ["entry"],
                 "exit": ["left", "right"]}

        def transfer(node, in_value):
            if in_value is TOP:
                return TOP
            return set(in_value) | gens.get(node, set())

        problem = DataflowProblem(
            nodes=list(preds),
            preds=lambda n: preds[n],
            boundary_nodes={"entry"},
            boundary_value=set(),
            transfer=transfer,
            meet=meet_intersection,
        )
        return solve_forward(problem)

    def test_must_facts_meet_at_join(self):
        solution = self.diamond({"left": {"a", "c"}, "right": {"b", "c"}})
        _, exit_out = solution["exit"]
        assert exit_out == {"c"}

    def test_common_gen_survives(self):
        solution = self.diamond({"entry": {"g"}})
        _, exit_out = solution["exit"]
        assert exit_out == {"g"}

    def test_boundary_value_fixed(self):
        solution = self.diamond({})
        entry_in, _ = solution["entry"]
        assert entry_in == set()

    def test_loop_reaches_fixpoint(self):
        preds = {"entry": [], "head": ["entry", "body"], "body": ["head"]}

        def transfer(node, in_value):
            if in_value is TOP:
                return TOP
            result = set(in_value)
            if node == "body":
                result |= {"inloop"}
            return result

        problem = DataflowProblem(
            nodes=list(preds),
            preds=lambda n: preds[n],
            boundary_nodes={"entry"},
            boundary_value={"init"},
            transfer=transfer,
            meet=meet_intersection,
        )
        solution = solve_forward(problem)
        head_in, _ = solution["head"]
        # Must-analysis: only facts holding on BOTH entry and back edge.
        assert head_in == {"init"}

    def test_unreachable_node_stays_top(self):
        preds = {"entry": [], "island": []}

        def transfer(node, in_value):
            return in_value

        problem = DataflowProblem(
            nodes=list(preds),
            preds=lambda n: preds[n],
            boundary_nodes={"entry"},
            boundary_value=set(),
            transfer=transfer,
            meet=meet_intersection,
        )
        solution = solve_forward(problem)
        island_in, island_out = solution["island"]
        assert island_out is TOP


class TestFuzzer:
    def test_deterministic_per_seed(self):
        assert generate_program(5) == generate_program(5)

    def test_different_seeds_differ(self):
        sources = {generate_program(seed) for seed in range(10)}
        assert len(sources) > 5

    def test_generated_programs_compile(self):
        for seed in range(25):
            compile_source(generate_program(seed))

    def test_generated_programs_run(self):
        for seed in range(10):
            resolved = compile_source(generate_program(seed))
            result = run_program(resolved, max_steps=3_000_000)
            # main prints every shared field at the end.
            assert len(result.output) == 3

    def test_worker_count_respected(self):
        source = generate_program(3, n_workers=3)
        resolved = compile_source(source)
        result = run_program(resolved, max_steps=3_000_000)
        assert result.threads_created == 4  # main + 3 workers.

    def test_deadlock_freedom_at_runtime(self):
        """Deadlock freedom by construction (ascending lock order):
        verified dynamically — the generated programs always complete,
        and the lock-order graph contains no reportable cycle."""
        from repro.detector import DeadlockDetector

        for seed in range(20):
            source = generate_program(seed, n_locks=3, n_workers=3)
            resolved = compile_source(source)
            detector = DeadlockDetector()
            run_program(resolved, sink=detector, max_steps=3_000_000)
            assert not detector.reports, source

    def test_parameter_clamping(self):
        fuzzer = ProgramFuzzer(0, n_workers=99, n_fields=99, n_locks=99)
        assert fuzzer.n_workers == 4
        assert fuzzer.n_fields == 5
        assert fuzzer.n_locks == 4
        compile_source(fuzzer.generate())
