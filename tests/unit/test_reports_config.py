"""Unit tests for report rendering, configs, and error types."""

import pytest

from repro.detector import DetectorConfig
from repro.detector.report import RaceReport, ReportCollector, _render_lockset
from repro.detector.trie import PriorAccess
from repro.detector.weaker import THREAD_BOTTOM
from repro.instrument import PlannerConfig
from repro.lang.ast import AccessKind
from repro.lang.errors import (
    MJError,
    ParseError,
    SourceLocation,
)
from repro.runtime.events import AccessEvent, MemoryLocation, ObjectKind


def make_report(prior_thread=1, prior_locks=frozenset({5}),
                current_locks=frozenset()):
    event = AccessEvent(
        location=MemoryLocation(9, "balance"),
        thread_id=2,
        kind=AccessKind.WRITE,
        site_id=3,
        object_kind=ObjectKind.INSTANCE,
        object_label="Account#9",
    )
    return RaceReport(
        key=event.location,
        field="balance",
        object_label="Account#9",
        current=event,
        current_lockset=current_locks,
        prior=PriorAccess(
            thread=prior_thread, lockset=prior_locks, kind=AccessKind.READ
        ),
        site_descriptor="write of .balance in Bank.move at bank.mj:10:3",
    )


class TestLocksetRendering:
    def test_empty(self):
        assert _render_lockset(frozenset()) == "{}"

    def test_real_locks(self):
        assert _render_lockset(frozenset({3, 1})) == "{L1, L3}"

    def test_pseudo_locks(self):
        assert _render_lockset(frozenset({-1, -3})) == "{S2, S0}"

    def test_mixed(self):
        assert _render_lockset(frozenset({7, -2})) == "{S1, L7}"


class TestRaceReport:
    def test_describe_known_thread(self):
        text = make_report().describe()
        assert "DATARACE on Account#9.balance" in text
        assert "thread 2 write" in text
        assert "read by thread 1" in text
        assert "{L5}" in text
        assert "bank.mj:10:3" in text

    def test_describe_merged_thread(self):
        text = make_report(prior_thread=THREAD_BOTTOM).describe()
        assert "some earlier thread(s)" in text

    def test_collector_aggregation(self):
        collector = ReportCollector()
        collector.add(make_report())
        collector.add(make_report())
        assert len(collector.reports) == 2
        assert collector.object_count == 1
        assert collector.location_count == 1
        assert ("Account#9", "balance") in collector.racy_fields
        assert 3 in collector.racy_sites

    def test_describe_all_joins_lines(self):
        collector = ReportCollector()
        collector.add(make_report())
        assert collector.describe_all().count("DATARACE") == 1


class TestConfigs:
    def test_detector_config_but(self):
        base = DetectorConfig()
        variant = base.but(cache=False, fields_merged=True)
        assert not variant.cache
        assert variant.fields_merged
        assert base.cache  # Original untouched (frozen dataclass).

    def test_planner_config_but(self):
        base = PlannerConfig()
        variant = base.but(loop_peeling=False)
        assert not variant.loop_peeling
        assert base.loop_peeling

    def test_configs_hashable(self):
        assert len({DetectorConfig(), DetectorConfig(cache=False)}) == 2


class TestErrors:
    def test_source_location_str(self):
        loc = SourceLocation(3, 14, "x.mj")
        assert str(loc) == "x.mj:3:14"

    def test_source_location_ordering(self):
        a = SourceLocation(1, 5)
        b = SourceLocation(2, 1)
        assert a < b

    def test_error_message_includes_location(self):
        error = ParseError("bad token", SourceLocation(7, 2, "p.mj"))
        assert "p.mj:7:2" in str(error)
        assert error.location.line == 7

    def test_error_without_location(self):
        error = MJError("plain")
        assert str(error) == "plain"
        assert error.location is None

    def test_error_hierarchy(self):
        assert issubclass(ParseError, MJError)
