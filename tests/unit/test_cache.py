"""Unit tests for the per-thread access caches (Section 4)."""

from repro.detector import AccessCache
from repro.lang.ast import AccessKind

READ = AccessKind.READ
WRITE = AccessKind.WRITE


class TestBasicLookup:
    def test_miss_on_empty_cache(self):
        cache = AccessCache()
        assert not cache.lookup(1, "m", READ)
        assert cache.stats.misses == 1

    def test_hit_after_insert(self):
        cache = AccessCache()
        cache.insert(1, "m", READ, anchor_lock=None)
        assert cache.lookup(1, "m", READ)
        assert cache.stats.hits == 1

    def test_read_and_write_caches_are_separate(self):
        cache = AccessCache()
        cache.insert(1, "m", READ, anchor_lock=None)
        assert not cache.lookup(1, "m", WRITE)

    def test_write_does_not_satisfy_read_by_default(self):
        # Faithful to the paper: reads consult only the read cache.
        cache = AccessCache()
        cache.insert(1, "m", WRITE, anchor_lock=None)
        assert not cache.lookup(1, "m", READ)

    def test_write_covers_read_extension(self):
        cache = AccessCache(write_covers_read=True)
        cache.insert(1, "m", WRITE, anchor_lock=None)
        assert cache.lookup(1, "m", READ)

    def test_threads_have_independent_caches(self):
        cache = AccessCache()
        cache.insert(1, "m", READ, anchor_lock=None)
        assert not cache.lookup(2, "m", READ)

    def test_different_locations_do_not_collide_logically(self):
        cache = AccessCache()
        cache.insert(1, "a", READ, anchor_lock=None)
        assert not cache.lookup(1, "b", READ)


class TestConflictEviction:
    def test_direct_mapped_conflict_evicts_old_entry(self):
        # Size-1 cache: every distinct key maps to the same slot.
        cache = AccessCache(size=1)
        cache.insert(1, "a", READ, anchor_lock=None)
        cache.insert(1, "b", READ, anchor_lock=None)
        assert not cache.lookup(1, "a", READ)
        assert cache.lookup(1, "b", READ)
        assert cache.stats.conflict_evictions == 1

    def test_invalid_size_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            AccessCache(size=0)


class TestLockEviction:
    def test_release_evicts_anchored_entries(self):
        cache = AccessCache()
        cache.insert(1, "m", READ, anchor_lock=77)
        cache.on_lock_release(1, 77)
        assert not cache.lookup(1, "m", READ)
        assert cache.stats.lock_evictions == 1

    def test_release_of_other_lock_keeps_entry(self):
        cache = AccessCache()
        cache.insert(1, "m", READ, anchor_lock=77)
        cache.on_lock_release(1, 78)
        assert cache.lookup(1, "m", READ)

    def test_unanchored_entry_survives_all_releases(self):
        cache = AccessCache()
        cache.insert(1, "m", READ, anchor_lock=None)
        cache.on_lock_release(1, 77)
        assert cache.lookup(1, "m", READ)

    def test_release_only_affects_that_thread(self):
        cache = AccessCache()
        cache.insert(1, "m", READ, anchor_lock=77)
        cache.insert(2, "m", READ, anchor_lock=77)
        cache.on_lock_release(1, 77)
        assert cache.lookup(2, "m", READ)

    def test_release_evicts_both_read_and_write_entries(self):
        cache = AccessCache()
        cache.insert(1, "m", READ, anchor_lock=5)
        cache.insert(1, "m", WRITE, anchor_lock=5)
        cache.on_lock_release(1, 5)
        assert not cache.lookup(1, "m", READ)
        assert not cache.lookup(1, "m", WRITE)

    def test_conflict_evicted_entry_not_double_freed_by_release(self):
        cache = AccessCache(size=1)
        cache.insert(1, "a", READ, anchor_lock=3)
        cache.insert(1, "b", READ, anchor_lock=3)  # Conflict-evicts "a".
        cache.on_lock_release(1, 3)  # Must evict only "b".
        assert cache.stats.lock_evictions == 1


class TestOwnershipEviction:
    def test_shared_transition_evicts_from_every_thread(self):
        cache = AccessCache()
        cache.insert(1, "m", READ, anchor_lock=None)
        cache.insert(2, "m", WRITE, anchor_lock=None)
        cache.on_location_shared("m")
        assert not cache.lookup(1, "m", READ)
        assert not cache.lookup(2, "m", WRITE)
        assert cache.stats.ownership_evictions == 2

    def test_shared_transition_of_other_key_is_noop(self):
        cache = AccessCache()
        cache.insert(1, "m", READ, anchor_lock=None)
        cache.on_location_shared("other")
        assert cache.lookup(1, "m", READ)


class TestStats:
    def test_hit_rate(self):
        cache = AccessCache()
        cache.insert(1, "m", READ, anchor_lock=None)
        cache.lookup(1, "m", READ)
        cache.lookup(1, "n", READ)
        assert cache.stats.hit_rate == 0.5

    def test_hit_rate_empty(self):
        assert AccessCache().stats.hit_rate == 0.0

    def test_write_covers_read_counts_one_lookup(self):
        # Regression: a covered read used to count a read-cache miss
        # *and* a write-cache hit, inflating lookups by one.
        cache = AccessCache(write_covers_read=True)
        cache.insert(1, "m", WRITE, anchor_lock=None)
        assert cache.lookup(1, "m", READ)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 0
        assert cache.stats.lookups == 1

    def test_write_covers_read_miss_counts_once(self):
        cache = AccessCache(write_covers_read=True)
        assert not cache.lookup(1, "m", READ)
        assert cache.stats.hits == 0
        assert cache.stats.misses == 1

    def test_merge_accumulates_all_counters(self):
        from repro.detector import CacheStats

        a = CacheStats(hits=1, misses=2, conflict_evictions=3,
                       lock_evictions=4, ownership_evictions=5,
                       list_compactions=6)
        b = CacheStats(hits=10, misses=20, conflict_evictions=30,
                       lock_evictions=40, ownership_evictions=50,
                       list_compactions=60)
        a.merge(b)
        assert (a.hits, a.misses, a.conflict_evictions, a.lock_evictions,
                a.ownership_evictions, a.list_compactions) == (
            11, 22, 33, 44, 55, 66)


class TestFusedAccess:
    def test_access_counts_one_hit_or_miss(self):
        cache = AccessCache()
        assert not cache.access(1, "m", READ, anchor_lock=None)
        assert (cache.stats.hits, cache.stats.misses) == (0, 1)
        assert cache.access(1, "m", READ, anchor_lock=None)
        assert (cache.stats.hits, cache.stats.misses) == (1, 1)

    def test_access_miss_records_the_access(self):
        cache = AccessCache()
        cache.access(1, "m", WRITE, anchor_lock=7)
        assert cache.lookup(1, "m", WRITE)
        cache.on_lock_release(1, 7)
        assert not cache.lookup(1, "m", WRITE)

    def test_access_write_covers_read_single_count(self):
        cache = AccessCache(write_covers_read=True)
        cache.insert(1, "m", WRITE, anchor_lock=None)
        assert cache.access(1, "m", READ, anchor_lock=None)
        assert cache.stats.lookups == 1

    def test_access_matches_lookup_insert_sequence(self):
        fused = AccessCache(size=8)
        split = AccessCache(size=8)
        keys = ["a", "b", "a", "c", "a", "b", "d", "a"]
        for step, key in enumerate(keys):
            kind = WRITE if step % 3 == 0 else READ
            hit_fused = fused.access(1, key, kind, anchor_lock=None)
            hit_split = split.lookup(1, key, kind)
            if not hit_split:
                split.insert(1, key, kind, anchor_lock=None)
            assert hit_fused == hit_split
        assert fused.stats == split.stats


class TestEvictionListCompaction:
    def test_conflict_evictions_mark_dead_entries(self):
        from repro.detector.cache import CacheStats, _DirectMappedCache

        cache = _DirectMappedCache(1, CacheStats())
        cache.insert("a", anchor_lock=5)
        cache.insert("b", anchor_lock=5)  # Conflict-evicts "a".
        total, dead = cache.listed_entries
        assert total == 2
        assert dead == 1

    def test_compaction_drops_dead_entries(self):
        # Size-1 cache under one never-released lock: every insert
        # conflict-evicts its predecessor, so without compaction the
        # lock's eviction list would grow with every access.
        from repro.detector.cache import CacheStats, _DirectMappedCache

        stats = CacheStats()
        cache = _DirectMappedCache(1, stats)
        for step in range(1000):
            cache.insert(f"k{step}", anchor_lock=5)
        assert stats.list_compactions > 0
        total, dead = cache.listed_entries
        # The live set is exactly one entry; dead weight stays bounded
        # by the compaction trigger: after any insert, either the list
        # is at most half dead or it is below the compaction minimum.
        assert total < 64
        assert dead * 2 <= total or total < 16

    def test_compaction_preserves_lock_eviction(self):
        from repro.detector.cache import CacheStats, _DirectMappedCache

        stats = CacheStats()
        cache = _DirectMappedCache(1, stats)
        for step in range(100):
            cache.insert(f"k{step}", anchor_lock=5)
        assert stats.list_compactions > 0
        cache.evict_lock(5)
        assert not cache.probe("k99")
        assert cache.listed_entries == (0, 0)

    def test_compaction_spans_multiple_locks(self):
        from repro.detector.cache import CacheStats, _DirectMappedCache

        stats = CacheStats()
        cache = _DirectMappedCache(1, stats)
        for step in range(200):
            cache.insert(f"k{step}", anchor_lock=step % 3)
        for lock in range(3):
            cache.evict_lock(lock)
        assert cache.listed_entries == (0, 0)

    def test_ownership_eviction_feeds_compaction(self):
        from repro.detector.cache import CacheStats, _DirectMappedCache

        stats = CacheStats()
        cache = _DirectMappedCache(64, stats)
        for step in range(32):
            cache.insert(f"k{step}", anchor_lock=5)
        for step in range(32):
            cache.evict_key(f"k{step}")
        # All listed entries are dead; the next anchored insert trips
        # the half-dead threshold.
        cache.insert("fresh", anchor_lock=5)
        assert stats.list_compactions >= 1
        total, dead = cache.listed_entries
        assert dead == 0
        assert total == 1
