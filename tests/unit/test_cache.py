"""Unit tests for the per-thread access caches (Section 4)."""

from repro.detector import AccessCache
from repro.lang.ast import AccessKind

READ = AccessKind.READ
WRITE = AccessKind.WRITE


class TestBasicLookup:
    def test_miss_on_empty_cache(self):
        cache = AccessCache()
        assert not cache.lookup(1, "m", READ)
        assert cache.stats.misses == 1

    def test_hit_after_insert(self):
        cache = AccessCache()
        cache.insert(1, "m", READ, anchor_lock=None)
        assert cache.lookup(1, "m", READ)
        assert cache.stats.hits == 1

    def test_read_and_write_caches_are_separate(self):
        cache = AccessCache()
        cache.insert(1, "m", READ, anchor_lock=None)
        assert not cache.lookup(1, "m", WRITE)

    def test_write_does_not_satisfy_read_by_default(self):
        # Faithful to the paper: reads consult only the read cache.
        cache = AccessCache()
        cache.insert(1, "m", WRITE, anchor_lock=None)
        assert not cache.lookup(1, "m", READ)

    def test_write_covers_read_extension(self):
        cache = AccessCache(write_covers_read=True)
        cache.insert(1, "m", WRITE, anchor_lock=None)
        assert cache.lookup(1, "m", READ)

    def test_threads_have_independent_caches(self):
        cache = AccessCache()
        cache.insert(1, "m", READ, anchor_lock=None)
        assert not cache.lookup(2, "m", READ)

    def test_different_locations_do_not_collide_logically(self):
        cache = AccessCache()
        cache.insert(1, "a", READ, anchor_lock=None)
        assert not cache.lookup(1, "b", READ)


class TestConflictEviction:
    def test_direct_mapped_conflict_evicts_old_entry(self):
        # Size-1 cache: every distinct key maps to the same slot.
        cache = AccessCache(size=1)
        cache.insert(1, "a", READ, anchor_lock=None)
        cache.insert(1, "b", READ, anchor_lock=None)
        assert not cache.lookup(1, "a", READ)
        assert cache.lookup(1, "b", READ)
        assert cache.stats.conflict_evictions == 1

    def test_invalid_size_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            AccessCache(size=0)


class TestLockEviction:
    def test_release_evicts_anchored_entries(self):
        cache = AccessCache()
        cache.insert(1, "m", READ, anchor_lock=77)
        cache.on_lock_release(1, 77)
        assert not cache.lookup(1, "m", READ)
        assert cache.stats.lock_evictions == 1

    def test_release_of_other_lock_keeps_entry(self):
        cache = AccessCache()
        cache.insert(1, "m", READ, anchor_lock=77)
        cache.on_lock_release(1, 78)
        assert cache.lookup(1, "m", READ)

    def test_unanchored_entry_survives_all_releases(self):
        cache = AccessCache()
        cache.insert(1, "m", READ, anchor_lock=None)
        cache.on_lock_release(1, 77)
        assert cache.lookup(1, "m", READ)

    def test_release_only_affects_that_thread(self):
        cache = AccessCache()
        cache.insert(1, "m", READ, anchor_lock=77)
        cache.insert(2, "m", READ, anchor_lock=77)
        cache.on_lock_release(1, 77)
        assert cache.lookup(2, "m", READ)

    def test_release_evicts_both_read_and_write_entries(self):
        cache = AccessCache()
        cache.insert(1, "m", READ, anchor_lock=5)
        cache.insert(1, "m", WRITE, anchor_lock=5)
        cache.on_lock_release(1, 5)
        assert not cache.lookup(1, "m", READ)
        assert not cache.lookup(1, "m", WRITE)

    def test_conflict_evicted_entry_not_double_freed_by_release(self):
        cache = AccessCache(size=1)
        cache.insert(1, "a", READ, anchor_lock=3)
        cache.insert(1, "b", READ, anchor_lock=3)  # Conflict-evicts "a".
        cache.on_lock_release(1, 3)  # Must evict only "b".
        assert cache.stats.lock_evictions == 1


class TestOwnershipEviction:
    def test_shared_transition_evicts_from_every_thread(self):
        cache = AccessCache()
        cache.insert(1, "m", READ, anchor_lock=None)
        cache.insert(2, "m", WRITE, anchor_lock=None)
        cache.on_location_shared("m")
        assert not cache.lookup(1, "m", READ)
        assert not cache.lookup(2, "m", WRITE)
        assert cache.stats.ownership_evictions == 2

    def test_shared_transition_of_other_key_is_noop(self):
        cache = AccessCache()
        cache.insert(1, "m", READ, anchor_lock=None)
        cache.on_location_shared("other")
        assert cache.lookup(1, "m", READ)


class TestStats:
    def test_hit_rate(self):
        cache = AccessCache()
        cache.insert(1, "m", READ, anchor_lock=None)
        cache.lookup(1, "m", READ)
        cache.lookup(1, "n", READ)
        assert cache.stats.hit_rate == 0.5

    def test_hit_rate_empty(self):
        assert AccessCache().stats.hit_rate == 0.0
