"""Unit tests for the hot-path interning layer: canonical location
keys, canonical versioned locksets, and the tuple-encoded event log."""

from repro.detector import LockTracker, RaceDetector
from repro.lang.ast import AccessKind
from repro.runtime import (
    AccessEvent,
    CountingSink,
    LocationInterner,
    MemoryLocation,
    ObjectKind,
    RecordingSink,
    replay_entries,
)

READ = AccessKind.READ
WRITE = AccessKind.WRITE


class TestLocationInterner:
    def test_same_pair_same_object(self):
        interner = LocationInterner()
        first = interner.intern(7, "x")
        second = interner.intern(7, "x")
        assert first is second
        assert first == MemoryLocation(7, "x")

    def test_distinct_pairs_distinct_objects(self):
        interner = LocationInterner()
        assert interner.intern(7, "x") is not interner.intern(7, "y")
        assert interner.intern(7, "x") is not interner.intern(8, "x")

    def test_len_counts_distinct_pairs(self):
        interner = LocationInterner()
        interner.intern(1, "a")
        interner.intern(1, "a")
        interner.intern(1, "b")
        interner.intern(2, "a")
        assert len(interner) == 3


class TestLocksetInterning:
    def test_same_value_same_object_across_threads(self):
        tracker = LockTracker()
        tracker.enter(1, 42)
        tracker.enter(2, 42)
        assert tracker.lockset(1) is tracker.lockset(2)

    def test_empty_lockset_is_canonical(self):
        tracker = LockTracker()
        assert tracker.lockset(1) is tracker.lockset(2)
        assert tracker.lockset(1) == frozenset()

    def test_reacquisition_reuses_interned_value(self):
        tracker = LockTracker()
        tracker.enter(1, 42)
        first = tracker.lockset(1)
        tracker.exit(1, 42)
        tracker.enter(1, 42)
        assert tracker.lockset(1) is first
        # {}, {42} — two distinct values ever seen.
        assert tracker.interned_locksets == 2

    def test_version_ticks_on_every_mutation(self):
        tracker = LockTracker()
        assert tracker.version(1) == 0
        tracker.enter(1, 42)
        assert tracker.version(1) == 1
        tracker.exit(1, 42)
        assert tracker.version(1) == 2
        tracker.acquire_pseudo(1, -1)
        assert tracker.version(1) == 3
        assert tracker.version(2) == 0

    def test_version_stable_across_queries(self):
        tracker = LockTracker()
        tracker.enter(1, 42)
        before = tracker.version(1)
        tracker.lockset(1)
        tracker.lockset(1)
        assert tracker.version(1) == before

    def test_mixed_real_and_pseudo_locks(self):
        tracker = LockTracker()
        tracker.enter(1, 42)
        tracker.acquire_pseudo(1, -1)
        tracker.enter(2, 42)
        tracker.acquire_pseudo(2, -1)
        assert tracker.lockset(1) is tracker.lockset(2)
        assert tracker.lockset(1) == frozenset({42, -1})


class TestRecordingSinkEncoding:
    def _event(self, uid=3, field="x", thread=1, kind=WRITE, site=9):
        return AccessEvent(
            location=MemoryLocation(uid, field),
            thread_id=thread,
            kind=kind,
            site_id=site,
            object_kind=ObjectKind.INSTANCE,
            object_label=f"Obj#{uid}",
        )

    def test_access_stored_as_tuple(self):
        sink = RecordingSink()
        sink.on_access(self._event())
        assert sink.log == [
            (RecordingSink.ACCESS, 3, "x", 1, WRITE, 9,
             ObjectKind.INSTANCE, "Obj#3")
        ]

    def test_parts_and_event_entry_points_agree(self):
        by_event = RecordingSink()
        by_event.on_access(self._event())
        by_parts = RecordingSink()
        by_parts.on_access_parts(
            3, "x", 1, WRITE, 9, ObjectKind.INSTANCE, "Obj#3"
        )
        assert by_event.log == by_parts.log

    def test_events_roundtrip_is_lossless(self):
        sink = RecordingSink()
        originals = [
            self._event(uid=1, field="a", thread=1, kind=READ, site=4),
            self._event(uid=1, field="a", thread=2, kind=WRITE, site=5),
            self._event(uid=2, field="b", thread=1, kind=READ, site=6),
        ]
        for event in originals:
            sink.on_access(event)
        assert list(sink.events()) == originals

    def test_events_interns_reconstructed_locations(self):
        sink = RecordingSink()
        sink.on_access(self._event())
        sink.on_access(self._event())
        first, second = sink.events()
        assert first.location is second.location

    def test_access_count_ignores_sync_entries(self):
        sink = RecordingSink()
        sink.on_access(self._event())
        sink.on_monitor_enter(1, 42, False)
        sink.on_monitor_exit(1, 42, False)
        sink.on_access(self._event())
        assert sink.access_count == 2
        assert len(sink.log) == 4

    def test_replay_entries_delivers_parts(self):
        sink = RecordingSink()
        sink.on_access(self._event())
        sink.on_monitor_enter(1, 42, False)
        counter = CountingSink()
        replay_entries(sink.log, counter)
        assert counter.accesses == 1
        assert counter.monitor_enters == 1

    def test_recording_replay_recording_is_identity(self):
        sink = RecordingSink()
        sink.on_access(self._event())
        sink.on_thread_start(0, 1)
        sink.on_access(self._event(thread=1, kind=READ))
        sink.on_thread_end(1)
        sink.on_thread_join(0, 1)
        copy = RecordingSink()
        sink.replay_into(copy)
        assert copy.log == sink.log


class TestDetectorPartsPath:
    def _drive(self, detector):
        detector.on_thread_start(0, 1)
        detector.on_thread_start(0, 2)
        for thread in (1, 2):
            detector.on_access_parts(
                5, "x", thread, WRITE, 11, ObjectKind.INSTANCE, "Obj#5"
            )

    def test_parts_path_matches_event_path(self):
        by_parts = RaceDetector()
        by_event = RaceDetector()
        by_event.on_thread_start(0, 1)
        by_event.on_thread_start(0, 2)
        for thread in (1, 2):
            by_event.on_access(
                AccessEvent(
                    location=MemoryLocation(5, "x"),
                    thread_id=thread,
                    kind=WRITE,
                    site_id=11,
                    object_label="Obj#5",
                )
            )
        self._drive(by_parts)
        assert by_parts.stats == by_event.stats
        assert by_parts.reports.reports == by_event.reports.reports
        assert by_parts.monitored_locations == by_event.monitored_locations

    def test_reported_event_uses_interned_location(self):
        from repro.detector import DetectorConfig

        detector = RaceDetector(config=DetectorConfig(ownership=False))
        self._drive(detector)
        assert detector.stats.races_reported == 1
        (report,) = detector.reports.reports
        assert report.current.location is detector.interner.intern(5, "x")
