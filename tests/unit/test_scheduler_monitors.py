"""Unit tests for scheduling policies, monitors, and heap values."""

import pytest

from repro.runtime.scheduler import (
    RandomPolicy,
    RoundRobinPolicy,
    ThreadState,
    ThreadStatus,
)
from repro.runtime.values import (
    MJArray,
    MJObject,
    Monitor,
    _UidAllocator,
    mj_repr,
)


def threads(*ids):
    return [ThreadState(i, f"T{i}", body=None) for i in ids]


class TestRoundRobinPolicy:
    def test_runs_quantum_then_rotates(self):
        policy = RoundRobinPolicy(quantum=3)
        pool = threads(0, 1)
        chosen = [policy.choose(pool).thread_id for _ in range(8)]
        assert chosen == [0, 0, 0, 1, 1, 1, 0, 0]

    def test_wraps_around(self):
        policy = RoundRobinPolicy(quantum=1)
        pool = threads(0, 1, 2)
        chosen = [policy.choose(pool).thread_id for _ in range(6)]
        assert chosen == [0, 1, 2, 0, 1, 2]

    def test_skips_non_runnable(self):
        policy = RoundRobinPolicy(quantum=1)
        pool = threads(0, 1, 2)
        policy.choose(pool)  # 0
        # Thread 1 vanished (blocked): rotation jumps to 2.
        assert policy.choose([pool[0], pool[2]]).thread_id == 2

    def test_quantum_resets_when_thread_blocks(self):
        policy = RoundRobinPolicy(quantum=5)
        pool = threads(0, 1)
        assert policy.choose(pool).thread_id == 0
        # Thread 0 blocks mid-quantum: the policy must pick another.
        assert policy.choose([pool[1]]).thread_id == 1

    def test_invalid_quantum(self):
        with pytest.raises(ValueError):
            RoundRobinPolicy(quantum=0)


class TestRandomPolicy:
    def test_deterministic_per_seed(self):
        pool = threads(0, 1, 2)
        a = [RandomPolicy(4).choose(pool).thread_id for _ in range(1)]
        p1, p2 = RandomPolicy(4), RandomPolicy(4)
        seq1 = [p1.choose(pool).thread_id for _ in range(20)]
        seq2 = [p2.choose(pool).thread_id for _ in range(20)]
        assert seq1 == seq2

    def test_seeds_vary(self):
        pool = threads(0, 1, 2)
        sequences = {
            tuple(RandomPolicy(seed).choose(pool).thread_id for _ in range(10))
            for seed in range(6)
        }
        assert len(sequences) > 1

    def test_only_runnable_chosen(self):
        pool = threads(0, 1, 2)
        policy = RandomPolicy(0)
        for _ in range(30):
            assert policy.choose(pool[1:]).thread_id in (1, 2)


class TestMonitor:
    def test_initially_free(self):
        monitor = Monitor()
        assert monitor.can_acquire(1)
        assert monitor.can_acquire(2)

    def test_exclusive_ownership(self):
        monitor = Monitor()
        monitor.acquire(1)
        assert monitor.can_acquire(1)
        assert not monitor.can_acquire(2)

    def test_reentrancy_counting(self):
        monitor = Monitor()
        assert monitor.acquire(1) is True  # Outermost.
        assert monitor.acquire(1) is False  # Nested.
        assert monitor.release(1) is False  # Still held.
        assert monitor.release(1) is True  # Actually freed.
        assert monitor.can_acquire(2)

    def test_release_requires_owner(self):
        monitor = Monitor()
        monitor.acquire(1)
        with pytest.raises(AssertionError):
            monitor.release(2)


class TestValues:
    def test_uids_monotonic_and_unique(self):
        uids = _UidAllocator()
        values = [uids.allocate() for _ in range(5)]
        assert values == sorted(values)
        assert len(set(values)) == 5

    def test_array_init(self):
        uids = _UidAllocator()
        array = MJArray(uids, 3, alloc_id=1)
        assert len(array) == 3
        assert array.elements == [None, None, None]

    def test_mj_repr(self):
        assert mj_repr(None) == "null"
        assert mj_repr(True) == "true"
        assert mj_repr(False) == "false"
        assert mj_repr(42) == "42"
        assert mj_repr("s") == "s"

    def test_object_repr_contains_class_and_uid(self):
        from repro.lang import compile_source

        resolved = compile_source(
            "class Main { static def main() { } } class P { field x; }"
        )
        uids = _UidAllocator()
        obj = MJObject(uids, resolved.class_info("P"), alloc_id=1)
        assert "P" in repr(obj)
        assert obj.fields == {"x": None}
