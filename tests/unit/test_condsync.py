"""Condition synchronization: wait/notify/barrier semantics end-to-end.

Covers the interpreter (blocking, monitor release, FIFO wakeup, cyclic
barriers, error cases, lost-wakeup deadlocks), the sink event ordering
invariant (a releasing notify always precedes the wait entry in the
log), record/replay determinism of the wakeup choice, the HB detector's
condition edges, and the lockset baselines' deferral-through-handoff
behaviour built on :class:`SyncClocks`.
"""

import pytest

from repro.baselines import (
    EraserDetector,
    HappensBeforeDetector,
    ObjectRaceDetector,
)
from repro.baselines.condsync import SyncClocks
from repro.lang import compile_source
from repro.lang.ast import AccessKind
from repro.lang.errors import MJRuntimeError
from repro.runtime import (
    DeadlockError,
    RandomPolicy,
    RecordingSink,
    record_run,
    replay_run,
    run_program,
)
from repro.runtime.events import AccessEvent, MemoryLocation, ObjectKind

from ..conftest import run_source

READ = AccessKind.READ
WRITE = AccessKind.WRITE


def access(uid, field, thread, kind):
    return AccessEvent(
        location=MemoryLocation(uid, field),
        thread_id=thread,
        kind=kind,
        site_id=0,
        object_kind=ObjectKind.INSTANCE,
        object_label=f"Obj#{uid}",
    )


# Main waits on the flag the child sets: under round-robin, main runs
# first, finds the flag unset, and must genuinely suspend before the
# child ever executes — so the program exercises a real wait on every
# schedule.
HANDSHAKE = """
class Main {
  static def main() {
    var s = new Shared();
    var c = new Child(s);
    start c;
    sync (s) {
      while (s.flag != 1) { wait s; }
    }
    print s.payload;
    join c;
  }
}
class Shared { field flag; field payload; }
class Child {
  field s;
  def init(s) { this.s = s; }
  def run() {
    this.s.payload = 42;
    sync (this.s) {
      this.s.flag = 1;
      notify this.s;
    }
  }
}
"""


class TestWaitNotify:
    def test_wait_blocks_until_notify(self):
        result = run_source(HANDSHAKE)
        assert result.output == ["42"]

    @pytest.mark.parametrize("seed", [0, 1, 2, 7, 11])
    def test_handshake_deterministic_under_random_schedules(self, seed):
        assert run_source(HANDSHAKE, seed=seed).output == ["42"]

    def test_wait_releases_monitor(self):
        # The suspension is logged as a monitor release (exit) and the
        # wakeup as a reacquisition (enter), so lockset/HB consumers see
        # a sound monitor stream.  The child's enter on the same object
        # lands strictly inside main's release window.
        sink = RecordingSink()
        run_source(HANDSHAKE, sink=sink)
        main_enters = [
            i
            for i, e in enumerate(sink.log)
            if e[0] == RecordingSink.ENTER and e[1] == 0
        ]
        main_release = min(
            i
            for i, e in enumerate(sink.log)
            if e[0] == RecordingSink.EXIT and e[1] == 0
        )
        child_enter = min(
            i
            for i, e in enumerate(sink.log)
            if e[0] == RecordingSink.ENTER and e[1] == 1
        )
        assert len(main_enters) == 2  # initial acquire + wakeup reacquire
        assert main_enters[0] < main_release < child_enter < main_enters[1]

    def test_notify_precedes_wait_in_log(self):
        # The wait entry is emitted at wakeup-return, so the releasing
        # notify always appears first — the ordering the HB condition
        # clocks rely on.
        sink = RecordingSink()
        run_source(HANDSHAKE, sink=sink)
        notify_at = next(
            i for i, e in enumerate(sink.log) if e[0] == RecordingSink.NOTIFY
        )
        wait_at = next(
            i for i, e in enumerate(sink.log) if e[0] == RecordingSink.WAIT
        )
        assert notify_at < wait_at
        # Both target the same condition object.
        assert sink.log[notify_at][2] == sink.log[wait_at][2]

    def test_notifyall_wakes_all_waiters(self):
        source = """
        class Main {
          static def main() {
            var s = new Shared();
            var a = new Waiter(s);
            var b = new Waiter(s);
            start a; start b;
            sync (s) {
              while (s.parked != 2) { wait s; }
              s.go = 1;
              notifyall s;
            }
            join a; join b;
            print s.done;
          }
        }
        class Shared { field parked; field go; field done; }
        class Waiter {
          field s;
          def init(s) { this.s = s; }
          def run() {
            var s = this.s;
            sync (s) {
              s.parked = s.parked + 1;
              notifyall s;
              while (s.go != 1) { wait s; }
              s.done = s.done + 1;
            }
          }
        }
        """
        # Main's guard makes the uninitialized-field arithmetic safe:
        # ``parked`` starts null, so seed the counters first.
        source = source.replace(
            "var a = new Waiter(s);",
            "s.parked = 0; s.done = 0; var a = new Waiter(s);",
        )
        for seed in (None, 0, 3, 9):
            assert run_source(source, seed=seed).output == ["2"]

    def test_notify_wakes_oldest_waiter_first(self):
        # Waiter 1 is provably parked before waiter 2: each waiter bumps
        # the ready counter (signalled on a second condition object)
        # while already holding the parking monitor ``s``, which it only
        # releases by waiting — so once main's guarded wait on ``t``
        # sees the count, the bumper is in ``s``'s wait set before main
        # can possibly notify.  A single notify must wake the
        # FIFO-oldest, waiter 1 — were waiter 2 woken instead,
        # ``join a`` would deadlock and the test would fail.
        source = """
        class Main {
          static def main() {
            var s = new Shared();
            var t = new Shared();
            t.n = 0;
            var a = new Waiter(s, t, 1);
            var b = new Waiter(s, t, 2);
            start a;
            sync (t) { while (t.n != 1) { wait t; } }
            start b;
            sync (t) { while (t.n != 2) { wait t; } }
            sync (s) { notify s; }
            join a;
            sync (s) { notifyall s; }
            join b;
          }
        }
        class Shared { field n; }
        class Waiter {
          field s; field t; field tag;
          def init(s, t, tag) { this.s = s; this.t = t; this.tag = tag; }
          def run() {
            var s = this.s;
            var t = this.t;
            sync (s) {
              sync (t) { t.n = t.n + 1; notifyall t; }
              wait s;
              print this.tag;
            }
          }
        }
        """
        result = run_source(source)
        assert result.output == ["1", "2"]

    def test_lost_wakeup_reports_deadlock(self):
        source = """
        class Main {
          static def main() {
            var s = new Shared();
            sync (s) { wait s; }
          }
        }
        class Shared { field x; }
        """
        with pytest.raises(DeadlockError) as exc:
            run_source(source)
        assert "waits on monitor" in str(exc.value)

    def test_record_replay_reproduces_wakeup_choice(self):
        # Under RandomPolicy the notify wakeup choice is a recorded
        # decision; replaying must reproduce the event stream exactly.
        source = """
        class Main {
          static def main() {
            var s = new Shared();
            s.parked = 0;
            var a = new Waiter(s, 1);
            var b = new Waiter(s, 2);
            var c = new Waiter(s, 3);
            start a; start b; start c;
            sync (s) { while (s.parked != 3) { wait s; } }
            sync (s) { notify s; }
            sync (s) { notify s; }
            sync (s) { notify s; }
            join a; join b; join c;
          }
        }
        class Shared { field parked; }
        class Waiter {
          field s; field tag;
          def init(s, tag) { this.s = s; this.tag = tag; }
          def run() {
            var s = this.s;
            sync (s) {
              s.parked = s.parked + 1;
              notifyall s;
              wait s;
              print this.tag;
            }
          }
        }
        """
        resolved = compile_source(source)
        for seed in range(4):
            recorded = RecordingSink()
            result, trace = record_run(
                resolved, sink=recorded, inner_policy=RandomPolicy(seed)
            )
            replayed = RecordingSink()
            replay_result = replay_run(resolved, trace, sink=replayed)
            assert replayed.log == recorded.log
            assert replay_result.output == result.output


class TestWaitNotifyErrors:
    def _expect(self, body, message):
        source = """
        class Main {
          static def main() {
            var s = new Shared();
            var t = new Shared();
            BODY
          }
        }
        class Shared { field x; }
        """.replace("BODY", body)
        with pytest.raises(MJRuntimeError) as exc:
            run_source(source)
        assert message in str(exc.value)

    def test_wait_without_monitor(self):
        self._expect("wait s;", "wait without holding the monitor")

    def test_wait_not_innermost(self):
        self._expect(
            "sync (s) { sync (t) { wait s; } }",
            "innermost held monitor",
        )

    def test_notify_without_monitor(self):
        self._expect("notify s;", "without holding the monitor")

    def test_notifyall_without_monitor(self):
        self._expect("notifyall s;", "without holding the monitor")

    def test_wait_on_non_object(self):
        self._expect("sync (s) { wait 5; }", "requires an object")

    def test_notify_on_null(self):
        self._expect("sync (s) { notify s.x; }", "requires an object")


BARRIER_PAIR = """
class Main {
  static def main() {
    var s = new Shared();
    s.x = 0;
    var a = new W1(s);
    var b = new W2(s);
    start a; start b;
    join a; join b;
    print s.x;
  }
}
class Shared { field x; }
class W1 {
  field s;
  def init(s) { this.s = s; }
  def run() {
    this.s.x = 1;
    barrier this.s, 2;
    barrier this.s, 2;
    print this.s.x;
  }
}
class W2 {
  field s;
  def init(s) { this.s = s; }
  def run() {
    barrier this.s, 2;
    this.s.x = 2;
    barrier this.s, 2;
  }
}
"""


class TestBarrier:
    @pytest.mark.parametrize("seed", [None, 0, 1, 5, 13])
    def test_phases_order_accesses(self, seed):
        # W1's write lands in phase 0, W2's in phase 1, W1's read in
        # phase 2 — the barrier fences make the output deterministic
        # under every schedule.
        result = run_source(BARRIER_PAIR, seed=seed)
        assert result.output == ["2", "2"]

    def test_cyclic_reuse_across_generations(self):
        # One barrier object serves many generations; a counter bumped
        # once per phase by a designated thread stays exact.
        source = """
        class Main {
          static def main() {
            var s = new Shared();
            s.n = 0;
            var a = new W(s, 1);
            var b = new W(s, 0);
            start a; start b;
            join a; join b;
            print s.n;
          }
        }
        class Shared { field n; }
        class W {
          field s; field leader;
          def init(s, leader) { this.s = s; this.leader = leader; }
          def run() {
            var i = 0;
            while (i < 5) {
              if (this.leader == 1) { this.s.n = this.s.n + 1; }
              barrier this.s, 2;
              i = i + 1;
            }
          }
        }
        """
        for seed in (None, 2, 8):
            assert run_source(source, seed=seed).output == ["5"]

    def test_single_party_barrier_is_a_no_op(self):
        source = """
        class Main {
          static def main() {
            var s = new Shared();
            barrier s, 1;
            barrier s, 1;
            print 1;
          }
        }
        class Shared { field x; }
        """
        assert run_source(source).output == ["1"]

    def test_party_count_mismatch(self):
        source = """
        class Main {
          static def main() {
            var s = new Shared();
            var a = new W(s, 2);
            var b = new W(s, 3);
            start a; start b;
            join a; join b;
          }
        }
        class Shared { field x; }
        class W {
          field s; field n;
          def init(s, n) { this.s = s; this.n = n; }
          def run() { barrier this.s, this.n; }
        }
        """
        with pytest.raises(MJRuntimeError) as exc:
            run_source(source)
        assert "party count mismatch" in str(exc.value)

    def test_non_positive_parties(self):
        source = """
        class Main {
          static def main() {
            var s = new Shared();
            barrier s, 0;
          }
        }
        class Shared { field x; }
        """
        with pytest.raises(MJRuntimeError) as exc:
            run_source(source)
        assert "positive integer" in str(exc.value)

    def test_barrier_on_non_object(self):
        source = """
        class Main {
          static def main() { barrier 7, 1; }
        }
        """
        with pytest.raises(MJRuntimeError) as exc:
            run_source(source)
        assert "requires an object" in str(exc.value)

    def test_missing_party_reports_deadlock(self):
        source = """
        class Main {
          static def main() {
            var s = new Shared();
            barrier s, 2;
          }
        }
        class Shared { field x; }
        """
        with pytest.raises(DeadlockError) as exc:
            run_source(source)
        assert "barrier" in str(exc.value)


class TestSyncClocks:
    def test_inert_without_events(self):
        clocks = SyncClocks()
        assert not clocks.ordered(clocks.epoch(1), 2)

    def test_notify_then_wait_orders(self):
        clocks = SyncClocks()
        epoch = clocks.epoch(1)
        clocks.on_notify(1, 9)
        clocks.on_wait(2, 9)
        assert clocks.ordered(epoch, 2)

    def test_notifier_later_epoch_not_ordered(self):
        # The notifier advances past the published epoch, so accesses it
        # performs *after* the notify are not ordered before the waiter.
        clocks = SyncClocks()
        clocks.on_notify(1, 9)
        after = clocks.epoch(1)
        clocks.on_wait(2, 9)
        assert not clocks.ordered(after, 2)

    def test_wait_before_any_notify_is_noop(self):
        clocks = SyncClocks()
        epoch = clocks.epoch(1)
        clocks.on_wait(2, 9)
        clocks.on_notify(1, 9)
        assert not clocks.ordered(epoch, 2)

    def test_same_thread_always_ordered(self):
        clocks = SyncClocks()
        assert clocks.ordered(clocks.epoch(3), 3)


class TestEraserDeferral:
    def test_handoff_keeps_exclusive(self):
        # Owner's last access happens-before the new thread's first
        # (through a condition edge): Eraser defers — stays Exclusive,
        # no report even though the accesses share no lock.
        det = EraserDetector()
        det.on_access(access(1, "x", 1, WRITE))
        det.on_monitor_enter(1, 9, reentrant=False)
        det.on_notify(1, 9, notify_all=True)
        det.on_monitor_exit(1, 9, reentrant=False)
        det.on_monitor_enter(2, 9, reentrant=False)
        det.on_wait(2, 9)
        det.on_monitor_exit(2, 9, reentrant=False)
        det.on_access(access(1, "x", 2, WRITE))
        assert not det.reports

    def test_unordered_transfer_still_reported(self):
        det = EraserDetector()
        det.on_access(access(1, "x", 1, WRITE))
        det.on_access(access(1, "x", 2, WRITE))
        assert det.object_count == 1

    def test_handoff_chain_transfers_ownership(self):
        # After the handoff the *new* thread owns the location: a third
        # unordered thread then demotes it and reports.
        det = EraserDetector()
        det.on_access(access(1, "x", 1, WRITE))
        det.on_monitor_enter(1, 9, reentrant=False)
        det.on_notify(1, 9, notify_all=True)
        det.on_monitor_exit(1, 9, reentrant=False)
        det.on_monitor_enter(2, 9, reentrant=False)
        det.on_wait(2, 9)
        det.on_monitor_exit(2, 9, reentrant=False)
        det.on_access(access(1, "x", 2, WRITE))
        det.on_access(access(1, "x", 3, WRITE))
        assert det.object_count == 1


class TestObjectRaceDeferral:
    def test_handoff_keeps_object_owned(self):
        det = ObjectRaceDetector()
        det.on_access(access(1, "x", 1, WRITE))
        det.on_monitor_enter(1, 9, reentrant=False)
        det.on_notify(1, 9, notify_all=True)
        det.on_monitor_exit(1, 9, reentrant=False)
        det.on_monitor_enter(2, 9, reentrant=False)
        det.on_wait(2, 9)
        det.on_monitor_exit(2, 9, reentrant=False)
        det.on_access(access(1, "x", 2, WRITE))
        assert not det.reports

    def test_unordered_transfer_reported(self):
        det = ObjectRaceDetector()
        det.on_access(access(1, "x", 1, WRITE))
        det.on_access(access(1, "x", 2, WRITE))
        assert det.object_count == 1


class TestHappensBeforeConditionEdges:
    def test_condition_edge_orders_handoff(self):
        det = HappensBeforeDetector()
        det.on_access(access(1, "x", 1, WRITE))
        det.on_monitor_enter(1, 9, reentrant=False)
        det.on_notify(1, 9, notify_all=False)
        det.on_monitor_exit(1, 9, reentrant=False)
        det.on_monitor_enter(2, 9, reentrant=False)
        det.on_wait(2, 9)
        det.on_monitor_exit(2, 9, reentrant=False)
        det.on_access(access(1, "x", 2, WRITE))
        assert not det.reports

    def test_without_edge_reports(self):
        det = HappensBeforeDetector()
        det.on_access(access(1, "x", 1, WRITE))
        det.on_access(access(1, "x", 2, WRITE))
        assert len(det.reports) == 1

    def test_notifier_tail_unordered_with_waiter(self):
        # Accesses the notifier performs after the notify race with the
        # woken waiter's accesses.
        det = HappensBeforeDetector()
        det.on_monitor_enter(1, 9, reentrant=False)
        det.on_notify(1, 9, notify_all=False)
        det.on_monitor_exit(1, 9, reentrant=False)
        det.on_monitor_enter(2, 9, reentrant=False)
        det.on_wait(2, 9)
        det.on_monitor_exit(2, 9, reentrant=False)
        det.on_access(access(1, "x", 1, WRITE))
        det.on_access(access(1, "x", 2, WRITE))
        assert len(det.reports) == 1

    def test_join_of_unseen_thread_fabricates_no_epoch(self):
        # Regression: joining a thread that never emitted an event must
        # not invent a ``{tid: 1}`` epoch.  If it did, the joined
        # thread's real first access (seen later — e.g. in a sharded
        # partition) would appear ordered before the joiner's, hiding
        # the race asserted here.
        det = HappensBeforeDetector()
        det.on_access(access(1, "x", 1, WRITE))
        det.on_thread_join(1, 2)
        det.on_access(access(1, "x", 2, WRITE))
        assert len(det.reports) == 1

    def test_join_of_seen_thread_still_orders(self):
        det = HappensBeforeDetector()
        det.on_thread_start(1, 2)
        det.on_access(access(1, "x", 2, WRITE))
        det.on_thread_end(2)
        det.on_thread_join(1, 2)
        det.on_access(access(1, "x", 1, WRITE))
        assert not det.reports
