"""Unit tests for the predictive detectors (SHB + hybrid lockset/SHB).

The predictors are driven directly through the EventSink interface with
hand-built streams, so every edge rule (dropped lock coupling, the
lock-coupled write→read edge, start/join/condition edges, the hybrid's
lockset conjunct) is pinned independently of the interpreter.  See
``docs/prediction.md`` for the edge-rule table these tests encode.
"""

import pytest

from repro.baselines import HappensBeforeDetector
from repro.detector import (
    PREDICTORS,
    HybridPredictor,
    SHBPredictor,
    Witness,
    make_predictor,
    predict_races,
)
from repro.lang.ast import AccessKind
from repro.runtime.events import (
    AccessEvent,
    LogSchemaError,
    MemoryLocation,
    ObjectKind,
)

READ = AccessKind.READ
WRITE = AccessKind.WRITE


def access(uid, field, thread, kind):
    return AccessEvent(
        location=MemoryLocation(uid, field),
        thread_id=thread,
        kind=kind,
        site_id=0,
        object_kind=ObjectKind.INSTANCE,
        object_label=f"Obj#{uid}",
    )


def spawn(det, *children):
    """Start ``children`` from thread 0 (sets up join pseudo-locks)."""
    for child in children:
        det.on_thread_start(0, child)


class TestSHBEdges:
    def test_sibling_writes_unordered(self):
        det = SHBPredictor()
        spawn(det, 1, 2)
        det.on_access(access(1, "x", 1, WRITE))
        det.on_access(access(1, "x", 2, WRITE))
        (report,) = det.reports
        assert report.kind == "write-write"
        assert report.prior_thread == 1
        assert report.current_thread == 2
        assert str(report.location) in {str(l) for l in det.racy_locations}

    def test_start_edge_orders(self):
        det = SHBPredictor()
        det.on_access(access(1, "x", 0, WRITE))
        spawn(det, 1)
        det.on_access(access(1, "x", 1, WRITE))
        assert not det.reports

    def test_join_edge_orders(self):
        det = SHBPredictor()
        spawn(det, 1)
        det.on_access(access(1, "x", 1, WRITE))
        det.on_thread_end(1)
        det.on_thread_join(0, 1)
        det.on_access(access(1, "x", 0, WRITE))
        assert not det.reports

    def test_lock_release_acquire_edge_dropped(self):
        """The defining SHB difference: two critical sections on one
        lock are schedulable in the opposite order, so the lock edge
        that makes HB silent is dropped and SHB reports."""
        shb = SHBPredictor()
        hb = HappensBeforeDetector()
        for det in (shb, hb):
            spawn(det, 1, 2)
            for thread in (1, 2):
                det.on_monitor_enter(thread, 5, reentrant=False)
                det.on_access(access(1, "x", thread, WRITE))
                det.on_monitor_exit(thread, 5, reentrant=False)
        assert not hb.reports  # HB: ordered via release→acquire.
        (report,) = shb.reports
        assert report.kind == "write-write"

    def test_lock_coupled_write_read_edge(self):
        """A read that sees a same-lock write inherits the writer's
        whole clock: the message-passing idiom stays silent, including
        on the payload field written before the critical section."""
        det = SHBPredictor()
        spawn(det, 1, 2)
        det.on_access(access(1, "y", 1, WRITE))  # Payload, unlocked.
        det.on_monitor_enter(1, 5, reentrant=False)
        det.on_access(access(1, "x", 1, WRITE))  # Publish under L.
        det.on_monitor_exit(1, 5, reentrant=False)
        det.on_monitor_enter(2, 5, reentrant=False)
        det.on_access(access(1, "x", 2, READ))  # Consume under L.
        det.on_monitor_exit(2, 5, reentrant=False)
        det.on_access(access(1, "y", 2, READ))  # Payload read: ordered.
        assert not det.reports

    def test_unlocked_write_not_coupled(self):
        det = SHBPredictor()
        spawn(det, 1, 2)
        det.on_access(access(1, "x", 1, WRITE))  # No real lock held.
        det.on_monitor_enter(2, 5, reentrant=False)
        det.on_access(access(1, "x", 2, READ))
        det.on_monitor_exit(2, 5, reentrant=False)
        (report,) = det.reports
        assert report.kind == "write-read"

    def test_pseudo_locks_never_couple(self):
        """Join pseudo-locks are in every thread's lockset but are not
        real monitors: the write→read edge must ignore them (coupling
        through S_j was proven unsound — both threads joining a dead
        thread k share S_k without any mutual exclusion)."""
        det = SHBPredictor()
        spawn(det, 1, 2)
        det.on_access(access(1, "x", 1, WRITE))
        det.on_thread_end(1)
        det.on_thread_join(2, 1)  # Thread 2 now holds S_1 …
        det.on_access(access(1, "x", 2, READ))  # … but writer held S_1 too.
        # The join *edge* orders this pair, so no report — but assert
        # the mechanism: a fresh sibling pair sharing only pseudo-locks
        # still races.
        assert not det.reports
        det.on_access(access(2, "z", 0, WRITE))
        spawn(det, 3)
        det.on_thread_end(3)
        det.on_thread_join(0, 3)
        det.on_access(access(2, "z", 0, WRITE))
        assert not det.reports

    def test_notify_wait_edge(self):
        det = SHBPredictor()
        spawn(det, 1, 2)
        det.on_access(access(1, "x", 1, WRITE))
        det.on_notify(1, 7, notify_all=False)
        det.on_wait(2, 7)
        det.on_access(access(1, "x", 2, WRITE))
        assert not det.reports

    def test_wait_without_notify_no_edge(self):
        det = SHBPredictor()
        spawn(det, 1, 2)
        det.on_access(access(1, "x", 1, WRITE))
        det.on_wait(2, 7)  # Nothing notified cond 7 yet.
        det.on_access(access(1, "x", 2, WRITE))
        assert len(det.reports) == 1

    def test_read_histories_kept_per_thread(self):
        det = SHBPredictor()
        spawn(det, 1, 2, 3)
        det.on_access(access(1, "x", 1, READ))
        det.on_access(access(1, "x", 2, READ))
        det.on_access(access(1, "x", 3, WRITE))
        assert len(det.reports) == 2
        assert {r.kind for r in det.reports} == {"read-write"}
        assert {r.prior_thread for r in det.reports} == {1, 2}

    def test_write_resets_read_history(self):
        det = SHBPredictor()
        spawn(det, 1, 2)
        det.on_access(access(1, "x", 1, READ))
        det.on_access(access(1, "x", 1, WRITE))
        det.on_access(access(1, "x", 2, WRITE))
        # One write-write report; the read was absorbed by the same
        # thread's write, not double-reported.
        assert [r.kind for r in det.reports] == ["write-write"]

    def test_report_describe(self):
        det = SHBPredictor()
        spawn(det, 1, 2)
        det.on_access(access(1, "x", 1, WRITE))
        det.on_access(access(1, "x", 2, WRITE))
        text = det.reports[0].describe()
        assert "predicted write-write race" in text
        assert "#1.x" in text


class TestSHBSupersetOfHB:
    """hb ⊆ shb, pinned on hand-built streams (the property suite
    re-checks it on fuzzed programs)."""

    def drive(self, script):
        shb, hb = SHBPredictor(), HappensBeforeDetector()
        for det in (shb, hb):
            script(det)
        shb_locs = {str(l) for l in shb.racy_locations}
        hb_locs = {str(l) for l in hb.racy_locations}
        assert hb_locs <= shb_locs, (hb_locs, shb_locs)
        return shb_locs, hb_locs

    def test_plain_race(self):
        def script(det):
            spawn(det, 1, 2)
            det.on_access(access(1, "x", 1, WRITE))
            det.on_access(access(1, "x", 2, READ))

        shb_locs, hb_locs = self.drive(script)
        assert shb_locs == hb_locs == {"#1.x"}

    def test_lock_ordered_is_strict_superset(self):
        def script(det):
            spawn(det, 1, 2)
            det.on_monitor_enter(1, 5, reentrant=False)
            det.on_access(access(1, "x", 1, WRITE))
            det.on_monitor_exit(1, 5, reentrant=False)
            det.on_monitor_enter(2, 5, reentrant=False)
            det.on_access(access(1, "x", 2, WRITE))
            det.on_monitor_exit(2, 5, reentrant=False)

        shb_locs, hb_locs = self.drive(script)
        assert shb_locs == {"#1.x"} and hb_locs == set()

    def test_condition_ordered_agrees(self):
        def script(det):
            spawn(det, 1, 2)
            det.on_access(access(1, "x", 1, WRITE))
            det.on_notify(1, 9, notify_all=True)
            det.on_wait(2, 9)
            det.on_access(access(1, "x", 2, WRITE))

        shb_locs, hb_locs = self.drive(script)
        assert shb_locs == hb_locs == set()


class TestHybridConjunct:
    def test_common_lock_filtered(self):
        """The SHB false-positive family the conjunct exists to kill:
        same-lock critical sections can never overlap, so the hybrid
        drops what pure SHB reports."""
        shb = make_predictor("shb")
        hyb = make_predictor("hybrid")
        for det in (shb, hyb):
            spawn(det, 1, 2)
            for thread in (1, 2):
                det.on_monitor_enter(thread, 5, reentrant=False)
                det.on_access(access(1, "x", thread, WRITE))
                det.on_monitor_exit(thread, 5, reentrant=False)
        assert len(shb.reports) == 1
        assert not hyb.reports

    def test_disjoint_locks_reported(self):
        hyb = HybridPredictor()
        spawn(hyb, 1, 2)
        hyb.on_monitor_enter(1, 5, reentrant=False)
        hyb.on_access(access(1, "x", 1, WRITE))
        hyb.on_monitor_exit(1, 5, reentrant=False)
        hyb.on_monitor_enter(2, 6, reentrant=False)
        hyb.on_access(access(1, "x", 2, WRITE))
        hyb.on_monitor_exit(2, 6, reentrant=False)
        assert len(hyb.reports) == 1

    def test_sibling_pseudo_locks_disjoint(self):
        hyb = HybridPredictor()
        spawn(hyb, 1, 2)
        hyb.on_access(access(1, "x", 1, WRITE))
        hyb.on_access(access(1, "x", 2, WRITE))
        assert len(hyb.reports) == 1

    def test_conjunct_checks_lockset_at_each_endpoint(self):
        # Prior access locked, current unlocked: disjoint → reported.
        hyb = HybridPredictor()
        spawn(hyb, 1, 2)
        hyb.on_monitor_enter(1, 5, reentrant=False)
        hyb.on_access(access(1, "x", 1, WRITE))
        hyb.on_monitor_exit(1, 5, reentrant=False)
        hyb.on_access(access(1, "x", 2, WRITE))
        assert len(hyb.reports) == 1

    def test_hybrid_subset_of_shb(self):
        def script(det):
            spawn(det, 1, 2, 3)
            det.on_monitor_enter(1, 5, reentrant=False)
            det.on_access(access(1, "x", 1, WRITE))
            det.on_monitor_exit(1, 5, reentrant=False)
            det.on_monitor_enter(2, 5, reentrant=False)
            det.on_access(access(1, "x", 2, WRITE))
            det.on_monitor_exit(2, 5, reentrant=False)
            det.on_access(access(1, "y", 3, WRITE))
            det.on_access(access(1, "y", 1, READ))

        shb, hyb = SHBPredictor(), HybridPredictor()
        for det in (shb, hyb):
            script(det)
        shb_locs = {str(l) for l in shb.racy_locations}
        hyb_locs = {str(l) for l in hyb.racy_locations}
        assert hyb_locs <= shb_locs
        assert hyb_locs == {"#1.y"} and shb_locs == {"#1.x", "#1.y"}


class TestRegistry:
    def test_registry_names(self):
        assert PREDICTORS == ("shb", "hybrid")
        assert isinstance(make_predictor("shb"), SHBPredictor)
        hybrid = make_predictor("hybrid")
        assert isinstance(hybrid, HybridPredictor)
        assert isinstance(hybrid, SHBPredictor)  # shares the engine
        assert (SHBPredictor.name, HybridPredictor.name) == PREDICTORS

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="shb, hybrid"):
            make_predictor("wcp")


class TestPredictRacesInputs:
    """predict_races consumes every log shape through one boundary."""

    SOURCE = """\
class S { field x; }
class W {
  field s;
  def init(a) { this.s = a; }
  def run() { this.s.x = 1; }
}
class Main {
  static def main() {
    var s = new S();
    var w0 = new W(s);
    var w1 = new W(s);
    start w0;
    start w1;
    join w0;
    join w1;
  }
}
"""

    @pytest.fixture(scope="class")
    def sink(self):
        from repro.detector import record_execution
        from repro.lang.resolver import compile_source

        _result, sink = record_execution(compile_source(self.SOURCE))
        return sink

    def reports(self, predictor):
        return [(str(r.location), r.kind, r.prior_thread, r.current_thread)
                for r in predictor.reports]

    def test_recording_sink_and_raw_entries_agree(self, sink):
        via_sink = predict_races(sink, "shb")
        via_list = predict_races(list(sink.log), "shb")
        assert self.reports(via_sink) == self.reports(via_list)
        assert self.reports(via_sink)  # the race is actually there

    def test_json_and_binary_paths_agree(self, sink, tmp_path):
        import json

        from repro.runtime.events import dump_log
        from repro.runtime.binlog import write_binary_log

        json_path = tmp_path / "log.json"
        json_path.write_text(json.dumps(dump_log(sink)))
        bin_path = write_binary_log(sink, tmp_path / "log.mjbl")
        for mode in PREDICTORS:
            baseline = self.reports(predict_races(sink, mode))
            assert self.reports(predict_races(json_path, mode)) == baseline
            assert self.reports(predict_races(bin_path, mode)) == baseline

    def test_mapped_reader_accepted(self, sink, tmp_path):
        from repro.runtime.binlog import BinaryLogReader, write_binary_log

        path = write_binary_log(sink, tmp_path / "log.mjbl")
        with BinaryLogReader(path) as reader:
            assert self.reports(predict_races(reader, "hybrid")) == (
                self.reports(predict_races(sink, "hybrid"))
            )

    def test_validation_rejects_malformed_entries(self):
        with pytest.raises(LogSchemaError):
            predict_races([("no-such-tag", 1, 2)], "shb")

    def test_unfinalized_binary_log_names_byte_offset(self, sink, tmp_path):
        """Satellite: a crashed recording surfaces a LogSchemaError with
        the offending byte offset through the predictive path too —
        never a bare struct error."""
        from repro.runtime.binlog import BinaryLogSink

        path = tmp_path / "crashed.mjbl"
        crashed = BinaryLogSink(path)
        for event in (access(1, "x", 1, WRITE), access(1, "x", 2, WRITE)):
            crashed.on_access(event)
        crashed._file.flush()  # crash: close() never runs, no finalize
        crashed._file = None
        with pytest.raises(LogSchemaError, match="byte offset 12"):
            predict_races(path)

    def test_truncated_binary_log_rejected(self, sink, tmp_path):
        from repro.runtime.binlog import write_binary_log

        path = write_binary_log(sink, tmp_path / "whole.mjbl")
        data = path.read_bytes()
        clipped = tmp_path / "clipped.mjbl"
        clipped.write_bytes(data[: len(data) - 16])
        with pytest.raises(LogSchemaError, match="byte offset"):
            predict_races(clipped)


class TestWitness:
    def test_json_round_trip(self):
        witness = Witness(location="#1.x", choices=(0, 1, 1, 0, 2))
        payload = witness.to_json()
        assert payload == {"location": "#1.x", "choices": [0, 1, 1, 0, 2]}
        assert Witness.from_json(payload) == witness

    def test_choices_are_immutable(self):
        witness = Witness.from_json({"location": "#1.x", "choices": [1, 2]})
        assert witness.choices == (1, 2)
        with pytest.raises(AttributeError):
            witness.location = "#2.y"
