"""Unit tests for the assembled detection pipeline and the reference
detector, driven by synthetic event streams."""

from repro.detector import DetectorConfig, RaceDetector, ReferenceDetector
from repro.lang.ast import AccessKind
from repro.runtime.events import AccessEvent, MemoryLocation, ObjectKind

READ = AccessKind.READ
WRITE = AccessKind.WRITE


def access(uid, field, thread, kind, site=0):
    return AccessEvent(
        location=MemoryLocation(uid, field),
        thread_id=thread,
        kind=kind,
        site_id=site,
        object_kind=ObjectKind.INSTANCE,
        object_label=f"Obj#{uid}",
    )


def make(config=None):
    return RaceDetector(config=config if config else DetectorConfig())


def make_no_own(**overrides):
    # Detector without the ownership filter: these tests feed synthetic
    # two-access streams whose first access would otherwise be swallowed
    # by the first-accessor-owns rule.
    return RaceDetector(config=DetectorConfig(ownership=False, **overrides))


class TestBasicDetection:
    def test_unlocked_write_write_race(self):
        det = make_no_own()
        det.on_access(access(1, "f", 1, WRITE))
        det.on_access(access(1, "f", 2, WRITE))
        assert det.stats.races_reported == 1

    def test_common_lock_no_race(self):
        det = make_no_own()
        for thread in (1, 2):
            det.on_monitor_enter(thread, 99, reentrant=False)
            det.on_access(access(1, "f", thread, WRITE))
            det.on_monitor_exit(thread, 99, reentrant=False)
        assert det.stats.races_reported == 0

    def test_disjoint_locks_race(self):
        det = make_no_own()
        det.on_monitor_enter(1, 10, reentrant=False)
        det.on_access(access(1, "f", 1, WRITE))
        det.on_monitor_exit(1, 10, reentrant=False)
        det.on_monitor_enter(2, 20, reentrant=False)
        det.on_access(access(1, "f", 2, WRITE))
        det.on_monitor_exit(2, 20, reentrant=False)
        assert det.stats.races_reported == 1

    def test_read_read_no_race(self):
        det = make_no_own()
        det.on_access(access(1, "f", 1, READ))
        det.on_access(access(1, "f", 2, READ))
        assert det.stats.races_reported == 0

    def test_different_fields_no_race(self):
        det = make_no_own()
        det.on_access(access(1, "f", 1, WRITE))
        det.on_access(access(1, "g", 2, WRITE))
        assert det.stats.races_reported == 0

    def test_fields_merged_races_across_fields(self):
        det = make_no_own(fields_merged=True)
        det.on_access(access(1, "f", 1, WRITE))
        det.on_access(access(1, "g", 2, WRITE))
        assert det.stats.races_reported == 1

    def test_reentrant_monitor_events_ignored(self):
        det = make_no_own()
        det.on_monitor_enter(1, 10, reentrant=False)
        det.on_monitor_enter(1, 10, reentrant=True)
        det.on_monitor_exit(1, 10, reentrant=True)
        det.on_access(access(1, "f", 1, WRITE))
        det.on_monitor_exit(1, 10, reentrant=False)
        det.on_monitor_enter(2, 10, reentrant=False)
        det.on_access(access(1, "f", 2, WRITE))
        det.on_monitor_exit(2, 10, reentrant=False)
        assert det.stats.races_reported == 0


class TestOwnershipInPipeline:
    def test_init_then_share_suppressed(self):
        det = make()
        det.on_access(access(1, "f", 0, WRITE))  # main initializes.
        det.on_access(access(1, "f", 1, READ))  # Child reads: shared now.
        assert det.stats.races_reported == 0
        assert det.stats.owned_filtered == 1

    def test_two_writers_after_sharing_race(self):
        det = make()
        det.on_access(access(1, "f", 0, WRITE))
        det.on_access(access(1, "f", 1, WRITE))
        det.on_access(access(1, "f", 2, WRITE))
        assert det.stats.races_reported >= 1

    def test_no_ownership_reports_init_race(self):
        det = make(DetectorConfig(ownership=False))
        det.on_access(access(1, "f", 0, WRITE))
        det.on_access(access(1, "f", 1, READ))
        assert det.stats.races_reported == 1

    def test_transition_evicts_cache(self):
        det = make()
        # Thread 1 owns m and caches nothing (owned accesses are
        # filtered before the cache); after sharing, thread 1's access
        # must reach the trie.
        det.on_access(access(1, "f", 1, WRITE))
        det.on_access(access(1, "f", 2, WRITE))  # Transition + race check.
        det.on_access(access(1, "f", 1, WRITE))  # Must be processed now.
        assert det.stats.races_reported >= 1


class TestJoinPseudoLocks:
    def test_post_join_access_not_racy(self):
        det = make_no_own()
        det.on_thread_start(0, 1)
        det.on_thread_start(0, 2)
        det.on_access(access(1, "f", 1, WRITE))
        det.on_access(access(1, "f", 2, WRITE))
        races_before_join = det.stats.races_reported  # 1: the real race.
        det.on_thread_end(1)
        det.on_thread_end(2)
        det.on_thread_join(0, 1)
        det.on_thread_join(0, 2)
        det.on_access(access(1, "f", 0, READ))
        assert det.stats.races_reported == races_before_join

    def test_without_join_model_post_join_access_races(self):
        # Children write under a common lock (no race among them); the
        # parent's post-join lock-free read is then a false positive
        # unless the S_j pseudo-locks model the join ordering.
        det = make_no_own(join_pseudolocks=False)
        det.on_thread_start(0, 1)
        det.on_thread_start(0, 2)
        for child in (1, 2):
            det.on_monitor_enter(child, 50, reentrant=False)
            det.on_access(access(1, "f", child, WRITE))
            det.on_monitor_exit(child, 50, reentrant=False)
            det.on_thread_end(child)
        det.on_thread_join(0, 1)
        det.on_thread_join(0, 2)
        assert det.stats.races_reported == 0
        det.on_access(access(1, "f", 0, READ))
        assert det.stats.races_reported == 1

    def test_mutually_intersecting_locksets_no_race(self):
        """The Section 8.3 mtrt idiom on raw events."""
        det = make_no_own()
        det.on_thread_start(0, 1)
        det.on_thread_start(0, 2)
        for child in (1, 2):
            det.on_monitor_enter(child, 50, reentrant=False)
            det.on_access(access(1, "f", child, WRITE))
            det.on_monitor_exit(child, 50, reentrant=False)
            det.on_thread_end(child)
        det.on_thread_join(0, 1)
        det.on_thread_join(0, 2)
        det.on_access(access(1, "f", 0, READ))
        assert det.stats.races_reported == 0


class TestFunnelAndReports:
    def test_cache_absorbs_repeats(self):
        det = make()
        det.on_access(access(1, "f", 1, READ))
        det.on_access(access(1, "f", 2, READ))  # Transition.
        for _ in range(10):
            det.on_access(access(1, "f", 2, READ))
        assert det.stats.cache_hits == 10

    def test_weaker_filter_in_trie(self):
        det = make_no_own(cache=False)
        det.on_access(access(1, "f", 1, READ))
        det.on_access(access(1, "f", 2, READ))
        det.on_access(access(1, "f", 2, READ))
        assert det.stats.detector_weaker_filtered == 1

    def test_report_carries_locksets(self):
        det = make_no_own()
        det.on_monitor_enter(1, 10, reentrant=False)
        det.on_access(access(1, "f", 1, WRITE))
        det.on_monitor_exit(1, 10, reentrant=False)
        det.on_access(access(1, "f", 2, WRITE))
        (report,) = det.reports.reports
        assert report.prior.lockset == frozenset({10})
        assert report.current_lockset == frozenset()
        assert "DATARACE" in report.describe()

    def test_object_count_aggregation(self):
        det = make_no_own()
        for uid in (1, 2):
            det.on_access(access(uid, "f", 1, WRITE))
            det.on_access(access(uid, "f", 2, WRITE))
            det.on_access(access(uid, "f", 2, WRITE, site=7))
        assert det.reports.object_count == 2

    def test_monitored_locations_and_trie_nodes(self):
        det = make_no_own()
        det.on_access(access(1, "f", 1, WRITE))
        det.on_access(access(1, "f", 2, WRITE))
        assert det.monitored_locations == 1
        assert det.total_trie_nodes() >= 1


class TestReferenceDetector:
    def test_full_race_enumeration(self):
        ref = ReferenceDetector(DetectorConfig(ownership=False))
        ref.on_access(access(1, "f", 1, WRITE))
        ref.on_access(access(1, "f", 2, WRITE))
        ref.on_access(access(1, "f", 3, READ))
        # Pairs: (w1,w2), (w1,r3), (w2,r3) — all racing.
        assert len(ref.full_race) == 3
        assert len(ref.mem_race(MemoryLocation(1, "f"))) == 3

    def test_reference_respects_locks(self):
        ref = ReferenceDetector(DetectorConfig(ownership=False))
        for thread in (1, 2):
            ref.on_monitor_enter(thread, 5, reentrant=False)
            ref.on_access(access(1, "f", thread, WRITE))
            ref.on_monitor_exit(thread, 5, reentrant=False)
        assert not ref.full_race

    def test_reference_ownership_matches_pipeline(self):
        ref = ReferenceDetector()
        ref.on_access(access(1, "f", 0, WRITE))
        ref.on_access(access(1, "f", 1, READ))
        assert not ref.full_race
