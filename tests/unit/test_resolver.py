"""Unit tests for the MJ resolver (semantic analysis)."""

import pytest

from repro.lang import ResolveError, ast, compile_source


def wrap(body: str, extra_classes: str = "") -> str:
    return (
        "class Main { static def main() { " + body + " } }\n" + extra_classes
    )


class TestClassTable:
    def test_duplicate_class_rejected(self):
        with pytest.raises(ResolveError):
            compile_source("class A { } class A { } class Main { static def main() { } }")

    def test_unknown_superclass_rejected(self):
        with pytest.raises(ResolveError):
            compile_source("class A extends B { } class Main { static def main() { } }")

    def test_inheritance_cycle_rejected(self):
        with pytest.raises(ResolveError):
            compile_source(
                "class A extends B { } class B extends A { } "
                "class Main { static def main() { } }"
            )

    def test_duplicate_field_rejected(self):
        with pytest.raises(ResolveError):
            compile_source(
                "class A { field x; field x; } "
                "class Main { static def main() { } }"
            )

    def test_duplicate_method_rejected(self):
        with pytest.raises(ResolveError):
            compile_source(
                "class A { def m() { } def m() { } } "
                "class Main { static def main() { } }"
            )

    def test_inherited_method_resolution(self):
        resolved = compile_source(
            "class A { def m() { return 1; } } class B extends A { } "
            "class Main { static def main() { } }"
        )
        info = resolved.class_info("B")
        assert info.resolve_method("m").class_name == "A"

    def test_method_override(self):
        resolved = compile_source(
            "class A { def m() { return 1; } } "
            "class B extends A { def m() { return 2; } } "
            "class Main { static def main() { } }"
        )
        assert resolved.class_info("B").resolve_method("m").class_name == "B"

    def test_inherited_instance_fields(self):
        resolved = compile_source(
            "class A { field x; } class B extends A { field y; } "
            "class Main { static def main() { } }"
        )
        assert set(resolved.class_info("B").instance_fields()) == {"x", "y"}

    def test_static_field_owner_in_chain(self):
        resolved = compile_source(
            "class A { static field c; } class B extends A { } "
            "class Main { static def main() { } }"
        )
        assert resolved.class_info("B").static_field_owner("c").name == "A"

    def test_thread_class_detection(self):
        resolved = compile_source(
            "class T { def run() { } } class N { } "
            "class Main { static def main() { } }"
        )
        assert resolved.class_info("T").is_thread_class
        assert not resolved.class_info("N").is_thread_class


class TestMainEntryPoint:
    def test_missing_main_class_rejected(self):
        with pytest.raises(ResolveError):
            compile_source("class A { }")

    def test_non_static_main_rejected(self):
        with pytest.raises(ResolveError):
            compile_source("class Main { def main() { } }")

    def test_main_with_params_rejected(self):
        with pytest.raises(ResolveError):
            compile_source("class Main { static def main(x) { } }")


class TestScoping:
    def test_unknown_variable_rejected(self):
        with pytest.raises(ResolveError):
            compile_source(wrap("print ghost;"))

    def test_duplicate_local_rejected(self):
        with pytest.raises(ResolveError):
            compile_source(wrap("var x = 1; var x = 2;"))

    def test_shadowing_in_nested_block_rejected(self):
        # MJ forbids shadowing across nested scopes too.
        with pytest.raises(ResolveError):
            compile_source(wrap("var x = 1; if (true) { var x = 2; }"))

    def test_sibling_blocks_may_reuse_names(self):
        compile_source(
            wrap("if (true) { var x = 1; } else { var x = 2; }")
        )

    def test_assignment_to_undeclared_rejected(self):
        with pytest.raises(ResolveError):
            compile_source(wrap("x = 1;"))

    def test_duplicate_parameter_rejected(self):
        with pytest.raises(ResolveError):
            compile_source(
                "class A { def m(p, p) { } } "
                "class Main { static def main() { } }"
            )

    def test_this_in_static_method_rejected(self):
        with pytest.raises(ResolveError):
            compile_source(wrap("print this.f;"))


class TestStaticMemberRewriting:
    def test_static_field_read_rewritten(self):
        resolved = compile_source(
            wrap("var v = Counter.total;", "class Counter { static field total; }")
        )
        stmt = resolved.main_method.body.body[0]
        assert isinstance(stmt.init, ast.StaticFieldRead)
        assert stmt.init.class_name == "Counter"

    def test_static_field_write_rewritten(self):
        resolved = compile_source(
            wrap("Counter.total = 3;", "class Counter { static field total; }")
        )
        stmt = resolved.main_method.body.body[0]
        assert isinstance(stmt, ast.StaticFieldWrite)

    def test_local_shadows_class_name(self):
        # A local named like a class wins over the class.
        resolved = compile_source(
            wrap(
                "var Counter = new Box(); var v = Counter.total;",
                "class Counter { static field total; } class Box { field total; }",
            )
        )
        stmt = resolved.main_method.body.body[1]
        assert isinstance(stmt.init, ast.FieldRead)

    def test_unknown_static_field_rejected(self):
        with pytest.raises(ResolveError):
            compile_source(
                wrap("var v = Counter.ghost;", "class Counter { static field total; }")
            )

    def test_static_call_rewritten(self):
        resolved = compile_source(
            wrap("var v = Util.f(1);", "class Util { static def f(x) { return x; } }")
        )
        call = resolved.main_method.body.body[0].init
        assert call.is_static
        assert call.static_class == "Util"

    def test_instance_method_via_class_name_rejected(self):
        with pytest.raises(ResolveError):
            compile_source(
                wrap("Util.f();", "class Util { def f() { } }")
            )


class TestBareCalls:
    def test_bare_call_binds_to_this(self):
        resolved = compile_source(
            "class A { def helper() { } def m() { helper(); } } "
            "class Main { static def main() { } }"
        )
        method = resolved.class_info("A").own_methods["m"]
        call = method.body.body[0].expr
        assert isinstance(call.receiver, ast.ThisRef)

    def test_bare_call_binds_to_static(self):
        resolved = compile_source(
            "class Main { static def helper() { } "
            "static def main() { helper(); } }"
        )
        call = resolved.main_method.body.body[0].expr
        assert call.is_static

    def test_instance_call_from_static_rejected(self):
        with pytest.raises(ResolveError):
            compile_source(
                "class Main { def helper() { } static def main() { helper(); } }"
            )

    def test_unknown_bare_call_rejected(self):
        with pytest.raises(ResolveError):
            compile_source(wrap("ghost();"))


class TestIdAssignment:
    def test_every_access_gets_unique_site_id(self):
        resolved = compile_source(
            wrap(
                "var p = new P(); p.x = 1; var v = p.x; "
                "var a = newarray(3); a[0] = v; var w = a[0];",
                "class P { field x; }",
            )
        )
        site_ids = list(resolved.sites)
        assert len(site_ids) == len(set(site_ids))
        assert len(site_ids) == 4  # p.x write, p.x read, a[0] write, a[0] read.

    def test_site_info_records_kind(self):
        resolved = compile_source(
            wrap("var p = new P(); p.x = 1; var v = p.x;", "class P { field x; }")
        )
        kinds = sorted(
            (info.field_name, info.access_kind.value)
            for info in resolved.sites.values()
        )
        assert kinds == [("x", "READ"), ("x", "WRITE")]

    def test_sync_method_normalized_to_sync_block(self):
        resolved = compile_source(
            "class A { sync def m() { return 1; } } "
            "class Main { static def main() { } }"
        )
        method = resolved.class_info("A").own_methods["m"]
        sync = method.body.body[0]
        assert isinstance(sync, ast.Sync)
        assert isinstance(sync.lock, ast.ThisRef)
        assert sync.sync_id is not None

    def test_static_sync_method_locks_class_object(self):
        resolved = compile_source(
            "class A { static sync def m() { } } "
            "class Main { static def main() { } }"
        )
        method = resolved.class_info("A").own_methods["m"]
        sync = method.body.body[0]
        assert isinstance(sync.lock, ast.ClassRef)
        assert sync.lock.class_name == "A"

    def test_alloc_ids_assigned(self):
        resolved = compile_source(
            wrap("var p = new P(); var a = newarray(2);", "class P { }")
        )
        allocs = [
            node.alloc_id
            for node in resolved.main_method.body.walk()
            if isinstance(node, (ast.New, ast.NewArray))
        ]
        assert None not in allocs
        assert len(set(allocs)) == 2

    def test_origin_of_unchanged_site_is_itself(self):
        resolved = compile_source(
            wrap("var p = new P(); p.x = 1;", "class P { field x; }")
        )
        for site_id in resolved.sites:
            assert resolved.origin_of(site_id) == site_id
