"""Unit tests for the MJ interpreter."""

import pytest

from repro.lang import MJAssertionError, MJRuntimeError
from repro.runtime import CountingSink, RecordingSink

from ..conftest import run_source


def run_main(body: str, extra: str = "", **kwargs):
    source = "class Main { static def main() { " + body + " } }\n" + extra
    return run_source(source, **kwargs)


def output_of(body: str, extra: str = "", **kwargs):
    return run_main(body, extra, **kwargs).output


class TestArithmetic:
    def test_print_integer(self):
        assert output_of("print 42;") == ["42"]

    def test_addition(self):
        assert output_of("print 1 + 2;") == ["3"]

    def test_precedence(self):
        assert output_of("print 2 + 3 * 4;") == ["14"]

    def test_truncating_division_like_java(self):
        assert output_of("print 7 / 2;") == ["3"]
        assert output_of("print (0 - 7) / 2;") == ["-3"]

    def test_modulo_sign_like_java(self):
        assert output_of("print (0 - 7) % 3;") == ["-1"]
        assert output_of("print 7 % (0 - 3);") == ["1"]

    def test_division_by_zero_raises(self):
        with pytest.raises(MJRuntimeError):
            run_main("print 1 / 0;")

    def test_modulo_by_zero_raises(self):
        with pytest.raises(MJRuntimeError):
            run_main("print 1 % 0;")

    def test_unary_minus(self):
        assert output_of("print -5 + 3;") == ["-2"]

    def test_comparisons(self):
        assert output_of("print 1 < 2; print 2 <= 2; print 3 > 4; print 4 >= 4;") == [
            "true",
            "true",
            "false",
            "true",
        ]

    def test_arithmetic_on_bool_rejected(self):
        with pytest.raises(MJRuntimeError):
            run_main("print true + 1;")


class TestBooleansAndStrings:
    def test_short_circuit_and(self):
        # The right operand would crash; short-circuiting must skip it.
        assert output_of("var x = null; print false && x.f;",
                         "class D { field f; }") == ["false"]

    def test_short_circuit_or(self):
        assert output_of("var x = null; print true || x.f;",
                         "class D { field f; }") == ["true"]

    def test_not(self):
        assert output_of("print !true;") == ["false"]

    def test_string_concat(self):
        assert output_of('print "a=" + 5;') == ["a=5"]
        assert output_of('print 5 + "=a";') == ["5=a"]

    def test_string_concat_of_null_and_bool(self):
        assert output_of('print "v=" + null; print "b=" + true;') == [
            "v=null",
            "b=true",
        ]

    def test_string_equality_by_value(self):
        assert output_of('print "ab" == "a" + "b";') == ["true"]

    def test_condition_must_be_boolean(self):
        with pytest.raises(MJRuntimeError):
            run_main("if (1) { }")


class TestObjects:
    def test_field_roundtrip(self):
        assert output_of(
            "var p = new P(); p.x = 7; print p.x;", "class P { field x; }"
        ) == ["7"]

    def test_fields_default_to_null(self):
        assert output_of(
            "var p = new P(); print p.x;", "class P { field x; }"
        ) == ["null"]

    def test_constructor_runs(self):
        assert output_of(
            "var p = new P(3); print p.x;",
            "class P { field x; def init(v) { this.x = v; } }",
        ) == ["3"]

    def test_constructor_arity_checked(self):
        with pytest.raises(MJRuntimeError):
            run_main("var p = new P(1, 2);",
                     "class P { field x; def init(v) { this.x = v; } }")

    def test_new_without_init_rejects_args(self):
        with pytest.raises(MJRuntimeError):
            run_main("var p = new P(1);", "class P { }")

    def test_reference_equality(self):
        assert output_of(
            "var a = new P(); var b = new P(); var c = a; "
            "print a == b; print a == c; print a != b;",
            "class P { }",
        ) == ["false", "true", "true"]

    def test_null_comparison(self):
        assert output_of(
            "var a = new P(); print a == null; print null == null;", "class P { }"
        ) == ["false", "true"]

    def test_null_field_read_raises(self):
        with pytest.raises(MJRuntimeError):
            run_main("var x = null; print x.f;", "class D { field f; }")

    def test_null_field_write_raises(self):
        with pytest.raises(MJRuntimeError):
            run_main("var x = null; x.f = 1;", "class D { field f; }")

    def test_unknown_field_raises(self):
        with pytest.raises(MJRuntimeError):
            run_main("var p = new P(); print p.ghost;", "class P { field x; }")

    def test_dynamic_dispatch(self):
        assert output_of(
            "var b = new B(); print b.m();",
            "class A { def m() { return 1; } } "
            "class B extends A { def m() { return 2; } }",
        ) == ["2"]

    def test_inherited_method_call(self):
        assert output_of(
            "var b = new B(); print b.m();",
            "class A { def m() { return 7; } } class B extends A { }",
        ) == ["7"]

    def test_method_arity_checked(self):
        with pytest.raises(MJRuntimeError):
            run_main("var p = new P(); p.m(1);", "class P { def m() { } }")

    def test_recursion(self):
        assert output_of(
            "print Fact.f(6);",
            "class Fact { static def f(n) { if (n <= 1) { return 1; } "
            "return n * Fact.f(n - 1); } }",
        ) == ["720"]

    def test_return_without_value_yields_null(self):
        assert output_of(
            "var p = new P(); print p.m();", "class P { def m() { return; } }"
        ) == ["null"]

    def test_falling_off_method_end_yields_null(self):
        assert output_of(
            "var p = new P(); print p.m();", "class P { def m() { } }"
        ) == ["null"]


class TestStatics:
    def test_static_field_roundtrip(self):
        assert output_of(
            "C.total = 5; print C.total;", "class C { static field total; }"
        ) == ["5"]

    def test_static_inherited_field_shares_storage(self):
        assert output_of(
            "B.c = 3; print A.c;",
            "class A { static field c; } class B extends A { }",
        ) == ["3"]

    def test_static_method_call(self):
        assert output_of(
            "print Util.twice(21);",
            "class Util { static def twice(x) { return x * 2; } }",
        ) == ["42"]


class TestArrays:
    def test_array_roundtrip(self):
        assert output_of(
            "var a = newarray(3); a[0] = 9; print a[0]; print a[1];"
        ) == ["9", "null"]

    def test_array_length(self):
        assert output_of("var a = newarray(5); print a.length;") == ["5"]

    def test_out_of_bounds_read(self):
        with pytest.raises(MJRuntimeError):
            run_main("var a = newarray(2); print a[2];")

    def test_negative_index(self):
        with pytest.raises(MJRuntimeError):
            run_main("var a = newarray(2); print a[0 - 1];")

    def test_negative_size_rejected(self):
        with pytest.raises(MJRuntimeError):
            run_main("var a = newarray(0 - 1);")

    def test_non_integer_index_rejected(self):
        with pytest.raises(MJRuntimeError):
            run_main("var a = newarray(2); print a[true];")

    def test_nested_arrays(self):
        assert output_of(
            "var g = newarray(2); g[0] = newarray(2); g[0][1] = 8; print g[0][1];"
        ) == ["8"]


class TestControlFlow:
    def test_while_loop(self):
        assert output_of(
            "var i = 0; var s = 0; while (i < 5) { s = s + i; i = i + 1; } print s;"
        ) == ["10"]

    def test_if_else(self):
        assert output_of("if (1 < 2) { print 1; } else { print 2; }") == ["1"]

    def test_assert_passes(self):
        assert output_of("assert 1 < 2; print 1;") == ["1"]

    def test_assert_fails(self):
        with pytest.raises(MJAssertionError):
            run_main("assert 1 > 2;")


class TestThreads:
    THREADED = """
    class Main {
      static def main() {
        var w = new W();
        w.v = 10;
        start w;
        join w;
        print w.v;
      }
    }
    class W {
      field v;
      def run() { this.v = this.v + 1; }
    }
    """

    def test_start_join_and_shared_state(self):
        assert run_source(self.THREADED).output == ["11"]

    def test_thread_count(self):
        assert run_source(self.THREADED).threads_created == 2

    def test_start_requires_run_method(self):
        with pytest.raises(MJRuntimeError):
            run_main("var p = new P(); start p;", "class P { }")

    def test_double_start_rejected(self):
        with pytest.raises(MJRuntimeError):
            run_main(
                "var w = new W(); start w; start w;",
                "class W { def run() { } }",
            )

    def test_join_before_start_rejected(self):
        with pytest.raises(MJRuntimeError):
            run_main("var w = new W(); join w;", "class W { def run() { } }")

    def test_many_threads_sum(self):
        source = """
        class Main {
          static def main() {
            var acc = new Acc();
            var i = 0;
            var ws = newarray(4);
            while (i < 4) {
              var w = new W(); w.acc = acc; w.amount = i + 1;
              ws[i] = w;
              start w;
              i = i + 1;
            }
            var j = 0;
            while (j < 4) { join ws[j]; j = j + 1; }
            print acc.total;
          }
        }
        class Acc { field total; def init() { this.total = 0; } }
        class W {
          field acc; field amount;
          def run() {
            sync (this.acc) { this.acc.total = this.acc.total + this.amount; }
          }
        }
        """
        assert run_source(source).output == ["10"]

    def test_monitor_mutual_exclusion_preserves_counter(self):
        # Under every seed, the locked counter must total exactly 2*N.
        source = """
        class Main {
          static def main() {
            var s = new S();
            var a = new W(s); var b = new W(s);
            start a; start b; join a; join b;
            print s.n;
          }
        }
        class S { field n; def init() { this.n = 0; } }
        class W {
          field s;
          def init(s) { this.s = s; }
          def run() {
            var i = 0;
            while (i < 25) {
              sync (this.s) { this.s.n = this.s.n + 1; }
              i = i + 1;
            }
          }
        }
        """
        for seed in range(5):
            assert run_source(source, seed=seed).output == ["50"]

    def test_reentrant_monitor(self):
        assert output_of(
            "var p = new P(); sync (p) { sync (p) { print 1; } }",
            "class P { }",
        ) == ["1"]

    def test_sync_method_is_reentrant_with_block(self):
        assert output_of(
            "var p = new P(); print p.outer();",
            "class P { sync def outer() { return inner(); } "
            "sync def inner() { return 5; } }",
        ) == ["5"]


class TestEventEmission:
    def test_counting_sink_counts_accesses(self):
        sink = CountingSink()
        run_main(
            "var p = new P(); p.x = 1; var v = p.x;",
            "class P { field x; }",
            sink=sink,
        )
        assert sink.writes == 1
        assert sink.reads == 1

    def test_trace_filtering_by_site(self):
        source = (
            "class Main { static def main() { "
            "var p = new P(); p.x = 1; var v = p.x; } }\n"
            "class P { field x; }"
        )
        sink = CountingSink()
        run_source(source, sink=sink, trace_sites=set())
        assert sink.accesses == 0

    def test_monitor_events_flagged_reentrant(self):
        sink = RecordingSink()
        run_main(
            "var p = new P(); sync (p) { sync (p) { } }",
            "class P { }",
            sink=sink,
        )
        enters = [e for e in sink.log if e[0] == RecordingSink.ENTER]
        assert [e[3] for e in enters] == [False, True]
        exits = [e for e in sink.log if e[0] == RecordingSink.EXIT]
        assert [e[3] for e in exits] == [True, False]

    def test_thread_lifecycle_events_ordered(self):
        sink = RecordingSink()
        run_source(
            """
            class Main {
              static def main() {
                var w = new W(); start w; join w;
              }
            }
            class W { def run() { } }
            """,
            sink=sink,
        )
        tags = [e[0] for e in sink.log]
        start = tags.index(RecordingSink.START)
        end = tags.index(RecordingSink.END)
        join = tags.index(RecordingSink.JOIN)
        assert start < end < join

    def test_array_length_read_emits_no_event(self):
        sink = CountingSink()
        run_main("var a = newarray(2); print a.length;", sink=sink)
        assert sink.accesses == 0
