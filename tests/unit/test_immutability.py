"""Unit tests for the construction-immutability analysis (§10 extension)."""

from repro.analysis import analyze_immutability, analyze_points_to, analyze_static_races
from repro.instrument import PlannerConfig, plan_instrumentation
from repro.lang import compile_source


def immutable_fields_of(source: str, class_name: str) -> frozenset:
    resolved = compile_source(source)
    pts = analyze_points_to(resolved)
    info = analyze_immutability(resolved, pts)
    return info.immutable_fields.get(class_name, frozenset())


SHARED_CONFIG = """
class Main {{
  static def main() {{
    var cfg = new Config(7);
    var a = new R(cfg); var b = new R(cfg);
    start a; start b; join a; join b;
    {post}
  }}
}}
class Config {{
  field x;
  field mutable;
  def init(x) {{ this.x = x; this.mutable = 0; {init_extra} }}
  {extra_methods}
}}
class R {{
  field cfg;
  def init(cfg) {{ this.cfg = cfg; }}
  def run() {{
    var v = this.cfg.x;
    this.cfg.mutable = v;
  }}
}}
"""


def cfg_source(post="", init_extra="", extra_methods=""):
    return SHARED_CONFIG.format(
        post=post, init_extra=init_extra, extra_methods=extra_methods
    )


class TestFieldClassification:
    def test_init_only_field_is_immutable(self):
        fields = immutable_fields_of(cfg_source(), "Config")
        assert "x" in fields

    def test_worker_written_field_is_not(self):
        fields = immutable_fields_of(cfg_source(), "Config")
        assert "mutable" not in fields

    def test_post_construction_write_in_main_disqualifies(self):
        fields = immutable_fields_of(cfg_source(post="cfg.x = 99;"), "Config")
        assert "x" not in fields

    def test_helper_in_init_closure_allowed(self):
        source = cfg_source(
            init_extra="setup();",
            extra_methods="def setup() { this.x = this.x * 2; }",
        )
        fields = immutable_fields_of(source, "Config")
        assert "x" in fields

    def test_externally_called_helper_disqualifies(self):
        source = cfg_source(
            init_extra="setup();",
            extra_methods="def setup() { this.x = this.x * 2; }",
            post="cfg.setup();",
        )
        fields = immutable_fields_of(source, "Config")
        assert "x" not in fields

    def test_this_escape_from_init_disqualifies_class(self):
        source = """
        class Main {
          static def main() {
            var reg = new Registry();
            var cfg = new Config(7, reg);
            var a = new R(cfg);
            start a; join a;
          }
        }
        class Registry { field last; }
        class Config {
          field x;
          def init(x, reg) { this.x = x; reg.last = this; }
        }
        class R {
          field cfg;
          def init(cfg) { this.cfg = cfg; }
          def run() { var v = this.cfg.x; }
        }
        """
        assert immutable_fields_of(source, "Config") == frozenset()

    def test_class_without_init_all_fields_immutable_nominally(self):
        # No constructor: no writer inside the closure; any write site
        # elsewhere disqualifies, so only never-written fields remain.
        source = """
        class Main {
          static def main() {
            var p = new P();
            var v = p.a;
            p.b = 1;
          }
        }
        class P { field a; field b; }
        """
        fields = immutable_fields_of(source, "P")
        assert "a" in fields
        assert "b" not in fields


class TestRaceSetIntegration:
    RACY_READS = cfg_source()

    def test_flag_off_keeps_immutable_reads(self):
        resolved = compile_source(self.RACY_READS)
        result = analyze_static_races(resolved, immutability=False)
        fields = {resolved.sites[s].field_name for s in result.racy_sites}
        assert "x" in fields

    def test_flag_on_prunes_immutable_reads(self):
        resolved = compile_source(self.RACY_READS)
        result = analyze_static_races(resolved, immutability=True)
        fields = {resolved.sites[s].field_name for s in result.racy_sites}
        assert "x" not in fields
        assert "mutable" in fields  # Still racy.
        assert result.stats.pairs_pruned_immutability > 0

    def test_planner_flag_reduces_instrumentation(self):
        resolved = compile_source(self.RACY_READS)
        base_plan = plan_instrumentation(resolved, PlannerConfig())

        resolved2 = compile_source(self.RACY_READS)
        opt_plan = plan_instrumentation(
            resolved2, PlannerConfig(immutability_analysis=True)
        )
        assert opt_plan.stats.sites_instrumented < base_plan.stats.sites_instrumented

    def test_detection_still_finds_real_races_with_flag(self):
        from repro.detector import RaceDetector
        from repro.runtime import run_program

        resolved = compile_source(self.RACY_READS)
        plan = plan_instrumentation(
            resolved, PlannerConfig(immutability_analysis=True)
        )
        detector = RaceDetector(resolved=resolved)
        run_program(resolved, sink=detector, trace_sites=plan.trace_sites)
        assert {r.field for r in detector.reports.reports} == {"mutable"}

    def test_tsp2_city_coordinates_pruned(self):
        from repro.workloads import BENCHMARKS

        resolved = compile_source(BENCHMARKS["tsp2"].build(5))
        result = analyze_static_races(resolved, immutability=True)
        info = result.immutability
        assert "x" in info.immutable_fields.get("CityInfo", ())
        assert "y" in info.immutable_fields.get("CityInfo", ())
        assert "visits" not in info.immutable_fields.get("CityInfo", ())
