"""Unit tests for the service wire protocol and the compile cache."""

import json

import pytest

from repro.detector.pipeline import PipelineStats
from repro.lang import MJError
from repro.runtime.binlog import MAGIC
from repro.runtime.events import (
    LogCorruptError,
    LogNotFoundError,
    LogSchemaError,
    LogSchemaMismatchError,
)
from repro.service.cache import (
    HIT,
    MISS,
    CompileCache,
    plan_fingerprint,
    source_fingerprint,
)
from repro.service.protocol import (
    EXIT_CORRUPT,
    EXIT_ERROR,
    EXIT_SCHEMA_MISMATCH,
    KIND_BINARY_LOG,
    KIND_PROGRAM,
    KIND_TUPLE_LOG,
    canonical_json,
    classify_payload,
    detection_report,
    error_payload,
    error_taxonomy,
    exit_code_for,
    http_status_for,
    verdict_payload,
)

PROGRAM = """
class Main {
  static def main() {
    var d = new Data();
    d.x = 1;
    print d.x;
  }
}
class Data { field x; }
"""


class TestClassifyPayload:
    def test_binary_log_magic(self):
        assert classify_payload(MAGIC + b"\x00" * 76) == KIND_BINARY_LOG

    def test_tuple_log_brace(self):
        assert classify_payload(b'{"version": 3}') == KIND_TUPLE_LOG

    def test_tuple_log_leading_whitespace(self):
        assert classify_payload(b'  \n\t{"entries": []}') == KIND_TUPLE_LOG

    def test_program_source(self):
        assert classify_payload(b"class Main { }") == KIND_PROGRAM

    def test_empty_body_is_program(self):
        assert classify_payload(b"") == KIND_PROGRAM

    def test_magic_must_lead(self):
        assert classify_payload(b" MJBL") == KIND_PROGRAM


class TestCanonicalJson:
    def test_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": [2, 3]}) == '{"a":[2,3],"b":1}'

    def test_non_ascii_passthrough(self):
        assert canonical_json({"k": "é"}) == '{"k":"é"}'


class TestErrorTaxonomy:
    CASES = [
        (LogNotFoundError("gone"), EXIT_ERROR, 404, "not-found"),
        (LogCorruptError("bad", offset=40), EXIT_CORRUPT, 422, "corrupt"),
        (
            LogSchemaMismatchError("skew"),
            EXIT_SCHEMA_MISMATCH,
            400,
            "schema-mismatch",
        ),
        (MJError("parse"), EXIT_ERROR, 422, "compile-error"),
        (LogSchemaError("other"), EXIT_ERROR, 422, "log-error"),
        (RuntimeError("boom"), EXIT_ERROR, 500, "internal"),
    ]

    @pytest.mark.parametrize(
        "error,exit_code,status,taxonomy",
        CASES,
        ids=[case[3] for case in CASES],
    )
    def test_mapping(self, error, exit_code, status, taxonomy):
        assert exit_code_for(error) == exit_code
        assert http_status_for(error) == status
        assert error_taxonomy(error) == taxonomy

    def test_error_payload_carries_offset(self):
        payload = error_payload(LogCorruptError("damaged", offset=123))
        assert payload == {
            "error": "damaged",
            "taxonomy": "corrupt",
            "offset": 123,
        }

    def test_error_payload_without_offset(self):
        assert "offset" not in error_payload(LogNotFoundError("gone"))

    def test_subclasses_stay_catchable_as_base(self):
        # The CLI's pre-existing `except LogSchemaError` fallbacks (and
        # any third-party caller) must keep catching the whole family.
        for error in (
            LogNotFoundError("a"),
            LogCorruptError("b"),
            LogSchemaMismatchError("c"),
        ):
            assert isinstance(error, LogSchemaError)


class TestDetectionReport:
    def test_clean_report_shape(self):
        report = detection_report([], PipelineStats(), None, output=["7"])
        assert report["verdict"] == "clean"
        assert report["race_count"] == 0
        assert report["races"] == []
        assert report["cache"] is None
        assert report["output"] == ["7"]
        assert set(report["funnel"]) == {
            "accesses",
            "owned_filtered",
            "cache_hits",
            "weaker_filtered",
            "detector_processed",
            "races_reported",
        }
        json.dumps(report)  # must be JSON-safe as-is

    def test_verdict_payload_sorts_and_stringifies(self):
        payload = verdict_payload("hb", ["b.y", "a.x"], [2, 1], 3)
        assert payload == {
            "axis": "hb",
            "racy_locations": ["a.x", "b.y"],
            "racy_objects": ["1", "2"],
            "races": 3,
        }


class TestCompileCache:
    def test_miss_then_hit(self):
        cache = CompileCache()
        first = cache.lookup(PROGRAM, "a.mj")
        second = cache.lookup(PROGRAM, "a.mj")
        assert first.status == MISS
        assert second.status == HIT
        assert second.resolved is first.resolved
        assert second.plan is first.plan
        assert cache.counters() == {
            "entries": 1,
            "hits": 1,
            "misses": 1,
            "plan_fingerprint": cache.plan_fingerprint,
        }

    def test_filename_is_part_of_the_address(self):
        # Site descriptors embed the filename, so the same source under
        # two names is two distinct report streams — and two entries.
        cache = CompileCache()
        assert cache.lookup(PROGRAM, "a.mj").status == MISS
        assert cache.lookup(PROGRAM, "b.mj").status == MISS
        assert source_fingerprint(PROGRAM, "a.mj") != source_fingerprint(
            PROGRAM, "b.mj"
        )

    def test_planner_config_is_part_of_the_address(self):
        # The same submission under two planner configurations compiles
        # to different artifacts, so the addresses must differ too.
        from repro.instrument.planner import PlannerConfig

        full = plan_fingerprint(PlannerConfig())
        nostatic = plan_fingerprint(PlannerConfig(static_analysis=False))
        assert full != nostatic
        assert source_fingerprint(PROGRAM, "a.mj", plan=full) != (
            source_fingerprint(PROGRAM, "a.mj", plan=nostatic)
        )
        # And the cache mixes its own planner's fingerprint into every
        # key it creates.
        cache = CompileCache()
        assert cache.lookup(PROGRAM, "a.mj").fingerprint == (
            source_fingerprint(PROGRAM, "a.mj", plan=cache.plan_fingerprint)
        )

    def test_fifo_eviction(self):
        cache = CompileCache(max_entries=1)
        cache.lookup(PROGRAM, "a.mj")
        cache.lookup(PROGRAM, "b.mj")
        assert len(cache) == 1
        assert cache.lookup(PROGRAM, "a.mj").status == MISS

    def test_compile_error_propagates_uncached(self):
        cache = CompileCache()
        with pytest.raises(MJError):
            cache.lookup("class Main { oops }", "bad.mj")
        assert len(cache) == 0
