"""Unit tests for single-instance analysis, the ICG, MustSync, MustThread."""

from repro.analysis import (
    MAIN_THREAD,
    Multiplicity,
    analyze_points_to,
    analyze_single_instance,
    build_icg,
)
from repro.lang import compile_source


def analyze(body: str, extra: str = ""):
    source = "class Main { static def main() { " + body + " } }\n" + extra
    resolved = compile_source(source)
    pts = analyze_points_to(resolved)
    single = analyze_single_instance(resolved, pts)
    icg = build_icg(resolved, pts, single)
    return resolved, pts, single, icg


class TestMethodMultiplicity:
    def test_main_runs_once(self):
        _, _, single, _ = analyze("")
        assert single.method_runs_once("Main.main")

    def test_single_call_site_once(self):
        _, _, single, _ = analyze(
            "Util.f();", "class Util { static def f() { } }"
        )
        assert single.method_runs_once("Util.f")

    def test_call_in_loop_many(self):
        _, _, single, _ = analyze(
            "var i = 0; while (i < 3) { Util.f(); i = i + 1; }",
            "class Util { static def f() { } }",
        )
        assert not single.method_runs_once("Util.f")

    def test_two_call_sites_many(self):
        _, _, single, _ = analyze(
            "Util.f(); Util.f();", "class Util { static def f() { } }"
        )
        assert not single.method_runs_once("Util.f")

    def test_recursive_method_many(self):
        _, _, single, _ = analyze(
            "Util.f(3);",
            "class Util { static def f(n) { if (n > 0) { Util.f(n - 1); } } }",
        )
        assert not single.method_runs_once("Util.f")

    def test_mutual_recursion_many(self):
        _, _, single, _ = analyze(
            "Util.f(3);",
            "class Util { static def f(n) { if (n > 0) { g(n); } } "
            "static def g(n) { f(n - 1); } }",
        )
        assert not single.method_runs_once("Util.f")
        assert not single.method_runs_once("Util.g")

    def test_transitive_once(self):
        _, _, single, _ = analyze(
            "Util.f();",
            "class Util { static def f() { g(); } static def g() { } }",
        )
        assert single.method_runs_once("Util.g")

    def test_run_of_singly_started_thread_once(self):
        _, _, single, _ = analyze(
            "var w = new W(); start w;", "class W { def run() { } }"
        )
        assert single.method_runs_once("W.run")

    def test_run_of_loop_started_threads_many(self):
        _, _, single, _ = analyze(
            "var i = 0; while (i < 2) { var w = new W(); start w; i = i + 1; }",
            "class W { def run() { } }",
        )
        assert not single.method_runs_once("W.run")


class TestSingleInstanceObjects:
    def test_alloc_in_main_single(self):
        resolved, pts, single, _ = analyze("var p = new P();", "class P { }")
        (obj,) = pts.may_point_to_register("Main.main", "p")
        assert single.object_is_single_instance(obj)

    def test_alloc_in_loop_not_single(self):
        resolved, pts, single, _ = analyze(
            "var i = 0; var p = null; while (i < 2) { p = new P(); i = i + 1; }",
            "class P { }",
        )
        objs = pts.may_point_to_register("Main.main", "p")
        assert any(not single.object_is_single_instance(o) for o in objs)

    def test_must_points_to_singleton_single(self):
        resolved, pts, single, _ = analyze("var p = new P();", "class P { }")
        may = pts.may_point_to_register("Main.main", "p")
        assert single.must_points_to(may) == may

    def test_must_points_to_of_merged_set_empty(self):
        resolved, pts, single, _ = analyze(
            "var p = new P(); if (true) { p = new P(); }", "class P { }"
        )
        may = pts.may_point_to_register("Main.main", "p")
        assert single.must_points_to(may) == frozenset()


class TestMustSync:
    GUARDED = """
    class Shared { field v; }
    class LockObj { }
    class W {
      field s; field lock;
      def run() {
        sync (this.lock) {
          this.s.v = 1;
        }
      }
    }
    """

    def test_sync_on_single_instance_lock_is_must(self):
        resolved, pts, single, icg = analyze(
            "var l = new LockObj(); var s = new Shared(); "
            "var w = new W(); w.lock = l; w.s = s; start w;",
            self.GUARDED,
        )
        site = next(s for s in pts.site_bases.values() if s.field_name == "v")
        must = icg.must_sync_at(site.method, site.sync_stack)
        assert len(must) == 1
        (lock_obj,) = must
        assert lock_obj.class_name == "LockObj"

    def test_unsynchronized_site_has_empty_must_sync(self):
        resolved, pts, single, icg = analyze(
            "var p = new P(); p.f = 1;", "class P { field f; }"
        )
        site = next(iter(pts.site_bases.values()))
        assert icg.must_sync_at(site.method, site.sync_stack) == frozenset()

    def test_lock_from_two_allocs_not_must(self):
        resolved, pts, single, icg = analyze(
            "var l = new LockObj(); if (true) { l = new LockObj(); } "
            "var s = new Shared(); var w = new W(); w.lock = l; w.s = s; start w;",
            self.GUARDED,
        )
        site = next(s for s in pts.site_bases.values() if s.field_name == "v")
        assert icg.must_sync_at(site.method, site.sync_stack) == frozenset()

    def test_must_sync_propagates_through_calls(self):
        resolved, pts, single, icg = analyze(
            "var h = new Holder(); sync (h) { h.work(); }",
            "class Holder { field v; def work() { this.v = 1; } }",
        )
        site = next(s for s in pts.site_bases.values() if s.field_name == "v")
        must = icg.must_sync_at(site.method, site.sync_stack)
        assert len(must) == 1

    def test_call_from_unsynchronized_context_clears_must_sync(self):
        resolved, pts, single, icg = analyze(
            "var h = new Holder(); sync (h) { h.work(); } h.work();",
            "class Holder { field v; def work() { this.v = 1; } }",
        )
        site = next(s for s in pts.site_bases.values() if s.field_name == "v")
        assert icg.must_sync_at(site.method, site.sync_stack) == frozenset()

    def test_thread_root_starts_with_no_locks(self):
        resolved, pts, single, icg = analyze(
            "var w = new W(); var l = new LockObj(); var s = new Shared(); "
            "w.lock = l; w.s = s; sync (l) { start w; }",
            self.GUARDED,
        )
        # The start happens under a lock, but the child holds nothing.
        from repro.analysis import method_node

        out = icg.must_sync_out[method_node("W.run")]
        assert out == set()


class TestMustThread:
    def test_main_only_code_has_main_thread(self):
        resolved, pts, single, icg = analyze("var p = new P();", "class P { }")
        assert icg.must_thread_of("Main.main") == frozenset({MAIN_THREAD})

    def test_single_thread_run_has_must_thread(self):
        resolved, pts, single, icg = analyze(
            "var w = new W(); start w;", "class W { def run() { } }"
        )
        must = icg.must_thread_of("W.run")
        assert len(must) == 1

    def test_method_shared_between_threads_empty(self):
        resolved, pts, single, icg = analyze(
            "var a = new W(); var b = new W(); start a; start b;",
            "class W { def run() { helper(); } def helper() { } }",
        )
        assert icg.must_thread_of("W.helper") == frozenset()

    def test_run_also_called_directly_loses_must_thread(self):
        resolved, pts, single, icg = analyze(
            "var w = new W(); w.run(); start w;",
            "class W { def run() { } }",
        )
        # Reachable from both the main root and the thread root.
        assert icg.must_thread_of("W.run") == frozenset()
