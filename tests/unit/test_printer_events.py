"""Unit tests for the unparser and the event-sink utilities."""

import pytest

from repro.lang import ast, compile_source, parse, render_expr, render_program, render_stmt
from repro.lang.ast import AccessKind
from repro.runtime.events import (
    AccessEvent,
    CountingSink,
    MemoryLocation,
    MulticastSink,
    ObjectKind,
    RecordingSink,
)


def roundtrip(source: str) -> str:
    return render_program(parse(source))


class TestPrinterRoundTrip:
    def test_simple_class(self):
        text = roundtrip("class A { field x; def m(p) { return p; } }")
        assert "class A {" in text
        assert "field x;" in text
        # Fixpoint.
        assert roundtrip(text) == text

    def test_static_members(self):
        text = roundtrip(
            "class A { static field c; static def m() { A.c = 1; } }"
        )
        assert "static field c;" in text
        assert roundtrip(text) == text

    def test_control_flow(self):
        source = (
            "class A { def m(n) { "
            "if (n > 0) { return 1; } else { return 2; } } }"
        )
        text = roundtrip(source)
        assert "if (" in text and "else" in text
        assert roundtrip(text) == text

    def test_loops_and_sync(self):
        source = (
            "class A { def m(n) { var i = 0; "
            "while (i < n) { sync (this) { i = i + 1; } } } }"
        )
        text = roundtrip(source)
        assert "while (" in text and "sync (" in text
        assert roundtrip(text) == text

    def test_condition_sync_statements(self):
        source = (
            "class A { def m(c, n) { sync (c) { "
            "while (n < 1) { wait c; } notify c; notifyall c; } "
            "barrier c, n; } }"
        )
        text = roundtrip(source)
        assert "wait c;" in text
        assert "notify c;" in text
        assert "notifyall c;" in text
        assert "barrier c, n;" in text
        assert roundtrip(text) == text

    def test_notifyall_not_rendered_as_notify(self):
        # The two spellings must not collapse: re-parsing the rendering
        # preserves the notify_all flag.
        program = parse("class A { def m(c) { sync (c) { notifyall c; } } }")
        stmt = program.classes[0].methods[0].body.body[0].body.body[0]
        assert render_stmt(stmt) == "notifyall c;"

    def test_threads(self):
        text = roundtrip(
            "class A { def m(t) { start t; join t; } }"
        )
        assert "start t;" in text and "join t;" in text

    def test_string_escaping(self):
        source = 'class A { def m() { print "a\\nb\\"c\\\\d"; } }'
        text = roundtrip(source)
        assert roundtrip(text) == text

    def test_arrays(self):
        text = roundtrip(
            "class A { def m() { var a = newarray(3); a[0] = a[1]; } }"
        )
        assert "newarray(3)" in text
        assert roundtrip(text) == text

    def test_expression_rendering(self):
        source = "class A { def m(x) { return (x + 1) * 2 - x % 3; } }"
        text = roundtrip(source)
        assert roundtrip(text) == text

    def test_resolved_program_renders(self):
        # After resolution (sync-method normalization, static rewrites),
        # the program must still render to parseable MJ.
        resolved = compile_source(
            "class Main { static def main() { A.go(); } }\n"
            "class A { static field c; static sync def go() { A.c = 1; } }"
        )
        text = render_program(resolved.program)
        reparsed = parse(text)
        assert reparsed is not None

    def test_render_stmt_unknown_type_raises(self):
        class Bogus(ast.Stmt):
            pass

        with pytest.raises(TypeError):
            render_stmt(Bogus())

    def test_render_expr_unknown_type_raises(self):
        class Bogus(ast.Expr):
            pass

        with pytest.raises(TypeError):
            render_expr(Bogus())


def make_event(uid=1, thread=1, kind=AccessKind.READ):
    return AccessEvent(
        location=MemoryLocation(uid, "f"),
        thread_id=thread,
        kind=kind,
        site_id=9,
        object_kind=ObjectKind.INSTANCE,
        object_label=f"Obj#{uid}",
    )


class TestSinks:
    def test_counting_sink_full_protocol(self):
        sink = CountingSink()
        sink.on_access(make_event(kind=AccessKind.WRITE))
        sink.on_access(make_event(kind=AccessKind.READ))
        sink.on_monitor_enter(1, 5, False)
        sink.on_monitor_exit(1, 5, False)
        sink.on_thread_start(0, 1)
        sink.on_thread_join(0, 1)
        assert sink.accesses == 2
        assert sink.writes == 1
        assert sink.reads == 1
        assert sink.monitor_enters == 1
        assert sink.monitor_exits == 1
        assert sink.thread_starts == 1
        assert sink.thread_joins == 1

    def test_multicast_delivers_to_all(self):
        a, b = CountingSink(), CountingSink()
        multi = MulticastSink([a, b])
        multi.on_access(make_event())
        multi.on_monitor_enter(1, 5, False)
        multi.on_thread_start(0, 1)
        multi.on_thread_end(1)
        multi.on_thread_join(0, 1)
        multi.on_monitor_exit(1, 5, False)
        multi.on_run_end()
        assert a.accesses == b.accesses == 1
        assert a.monitor_enters == b.monitor_enters == 1

    def test_recording_sink_replay_order(self):
        recorder = RecordingSink()
        recorder.on_thread_start(0, 1)
        recorder.on_monitor_enter(1, 5, False)
        recorder.on_access(make_event())
        recorder.on_monitor_exit(1, 5, False)
        recorder.on_thread_end(1)
        recorder.on_thread_join(0, 1)

        replayed = RecordingSink()
        recorder.replay_into(replayed)
        assert replayed.log == recorder.log

    def test_event_is_write_property(self):
        assert make_event(kind=AccessKind.WRITE).is_write
        assert not make_event(kind=AccessKind.READ).is_write

    def test_memory_location_str(self):
        assert str(MemoryLocation(3, "field")) == "#3.field"

    def test_base_sink_methods_are_noops(self):
        from repro.runtime.events import EventSink

        sink = EventSink()
        sink.on_access(make_event())
        sink.on_monitor_enter(1, 2, False)
        sink.on_monitor_exit(1, 2, False)
        sink.on_thread_start(0, 1)
        sink.on_thread_end(1)
        sink.on_thread_join(0, 1)
        sink.on_run_end()
