"""The MJBL binary at-rest event-log format.

Pins the on-disk contract of ``repro/runtime/binlog.py``: structural
validation is O(1) and names byte offsets when it rejects a file,
corruption inside the record region surfaces lazily (or via the
explicit CRC ``verify()``), the string table round-trips every field
name and label, and the per-block shard index lets power-of-two shard
counts skip blocks without ever dropping an event.
"""

import json
import struct

import pytest

from repro.runtime import RecordingSink
from repro.runtime.binlog import (
    BINLOG_VERSION,
    DEFAULT_RECORDS_PER_BLOCK,
    HEADER_SIZE,
    MAGIC,
    UID_PARTITIONS,
    BinaryLogReader,
    BinaryLogSink,
    _shard_partition_mask,
    as_log_entries,
    collect_log_stats,
    estimate_binary_bytes,
    is_binary_log,
    open_log,
    read_binary_log,
    write_binary_log,
)
from repro.runtime.events import LogSchemaError, dump_log
from repro.runtime.synthlog import synthesize_into

from ..conftest import run_source

SOURCE = """
class Main {
  static def main() {
    var s = new Shared();
    var c = new C(s);
    var d = new D(s);
    start c; start d;
    sync (s) { while (s.flag != 1) { wait s; } }
    join c; join d;
    print s.x;
  }
}
class Shared { field flag; field x; }
class C {
  field s;
  def init(s) { this.s = s; }
  def run() {
    sync (this.s) { this.s.flag = 1; notifyall this.s; }
  }
}
class D {
  field s;
  def init(s) { this.s = s; }
  def run() { this.s.x = 2; }
}
"""


@pytest.fixture(scope="module")
def recorded():
    """A real run covering all eight schema-v3 event kinds."""
    log = RecordingSink()
    run_source(SOURCE, sink=log)
    tags = {entry[0] for entry in log.log}
    assert tags == {
        RecordingSink.ACCESS, RecordingSink.ENTER, RecordingSink.EXIT,
        RecordingSink.START, RecordingSink.END, RecordingSink.JOIN,
        RecordingSink.WAIT, RecordingSink.NOTIFY,
    }
    return log


@pytest.fixture()
def binary_path(recorded, tmp_path):
    path = tmp_path / "run.mjbl"
    write_binary_log(recorded, path)
    return path


class TestRoundTrip:
    def test_tuple_binary_tuple_is_identity(self, recorded, binary_path):
        assert read_binary_log(binary_path) == list(recorded.log)

    def test_reader_iterates_lazily_in_order(self, recorded, binary_path):
        with BinaryLogReader(binary_path) as reader:
            assert list(reader) == list(recorded.log)
            assert len(reader) == len(recorded.log)

    def test_counts_match_header(self, recorded, binary_path):
        accesses = recorded.access_count
        with BinaryLogReader(binary_path) as reader:
            assert reader.record_count == len(recorded.log)
            assert reader.access_count == accesses
            assert reader.sync_count == len(recorded.log) - accesses

    def test_string_table_interns_fields_and_labels(self, recorded, binary_path):
        expected = set()
        for entry in recorded.log:
            if entry[0] == RecordingSink.ACCESS:
                expected.add(entry[2])
                expected.add(entry[7])
        with BinaryLogReader(binary_path) as reader:
            table = reader.strings
            assert set(table) == expected
            assert len(table) == len(expected)  # interned: no duplicates

    def test_estimate_matches_actual_file_size(self, recorded, binary_path):
        assert (
            estimate_binary_bytes(recorded.log)
            == binary_path.stat().st_size
        )

    def test_sink_is_idempotent_on_double_close(self, recorded, tmp_path):
        path = tmp_path / "twice.mjbl"
        sink = BinaryLogSink(path)
        from repro.runtime.events import replay_entries

        replay_entries(recorded.log, sink)  # replay ends with on_run_end
        sink.close()
        sink.close()
        assert read_binary_log(path) == list(recorded.log)

    def test_empty_log_round_trips(self, tmp_path):
        path = tmp_path / "empty.mjbl"
        BinaryLogSink(path).close()
        assert read_binary_log(path) == []


class TestValidation:
    def test_rejects_short_file_with_offset(self, tmp_path):
        path = tmp_path / "short.mjbl"
        path.write_bytes(MAGIC)
        with pytest.raises(LogSchemaError, match="smaller than"):
            BinaryLogReader(path)

    def test_rejects_bad_magic_at_offset_zero(self, binary_path):
        data = bytearray(binary_path.read_bytes())
        data[:4] = b"JUNK"
        binary_path.write_bytes(data)
        with pytest.raises(LogSchemaError, match="byte offset 0"):
            BinaryLogReader(binary_path)

    def test_rejects_future_version_with_remediation(self, binary_path):
        data = bytearray(binary_path.read_bytes())
        struct.pack_into("<I", data, 4, BINLOG_VERSION + 1)
        binary_path.write_bytes(data)
        with pytest.raises(LogSchemaError, match="re-record"):
            BinaryLogReader(binary_path)

    def test_rejects_unfinalized_log(self, binary_path):
        data = bytearray(binary_path.read_bytes())
        struct.pack_into("<I", data, 12, 0)  # clear the finalized flag
        binary_path.write_bytes(data)
        with pytest.raises(LogSchemaError, match="never finalized"):
            BinaryLogReader(binary_path)

    def test_rejects_truncated_file_naming_expected_end(self, binary_path):
        size = binary_path.stat().st_size
        binary_path.write_bytes(binary_path.read_bytes()[: size - 10])
        with pytest.raises(
            LogSchemaError, match=rf"ending at byte offset {size}"
        ):
            BinaryLogReader(binary_path)

    def test_record_corruption_surfaces_with_byte_offset(self, binary_path):
        # Structural validation is O(1), so a flipped tag byte inside the
        # record region is only seen when decoding reaches it — and the
        # error names where.
        data = bytearray(binary_path.read_bytes())
        data[HEADER_SIZE] = 99  # no such tag
        binary_path.write_bytes(data)
        reader = BinaryLogReader(binary_path)  # opens fine: O(1) checks only
        with pytest.raises(
            LogSchemaError, match=rf"tag 99 at byte offset {HEADER_SIZE}"
        ):
            list(reader.entries())
        reader.close()

    def test_crc_verify_catches_silent_corruption(self, binary_path):
        # A payload flip that keeps every tag valid: undetectable
        # structurally, caught by the explicit O(n) CRC pass.
        data = bytearray(binary_path.read_bytes())
        data[HEADER_SIZE + 5] ^= 0xFF
        binary_path.write_bytes(data)
        with pytest.raises(LogSchemaError, match="CRC mismatch"):
            BinaryLogReader(binary_path, verify=True)

    def test_crc_verify_passes_on_intact_log(self, binary_path):
        with BinaryLogReader(binary_path, verify=True) as reader:
            reader.verify()

    def test_out_of_range_string_id_is_corruption(self, recorded, tmp_path):
        path = tmp_path / "badstr.mjbl"
        write_binary_log(recorded, path)
        data = bytearray(path.read_bytes())
        reader = BinaryLogReader(path)
        offset = None
        for block in reader.blocks:
            offset = block.offset
            break
        # Find the first access record and point its field id past the table.
        from repro.runtime.binlog import TAG_ACCESS, _RECORD_SIZE

        while data[offset] != TAG_ACCESS:
            offset += _RECORD_SIZE[data[offset]]
        struct.pack_into("<I", data, offset + 20, 2**31)
        reader.close()
        path.write_bytes(data)
        with BinaryLogReader(path) as reader:
            with pytest.raises(LogSchemaError, match="out-of-range string"):
                list(reader.entries())


class TestShardIndex:
    @pytest.fixture(scope="class")
    def multiblock(self, tmp_path_factory):
        """A synthetic log forced into many small blocks."""
        path = tmp_path_factory.mktemp("binlog") / "multi.mjbl"
        sink = BinaryLogSink(path, records_per_block=128)
        synthesize_into(sink, 20_000)
        return path

    def test_small_blocks_produce_many_index_entries(self, multiblock):
        with BinaryLogReader(multiblock) as reader:
            assert len(reader.blocks) >= 20_000 // 128
            assert reader.records_per_block == 128
            assert sum(b.records for b in reader.blocks) == reader.record_count
            assert sum(b.accesses for b in reader.blocks) == reader.access_count

    def test_shard_entries_partition_losslessly(self, multiblock):
        with BinaryLogReader(multiblock) as reader:
            full = list(reader.entries())
            for shards in (1, 2, 4, 8):
                seen_access = []
                sync_streams = []
                for shard in range(shards):
                    entries = list(reader.shard_entries(shard, shards))
                    accesses = [
                        e for e in entries if e[0] == RecordingSink.ACCESS
                    ]
                    for entry in accesses:
                        assert entry[1] % shards == shard
                    seen_access.extend(accesses)
                    sync_streams.append(
                        [e for e in entries if e[0] != RecordingSink.ACCESS]
                    )
                # Every access lands in exactly one shard ...
                all_accesses = [
                    e for e in full if e[0] == RecordingSink.ACCESS
                ]
                assert sorted(map(repr, seen_access)) == sorted(
                    map(repr, all_accesses)
                )
                # ... and every shard replays the full sync stream in order.
                full_sync = [e for e in full if e[0] != RecordingSink.ACCESS]
                for stream in sync_streams:
                    assert stream == full_sync

    def test_power_of_two_sharding_skips_blocks(self, tmp_path):
        # The point of the index: an access-only block whose uid
        # partitions miss a shard's residues is never decoded for that
        # shard.  Build a log with uid-local access runs — each block
        # touches one object — so 8-way sharding maps each access block
        # to exactly one shard.
        from repro.lang.ast import AccessKind
        from repro.runtime.events import ObjectKind

        path = tmp_path / "local.mjbl"
        sink = BinaryLogSink(path, records_per_block=128)
        sink.on_thread_start(0, 1)
        for i in range(128 * 16):
            # Access i is record i+1 (after the start event); pick the
            # uid so every 128-record block holds exactly one object.
            uid = 1000 + ((i + 1) // 128)
            sink.on_access_parts(
                uid, "f", 1, AccessKind.READ, 0, ObjectKind.INSTANCE, f"O#{uid}"
            )
        sink.on_thread_end(1)
        sink.on_thread_join(0, 1)
        sink.close()
        with BinaryLogReader(path) as reader:
            total = len(reader.blocks)
            access_only = [b for b in reader.blocks if not b.has_sync]
            assert len(access_only) >= 15
            mapped = sum(len(reader.shard_blocks(k, 8)) for k in range(8))
            # Sync-bearing blocks replicate to all 8 shards; each
            # access-only block maps to exactly one.
            sync_blocks = total - len(access_only)
            assert mapped == 8 * sync_blocks + len(access_only)
            # And the mapped shard view still reconstructs everything.
            full = list(reader.entries())
            recovered = []
            for k in range(8):
                recovered.extend(
                    e for e in reader.shard_entries(k, 8)
                    if e[0] == RecordingSink.ACCESS
                )
            assert len(recovered) == reader.access_count == 128 * 16
            assert sorted(map(repr, recovered)) == sorted(
                map(repr, [e for e in full if e[0] == RecordingSink.ACCESS])
            )

    def test_shard_mask_covers_all_partitions(self):
        for shards in (1, 2, 3, 4, 5, 8, 16, 64):
            union = 0
            for shard in range(shards):
                union |= _shard_partition_mask(shard, shards)
            assert union == (1 << UID_PARTITIONS) - 1

    def test_power_of_two_masks_are_disjoint(self):
        for shards in (2, 4, 8, 16, 32, 64):
            seen = 0
            for shard in range(shards):
                mask = _shard_partition_mask(shard, shards)
                assert seen & mask == 0
                seen |= mask

    def test_odd_shard_counts_fall_back_to_full_mask(self):
        # gcd(64, 3) == 1: no residue can be ruled out, so the mask is
        # conservative — every block qualifies, nothing is lost.
        full = (1 << UID_PARTITIONS) - 1
        assert _shard_partition_mask(0, 3) == full
        assert _shard_partition_mask(2, 3) == full

    def test_shard_out_of_range_rejected(self, multiblock):
        with BinaryLogReader(multiblock) as reader:
            with pytest.raises(ValueError, match="out of range"):
                reader.shard_blocks(4, 4)


class TestOpenLog:
    def test_detects_binary_by_magic(self, binary_path, recorded):
        assert is_binary_log(binary_path)
        log = open_log(binary_path)
        assert isinstance(log, BinaryLogReader)
        assert list(as_log_entries(log)) == list(recorded.log)
        log.close()

    def test_detects_json_tuple_log(self, recorded, tmp_path):
        path = tmp_path / "run.json"
        path.write_text(json.dumps(dump_log(recorded)))
        assert not is_binary_log(path)
        entries = open_log(path)
        assert entries == list(recorded.log)

    def test_rejects_neither_format(self, tmp_path):
        path = tmp_path / "noise.bin"
        path.write_bytes(b"\x00\x01\x02 definitely not a log")
        with pytest.raises(LogSchemaError, match="neither a binary"):
            open_log(path)

    def test_missing_file_is_not_binary(self, tmp_path):
        assert not is_binary_log(tmp_path / "absent.mjbl")


class TestLogStats:
    def test_counts_by_kind_and_entities(self, recorded, binary_path):
        from_tuples = collect_log_stats(recorded.log)
        with BinaryLogReader(binary_path) as reader:
            from_binary = reader.stats()
        assert from_binary == from_tuples
        assert from_tuples["events"] == len(recorded.log)
        assert from_tuples["counts"][RecordingSink.WAIT] >= 1
        assert from_tuples["counts"][RecordingSink.NOTIFY] >= 1
        assert from_tuples["reads"] + from_tuples["writes"] == recorded.access_count
        assert from_tuples["distinct_threads"] >= 3

    def test_default_block_size_is_sane(self):
        assert DEFAULT_RECORDS_PER_BLOCK >= 1024

    def test_sink_rejects_nonpositive_block_size(self, tmp_path):
        with pytest.raises(ValueError, match="positive"):
            BinaryLogSink(tmp_path / "x.mjbl", records_per_block=0)
