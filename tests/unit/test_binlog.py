"""The MJBL binary at-rest event-log format.

Pins the on-disk contract of ``repro/runtime/binlog.py``: structural
validation is O(1) and names byte offsets when it rejects a file,
corruption inside the record region surfaces lazily (or via the
explicit CRC ``verify()``), the string table round-trips every field
name and label, and the per-block shard index lets power-of-two shard
counts skip blocks without ever dropping an event.
"""

import json
import struct

import pytest

from repro.runtime import RecordingSink
from repro.runtime.binlog import (
    BINLOG_VERSION,
    BINLOG_VERSION_COMPRESSED,
    DEFAULT_RECORDS_PER_BLOCK,
    HEADER_SIZE,
    MAGIC,
    UID_PARTITIONS,
    BinaryLogReader,
    BinaryLogSink,
    LogCorruptError,
    _shard_partition_mask,
    as_log_entries,
    collect_log_stats,
    estimate_binary_bytes,
    is_binary_log,
    open_log,
    read_binary_log,
    write_binary_log,
)
from repro.runtime.events import LogSchemaError, dump_log
from repro.runtime.synthlog import synthesize_into

from ..conftest import run_source

SOURCE = """
class Main {
  static def main() {
    var s = new Shared();
    var c = new C(s);
    var d = new D(s);
    start c; start d;
    sync (s) { while (s.flag != 1) { wait s; } }
    join c; join d;
    print s.x;
  }
}
class Shared { field flag; field x; }
class C {
  field s;
  def init(s) { this.s = s; }
  def run() {
    sync (this.s) { this.s.flag = 1; notifyall this.s; }
  }
}
class D {
  field s;
  def init(s) { this.s = s; }
  def run() { this.s.x = 2; }
}
"""


@pytest.fixture(scope="module")
def recorded():
    """A real run covering all eight schema-v3 event kinds."""
    log = RecordingSink()
    run_source(SOURCE, sink=log)
    tags = {entry[0] for entry in log.log}
    assert tags == {
        RecordingSink.ACCESS, RecordingSink.ENTER, RecordingSink.EXIT,
        RecordingSink.START, RecordingSink.END, RecordingSink.JOIN,
        RecordingSink.WAIT, RecordingSink.NOTIFY,
    }
    return log


@pytest.fixture()
def binary_path(recorded, tmp_path):
    path = tmp_path / "run.mjbl"
    write_binary_log(recorded, path)
    return path


class TestRoundTrip:
    def test_tuple_binary_tuple_is_identity(self, recorded, binary_path):
        assert read_binary_log(binary_path) == list(recorded.log)

    def test_reader_iterates_lazily_in_order(self, recorded, binary_path):
        with BinaryLogReader(binary_path) as reader:
            assert list(reader) == list(recorded.log)
            assert len(reader) == len(recorded.log)

    def test_counts_match_header(self, recorded, binary_path):
        accesses = recorded.access_count
        with BinaryLogReader(binary_path) as reader:
            assert reader.record_count == len(recorded.log)
            assert reader.access_count == accesses
            assert reader.sync_count == len(recorded.log) - accesses

    def test_string_table_interns_fields_and_labels(self, recorded, binary_path):
        expected = set()
        for entry in recorded.log:
            if entry[0] == RecordingSink.ACCESS:
                expected.add(entry[2])
                expected.add(entry[7])
        with BinaryLogReader(binary_path) as reader:
            table = reader.strings
            assert set(table) == expected
            assert len(table) == len(expected)  # interned: no duplicates

    def test_estimate_matches_actual_file_size(self, recorded, binary_path):
        assert (
            estimate_binary_bytes(recorded.log)
            == binary_path.stat().st_size
        )

    def test_sink_is_idempotent_on_double_close(self, recorded, tmp_path):
        path = tmp_path / "twice.mjbl"
        sink = BinaryLogSink(path)
        from repro.runtime.events import replay_entries

        replay_entries(recorded.log, sink)  # replay ends with on_run_end
        sink.close()
        sink.close()
        assert read_binary_log(path) == list(recorded.log)

    def test_empty_log_round_trips(self, tmp_path):
        path = tmp_path / "empty.mjbl"
        BinaryLogSink(path).close()
        assert read_binary_log(path) == []


class TestValidation:
    def test_rejects_short_file_with_offset(self, tmp_path):
        path = tmp_path / "short.mjbl"
        path.write_bytes(MAGIC)
        with pytest.raises(LogSchemaError, match="smaller than"):
            BinaryLogReader(path)

    def test_rejects_bad_magic_at_offset_zero(self, binary_path):
        data = bytearray(binary_path.read_bytes())
        data[:4] = b"JUNK"
        binary_path.write_bytes(data)
        with pytest.raises(LogSchemaError, match="byte offset 0"):
            BinaryLogReader(binary_path)

    def test_rejects_future_version_with_remediation(self, binary_path):
        data = bytearray(binary_path.read_bytes())
        struct.pack_into("<I", data, 4, BINLOG_VERSION_COMPRESSED + 1)
        binary_path.write_bytes(data)
        with pytest.raises(LogSchemaError, match="re-record"):
            BinaryLogReader(binary_path)

    def test_rejects_unfinalized_log(self, binary_path):
        data = bytearray(binary_path.read_bytes())
        struct.pack_into("<I", data, 12, 0)  # clear the finalized flag
        binary_path.write_bytes(data)
        with pytest.raises(LogSchemaError, match="never finalized"):
            BinaryLogReader(binary_path)

    def test_rejects_truncated_file_naming_expected_end(self, binary_path):
        size = binary_path.stat().st_size
        binary_path.write_bytes(binary_path.read_bytes()[: size - 10])
        with pytest.raises(
            LogSchemaError, match=rf"ending at byte offset {size}"
        ):
            BinaryLogReader(binary_path)

    def test_record_corruption_surfaces_with_byte_offset(self, binary_path):
        # Structural validation is O(1), so a flipped tag byte inside the
        # record region is only seen when decoding reaches it — and the
        # error names where.
        data = bytearray(binary_path.read_bytes())
        data[HEADER_SIZE] = 99  # no such tag
        binary_path.write_bytes(data)
        reader = BinaryLogReader(binary_path)  # opens fine: O(1) checks only
        with pytest.raises(
            LogSchemaError, match=rf"tag 99 at byte offset {HEADER_SIZE}"
        ):
            list(reader.entries())
        reader.close()

    def test_crc_verify_catches_silent_corruption(self, binary_path):
        # A payload flip that keeps every tag valid: undetectable
        # structurally, caught by the explicit O(n) CRC pass.
        data = bytearray(binary_path.read_bytes())
        data[HEADER_SIZE + 5] ^= 0xFF
        binary_path.write_bytes(data)
        with pytest.raises(LogSchemaError, match="CRC mismatch"):
            BinaryLogReader(binary_path, verify=True)

    def test_crc_verify_passes_on_intact_log(self, binary_path):
        with BinaryLogReader(binary_path, verify=True) as reader:
            reader.verify()

    def test_out_of_range_string_id_is_corruption(self, recorded, tmp_path):
        path = tmp_path / "badstr.mjbl"
        write_binary_log(recorded, path)
        data = bytearray(path.read_bytes())
        reader = BinaryLogReader(path)
        offset = None
        for block in reader.blocks:
            offset = block.offset
            break
        # Find the first access record and point its field id past the table.
        from repro.runtime.binlog import TAG_ACCESS, _RECORD_SIZE

        while data[offset] != TAG_ACCESS:
            offset += _RECORD_SIZE[data[offset]]
        struct.pack_into("<I", data, offset + 20, 2**31)
        reader.close()
        path.write_bytes(data)
        with BinaryLogReader(path) as reader:
            with pytest.raises(LogSchemaError, match="out-of-range string"):
                list(reader.entries())


class TestShardIndex:
    @pytest.fixture(scope="class")
    def multiblock(self, tmp_path_factory):
        """A synthetic log forced into many small blocks."""
        path = tmp_path_factory.mktemp("binlog") / "multi.mjbl"
        sink = BinaryLogSink(path, records_per_block=128)
        synthesize_into(sink, 20_000)
        return path

    def test_small_blocks_produce_many_index_entries(self, multiblock):
        with BinaryLogReader(multiblock) as reader:
            assert len(reader.blocks) >= 20_000 // 128
            assert reader.records_per_block == 128
            assert sum(b.records for b in reader.blocks) == reader.record_count
            assert sum(b.accesses for b in reader.blocks) == reader.access_count

    def test_shard_entries_partition_losslessly(self, multiblock):
        with BinaryLogReader(multiblock) as reader:
            full = list(reader.entries())
            for shards in (1, 2, 4, 8):
                seen_access = []
                sync_streams = []
                for shard in range(shards):
                    entries = list(reader.shard_entries(shard, shards))
                    accesses = [
                        e for e in entries if e[0] == RecordingSink.ACCESS
                    ]
                    for entry in accesses:
                        assert entry[1] % shards == shard
                    seen_access.extend(accesses)
                    sync_streams.append(
                        [e for e in entries if e[0] != RecordingSink.ACCESS]
                    )
                # Every access lands in exactly one shard ...
                all_accesses = [
                    e for e in full if e[0] == RecordingSink.ACCESS
                ]
                assert sorted(map(repr, seen_access)) == sorted(
                    map(repr, all_accesses)
                )
                # ... and every shard replays the full sync stream in order.
                full_sync = [e for e in full if e[0] != RecordingSink.ACCESS]
                for stream in sync_streams:
                    assert stream == full_sync

    def test_power_of_two_sharding_skips_blocks(self, tmp_path):
        # The point of the index: an access-only block whose uid
        # partitions miss a shard's residues is never decoded for that
        # shard.  Build a log with uid-local access runs — each block
        # touches one object — so 8-way sharding maps each access block
        # to exactly one shard.
        from repro.lang.ast import AccessKind
        from repro.runtime.events import ObjectKind

        path = tmp_path / "local.mjbl"
        sink = BinaryLogSink(path, records_per_block=128)
        sink.on_thread_start(0, 1)
        for i in range(128 * 16):
            # Access i is record i+1 (after the start event); pick the
            # uid so every 128-record block holds exactly one object.
            uid = 1000 + ((i + 1) // 128)
            sink.on_access_parts(
                uid, "f", 1, AccessKind.READ, 0, ObjectKind.INSTANCE, f"O#{uid}"
            )
        sink.on_thread_end(1)
        sink.on_thread_join(0, 1)
        sink.close()
        with BinaryLogReader(path) as reader:
            total = len(reader.blocks)
            access_only = [b for b in reader.blocks if not b.has_sync]
            assert len(access_only) >= 15
            mapped = sum(len(reader.shard_blocks(k, 8)) for k in range(8))
            # Sync-bearing blocks replicate to all 8 shards; each
            # access-only block maps to exactly one.
            sync_blocks = total - len(access_only)
            assert mapped == 8 * sync_blocks + len(access_only)
            # And the mapped shard view still reconstructs everything.
            full = list(reader.entries())
            recovered = []
            for k in range(8):
                recovered.extend(
                    e for e in reader.shard_entries(k, 8)
                    if e[0] == RecordingSink.ACCESS
                )
            assert len(recovered) == reader.access_count == 128 * 16
            assert sorted(map(repr, recovered)) == sorted(
                map(repr, [e for e in full if e[0] == RecordingSink.ACCESS])
            )

    def test_shard_mask_covers_all_partitions(self):
        for shards in (1, 2, 3, 4, 5, 8, 16, 64):
            union = 0
            for shard in range(shards):
                union |= _shard_partition_mask(shard, shards)
            assert union == (1 << UID_PARTITIONS) - 1

    def test_power_of_two_masks_are_disjoint(self):
        for shards in (2, 4, 8, 16, 32, 64):
            seen = 0
            for shard in range(shards):
                mask = _shard_partition_mask(shard, shards)
                assert seen & mask == 0
                seen |= mask

    def test_odd_shard_counts_fall_back_to_full_mask(self):
        # gcd(64, 3) == 1: no residue can be ruled out, so the mask is
        # conservative — every block qualifies, nothing is lost.
        full = (1 << UID_PARTITIONS) - 1
        assert _shard_partition_mask(0, 3) == full
        assert _shard_partition_mask(2, 3) == full

    def test_shard_out_of_range_rejected(self, multiblock):
        with BinaryLogReader(multiblock) as reader:
            with pytest.raises(ValueError, match="out of range"):
                reader.shard_blocks(4, 4)


class TestOpenLog:
    def test_detects_binary_by_magic(self, binary_path, recorded):
        assert is_binary_log(binary_path)
        log = open_log(binary_path)
        assert isinstance(log, BinaryLogReader)
        assert list(as_log_entries(log)) == list(recorded.log)
        log.close()

    def test_detects_json_tuple_log(self, recorded, tmp_path):
        path = tmp_path / "run.json"
        path.write_text(json.dumps(dump_log(recorded)))
        assert not is_binary_log(path)
        entries = open_log(path)
        assert entries == list(recorded.log)

    def test_rejects_neither_format(self, tmp_path):
        path = tmp_path / "noise.bin"
        path.write_bytes(b"\x00\x01\x02 definitely not a log")
        with pytest.raises(LogSchemaError, match="neither a binary"):
            open_log(path)

    def test_missing_file_is_not_binary(self, tmp_path):
        assert not is_binary_log(tmp_path / "absent.mjbl")


class TestCompressedV2:
    """The MJBL v2 on-disk contract: per-block zlib spans behind the
    same reader API, v1 files untouched and still readable."""

    @pytest.fixture(scope="class")
    def trio(self, tmp_path_factory):
        """The same 20k-event trace as v1, v2-uncompressed, v2-deflated."""
        base = tmp_path_factory.mktemp("v2")
        paths = {}
        for name, compress in (("v1", None), ("v2raw", 0), ("v2z", 6)):
            path = base / f"{name}.mjbl"
            sink = BinaryLogSink(path, records_per_block=512, compress=compress)
            synthesize_into(sink, 20_000)
            paths[name] = path
        return paths

    def test_writer_version_stamps(self, trio):
        with BinaryLogReader(trio["v1"]) as reader:
            assert reader.version == BINLOG_VERSION
        for name in ("v2raw", "v2z"):
            with BinaryLogReader(trio[name]) as reader:
                assert reader.version == BINLOG_VERSION_COMPRESSED

    def test_all_three_decode_identically(self, trio):
        streams = {
            name: read_binary_log(path) for name, path in trio.items()
        }
        assert streams["v1"] == streams["v2raw"] == streams["v2z"]
        assert len(streams["v1"]) == 20_000

    def test_deflated_file_is_smaller(self, trio):
        v1 = trio["v1"].stat().st_size
        v2z = trio["v2z"].stat().st_size
        assert v2z < v1
        # The committed claim: compressed storage at or under 16
        # bytes/event on the synthetic mix (raw records are ~25).
        assert v2z / 20_000 <= 16

    def test_uncompressed_v2_blocks_stay_raw(self, trio):
        with BinaryLogReader(trio["v2raw"]) as reader:
            assert not any(block.compressed for block in reader.blocks)
        with BinaryLogReader(trio["v2z"]) as reader:
            assert any(block.compressed for block in reader.blocks)
            for block in reader.blocks:
                if block.compressed:
                    assert block.raw_length > block.length

    def test_shard_entries_and_replay_match_v1(self, trio):
        with BinaryLogReader(trio["v1"]) as v1, BinaryLogReader(
            trio["v2z"]
        ) as v2:
            for shard, shards in ((0, 4), (3, 4), (1, 3)):
                assert list(v1.shard_entries(shard, shards)) == list(
                    v2.shard_entries(shard, shards)
                )

    def test_crc_verify_covers_stored_bytes(self, trio):
        with BinaryLogReader(trio["v2z"], verify=True):
            pass
        data = bytearray(trio["v2z"].read_bytes())
        data[HEADER_SIZE + 3] ^= 0xFF
        mangled = trio["v2z"].parent / "mangled.mjbl"
        mangled.write_bytes(data)
        with pytest.raises(LogSchemaError, match="CRC mismatch"):
            BinaryLogReader(mangled, verify=True)

    def test_compress_level_validated(self, tmp_path):
        with pytest.raises(ValueError, match="compress"):
            BinaryLogSink(tmp_path / "x.mjbl", compress=10)
        with pytest.raises(ValueError, match="compress"):
            BinaryLogSink(tmp_path / "x.mjbl", compress=-1)

    def test_block_stats_report_ratio_and_fill(self, trio):
        with BinaryLogReader(trio["v2z"]) as reader:
            stats = reader.block_stats()
        assert stats["blocks"] == len(read_binary_log(trio["v2z"])) // 512 + (
            1 if 20_000 % 512 else 0
        )
        assert stats["records_per_block"] == 512
        assert 0 < stats["min_fill"] <= stats["mean_fill"] <= stats["max_fill"] <= 1
        assert stats["compressed_blocks"] > 0
        assert stats["compression_ratio"] > 1.4
        with BinaryLogReader(trio["v1"]) as reader:
            v1_stats = reader.block_stats()
        assert v1_stats["compressed_blocks"] == 0
        assert v1_stats["compression_ratio"] == 1.0


class TestV2Corruption:
    """Corruption inside a v2 log names the failing block's byte
    offset, exactly as the v1 scalar path names record offsets."""

    @pytest.fixture()
    def v2_path(self, tmp_path):
        path = tmp_path / "v2.mjbl"
        sink = BinaryLogSink(path, records_per_block=512, compress=6)
        synthesize_into(sink, 10_000)
        return path

    def _first_compressed(self, path):
        with BinaryLogReader(path) as reader:
            for block in reader.blocks:
                if block.compressed:
                    return block.offset, block.length
        raise AssertionError("no compressed block in fixture log")

    def test_garbled_deflate_stream_names_block_offset(self, v2_path):
        offset, _ = self._first_compressed(v2_path)
        data = bytearray(v2_path.read_bytes())
        data[offset] = 0xFF  # break the zlib stream header
        v2_path.write_bytes(data)
        with BinaryLogReader(v2_path) as reader:
            with pytest.raises(LogCorruptError, match="fails to inflate") as info:
                list(reader.entries())
            assert info.value.offset == offset
            assert str(offset) in str(info.value)

    def test_truncated_deflate_stream_is_corrupt(self, v2_path):
        offset, length = self._first_compressed(v2_path)
        data = bytearray(v2_path.read_bytes())
        # Zero the tail of the stored span: the stream no longer ends.
        data[offset + length // 2 : offset + length] = bytes(
            length - length // 2
        )
        v2_path.write_bytes(data)
        with BinaryLogReader(v2_path) as reader:
            with pytest.raises(LogCorruptError, match="fails to inflate") as info:
                list(reader.entries())
            assert info.value.offset == offset

    def test_raw_length_mismatch_names_block_offset(self, v2_path):
        with BinaryLogReader(v2_path) as reader:
            from repro.runtime.binlog import _INDEX_ENTRY_V2, _INDEX_HEADER

            index_offset = reader.index_offset
            target = None
            for position, block in enumerate(reader.blocks):
                if block.compressed:
                    target = (position, block.offset)
                    break
        assert target is not None
        position, block_offset = target
        entry_offset = (
            index_offset + _INDEX_HEADER.size + position * _INDEX_ENTRY_V2.size
        )
        data = bytearray(v2_path.read_bytes())
        struct.pack_into("<I", data, entry_offset + 36, 7)  # absurd raw_length
        v2_path.write_bytes(data)
        with BinaryLogReader(v2_path) as reader:
            with pytest.raises(
                LogCorruptError, match="index entry promises 7"
            ) as info:
                list(reader.entries())
            assert info.value.offset == block_offset

    def test_record_corruption_inside_block_names_anchor(self, v2_path):
        # Decode-level corruption (a bad tag) inside an inflated block
        # can't name an exact file offset — the corrupt bytes never
        # exist on disk raw — so the error anchors to the stored span.
        import zlib as _z

        from repro.runtime.binlog import _INDEX_ENTRY_V2, _INDEX_HEADER

        with BinaryLogReader(v2_path) as reader:
            position, block = next(
                (i, b) for i, b in enumerate(reader.blocks) if b.compressed
            )
            entry_offset = (
                reader.index_offset
                + _INDEX_HEADER.size
                + position * _INDEX_ENTRY_V2.size
            )
        data = bytearray(v2_path.read_bytes())
        raw = bytearray(
            _z.decompress(data[block.offset : block.offset + block.length])
        )
        raw[0] = 99  # no such tag — valid deflate stream, invalid records
        deflated = _z.compress(bytes(raw), 6)
        data[block.offset : block.offset + len(deflated)] = deflated
        # Re-point the index entry at the re-deflated span.  Earlier
        # blocks are untouched and decoding stops at this one, so the
        # few bytes the new stream may spill past the old span never
        # get read.
        struct.pack_into("<I", data, entry_offset + 8, len(deflated))
        v2_path.write_bytes(data)
        with BinaryLogReader(v2_path) as reader:
            with pytest.raises(
                LogCorruptError,
                match=rf"unknown record tag 99 .*compressed block at byte "
                rf"offset {block.offset}",
            ):
                list(reader.entries())

    def test_v1_entry_with_compressed_flag_is_corrupt(self, tmp_path):
        path = tmp_path / "v1.mjbl"
        sink = BinaryLogSink(path, records_per_block=512)
        synthesize_into(sink, 2_000)
        with BinaryLogReader(path) as reader:
            from repro.runtime.binlog import _INDEX_ENTRY_V2, _INDEX_HEADER

            entry_offset = reader.index_offset + _INDEX_HEADER.size
        data = bytearray(path.read_bytes())
        data[entry_offset + 33] = 1  # v2 compressed flag inside a v1 index
        path.write_bytes(data)
        with BinaryLogReader(path) as reader:
            with pytest.raises(
                LogCorruptError, match="compressed-block flag"
            ) as info:
                reader.blocks
            assert info.value.offset == entry_offset

    def test_relabeled_v1_header_still_reads(self, tmp_path):
        # A v1 file whose header version is bumped to 2 stays readable:
        # v1 index entries zero-pad exactly where v2 put its new fields.
        path = tmp_path / "relabel.mjbl"
        sink = BinaryLogSink(path, records_per_block=512)
        synthesize_into(sink, 2_000)
        expected = read_binary_log(path)
        data = bytearray(path.read_bytes())
        struct.pack_into("<I", data, 4, BINLOG_VERSION_COMPRESSED)
        path.write_bytes(data)
        with BinaryLogReader(path) as reader:
            assert reader.version == BINLOG_VERSION_COMPRESSED
            assert list(reader.entries()) == expected


class TestLogStats:
    def test_counts_by_kind_and_entities(self, recorded, binary_path):
        from_tuples = collect_log_stats(recorded.log)
        with BinaryLogReader(binary_path) as reader:
            from_binary = reader.stats()
        assert from_binary == from_tuples
        assert from_tuples["events"] == len(recorded.log)
        assert from_tuples["counts"][RecordingSink.WAIT] >= 1
        assert from_tuples["counts"][RecordingSink.NOTIFY] >= 1
        assert from_tuples["reads"] + from_tuples["writes"] == recorded.access_count
        assert from_tuples["distinct_threads"] >= 3

    def test_default_block_size_is_sane(self):
        assert DEFAULT_RECORDS_PER_BLOCK >= 1024

    def test_sink_rejects_nonpositive_block_size(self, tmp_path):
        with pytest.raises(ValueError, match="positive"):
            BinaryLogSink(tmp_path / "x.mjbl", records_per_block=0)
