#!/usr/bin/env python
"""Quickstart: run the full four-phase pipeline on the paper's Figure 2.

This walks the architecture of Figure 1 end to end and narrates what
each phase produced:

1. static datarace analysis  → the static datarace set;
2. optimized instrumentation → loop peeling + static weaker-than;
3. execution with the runtime optimizer (per-thread caches);
4. the runtime detector      → race reports.

Run:  python examples/quickstart.py
"""

from repro.detector import RaceDetector
from repro.instrument import PlannerConfig, plan_instrumentation
from repro.lang import compile_source
from repro.runtime import run_program
from repro.workloads import figure2


def main() -> None:
    source = figure2.source(shared_lock=False)
    print("=== The program (the paper's Figure 2, in MJ) ===")
    print(source)

    # Phase 0: front end.
    resolved = compile_source(source, filename="figure2.mj")
    print(f"compiled: {len(resolved.classes)} classes, "
          f"{len(resolved.sites)} memory-access sites")

    # Phases 1-2: static datarace analysis + optimized instrumentation.
    plan = plan_instrumentation(resolved, PlannerConfig())
    stats = plan.stats
    print("\n=== Static phases ===")
    print(f"access sites in program:        {stats.sites_total}")
    print(f"in the static datarace set:     {stats.sites_after_static}")
    print(f"loops peeled:                   {stats.loops_peeled}")
    print(f"removed as statically weaker:   {stats.sites_eliminated_weaker}")
    print(f"sites actually instrumented:    {stats.sites_instrumented}")
    if plan.static_races is not None:
        pruning = plan.static_races.stats
        print(f"pairs pruned by MustSameThread: "
              f"{pruning.pairs_pruned_same_thread}")
        print(f"pairs pruned by MustCommonSync: "
              f"{pruning.pairs_pruned_common_sync}")

    # Phases 3-4: run with the detector attached.
    detector = RaceDetector(resolved=resolved, static_races=plan.static_races)
    result = run_program(resolved, sink=detector, trace_sites=plan.trace_sites)
    print("\n=== Execution ===")
    print(f"threads: {result.threads_created}, scheduler steps: {result.steps}")
    print(f"event funnel: {detector.stats.funnel()}")

    print("\n=== Race reports ===")
    if not detector.reports.reports:
        print("no dataraces detected")
    for report in detector.reports.reports:
        print(" *", report.describe())

    print("\nThe race is T11/T14 (thread T1) against T21 (thread T2) on")
    print("the shared Data object's field f; main's T01 write is correctly")
    print("absent — the ownership model captures the start() ordering.")


if __name__ == "__main__":
    main()
