#!/usr/bin/env python
"""Regenerate the paper's experimental tables in one run.

Produces Table 1 (benchmark characteristics), Table 2 (runtime
performance per configuration, with overhead %), the event-count
companion of Table 2, Table 3 (racy objects per accuracy variant,
with the paper's numbers alongside), and the Section 8.2 space report.

Run:  python examples/benchmark_tables.py           (quick: small scales)
      python examples/benchmark_tables.py --full    (default scales)
"""

import sys

from repro.harness import space_report, table1, table2, table2_events, table3
from repro.workloads import BENCHMARKS, TABLE2_BENCHMARKS


def main() -> None:
    quick = "--full" not in sys.argv
    scale = 4 if quick else None
    repeats = 1 if quick else 3

    print("TABLE 1 — Benchmark programs and their characteristics")
    print(table1(list(BENCHMARKS.values()), scale=scale))

    print("\nTABLE 2 — Runtime performance "
          "(best of {} run(s); overhead vs Base)".format(repeats))
    rendered, raw = table2(
        list(TABLE2_BENCHMARKS.values()), scale=scale, repeats=repeats
    )
    print(rendered)

    print("\nTABLE 2 (events) — Access events emitted per configuration")
    print(table2_events(raw))

    print("\nTABLE 3 — Number of objects with dataraces reported")
    rendered3, _ = table3(list(BENCHMARKS.values()), scale=scale)
    print(rendered3)

    print("\nSECTION 8.2 — Space accounting")
    print(space_report(BENCHMARKS["tsp2"], scale=scale))


if __name__ == "__main__":
    main()
