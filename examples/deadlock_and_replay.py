#!/usr/bin/env python
"""The Section 10 / Section 2.6 extensions: deadlock detection and
schedule record/replay.

Part 1 — the paper's conclusions announce deadlock detection as the
next target for the static/dynamic co-analysis approach.  The dynamic
side implemented here builds a lock-order graph and reports *feasible*
deadlocks from runs that never actually deadlock — the same philosophy
as the feasible-race definition.

Part 2 — the paper pairs the detector with the DejaVu record/replay
platform: detect cheaply online, reconstruct the expensive FullRace
set offline during replay.  MJ schedules are recordable determinism,
so this workflow runs exactly.

Run:  python examples/deadlock_and_replay.py
"""

from repro.detector import DeadlockDetector, RaceDetector, ReferenceDetector
from repro.lang import compile_source
from repro.runtime import MulticastSink, RandomPolicy, record_run, replay_run

DEADLOCK_PRONE = """
class Main {
  static def main() {
    var accounts = new Account();
    var savings = new Account();
    accounts.balance = 100;
    savings.balance = 50;
    var t1 = new Transfer(accounts, savings, 30);
    var t2 = new Transfer(savings, accounts, 20);
    start t1;
    join t1;          // Serialized here, so THIS run cannot deadlock...
    start t2;
    join t2;
    print accounts.balance;
    print savings.balance;
  }
}
class Account { field balance; }
class Transfer {
  field src; field dst; field amount;
  def init(src, dst, amount) {
    this.src = src;
    this.dst = dst;
    this.amount = amount;
  }
  def run() {
    sync (this.src) {          // Classic transfer deadlock pattern:
      sync (this.dst) {        // opposite lock orders per direction.
        this.src.balance = this.src.balance - this.amount;
        this.dst.balance = this.dst.balance + this.amount;
      }
    }
  }
}
"""


def part1_deadlocks() -> None:
    print("=== Part 1: feasible-deadlock detection ===")
    resolved = compile_source(DEADLOCK_PRONE)
    races = RaceDetector(resolved=resolved)
    deadlocks = DeadlockDetector()
    result, trace = record_run(
        resolved, sink=MulticastSink([races, deadlocks])
    )
    print(f"program output: {result.output} — the run completed fine")
    print(f"dataraces: {races.reports.object_count} "
          "(transfers hold both account locks)")
    for report in deadlocks.reports:
        print(" *", report.describe())
    print("The two transfers ran one after the other, yet the lock-order")
    print("cycle Account1→Account2→Account1 is reported: had they run")
    print("concurrently, the classic transfer deadlock was feasible.\n")
    return trace


RACY = """
class Main {
  static def main() {
    var d = new Data();
    d.hits = 0;
    var a = new Logger(d); var b = new Logger(d);
    start a; start b; join a; join b;
    print d.hits;
  }
}
class Data { field hits; }
class Logger {
  field d;
  def init(d) { this.d = d; }
  def run() {
    var i = 0;
    while (i < 3) {
      this.d.hits = this.d.hits + 1;   // racy increments
      i = i + 1;
    }
  }
}
"""


def part2_replay() -> None:
    print("=== Part 2: record online, reconstruct FullRace on replay ===")
    resolved = compile_source(RACY)
    online = RaceDetector(resolved=resolved)
    result, trace = record_run(
        resolved, sink=online, inner_policy=RandomPolicy(7)
    )
    print(f"online detection during recording: "
          f"{online.reports.object_count} racy object(s), "
          f"{online.stats.races_reported} report(s)")
    resolved = compile_source(RACY)
    oracle = ReferenceDetector()
    replay_run(resolved, trace, sink=oracle)
    print(f"replayed {len(trace)} recorded scheduling decisions")
    print(f"FullRace pairs reconstructed offline: {len(oracle.full_race)}")
    for pair in oracle.full_race[:5]:
        print(f"  {pair.key}: thread {pair.earlier.thread_id} "
              f"{pair.earlier.kind.value} {sorted(pair.earlier.lockset)} vs "
              f"thread {pair.later.thread_id} {pair.later.kind.value} "
              f"{sorted(pair.later.lockset)}")
    print("(The online detector reports one access per racy location —")
    print("Definition 1; the O(N²) enumeration is deferred to replay,")
    print("exactly the paper's DejaVu workflow from Section 2.6.)")


def main() -> None:
    part1_deadlocks()
    part2_replay()


if __name__ == "__main__":
    main()
