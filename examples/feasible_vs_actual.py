#!/usr/bin/env python
"""Section 2.2: feasible dataraces vs happened-before detection.

Figure 2, scenario B: the locks ``p`` and ``q`` alias one object.  In
any given run one thread's critical section precedes the other's, and a
happened-before detector concludes T11 is ordered before T21 — no race.
But the opposite acquisition order was possible: the race is *feasible*
and this paper's lockset-based definition reports it in every run.

Run:  python examples/feasible_vs_actual.py
"""

from repro.baselines import HappensBeforeDetector
from repro.detector import RaceDetector
from repro.lang import compile_source
from repro.runtime import RoundRobinPolicy, run_program
from repro.workloads import figure2


def main() -> None:
    source = figure2.source(shared_lock=True)
    print("=== Figure 2, scenario B (p and q alias one lock) ===")

    resolved = compile_source(source)
    lockset_detector = RaceDetector(resolved=resolved)
    run_program(resolved, sink=lockset_detector,
                policy=RoundRobinPolicy(quantum=100))

    resolved = compile_source(source)
    hb_detector = HappensBeforeDetector()
    run_program(resolved, sink=hb_detector,
                policy=RoundRobinPolicy(quantum=100))

    print(f"lockset detector (this paper): "
          f"{lockset_detector.reports.object_count} racy objects")
    for report in lockset_detector.reports.reports:
        print("   ", report.describe())
    hb_fields = sorted({loc.field for loc in hb_detector.racy_locations})
    print(f"happened-before detector:      "
          f"{len(hb_detector.racy_objects)} racy objects "
          f"(fields: {hb_fields or 'none'})")

    print()
    print("In this schedule T1's sync(p) block runs before T2's sync(q)")
    print("block (same lock!), so the HB detector sees T11 → T13 → T20 →")
    print("T21 as ordered and stays silent.  Had T2 won the lock first,")
    print("the accesses would have raced — the lockset detector reports")
    print("this *feasible* race regardless of the observed order, which")
    print("is the paper's precision argument against pure happens-before.")


if __name__ == "__main__":
    main()
