#!/usr/bin/env python
"""A tour of the static datarace analysis (Section 5) on a small program.

Shows every ingredient: may/must points-to, the single-instance
analysis, MustSync over the ICG, MustThread via thread roots, the
escape/thread-specific refinements, and the resulting static datarace
set with per-condition pruning counts.

Run:  python examples/static_analysis_tour.py
"""

from repro.analysis import analyze_static_races, local_node
from repro.lang import compile_source

SOURCE = """
class Main {
  static def main() {
    var shared = new Shared();
    shared.hot = 0;
    shared.cold = 0;
    var lock = new LockObj();
    var a = new Worker(shared, lock);
    var b = new Worker(shared, lock);
    start a;
    start b;
    join a;
    join b;
    print shared.hot + shared.cold;
  }
}

class Shared { field hot; field cold; }
class LockObj { }

class Worker {
  field shared;
  field lock;
  field steps;             // Thread-specific accumulator (Section 5.4).
  def init(shared, lock) {
    this.shared = shared;
    this.lock = lock;
    this.steps = 0;
  }
  def run() {
    var scratch = new Pad();     // Thread-local (escape analysis).
    scratch.v = 42;
    var s = this.shared;
    s.hot = s.hot + scratch.v;   // RACY: no lock.
    sync (this.lock) {
      s.cold = s.cold + 1;       // SAFE: common must-lock.
    }
    this.steps = this.steps + 1; // SAFE: thread-specific field.
  }
}

class Pad { field v; }
"""


def main() -> None:
    print(SOURCE)
    resolved = compile_source(SOURCE)
    result = analyze_static_races(resolved)

    pts = result.points_to
    print("=== Points-to facts ===")
    for reg in ("shared", "lock", "a"):
        objs = pts.may_point_to_register("Main.main", reg)
        print(f"  MayPT(main::{reg}) = {sorted(map(repr, objs))}")

    print("\n=== Single-instance / must points-to ===")
    lock_objs = pts.may_point_to_register("Main.main", "lock")
    must = result.single_instance.must_points_to(lock_objs)
    print(f"  the lock allocation is single-instance: "
          f"MustPT = {sorted(map(repr, must))}")

    print("\n=== MustSync / MustThread ===")
    for site in pts.site_bases.values():
        if site.field_name in ("hot", "cold") and site.method == "Worker.run":
            sync = result.icg.must_sync_at(site.method, site.sync_stack)
            print(f"  {('write' if site.is_write else 'read '):5s} "
                  f".{site.field_name:4s} in Worker.run: "
                  f"MustSync = {sorted(map(repr, sync)) or '∅'}")
    print(f"  MustThread(Main.main) = "
          f"{sorted(map(repr, result.icg.must_thread_of('Main.main')))}")
    print(f"  MustThread(Worker.run) = "
          f"{sorted(map(repr, result.icg.must_thread_of('Worker.run'))) or '∅'}"
          f"  (two worker objects → no unique thread)")

    print("\n=== Escape / thread-specific refinements ===")
    esc = result.escape
    print(f"  thread-local objects: "
          f"{sorted(repr(o) for o in esc.thread_local_objects)}")
    print(f"  safe thread classes: {sorted(esc.safe_thread_classes)}")
    print(f"  thread-specific fields of Worker: "
          f"{sorted(esc.thread_specific_fields.get('Worker', set()))}")

    print("\n=== The static datarace set ===")
    stats = result.stats
    print(f"  sites total:                 {stats.sites_total}")
    print(f"  pairs checked:               {stats.pairs_checked}")
    print(f"  pruned by escape analysis:   {stats.pairs_pruned_escape}")
    print(f"  pruned by MustSameThread:    {stats.pairs_pruned_same_thread}")
    print(f"  pruned by MustCommonSync:    {stats.pairs_pruned_common_sync}")
    print(f"  sites that may race:         {stats.sites_racy}")
    print("\n  surviving sites:")
    for site_id in sorted(result.racy_sites):
        print(f"    {resolved.sites[site_id].descriptor}")

    print("\nWhy do main's init writes and the locked .cold accesses")
    print("survive?  The static phase conservatively ignores start/join")
    print("ordering (the paper's footnote 5): main's lock-free accesses")
    print("pair with the workers', and no static condition separates")
    print("them.  At runtime the ownership model and the S_j join")
    print("pseudo-locks remove exactly these, leaving only .hot:")

    from repro.detector import RaceDetector
    from repro.runtime import run_program
    from repro.instrument import plan_instrumentation

    fresh = compile_source(SOURCE)
    plan = plan_instrumentation(fresh)
    detector = RaceDetector(resolved=fresh)
    run_program(fresh, sink=detector, trace_sites=plan.trace_sites)
    for report in detector.reports.reports:
        print("  *", report.describe())


if __name__ == "__main__":
    main()
