#!/usr/bin/env python
"""Section 6.3: the loop peeling transformation, before and after.

Shows the transformed source of the Figure 3 kernel, then measures the
access-event stream under four instrumentation configurations to expose
what each compile-time optimization buys.

Run:  python examples/loop_peeling_demo.py
"""

from repro.detector import RaceDetector
from repro.instrument import PlannerConfig, plan_instrumentation
from repro.lang import compile_source, render_program
from repro.runtime import run_program
from repro.workloads import figure3

ITERATIONS = 100

CONFIGS = [
    ("Full (peel + weaker-than)", PlannerConfig()),
    ("NoPeeling (weaker-than only)", PlannerConfig(loop_peeling=False)),
    ("NoDominators (no static weaker-than)",
     PlannerConfig(static_weaker=False, loop_peeling=False)),
    ("NoStatic (every site traced)",
     PlannerConfig(static_analysis=False)),
]


def main() -> None:
    source = figure3.source(scale=ITERATIONS)

    print("=== The kernel before optimization ===")
    print(source)

    # Show what peeling does to the AST.
    resolved = compile_source(source)
    plan_instrumentation(resolved, PlannerConfig())
    print("=== After loop peeling (unparsed from the transformed AST) ===")
    kernel = resolved.class_info("Kernel")
    from repro.lang.printer import render_class

    print(render_class(kernel.decl))

    print("\n=== Event stream per configuration "
          f"({ITERATIONS} iterations x 2 threads) ===")
    for label, config in CONFIGS:
        fresh = compile_source(source)
        plan = plan_instrumentation(fresh, config)
        detector = RaceDetector(resolved=fresh)
        run_program(fresh, sink=detector, trace_sites=plan.trace_sites)
        print(f"{label:38s} sites={plan.stats.sites_instrumented:3d} "
              f"events={detector.stats.accesses:6d} "
              f"races={detector.reports.object_count}")

    print("\nWith peeling, the first iteration's trace makes every later")
    print("iteration's trace statically redundant: the kernel emits O(1)")
    print("events per thread instead of O(iterations).")
    print()
    print("Note the races column: with the static optimizations on, each")
    print("thread's single event is absorbed by the ownership model and")
    print("this particular race goes unreported — exactly the weaker-than/")
    print("ownership interaction the paper documents and deliberately")
    print("ignores in Section 7.2 (see tests/integration/"
          "test_postmortem_and_interactions.py).")


if __name__ == "__main__":
    main()
