#!/usr/bin/env python
"""Section 8.3's precision comparison: this detector vs Eraser.

The mtrt statistics idiom: two children update shared statistics under
a common lock ``syncObject``; after joining both, the parent reads the
statistics lock-free.  The join pseudo-locks give the three access
locksets

    child 1: {S1, syncObject}
    child 2: {S2, syncObject}
    parent:  {S1, S2}

which are *mutually intersecting* — every conflicting pair shares a
lock, so no datarace is possible — yet share **no single common lock**,
so Eraser's lockset discipline flags the parent's read.

Run:  python examples/eraser_comparison.py
"""

from repro.baselines import EraserDetector, ObjectRaceDetector
from repro.detector import RaceDetector
from repro.lang import compile_source
from repro.runtime import run_program
from repro.workloads import join_stats


def run_with(sink_factory, source):
    resolved = compile_source(source)
    sink = sink_factory()
    run_program(resolved, sink=sink)
    return sink


def main() -> None:
    source = join_stats.source(scale=6)
    print("=== The program (post-join statistics reads) ===")
    print(source)

    ours = run_with(lambda: RaceDetector(), source)
    eraser = run_with(
        lambda: EraserDetector(join_pseudolocks=True), source
    )
    eraser_plain = run_with(
        lambda: EraserDetector(join_pseudolocks=False), source
    )
    objrace = run_with(ObjectRaceDetector, source)

    print("=== Reports ===")
    print(f"this paper's detector:         {ours.reports.object_count} "
          f"racy objects (expected 0 — locksets pairwise intersect)")
    print(f"Eraser (with S_j modeling):    {eraser.object_count} "
          f"racy objects (the spurious single-common-lock report)")
    for report in eraser.reports:
        print(f"    spurious: {report.object_label}.{report.field}")
    print(f"Eraser (historical, no S_j):   {eraser_plain.object_count} "
          f"racy objects")
    print(f"object-granularity detector:   {objrace.object_count} "
          f"racy objects")

    print("\nEraser requires one lock common to ALL accesses of a")
    print("location; the paper's definition only requires every")
    print("conflicting PAIR to share one — strictly fewer false alarms.")


if __name__ == "__main__":
    main()
