#!/usr/bin/env python
"""Race hunting on generated programs: fuzzer × schedule exploration.

Generates random (but terminating, deadlock-free) MJ programs, hunts
for races under several schedules, and cross-checks three detectors on
each find: this paper's lockset detector, the FullRace oracle, and the
happens-before baseline — a miniature of the differential testing the
property suite runs at scale.

Run:  python examples/fuzz_hunt.py [n_programs] [n_seeds]
"""

import sys

from repro.baselines import HappensBeforeDetector
from repro.detector import RaceDetector, ReferenceDetector
from repro.harness import explore_schedules
from repro.lang import compile_source
from repro.runtime import RandomPolicy, RecordingSink, run_program
from repro.workloads.fuzz import generate_program


def hunt(program_seed: int, n_seeds: int):
    source = generate_program(program_seed, n_workers=3, n_locks=2)
    exploration = explore_schedules(source, seeds=range(n_seeds))
    return source, exploration


def cross_check(source: str, schedule_seed: int):
    """Run all three detectors over one recorded execution."""
    resolved = compile_source(source)
    log = RecordingSink()
    run_program(resolved, sink=log, policy=RandomPolicy(schedule_seed))

    ours = RaceDetector()
    oracle = ReferenceDetector()
    hb = HappensBeforeDetector()
    for sink in (ours, oracle, hb):
        log.replay_into(sink)
    return ours, oracle, hb


def main() -> None:
    n_programs = int(sys.argv[1]) if len(sys.argv) > 1 else 12
    n_seeds = int(sys.argv[2]) if len(sys.argv) > 2 else 6

    racy_programs = 0
    schedule_dependent = 0
    for program_seed in range(n_programs):
        source, exploration = hunt(program_seed, n_seeds)
        if not exploration.racy_objects:
            continue
        racy_programs += 1
        dependent = exploration.schedule_dependent_objects
        if dependent:
            schedule_dependent += 1
        print(f"program #{program_seed}: "
              f"{len(exploration.racy_objects)} racy object(s), "
              f"{len(dependent)} schedule-dependent")

        ours, oracle, hb = cross_check(source, schedule_seed=0)
        assert oracle.racy_locations <= ours.reports.racy_locations, (
            "Definition 1 violated!"
        )
        assert hb.racy_locations <= oracle.racy_locations, (
            "an HB race that is not a lockset race?!"
        )
        print(f"   seed 0 cross-check: ours={len(ours.reports.racy_locations)} "
              f"oracle={len(oracle.racy_locations)} "
              f"happens-before={len(hb.racy_locations)} racy locations "
              f"(ours ⊇ oracle ⊇ HB ✓)")

    print(f"\n{racy_programs}/{n_programs} generated programs were racy; "
          f"{schedule_dependent} had schedule-dependent findings.")
    print("Every find passed the inclusion checks: the lockset detector")
    print("covers the FullRace oracle (Definition 1), and the oracle")
    print("covers the happens-before baseline (Section 2.2's gap is the")
    print("feasible races only the lockset definition reports).")


if __name__ == "__main__":
    main()
