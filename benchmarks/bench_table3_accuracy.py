"""Table 3 — number of objects with dataraces reported.

Benchmarks the detection run under each accuracy variant and *asserts*
the table's shape while recording the counts in ``extra_info``:

* ``Full`` matches each workload's documented race inventory exactly
  (mtrt 2, tsp 5, sor2 4, elevator 0, hedc 5 — the paper's column);
* ``FieldsMerged ≥ Full`` (object granularity adds spurious reports);
* ``NoOwnership > Full`` (init-then-handoff floods the output).
"""

import pytest

from repro.harness import (
    CONFIG_FIELDS_MERGED,
    CONFIG_FULL,
    CONFIG_NO_OWNERSHIP,
)
from repro.workloads import BENCHMARKS

from conftest import prepare

VARIANTS = {
    "Full": CONFIG_FULL,
    "FieldsMerged": CONFIG_FIELDS_MERGED,
    "NoOwnership": CONFIG_NO_OWNERSHIP,
}


@pytest.mark.parametrize("workload", sorted(BENCHMARKS))
@pytest.mark.parametrize("variant", list(VARIANTS))
def test_table3(benchmark, workload, variant):
    spec = BENCHMARKS[workload]
    runner = prepare(spec, VARIANTS[variant])
    benchmark.group = f"table3:{workload}"
    result, detector = benchmark(runner)
    count = detector.reports.object_count
    benchmark.extra_info["racy_objects"] = count
    benchmark.extra_info["paper_row"] = spec.paper_table3

    full_runner = prepare(spec, CONFIG_FULL)
    _, full_detector = full_runner()
    full_count = full_detector.reports.object_count

    if variant == "Full":
        assert count == spec.expected_full_objects
    elif variant == "FieldsMerged":
        assert count >= full_count
    else:  # NoOwnership
        assert count > full_count
