"""Shared infrastructure for the committed-JSON benchmark runners.

``bench_sharded.py`` and ``bench_compile.py`` grew identical copies of
the same runner scaffolding — best-of-N timing, the ``machine``
metadata block, and the ``--quick``/``--repeats``/``--output`` argument
set — and they had already drifted in small ways.  This module is the
single copy: every ``BENCH_*.json`` writer builds on it so the payload
shape (``quick``, ``repeats``, ``machine: {python, platform, cpus}``)
stays uniform across benchmarks, which the CI validator and the report
writer both rely on.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))


def machine_metadata() -> dict:
    """The ``machine`` block every committed BENCH_*.json carries."""
    return {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpus": os.cpu_count() or 1,
    }


def best_of(repeats: int, run) -> tuple[float, object]:
    """Best-of-``repeats`` wall time of ``run()``; returns (seconds,
    the payload from the fastest round)."""
    best = None
    payload = None
    for _ in range(repeats):
        started = time.perf_counter()
        value = run()
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
            payload = value
    return best, payload


def runner_parser(description: str, default_output: str) -> argparse.ArgumentParser:
    """The common benchmark-runner CLI: ``--quick`` (smoke scales, print
    instead of write), ``--repeats N`` (best-of-N), ``--output PATH``."""
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke scales; print the table but do not write the JSON",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="best-of-N timing (default 3)"
    )
    parser.add_argument(
        "--output",
        default=str(ROOT / default_output),
        help=f"output path (default: {default_output} at the repo root)",
    )
    return parser


def run_benchmark_main(parser: argparse.ArgumentParser, generate, argv=None) -> int:
    """Parse, validate, run ``generate(quick=..., repeats=...)``, and
    print (``--quick``) or write the JSON payload."""
    options = parser.parse_args(argv)
    if options.repeats < 1:
        parser.error("--repeats must be at least 1")
    payload = generate(quick=options.quick, repeats=options.repeats)
    text = json.dumps(payload, indent=2)
    if options.quick:
        print(text)
    else:
        Path(options.output).write_text(text + "\n")
        print(f"[bench] wrote {options.output}")
    return 0
