"""Shared benchmark helpers.

Each benchmark compiles and plans *outside* the timed region (the paper
measures the instrumented executable's runtime, not compile time) and
times one full execution: interpretation plus, where configured, the
attached detector.

Workload scales are kept modest so the suite autotunes quickly; the
structural claims (who wins, by what factor) are scale-stable.
"""

from __future__ import annotations

import pytest

from repro.detector import RaceDetector
from repro.instrument import plan_instrumentation
from repro.lang import compile_source
from repro.runtime import run_program

#: Scales used by the benchmark suite (smaller than the defaults).
BENCH_SCALES = {
    "mtrt2": 6,
    "tsp2": 6,
    "sor2": 6,
    "elevator2": 10,
    "hedc2": 4,
    "figure3": 100,
    "join_stats": 10,
    "figure2": 0,
}


def prepare(spec, configuration, scale=None):
    """Compile + plan once; return a zero-argument runner to benchmark."""
    source = spec.build(scale if scale is not None else BENCH_SCALES.get(spec.name))
    resolved = compile_source(source, filename=spec.name)
    trace_sites: set | None = set()
    if configuration.planner is not None:
        plan = plan_instrumentation(resolved, configuration.planner)
        trace_sites = plan.trace_sites

    detector_config = configuration.detector

    def run():
        detector = (
            RaceDetector(config=detector_config, resolved=resolved)
            if detector_config is not None
            else None
        )
        result = run_program(resolved, sink=detector, trace_sites=trace_sites)
        return result, detector

    return run
