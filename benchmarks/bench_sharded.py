"""The tentpole before/after benchmarks: hot-path event interning and
sharded post-mortem detection.

Two measurement families, each comparing the seed pipeline's event
representation ("before") against the interned hot path ("after"):

* **on-the-fly** — one full instrumented execution with the detector
  attached.  The legacy arm routes every access through the seed's
  spine: a per-event label f-string, a fresh :class:`MemoryLocation`,
  a frozen :class:`AccessEvent`, and the seed's ``on_access`` body
  (fresh-key dict probes, tuple-returning ownership admission, split
  cache lookup+insert).  The interned arm is the current pipeline:
  scalar ``on_access_parts`` end to end, canonical keys, fused cache
  transaction, no event allocation off the race path.
* **post-mortem** — detection over a pre-recorded log.  The serial
  baseline replays materialized event objects through the seed path
  (the seed's ``RecordingSink`` stored event objects); the sharded arm
  partitions the tuple-encoded log and runs independent detectors per
  shard (``repro.detector.sharded``), merged deterministically.

Running ``PYTHONPATH=src python benchmarks/bench_sharded.py`` writes
``BENCH_hotpath.json`` at the repo root with both families at the bench
scales; ``--quick`` uses smoke scales and skips the JSON (CI).  The
pytest-benchmark tests below cover the same four arms at smoke scale.

Both arms of every comparison are asserted to report the *same races*
before their timings are accepted.
"""

from __future__ import annotations

from benchlib import best_of, machine_metadata, run_benchmark_main, runner_parser

from repro.detector import (  # noqa: E402
    RaceDetector,
    canonical_report_order,
    detect_sharded,
)
from repro.lang import compile_source  # noqa: E402
from repro.runtime import (  # noqa: E402
    AccessEvent,
    EventSink,
    MemoryLocation,
    ObjectKind,
    RecordingSink,
    run_program,
)
from repro.workloads import ALL_WORKLOADS  # noqa: E402

#: Bench scales for the committed before/after numbers.
BENCH_SCALES = {"tsp2": 16, "mtrt2": 16, "sor2": 24}
#: Smoke scales for --quick and the pytest-benchmark tests.
QUICK_SCALES = {"tsp2": 6, "mtrt2": 6, "sor2": 8}

POST_MORTEM_SHARDS = 4


# ----------------------------------------------------------------------
# The "before" arms: the seed's event representation, rebuilt from the
# current building blocks so results stay comparable.


class SeedPathDetector(RaceDetector):
    """A detector whose per-event work matches the seed pipeline.

    ``on_access`` is the seed's body verbatim: the location key is the
    event's own (fresh) ``MemoryLocation``, ownership admission goes
    through the tuple-returning method call, and the cache transaction
    is a split lookup + insert (two index computations per miss).
    Reports and counters are identical to the interned path — only the
    per-event cost differs.
    """

    def on_access(self, event: AccessEvent) -> None:
        self.stats.accesses += 1
        location = event.location
        if self._fields_merged and event.object_kind is not ObjectKind.CLASS:
            key = location.object_uid
        else:
            key = location
        thread_id = event.thread_id

        if self.ownership is not None:
            admit, transitioned = self.ownership.admit(key, thread_id)
            if not admit:
                self.stats.owned_filtered += 1
                return
            if transitioned and self.cache is not None:
                self.cache.on_location_shared(key)

        if self.cache is not None:
            if self.cache.lookup(thread_id, key, event.kind):
                self.stats.cache_hits += 1
                return
            self.cache.insert(
                thread_id,
                key,
                event.kind,
                anchor_lock=self.locks.last_real_lock(thread_id),
            )

        self._detect_parts(
            key,
            location.object_uid,
            location.field,
            thread_id,
            event.kind,
            event.site_id,
            event.object_kind,
            event.object_label,
        )


class SeedEventSpine(EventSink):
    """Adapter reproducing the seed's interpreter→detector spine.

    The seed's ``_emit_access`` built a label f-string, a fresh
    ``MemoryLocation`` and a frozen ``AccessEvent`` for every traced
    access, then called ``sink.on_access(event)``.  The current
    interpreter emits scalars; this sink re-materializes the seed's
    per-event objects so the legacy arm pays the same allocation and
    formatting costs the seed paid.
    """

    def __init__(self, detector: RaceDetector):
        self.detector = detector

    def on_access_parts(
        self, object_uid, field, thread_id, kind, site_id, object_kind, object_label
    ) -> None:
        if object_kind is ObjectKind.ARRAY:
            label = f"array#{object_uid}"
        elif object_kind is ObjectKind.CLASS:
            label = object_label
        else:
            label = f"{object_label.split('#')[0]}#{object_uid}"
        self.detector.on_access(
            AccessEvent(
                location=MemoryLocation(object_uid, field),
                thread_id=thread_id,
                kind=kind,
                site_id=site_id,
                object_kind=object_kind,
                object_label=label,
            )
        )

    def on_monitor_enter(self, thread_id, lock_uid, reentrant) -> None:
        self.detector.on_monitor_enter(thread_id, lock_uid, reentrant)

    def on_monitor_exit(self, thread_id, lock_uid, reentrant) -> None:
        self.detector.on_monitor_exit(thread_id, lock_uid, reentrant)

    def on_thread_start(self, parent_id, child_id) -> None:
        self.detector.on_thread_start(parent_id, child_id)

    def on_thread_end(self, thread_id) -> None:
        self.detector.on_thread_end(thread_id)

    def on_thread_join(self, joiner_id, joined_id) -> None:
        self.detector.on_thread_join(joiner_id, joined_id)

    def on_run_end(self) -> None:
        self.detector.on_run_end()


def replay_event_objects(log: RecordingSink, detector: RaceDetector) -> None:
    """Serial post-mortem replay in the seed's representation: every
    access becomes a fresh event object delivered via ``on_access``."""
    access = RecordingSink.ACCESS
    enter = RecordingSink.ENTER
    exit_ = RecordingSink.EXIT
    start = RecordingSink.START
    end = RecordingSink.END
    for entry in log.log:
        tag = entry[0]
        if tag is access:
            detector.on_access(
                AccessEvent(
                    location=MemoryLocation(entry[1], entry[2]),
                    thread_id=entry[3],
                    kind=entry[4],
                    site_id=entry[5],
                    object_kind=entry[6],
                    object_label=entry[7],
                )
            )
        elif tag is enter:
            detector.on_monitor_enter(entry[1], entry[2], entry[3])
        elif tag is exit_:
            detector.on_monitor_exit(entry[1], entry[2], entry[3])
        elif tag is start:
            detector.on_thread_start(entry[1], entry[2])
        elif tag is end:
            detector.on_thread_end(entry[1])
        else:
            detector.on_thread_join(entry[1], entry[2])
    detector.on_run_end()


# ----------------------------------------------------------------------
# Measurement harness.


def _compile(name: str, scale: int):
    """Compile at ``scale`` for *full* dynamic detection.

    ``trace_sites=None`` traces every access site — the measurement
    targets the event spine, so the static planner (which would filter
    most of sor2's accesses away) is deliberately not applied.
    """
    spec = ALL_WORKLOADS[name]
    resolved = compile_source(spec.build(scale), filename=name)
    return resolved, None


def _report_keys(detector_or_result):
    reports = detector_or_result.reports.reports
    return [
        (str(report.key), report.field, report.object_label)
        for report in canonical_report_order(reports)
    ]


def bench_on_the_fly(name: str, scale: int, repeats: int) -> dict:
    """Legacy event-object spine vs interned scalar spine, full run."""
    resolved, trace_sites = _compile(name, scale)

    def legacy():
        detector = SeedPathDetector(resolved=resolved)
        run_program(
            resolved, sink=SeedEventSpine(detector), trace_sites=trace_sites
        )
        return detector

    def interned():
        detector = RaceDetector(resolved=resolved)
        run_program(resolved, sink=detector, trace_sites=trace_sites)
        return detector

    legacy_s, legacy_detector = best_of(repeats, legacy)
    interned_s, interned_detector = best_of(repeats, interned)
    assert _report_keys(legacy_detector) == _report_keys(interned_detector), (
        f"{name}: legacy and interned arms disagree on races"
    )
    return {
        "workload": name,
        "scale": scale,
        "accesses": interned_detector.stats.accesses,
        "races": interned_detector.stats.races_reported,
        "legacy_seconds": round(legacy_s, 4),
        "interned_seconds": round(interned_s, 4),
        "speedup": round(legacy_s / interned_s, 3),
    }


def bench_post_mortem(name: str, scale: int, shards: int, repeats: int) -> dict:
    """Serial (seed-representation) vs sharded post-mortem on one log."""
    resolved, trace_sites = _compile(name, scale)
    log = RecordingSink()
    run_program(resolved, sink=log, trace_sites=trace_sites)

    def serial():
        detector = SeedPathDetector(resolved=resolved)
        replay_event_objects(log, detector)
        return detector

    def sharded():
        return detect_sharded(log, shards, resolved=resolved, executor="serial")

    serial_s, serial_detector = best_of(repeats, serial)
    sharded_s, sharded_result = best_of(repeats, sharded)
    assert _report_keys(serial_detector) == _report_keys(sharded_result), (
        f"{name}: serial and sharded post-mortem disagree on races"
    )
    assert sharded_result.monitored_locations == serial_detector.monitored_locations
    assert sharded_result.trie_nodes == serial_detector.total_trie_nodes()
    return {
        "workload": name,
        "scale": scale,
        "log_events": len(log.log),
        "access_events": log.access_count,
        "shards": shards,
        "executor": "serial",
        "races": sharded_result.races,
        "serial_seconds": round(serial_s, 4),
        "sharded_seconds": round(sharded_s, 4),
        "speedup": round(serial_s / sharded_s, 3),
    }


def generate(quick: bool = False, repeats: int = 3) -> dict:
    scales = QUICK_SCALES if quick else BENCH_SCALES
    on_the_fly = []
    post_mortem = []
    for name, scale in scales.items():
        print(f"[bench] on-the-fly {name}@{scale} ...", flush=True)
        row = bench_on_the_fly(name, scale, repeats)
        print(
            f"[bench]   legacy={row['legacy_seconds']}s "
            f"interned={row['interned_seconds']}s "
            f"speedup={row['speedup']}x",
            flush=True,
        )
        on_the_fly.append(row)
        print(f"[bench] post-mortem {name}@{scale} ...", flush=True)
        row = bench_post_mortem(name, scale, POST_MORTEM_SHARDS, repeats)
        print(
            f"[bench]   serial={row['serial_seconds']}s "
            f"sharded={row['sharded_seconds']}s "
            f"speedup={row['speedup']}x",
            flush=True,
        )
        post_mortem.append(row)
    return {
        "benchmark": "hot-path interning + sharded post-mortem",
        "baseline": (
            "seed event spine: per-event label f-string, fresh "
            "MemoryLocation + AccessEvent, seed on_access body "
            "(fresh-key probes, split cache lookup/insert)"
        ),
        "contender": (
            "interned hot path: scalar on_access_parts, canonical "
            "location keys and locksets, fused cache transaction; "
            "post-mortem partitioned into independent per-shard "
            "detectors over the tuple-encoded log"
        ),
        "quick": quick,
        "repeats": repeats,
        "machine": machine_metadata(),
        "on_the_fly": on_the_fly,
        "post_mortem": post_mortem,
    }


# ----------------------------------------------------------------------
# pytest-benchmark coverage of the same four arms at smoke scale.

import pytest  # noqa: E402


@pytest.fixture(scope="module")
def tsp_quick():
    resolved, trace_sites = _compile("tsp2", QUICK_SCALES["tsp2"])
    log = RecordingSink()
    run_program(resolved, sink=log, trace_sites=trace_sites)
    return resolved, trace_sites, log


class TestOnTheFlySpine:
    def test_legacy_event_spine(self, benchmark, tsp_quick):
        resolved, trace_sites, _ = tsp_quick
        benchmark.group = "sharded:on-the-fly"

        def run():
            detector = SeedPathDetector(resolved=resolved)
            run_program(
                resolved, sink=SeedEventSpine(detector), trace_sites=trace_sites
            )
            return detector

        detector = benchmark(run)
        assert detector.stats.accesses > 0

    def test_interned_parts_spine(self, benchmark, tsp_quick):
        resolved, trace_sites, _ = tsp_quick
        benchmark.group = "sharded:on-the-fly"

        def run():
            detector = RaceDetector(resolved=resolved)
            run_program(resolved, sink=detector, trace_sites=trace_sites)
            return detector

        detector = benchmark(run)
        assert detector.stats.accesses > 0


class TestPostMortem:
    def test_serial_event_object_replay(self, benchmark, tsp_quick):
        resolved, _, log = tsp_quick
        benchmark.group = "sharded:post-mortem"

        def run():
            detector = SeedPathDetector(resolved=resolved)
            replay_event_objects(log, detector)
            return detector

        detector = benchmark(run)
        assert detector.stats.accesses == log.access_count

    def test_sharded_tuple_replay(self, benchmark, tsp_quick):
        resolved, _, log = tsp_quick
        benchmark.group = "sharded:post-mortem"

        def run():
            return detect_sharded(
                log, POST_MORTEM_SHARDS, resolved=resolved, executor="serial"
            )

        result = benchmark(run)
        assert result.stats.accesses == log.access_count


# ----------------------------------------------------------------------
# Script entry point: (re)generate BENCH_hotpath.json.


def main(argv=None) -> int:
    parser = runner_parser(
        "Measure the hot-path interning + sharding speedups.",
        "BENCH_hotpath.json",
    )
    return run_benchmark_main(parser, generate, argv)


if __name__ == "__main__":
    raise SystemExit(main())
