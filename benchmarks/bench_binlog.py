"""The binary event-log benchmarks: streaming record throughput and
mmap-backed sharded detection at 1M/10M events, vs the tuple baseline.

Four measurement families over deterministic synthetic traces
(``repro.runtime.synthlog`` — lock-disciplined plus thread-local access
mix with a bounded racy slice, shaped like a disciplined concurrent
program):

* **record** — stream N events through :class:`BinaryLogSink`, once
  uncompressed (v1) and once with per-block deflate (MJBL v2); wall
  time, events/s, on-disk bytes/event.  The sink holds no per-event
  state, so recording is flat-memory at any N.
* **detect-binary** — 4-shard detection over the mapped v1 file via
  the columnar :meth:`BinaryLogReader.replay_into` batch decoder; each
  shard unpacks only its own access events plus the replicated sync
  stream; the tuple log is never materialized.
* **detect-binary-v2** — the same detection over the v2-compressed
  file: blocks inflate on the fly, one at a time.
* **detect-tuple** — the baseline: materialize the same N events as
  schema-v3 tuples in memory, then run the identical sharded detection
  over the list.

Every arm runs in a fresh subprocess so ``resource.getrusage``'s
``ru_maxrss`` is a clean per-arm peak-RSS reading; the parent asserts
all three detection arms report byte-identical races (same SHA-256
over the ordered race keys) before accepting any timing.  The
committed claim: at 10M events the mapped path's peak RSS stays
bounded (detector state + touched file pages) while the tuple
baseline's grows with the trace — the record-then-analyze mode of the
paper's offline detection at trace sizes the in-memory log cannot hold.

Running ``PYTHONPATH=src python benchmarks/bench_binlog.py`` writes
``BENCH_binlog.json`` at the repo root with 1M and 10M rows;
``--tier100m`` adds the 100M-event nightly row (v2-compressed record
under a writer peak-RSS ceiling, mapped detection, parity checked by
re-detecting at a different shard count — the tuple baseline cannot
hold 100M events).  ``--quick`` measures 100k events and skips the
JSON (CI).  The pytest-benchmark tests below cover record/detect arms
at smoke scale in-process.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import resource
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from benchlib import ROOT, machine_metadata, runner_parser

from repro.detector import detect_sharded  # noqa: E402
from repro.runtime.binlog import BinaryLogReader, BinaryLogSink  # noqa: E402
from repro.runtime.synthlog import synthesize_into  # noqa: E402

#: Event counts for the committed numbers and for --quick (CI smoke).
BENCH_EVENTS = (1_000_000, 10_000_000)
QUICK_EVENTS = (100_000,)
TIER_100M_EVENTS = 100_000_000

SHARDS = 4

#: Deflate level for the v2 arms (the CLI's ``--compress`` default).
COMPRESS_LEVEL = 6

#: The 100M-tier writer must stay flat-memory: one block buffer, the
#: string table, zlib state — not the trace.  ru_maxrss ceiling, KB.
WRITER_RSS_CEILING_KB = 192 * 1024


# ----------------------------------------------------------------------
# Worker arms.  Each runs in a fresh subprocess (one arm per process)
# and prints a single JSON line: seconds, peak RSS, race evidence.


def _peak_rss_kb() -> int:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def _report_evidence(outcome) -> dict:
    reports = outcome.reports.reports
    digest = hashlib.sha256(
        "\n".join(str(report.key) for report in reports).encode()
    ).hexdigest()
    return {"races": len(reports), "report_hash": digest}


def _worker_record(path: str, events: int, compress, shards: int) -> dict:
    sink = BinaryLogSink(path, compress=compress)
    started = time.perf_counter()
    count = synthesize_into(sink, events)
    sink.close()
    elapsed = time.perf_counter() - started
    return {
        "seconds": elapsed,
        "events_per_second": count / elapsed,
        "file_bytes": os.path.getsize(path),
        "peak_rss_kb": _peak_rss_kb(),
    }


def _worker_detect_binary(path: str, events: int, compress, shards: int) -> dict:
    with BinaryLogReader(path) as reader:
        started = time.perf_counter()
        outcome = detect_sharded(
            reader, shards, executor="serial", validate=False
        )
        elapsed = time.perf_counter() - started
    return {
        "seconds": elapsed,
        "peak_rss_kb": _peak_rss_kb(),
        **_report_evidence(outcome),
    }


def _worker_detect_tuple(path: str, events: int, compress, shards: int) -> dict:
    # The baseline pays what the in-memory format always pays: the whole
    # trace resident as Python tuples before detection can start.
    with BinaryLogReader(path) as reader:
        entries = list(reader.entries())
    started = time.perf_counter()
    outcome = detect_sharded(
        entries, shards, executor="serial", validate=False
    )
    elapsed = time.perf_counter() - started
    return {
        "seconds": elapsed,
        "peak_rss_kb": _peak_rss_kb(),
        **_report_evidence(outcome),
    }


_WORKERS = {
    "record": _worker_record,
    "detect-binary": _worker_detect_binary,
    "detect-tuple": _worker_detect_tuple,
}


def _spawn(
    mode: str, path: Path, events: int,
    compress: int = None, shards: int = SHARDS,
) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    argv = [
        sys.executable,
        str(Path(__file__).resolve()),
        "--worker", mode,
        "--path", str(path),
        "--events", str(events),
        "--shards", str(shards),
    ]
    if compress is not None:
        argv += ["--compress", str(compress)]
    proc = subprocess.run(
        argv, env=env, capture_output=True, text=True, check=True
    )
    return json.loads(proc.stdout.splitlines()[-1])


def _record_arm(path: Path, events: int, compress=None) -> dict:
    flavor = "v2 deflate" if compress is not None else "v1"
    print(f"[bench] record {events:,} events ({flavor}) ...", flush=True)
    record = _spawn("record", path, events, compress=compress)
    print(
        f"[bench]   {record['seconds']:.2f}s = "
        f"{record['events_per_second']:,.0f} ev/s, "
        f"{record['file_bytes'] / events:.1f} B/event",
        flush=True,
    )
    return record


def _detect_arm(label: str, mode: str, path: Path, events: int,
                repeats: int, shards: int = SHARDS) -> dict:
    print(f"[bench] {label} {events:,} x{shards} shards ...", flush=True)
    best = None
    for _ in range(repeats):
        result = _spawn(mode, path, events, shards=shards)
        if best is None or result["seconds"] < best["seconds"]:
            best = result
    print(
        f"[bench]   {best['seconds']:.2f}s, "
        f"peak RSS {best['peak_rss_kb'] / 1024:.0f} MB, "
        f"races={best['races']}",
        flush=True,
    )
    return best


def bench_events(events: int, repeats: int) -> dict:
    """One row: record v1 + v2 once each, then the three detection
    arms best-of-N, each arm in its own subprocess for a clean
    peak-RSS reading.  Timing rows are accepted only after the
    three-way parity gate: mapped v1, mapped v2, and the tuple
    baseline must hash to identical race reports."""
    with tempfile.TemporaryDirectory(prefix="binlog-bench-") as tmp:
        path = Path(tmp) / f"synthetic-{events}.mjbl"
        v2_path = Path(tmp) / f"synthetic-{events}-v2.mjbl"
        record = _record_arm(path, events)
        record_v2 = _record_arm(v2_path, events, compress=COMPRESS_LEVEL)
        arms = {
            "detect-binary": _detect_arm(
                "detect-binary", "detect-binary", path, events, repeats
            ),
            "detect-binary-v2": _detect_arm(
                "detect-binary-v2", "detect-binary", v2_path, events, repeats
            ),
            "detect-tuple": _detect_arm(
                "detect-tuple", "detect-tuple", path, events, repeats
            ),
        }
    binary = arms["detect-binary"]
    binary_v2 = arms["detect-binary-v2"]
    tuples = arms["detect-tuple"]
    hashes = {arm["report_hash"] for arm in arms.values()}
    assert len(hashes) == 1, (
        f"{events}: detection arms disagree on races "
        f"({ {name: arm['report_hash'][:12] for name, arm in arms.items()} })"
    )
    assert binary["races"] == binary_v2["races"] == tuples["races"]
    return {
        "events": events,
        "shards": SHARDS,
        "executor": "serial",
        "races": binary["races"],
        "record_seconds": round(record["seconds"], 3),
        "record_events_per_second": round(record["events_per_second"]),
        "record_peak_rss_kb": record["peak_rss_kb"],
        "file_bytes": record["file_bytes"],
        "bytes_per_event": round(record["file_bytes"] / events, 2),
        "record_v2_seconds": round(record_v2["seconds"], 3),
        "record_v2_events_per_second": round(record_v2["events_per_second"]),
        "record_v2_peak_rss_kb": record_v2["peak_rss_kb"],
        "file_bytes_v2": record_v2["file_bytes"],
        "bytes_per_event_v2": round(record_v2["file_bytes"] / events, 2),
        "compression_ratio": round(
            record["file_bytes"] / record_v2["file_bytes"], 3
        ),
        "binary_detect_seconds": round(binary["seconds"], 3),
        "binary_peak_rss_kb": binary["peak_rss_kb"],
        "binary_v2_detect_seconds": round(binary_v2["seconds"], 3),
        "binary_v2_peak_rss_kb": binary_v2["peak_rss_kb"],
        "tuple_detect_seconds": round(tuples["seconds"], 3),
        "tuple_peak_rss_kb": tuples["peak_rss_kb"],
        "rss_ratio": round(tuples["peak_rss_kb"] / binary["peak_rss_kb"], 3),
    }


def bench_tier_100m(repeats: int) -> dict:
    """The nightly 100M-event row: v2-compressed record under the
    writer RSS ceiling, mapped detection, parity by re-detecting the
    same file at a different shard count (the tuple baseline cannot
    hold 100M events in memory, so the cross-check is shard-count
    invariance of the report hash)."""
    events = TIER_100M_EVENTS
    with tempfile.TemporaryDirectory(prefix="binlog-bench-100m-") as tmp:
        path = Path(tmp) / "synthetic-100m-v2.mjbl"
        record = _record_arm(path, events, compress=COMPRESS_LEVEL)
        assert record["peak_rss_kb"] <= WRITER_RSS_CEILING_KB, (
            f"100M-tier writer peaked at {record['peak_rss_kb']} KB — "
            f"over the {WRITER_RSS_CEILING_KB} KB flat-memory ceiling"
        )
        four = _detect_arm(
            "detect-binary-v2", "detect-binary", path, events, repeats
        )
        two = _detect_arm(
            "detect-binary-v2 (parity)", "detect-binary", path, events,
            1, shards=2,
        )
    assert four["report_hash"] == two["report_hash"], (
        "100M tier: 4-shard and 2-shard detection disagree on races"
    )
    assert four["races"] == two["races"]
    return {
        "events": events,
        "tier": "100m",
        "shards": SHARDS,
        "executor": "serial",
        "races": four["races"],
        "record_v2_seconds": round(record["seconds"], 3),
        "record_v2_events_per_second": round(record["events_per_second"]),
        "record_v2_peak_rss_kb": record["peak_rss_kb"],
        "writer_rss_ceiling_kb": WRITER_RSS_CEILING_KB,
        "file_bytes_v2": record["file_bytes"],
        "bytes_per_event_v2": round(record["file_bytes"] / events, 2),
        "binary_v2_detect_seconds": round(four["seconds"], 3),
        "binary_v2_peak_rss_kb": four["peak_rss_kb"],
        "parity_shards": 2,
        "parity_detect_seconds": round(two["seconds"], 3),
    }


def generate(quick: bool = False, repeats: int = 3, tier100m: bool = False) -> dict:
    rows = []
    for events in (QUICK_EVENTS if quick else BENCH_EVENTS):
        row = bench_events(events, repeats)
        if not quick and events >= 1_000_000:
            assert row["tuple_peak_rss_kb"] > row["binary_peak_rss_kb"], (
                f"{events}: mapped detection should peak below the "
                f"tuple baseline ({row})"
            )
        rows.append(row)
    if tier100m:
        rows.append(bench_tier_100m(repeats=1))
    return {
        "benchmark": "binary event log: streaming record + mmap-sharded detect",
        "baseline": (
            "tuple log resident in memory: every event a Python tuple, "
            "the whole trace materialized before sharded detection"
        ),
        "contender": (
            "MJBL binary log (v1 raw and v2 per-block deflate): "
            "fixed-width struct records streamed to disk with bounded "
            "writer memory; 4-shard detection over the mapped file "
            "batch-decodes each shard's own accesses plus the "
            "replicated sync stream via the columnar replay_into "
            "path, skipping non-owned blocks via the uid-partition "
            "index"
        ),
        "trace": (
            "synthlog synthetic stream (seed 2002): lock-disciplined + "
            "thread-local access mix, bounded racy slice, all eight "
            "schema-v3 event kinds"
        ),
        "quick": quick,
        "repeats": repeats,
        "machine": machine_metadata(),
        "rows": rows,
    }


# ----------------------------------------------------------------------
# pytest-benchmark coverage at smoke scale, in-process.

import pytest  # noqa: E402

SMOKE_EVENTS = 50_000


@pytest.fixture(scope="module")
def smoke_log(tmp_path_factory):
    path = tmp_path_factory.mktemp("binlog-bench") / "smoke.mjbl"
    sink = BinaryLogSink(path)
    synthesize_into(sink, SMOKE_EVENTS)
    return path


@pytest.fixture(scope="module")
def smoke_log_v2(tmp_path_factory):
    path = tmp_path_factory.mktemp("binlog-bench") / "smoke_v2.mjbl"
    sink = BinaryLogSink(path, compress=COMPRESS_LEVEL)
    synthesize_into(sink, SMOKE_EVENTS)
    return path


class TestRecord:
    def test_streaming_binary_record(self, benchmark, tmp_path):
        benchmark.group = "binlog:record"
        path = tmp_path / "bench.mjbl"

        def run():
            sink = BinaryLogSink(path)
            return synthesize_into(sink, SMOKE_EVENTS)

        count = benchmark(run)
        assert count == SMOKE_EVENTS


class TestDetect:
    def test_mapped_binary_sharded(self, benchmark, smoke_log):
        benchmark.group = "binlog:detect"
        with BinaryLogReader(smoke_log) as reader:
            outcome = benchmark(
                lambda: detect_sharded(
                    reader, SHARDS, executor="serial", validate=False
                )
            )
        assert outcome.stats.accesses > 0

    def test_mapped_compressed_sharded(self, benchmark, smoke_log_v2):
        benchmark.group = "binlog:detect"
        with BinaryLogReader(smoke_log_v2) as reader:
            outcome = benchmark(
                lambda: detect_sharded(
                    reader, SHARDS, executor="serial", validate=False
                )
            )
        assert outcome.stats.accesses > 0

    def test_tuple_baseline_sharded(self, benchmark, smoke_log):
        benchmark.group = "binlog:detect"
        with BinaryLogReader(smoke_log) as reader:
            entries = list(reader.entries())
        outcome = benchmark(
            lambda: detect_sharded(
                entries, SHARDS, executor="serial", validate=False
            )
        )
        assert outcome.stats.accesses > 0

    def test_arms_report_identical_races(self, smoke_log, smoke_log_v2):
        # The three-way parity gate at smoke scale: mapped v1, mapped
        # v2-compressed, and the tuple baseline hash identically.
        with BinaryLogReader(smoke_log) as reader:
            entries = list(reader.entries())
            mapped = detect_sharded(
                reader, SHARDS, executor="serial", validate=False
            )
        with BinaryLogReader(smoke_log_v2) as reader:
            mapped_v2 = detect_sharded(
                reader, SHARDS, executor="serial", validate=False
            )
        baseline = detect_sharded(
            entries, SHARDS, executor="serial", validate=False
        )
        assert (
            _report_evidence(mapped)
            == _report_evidence(mapped_v2)
            == _report_evidence(baseline)
        )


# ----------------------------------------------------------------------
# Script entry point: worker arms + BENCH_binlog.json generation.


def main(argv=None) -> int:
    parser = runner_parser(
        "Measure binary-log record throughput and mmap-sharded "
        "detection vs the tuple baseline.",
        "BENCH_binlog.json",
    )
    parser.add_argument(
        "--tier100m",
        action="store_true",
        help="append the 100M-event nightly row (v2-compressed record "
        "under the writer RSS ceiling + mapped detection)",
    )
    parser.add_argument("--worker", choices=sorted(_WORKERS), help=argparse.SUPPRESS)
    parser.add_argument("--path", help=argparse.SUPPRESS)
    parser.add_argument("--events", type=int, help=argparse.SUPPRESS)
    parser.add_argument("--compress", type=int, default=None, help=argparse.SUPPRESS)
    parser.add_argument("--shards", type=int, default=SHARDS, help=argparse.SUPPRESS)
    options = parser.parse_args(argv)
    if options.worker:
        print(json.dumps(_WORKERS[options.worker](
            options.path, options.events, options.compress, options.shards
        )))
        return 0
    if options.repeats < 1:
        parser.error("--repeats must be at least 1")
    payload = generate(
        quick=options.quick, repeats=options.repeats, tier100m=options.tier100m
    )
    text = json.dumps(payload, indent=2)
    if options.quick:
        print(text)
    else:
        Path(options.output).write_text(text + "\n")
        print(f"[bench] wrote {options.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
