"""The binary event-log benchmarks: streaming record throughput and
mmap-backed sharded detection at 1M/10M events, vs the tuple baseline.

Three measurement families over deterministic synthetic traces
(``repro.runtime.synthlog`` — lock-disciplined plus thread-local access
mix with a bounded racy slice, shaped like a disciplined concurrent
program):

* **record** — stream N events through :class:`BinaryLogSink`; wall
  time, events/s, on-disk bytes/event.  The sink holds no per-event
  state, so recording is flat-memory at any N.
* **detect-binary** — 4-shard detection over the mapped file
  (:class:`BinaryLogReader.shard_entries`): each shard decodes only its
  own access events plus the replicated sync stream; the tuple log is
  never materialized.
* **detect-tuple** — the baseline: materialize the same N events as
  schema-v3 tuples in memory, then run the identical sharded detection
  over the list.

Every arm runs in a fresh subprocess so ``resource.getrusage``'s
``ru_maxrss`` is a clean per-arm peak-RSS reading; the parent asserts
both detection arms report byte-identical races before accepting any
timing.  The committed claim: at 10M events the mapped path's peak RSS
stays bounded (detector state + touched file pages) while the tuple
baseline's grows with the trace — the record-then-analyze mode of the
paper's offline detection at trace sizes the in-memory log cannot hold.

Running ``PYTHONPATH=src python benchmarks/bench_binlog.py`` writes
``BENCH_binlog.json`` at the repo root with 1M and 10M rows; ``--quick``
measures 100k events and skips the JSON (CI).  The pytest-benchmark
tests below cover record/detect arms at smoke scale in-process.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import resource
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from benchlib import ROOT, machine_metadata, runner_parser

from repro.detector import detect_sharded  # noqa: E402
from repro.runtime.binlog import BinaryLogReader, BinaryLogSink  # noqa: E402
from repro.runtime.synthlog import synthesize_into  # noqa: E402

#: Event counts for the committed numbers and for --quick (CI smoke).
BENCH_EVENTS = (1_000_000, 10_000_000)
QUICK_EVENTS = (100_000,)

SHARDS = 4


# ----------------------------------------------------------------------
# Worker arms.  Each runs in a fresh subprocess (one arm per process)
# and prints a single JSON line: seconds, peak RSS, race evidence.


def _peak_rss_kb() -> int:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def _report_evidence(outcome) -> dict:
    reports = outcome.reports.reports
    digest = hashlib.sha256(
        "\n".join(str(report.key) for report in reports).encode()
    ).hexdigest()
    return {"races": len(reports), "report_hash": digest}


def _worker_record(path: str, events: int) -> dict:
    sink = BinaryLogSink(path)
    started = time.perf_counter()
    count = synthesize_into(sink, events)
    sink.close()
    elapsed = time.perf_counter() - started
    return {
        "seconds": elapsed,
        "events_per_second": count / elapsed,
        "file_bytes": os.path.getsize(path),
        "peak_rss_kb": _peak_rss_kb(),
    }


def _worker_detect_binary(path: str, events: int) -> dict:
    with BinaryLogReader(path) as reader:
        started = time.perf_counter()
        outcome = detect_sharded(
            reader, SHARDS, executor="serial", validate=False
        )
        elapsed = time.perf_counter() - started
    return {
        "seconds": elapsed,
        "peak_rss_kb": _peak_rss_kb(),
        **_report_evidence(outcome),
    }


def _worker_detect_tuple(path: str, events: int) -> dict:
    # The baseline pays what the in-memory format always pays: the whole
    # trace resident as Python tuples before detection can start.
    with BinaryLogReader(path) as reader:
        entries = list(reader.entries())
    started = time.perf_counter()
    outcome = detect_sharded(
        entries, SHARDS, executor="serial", validate=False
    )
    elapsed = time.perf_counter() - started
    return {
        "seconds": elapsed,
        "peak_rss_kb": _peak_rss_kb(),
        **_report_evidence(outcome),
    }


_WORKERS = {
    "record": _worker_record,
    "detect-binary": _worker_detect_binary,
    "detect-tuple": _worker_detect_tuple,
}


def _spawn(mode: str, path: Path, events: int) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.run(
        [
            sys.executable,
            str(Path(__file__).resolve()),
            "--worker", mode,
            "--path", str(path),
            "--events", str(events),
        ],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(proc.stdout.splitlines()[-1])


def bench_events(events: int, repeats: int) -> dict:
    """One row: record once, then both detection arms best-of-N, each
    arm in its own subprocess for a clean peak-RSS reading."""
    with tempfile.TemporaryDirectory(prefix="binlog-bench-") as tmp:
        path = Path(tmp) / f"synthetic-{events}.mjbl"
        print(f"[bench] record {events:,} events ...", flush=True)
        record = _spawn("record", path, events)
        print(
            f"[bench]   {record['seconds']:.2f}s = "
            f"{record['events_per_second']:,.0f} ev/s, "
            f"{record['file_bytes'] / events:.1f} B/event",
            flush=True,
        )
        arms = {}
        for mode in ("detect-binary", "detect-tuple"):
            print(f"[bench] {mode} {events:,} x{SHARDS} shards ...", flush=True)
            best = None
            for _ in range(repeats):
                result = _spawn(mode, path, events)
                if best is None or result["seconds"] < best["seconds"]:
                    best = result
            arms[mode] = best
            print(
                f"[bench]   {best['seconds']:.2f}s, "
                f"peak RSS {best['peak_rss_kb'] / 1024:.0f} MB, "
                f"races={best['races']}",
                flush=True,
            )
    binary, tuples = arms["detect-binary"], arms["detect-tuple"]
    assert binary["report_hash"] == tuples["report_hash"], (
        f"{events}: mapped and tuple detection disagree on races"
    )
    assert binary["races"] == tuples["races"]
    return {
        "events": events,
        "shards": SHARDS,
        "executor": "serial",
        "races": binary["races"],
        "record_seconds": round(record["seconds"], 3),
        "record_events_per_second": round(record["events_per_second"]),
        "record_peak_rss_kb": record["peak_rss_kb"],
        "file_bytes": record["file_bytes"],
        "bytes_per_event": round(record["file_bytes"] / events, 2),
        "binary_detect_seconds": round(binary["seconds"], 3),
        "binary_peak_rss_kb": binary["peak_rss_kb"],
        "tuple_detect_seconds": round(tuples["seconds"], 3),
        "tuple_peak_rss_kb": tuples["peak_rss_kb"],
        "rss_ratio": round(tuples["peak_rss_kb"] / binary["peak_rss_kb"], 3),
    }


def generate(quick: bool = False, repeats: int = 3) -> dict:
    rows = []
    for events in (QUICK_EVENTS if quick else BENCH_EVENTS):
        row = bench_events(events, repeats)
        if not quick and events >= 1_000_000:
            assert row["tuple_peak_rss_kb"] > row["binary_peak_rss_kb"], (
                f"{events}: mapped detection should peak below the "
                f"tuple baseline ({row})"
            )
        rows.append(row)
    return {
        "benchmark": "binary event log: streaming record + mmap-sharded detect",
        "baseline": (
            "tuple log resident in memory: every event a Python tuple, "
            "the whole trace materialized before sharded detection"
        ),
        "contender": (
            "MJBL binary log: fixed-width struct records streamed to "
            "disk with bounded writer memory; 4-shard detection over "
            "the mapped file decodes each shard's own accesses plus "
            "the replicated sync stream, skipping non-owned blocks "
            "via the uid-partition index"
        ),
        "trace": (
            "synthlog synthetic stream (seed 2002): lock-disciplined + "
            "thread-local access mix, bounded racy slice, all eight "
            "schema-v3 event kinds"
        ),
        "quick": quick,
        "repeats": repeats,
        "machine": machine_metadata(),
        "rows": rows,
    }


# ----------------------------------------------------------------------
# pytest-benchmark coverage at smoke scale, in-process.

import pytest  # noqa: E402

SMOKE_EVENTS = 50_000


@pytest.fixture(scope="module")
def smoke_log(tmp_path_factory):
    path = tmp_path_factory.mktemp("binlog-bench") / "smoke.mjbl"
    sink = BinaryLogSink(path)
    synthesize_into(sink, SMOKE_EVENTS)
    return path


class TestRecord:
    def test_streaming_binary_record(self, benchmark, tmp_path):
        benchmark.group = "binlog:record"
        path = tmp_path / "bench.mjbl"

        def run():
            sink = BinaryLogSink(path)
            return synthesize_into(sink, SMOKE_EVENTS)

        count = benchmark(run)
        assert count == SMOKE_EVENTS


class TestDetect:
    def test_mapped_binary_sharded(self, benchmark, smoke_log):
        benchmark.group = "binlog:detect"
        with BinaryLogReader(smoke_log) as reader:
            outcome = benchmark(
                lambda: detect_sharded(
                    reader, SHARDS, executor="serial", validate=False
                )
            )
        assert outcome.stats.accesses > 0

    def test_tuple_baseline_sharded(self, benchmark, smoke_log):
        benchmark.group = "binlog:detect"
        with BinaryLogReader(smoke_log) as reader:
            entries = list(reader.entries())
        outcome = benchmark(
            lambda: detect_sharded(
                entries, SHARDS, executor="serial", validate=False
            )
        )
        assert outcome.stats.accesses > 0

    def test_arms_report_identical_races(self, smoke_log):
        with BinaryLogReader(smoke_log) as reader:
            entries = list(reader.entries())
            mapped = detect_sharded(
                reader, SHARDS, executor="serial", validate=False
            )
        baseline = detect_sharded(
            entries, SHARDS, executor="serial", validate=False
        )
        assert _report_evidence(mapped) == _report_evidence(baseline)


# ----------------------------------------------------------------------
# Script entry point: worker arms + BENCH_binlog.json generation.


def main(argv=None) -> int:
    parser = runner_parser(
        "Measure binary-log record throughput and mmap-sharded "
        "detection vs the tuple baseline.",
        "BENCH_binlog.json",
    )
    parser.add_argument("--worker", choices=sorted(_WORKERS), help=argparse.SUPPRESS)
    parser.add_argument("--path", help=argparse.SUPPRESS)
    parser.add_argument("--events", type=int, help=argparse.SUPPRESS)
    options = parser.parse_args(argv)
    if options.worker:
        print(json.dumps(_WORKERS[options.worker](options.path, options.events)))
        return 0
    if options.repeats < 1:
        parser.error("--repeats must be at least 1")
    payload = generate(quick=options.quick, repeats=options.repeats)
    text = json.dumps(payload, indent=2)
    if options.quick:
        print(text)
    else:
        Path(options.output).write_text(text + "\n")
        print(f"[bench] wrote {options.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
