"""Ablation — the construction-immutability analysis (§10 extension).

Measures what the opt-in refinement buys on tsp2 (whose ``CityInfo``
coordinates and solver parameters are construction-immutable but read
lock-free by both workers): fewer instrumented sites, fewer emitted
events, identical race reports.
"""

import pytest

from repro.detector import DetectorConfig
from repro.harness import CONFIG_FULL, Configuration
from repro.instrument import PlannerConfig
from repro.workloads import BENCHMARKS

from conftest import prepare

IMMUTABILITY_CONFIG = Configuration(
    name="Full+Immutability",
    planner=PlannerConfig(immutability_analysis=True),
    detector=DetectorConfig(),
)


@pytest.mark.parametrize("variant", ["Full", "Full+Immutability"])
def test_tsp2_immutability_ablation(benchmark, variant):
    spec = BENCHMARKS["tsp2"]
    config = CONFIG_FULL if variant == "Full" else IMMUTABILITY_CONFIG
    runner = prepare(spec, config)
    benchmark.group = "ablation:immutability"
    _, detector = benchmark(runner)
    benchmark.extra_info["events"] = detector.stats.accesses
    benchmark.extra_info["racy_objects"] = detector.reports.object_count

    if variant == "Full+Immutability":
        baseline_runner = prepare(spec, CONFIG_FULL)
        _, baseline = baseline_runner()
        # Fewer events, same reports: the refinement only removes
        # provably race-free instrumentation.
        assert detector.stats.accesses <= baseline.stats.accesses
        assert detector.reports.racy_objects == baseline.reports.racy_objects


@pytest.mark.parametrize("workload", ["mtrt2", "tsp2", "hedc2"])
def test_immutability_never_hides_reports(benchmark, workload):
    spec = BENCHMARKS[workload]
    runner = prepare(spec, IMMUTABILITY_CONFIG)
    benchmark.group = f"ablation:immutability-{workload}"
    _, detector = benchmark(runner)
    baseline_runner = prepare(spec, CONFIG_FULL)
    _, baseline = baseline_runner()
    assert detector.reports.racy_objects == baseline.reports.racy_objects
