"""Figure 3 — the loop peeling optimization on its motivating kernel.

Benchmarks the two-thread invariant-base loop under the four
compile-time configurations and asserts the figure's effect: with
peeling the kernel emits O(1) access events per thread; without the
static weaker-than relation it emits O(iterations).
"""

import pytest

from repro.harness import (
    CONFIG_FULL,
    CONFIG_NO_DOMINATORS,
    CONFIG_NO_PEELING,
    CONFIG_NO_STATIC,
)
from repro.workloads import ALL_WORKLOADS

from conftest import prepare

ITERATIONS = 100

CONFIGS = {
    "Full": CONFIG_FULL,
    "NoPeeling": CONFIG_NO_PEELING,
    "NoDominators": CONFIG_NO_DOMINATORS,
    "NoStatic": CONFIG_NO_STATIC,
}


@pytest.mark.parametrize("config_name", list(CONFIGS))
def test_figure3(benchmark, config_name):
    spec = ALL_WORKLOADS["figure3"]
    runner = prepare(spec, CONFIGS[config_name], scale=ITERATIONS)
    benchmark.group = "figure3:loop-peeling"
    result, detector = benchmark(runner)
    events = detector.stats.accesses
    benchmark.extra_info["events"] = events
    if config_name in ("Full", "NoStatic"):
        # Peeling + static weaker-than: at most a few events per thread
        # plus main's post-join read.
        assert events <= 12
    else:
        # Every loop iteration traces: 2 threads × ITERATIONS writes.
        assert events >= 2 * ITERATIONS
