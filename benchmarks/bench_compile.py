"""The compiled-engine before/after benchmarks: AST interpretation vs
closure-threaded code with statically specialized trace stubs.

Three configurations per workload:

* **Base** — no instrumentation, no detector: the pure interpretation
  speedup of closure-threading (all per-node dispatch, name resolution,
  and operand-purity decisions moved to compile time).
* **Full** — the planner's trace-site plan with the full detector
  attached: the end-to-end speedup of a detection run, where the
  compiled engine additionally fuses the instrumentation plan into the
  generated code (untraced sites are bare loads/stores, traced sites
  call pre-bound ``on_access_parts`` stubs).
* **Full+tiering** — the same detection run with ``tiering="on"``
  (compiled engine only): traced sites compile to inline owner-check/
  cache-hit fast paths and provably filtered accesses elide entirely
  (:mod:`repro.runtime.tiering`).  The row's ``ast_seconds`` is the
  Full AST baseline (the AST engine has no tiered mode), so its
  speedup shows how much of the Base-vs-Full gap tiering closes; the
  run's tier-transition counters are committed alongside.

Engine construction — which for the compiled engine includes closure
compilation — stays *outside* the timed region, matching the harness
discipline: the paper measures the runtime of the instrumented
executable, not compile time.

Before any timing is accepted, both engines' runs are asserted to be
*byte-identical*: same schema-v3 event log, same output, same race
reports — and the tiered run is asserted byte-identical to the
untired one (reports, full pipeline/ownership/cache counters,
output).  A speedup over a divergent execution would be meaningless.

Running ``PYTHONPATH=src python benchmarks/bench_compile.py`` writes
``BENCH_compile.json`` at the repo root with both configurations at the
bench scales; ``--quick`` uses smoke scales and skips the JSON (CI).
The pytest-benchmark tests below cover the same arms at smoke scale.
"""

from __future__ import annotations

import json
import time

from benchlib import machine_metadata, run_benchmark_main, runner_parser

from repro.detector import RaceDetector, canonical_report_order  # noqa: E402
from repro.instrument import PlannerConfig, plan_instrumentation  # noqa: E402
from repro.lang import compile_source  # noqa: E402
from repro.runtime import (  # noqa: E402
    MulticastSink,
    RecordingSink,
    dump_log,
    engine_class,
)
from repro.workloads import ALL_WORKLOADS  # noqa: E402

#: Bench scales for the committed before/after numbers.
BENCH_SCALES = {"tsp2": 16, "mtrt2": 16, "sor2": 24}
#: Smoke scales for --quick and the pytest-benchmark tests.
QUICK_SCALES = {"tsp2": 6, "mtrt2": 6, "sor2": 8}

ENGINE_PAIR = ("ast", "compiled")


def _compile(name: str, scale: int):
    """Compile at ``scale`` and plan instrumentation (Full plan)."""
    spec = ALL_WORKLOADS[name]
    resolved = compile_source(spec.build(scale), filename=name)
    plan = plan_instrumentation(resolved, PlannerConfig())
    return resolved, plan


def _detector(resolved, plan):
    return RaceDetector(resolved=resolved, static_races=plan.static_races)


def _report_keys(detector):
    return [
        (str(report.key), report.field, report.object_label)
        for report in canonical_report_order(detector.reports.reports)
    ]


def assert_engine_parity(name, resolved, plan) -> dict:
    """One instrumented run per engine; everything must match exactly.

    Returns the shared observation (races, events) for the JSON row.
    """
    observed = {}
    for engine in ENGINE_PAIR:
        detector = _detector(resolved, plan)
        log = RecordingSink()
        runner = engine_class(engine)(
            resolved,
            sink=MulticastSink([log, detector]),
            trace_sites=plan.trace_sites,
        )
        result = runner.run()
        observed[engine] = {
            "steps": result.steps,
            "output": tuple(result.output),
            "log": json.dumps(dump_log(log), sort_keys=True),
            "reports": _report_keys(detector),
            "races": detector.stats.races_reported,
            "events": result.accesses_emitted,
        }
    ast_side, compiled_side = observed["ast"], observed["compiled"]
    assert ast_side == compiled_side, (
        f"{name}: engines diverged — "
        + ", ".join(
            key for key in ast_side if ast_side[key] != compiled_side[key]
        )
    )
    return {"races": ast_side["races"], "events": ast_side["events"]}


def assert_tiered_parity(name, resolved, plan) -> dict:
    """One detection run per tiering mode (compiled engine); reports,
    counters, and output must match exactly.  Returns the tiered run's
    tier-transition counters for the JSON row."""
    observed = {}
    counters = None
    for tiering in ("off", "on"):
        detector = _detector(resolved, plan)
        result = engine_class("compiled")(
            resolved,
            sink=detector,
            trace_sites=plan.trace_sites,
            tiering=tiering,
        ).run()
        observed[tiering] = {
            "steps": result.steps,
            "output": tuple(result.output),
            "reports": _report_keys(detector),
            "stats": repr(detector.stats),
            "ownership": repr(detector.ownership.stats),
            "cache_hits": detector.cache.stats.hits,
        }
        if tiering == "on":
            assert detector.tiering is not None, f"{name}: tiering never engaged"
            counters = detector.tiering.as_dict()
    off_side, on_side = observed["off"], observed["on"]
    assert off_side == on_side, (
        f"{name}: tiering diverged — "
        + ", ".join(key for key in off_side if off_side[key] != on_side[key])
    )
    return counters


def _time_engine(
    engine, resolved, trace_sites, sink_factory, repeats, tiering=None
):
    """Best-of-``repeats`` wall time of ``runner.run()`` alone."""
    cls = engine_class(engine)
    best = None
    for _ in range(repeats):
        sink = sink_factory()
        runner = cls(
            resolved, sink=sink, trace_sites=trace_sites, tiering=tiering
        )
        started = time.perf_counter()
        runner.run()
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
    return best


def bench_workload(name: str, scale: int, repeats: int) -> list:
    """All three configurations for one workload; parity asserted
    first (cross-engine, then cross-tier)."""
    resolved, plan = _compile(name, scale)
    shared = assert_engine_parity(name, resolved, plan)
    tier_counters = assert_tiered_parity(name, resolved, plan)

    rows = []
    configurations = (
        # (config name, trace sites, sink factory, tiering, extra fields)
        ("Base", set(), lambda: None, None, {}),
        (
            "Full",
            plan.trace_sites,
            lambda: _detector(resolved, plan),
            None,
            shared,
        ),
        (
            "Full+tiering",
            plan.trace_sites,
            lambda: _detector(resolved, plan),
            "on",
            {**shared, "tiering": tier_counters},
        ),
    )
    full_ast_seconds = None
    for config, trace_sites, sink_factory, tiering, extra in configurations:
        if tiering is None:
            ast_seconds = _time_engine(
                "ast", resolved, trace_sites, sink_factory, repeats
            )
            if config == "Full":
                full_ast_seconds = ast_seconds
        else:
            # The AST engine has no tiered mode: the tiered row is
            # measured against the Full AST baseline, so its speedup
            # reads as "end-to-end detection vs the reference".
            ast_seconds = full_ast_seconds
        compiled_seconds = _time_engine(
            "compiled", resolved, trace_sites, sink_factory, repeats,
            tiering=tiering,
        )
        rows.append(
            {
                "workload": name,
                "scale": scale,
                "configuration": config,
                "ast_seconds": round(ast_seconds, 4),
                "compiled_seconds": round(compiled_seconds, 4),
                "speedup": round(ast_seconds / compiled_seconds, 3),
                **extra,
            }
        )
    return rows


def generate(quick: bool = False, repeats: int = 3) -> dict:
    scales = QUICK_SCALES if quick else BENCH_SCALES
    rows = []
    for name, scale in scales.items():
        print(f"[bench] {name}@{scale} ...", flush=True)
        for row in bench_workload(name, scale, repeats):
            print(
                f"[bench]   {row['configuration']:<12} "
                f"ast={row['ast_seconds']}s "
                f"compiled={row['compiled_seconds']}s "
                f"speedup={row['speedup']}x",
                flush=True,
            )
            rows.append(row)
    return {
        "benchmark": "closure-compiled engine vs AST interpreter",
        "baseline": (
            "AST interpreter: per-node dispatch and name resolution on "
            "every execution of every statement"
        ),
        "contender": (
            "closure-threaded code compiled per method body: pure/"
            "generator split at the AST interpreter's exact preemption "
            "points, instrumentation plan fused into the generated "
            "stubs (untraced sites are bare loads/stores, traced sites "
            "pre-bound on_access_parts closures); byte-identical event "
            "streams asserted before timing.  Full+tiering adds "
            "--tiering on: inline owner-check/cache-hit fast paths "
            "plus static and settled elision, byte-identical reports "
            "and counters asserted before timing against the Full "
            "AST baseline"
        ),
        "quick": quick,
        "repeats": repeats,
        "machine": machine_metadata(),
        "rows": rows,
    }


# ----------------------------------------------------------------------
# pytest-benchmark coverage of the same arms at smoke scale.

import pytest  # noqa: E402


@pytest.fixture(scope="module")
def tsp_quick():
    return _compile("tsp2", QUICK_SCALES["tsp2"])


class TestEngineParity:
    def test_byte_identical_before_timing(self, tsp_quick):
        resolved, plan = tsp_quick
        shared = assert_engine_parity("tsp2", resolved, plan)
        assert shared["events"] > 0


class TestBaseConfiguration:
    def test_ast_interpreter(self, benchmark, tsp_quick):
        resolved, _ = tsp_quick
        benchmark.group = "compile:base"
        benchmark(
            lambda: engine_class("ast")(resolved, trace_sites=set()).run()
        )

    def test_compiled_engine(self, benchmark, tsp_quick):
        resolved, _ = tsp_quick
        benchmark.group = "compile:base"
        benchmark(
            lambda: engine_class("compiled")(resolved, trace_sites=set()).run()
        )


class TestFullConfiguration:
    def test_ast_interpreter(self, benchmark, tsp_quick):
        resolved, plan = tsp_quick
        benchmark.group = "compile:full"

        def run():
            detector = _detector(resolved, plan)
            engine_class("ast")(
                resolved, sink=detector, trace_sites=plan.trace_sites
            ).run()
            return detector

        detector = benchmark(run)
        assert detector.stats.accesses > 0

    def test_compiled_engine(self, benchmark, tsp_quick):
        resolved, plan = tsp_quick
        benchmark.group = "compile:full"

        def run():
            detector = _detector(resolved, plan)
            engine_class("compiled")(
                resolved, sink=detector, trace_sites=plan.trace_sites
            ).run()
            return detector

        detector = benchmark(run)
        assert detector.stats.accesses > 0

    def test_compiled_engine_tiered(self, benchmark, tsp_quick):
        resolved, plan = tsp_quick
        benchmark.group = "compile:full"
        assert_tiered_parity("tsp2", resolved, plan)

        def run():
            detector = _detector(resolved, plan)
            engine_class("compiled")(
                resolved,
                sink=detector,
                trace_sites=plan.trace_sites,
                tiering="on",
            ).run()
            return detector

        detector = benchmark(run)
        assert detector.stats.accesses > 0
        assert detector.tiering is not None


# ----------------------------------------------------------------------
# Script entry point: (re)generate BENCH_compile.json.


def main(argv=None) -> int:
    parser = runner_parser(
        "Measure the compiled engine vs the AST interpreter.",
        "BENCH_compile.json",
    )
    return run_benchmark_main(parser, generate, argv)


if __name__ == "__main__":
    raise SystemExit(main())
