"""Table 2 — runtime performance of the instrumented executable.

One benchmark per (CPU-bound workload × configuration); pytest-benchmark
groups each workload's configurations together, so the printed group
comparison *is* the Table 2 row: Base vs Full vs NoStatic vs
NoDominators vs NoPeeling vs NoCache.

Expected shape (the paper's, Section 8.2):

* ``Full`` is the cheapest instrumented configuration everywhere;
* sor2 blows up under ``NoDominators``/``NoPeeling`` (array loops);
* mtrt2 blows up under ``NoStatic`` (per-ray thread-local allocations
  get instrumented — the analog of Jalapeño running out of memory);
* tsp2 suffers most from ``NoCache`` in *detector work* (see
  ``extra_info["trie_weak_checks"]``; on the Python substrate the
  wall-clock effect is muted because interpretation dominates).
"""

import pytest

from repro.harness import TABLE2_CONFIGS
from repro.workloads import TABLE2_BENCHMARKS

from conftest import prepare

CONFIGS = {config.name: config for config in TABLE2_CONFIGS}


@pytest.mark.parametrize("workload", sorted(TABLE2_BENCHMARKS))
@pytest.mark.parametrize("config_name", list(CONFIGS))
def test_table2(benchmark, workload, config_name):
    spec = TABLE2_BENCHMARKS[workload]
    runner = prepare(spec, CONFIGS[config_name])
    benchmark.group = f"table2:{workload}"
    result, detector = benchmark(runner)
    benchmark.extra_info["events"] = (
        detector.stats.accesses if detector is not None else 0
    )
    benchmark.extra_info["races"] = (
        detector.reports.object_count if detector is not None else 0
    )
    if detector is not None:
        benchmark.extra_info["trie_weak_checks"] = (
            detector.trie_stats.weaker_hits + detector.trie_stats.weaker_misses
        )
        benchmark.extra_info["cache_hits"] = (
            detector.cache.stats.hits if detector.cache is not None else 0
        )
