"""Table 1 (benchmark characteristics) and Section 8.2 (space accounting).

Table 1's static characteristics (LoC, dynamic thread counts) are
recorded as ``extra_info`` on a compile-time benchmark per workload;
the space benchmark runs tsp2 under Full and records live trie nodes
and monitored memory locations — the analog of the paper's "7967 trie
nodes holding history for 6562 memory locations".
"""

import pytest

from repro.harness import CONFIG_FULL
from repro.lang import compile_source
from repro.workloads import BENCHMARKS

from conftest import BENCH_SCALES, prepare


@pytest.mark.parametrize("workload", sorted(BENCHMARKS))
def test_table1_compile(benchmark, workload):
    """Front-end cost per benchmark + its Table 1 characteristics."""
    spec = BENCHMARKS[workload]
    scale = BENCH_SCALES.get(workload)
    source = spec.build(scale)
    benchmark.group = "table1:compile"
    resolved = benchmark(compile_source, source, spec.name)
    benchmark.extra_info["lines_of_mj"] = spec.loc(scale)
    benchmark.extra_info["access_sites"] = len(resolved.sites)
    runner = prepare(spec, CONFIG_FULL, scale=scale)
    result, _ = runner()
    benchmark.extra_info["dynamic_threads"] = result.threads_created
    assert result.threads_created == spec.threads


def test_space_accounting_tsp2(benchmark):
    runner = prepare(BENCHMARKS["tsp2"], CONFIG_FULL)
    benchmark.group = "space"
    _, detector = benchmark(runner)
    benchmark.extra_info["trie_nodes"] = detector.total_trie_nodes()
    benchmark.extra_info["monitored_locations"] = detector.monitored_locations
    assert detector.total_trie_nodes() >= detector.monitored_locations


def test_space_packed_tries_tsp2(benchmark):
    """The Section 8.2 packing scheme: one lockset-major trie."""
    from repro.detector import DetectorConfig
    from repro.instrument import PlannerConfig
    from repro.harness import Configuration

    packed_config = Configuration(
        name="packed",
        planner=PlannerConfig(),
        detector=DetectorConfig(packed_tries=True),
    )
    runner = prepare(BENCHMARKS["tsp2"], packed_config)
    benchmark.group = "space"
    _, detector = benchmark(runner)
    packed_nodes = detector.total_trie_nodes()
    benchmark.extra_info["trie_nodes"] = packed_nodes
    benchmark.extra_info["monitored_locations"] = detector.monitored_locations

    plain_runner = prepare(BENCHMARKS["tsp2"], CONFIG_FULL)
    _, plain = plain_runner()
    benchmark.extra_info["per_location_nodes"] = plain.total_trie_nodes()
    # Packing shares lockset structure across locations: far fewer nodes.
    assert packed_nodes < plain.total_trie_nodes()
    assert detector.reports.racy_objects == plain.reports.racy_objects
