"""Ablation — cost of the compile-time phases themselves.

The paper reports only runtime overhead (its static phases run inside
the Jalapeño compiler); DESIGN.md calls the static phase cost out as a
design-choice ablation: how expensive are points-to + ICG + escape
(phase 1) and SSA + value numbering + weaker-than elimination + peeling
(phase 2) on each benchmark, and how many trace sites each removes.
"""

import pytest

from repro.analysis import analyze_static_races
from repro.instrument import PlannerConfig, plan_instrumentation
from repro.lang import compile_source
from repro.workloads import BENCHMARKS

from conftest import BENCH_SCALES


def source_of(workload):
    spec = BENCHMARKS[workload]
    return spec.build(BENCH_SCALES.get(workload))


@pytest.mark.parametrize("workload", sorted(BENCHMARKS))
def test_static_race_analysis_cost(benchmark, workload):
    source = source_of(workload)
    benchmark.group = f"static:{workload}"

    def run():
        return analyze_static_races(compile_source(source))

    result = benchmark(run)
    benchmark.extra_info["racy_sites"] = len(result.racy_sites)
    benchmark.extra_info["sites_total"] = result.stats.sites_total
    benchmark.extra_info["pairs_checked"] = result.stats.pairs_checked


@pytest.mark.parametrize("workload", sorted(BENCHMARKS))
def test_full_planning_cost(benchmark, workload):
    source = source_of(workload)
    benchmark.group = f"static:{workload}"

    def run():
        return plan_instrumentation(compile_source(source), PlannerConfig())

    plan = benchmark(run)
    benchmark.extra_info["sites_instrumented"] = plan.stats.sites_instrumented
    benchmark.extra_info["eliminated_weaker"] = (
        plan.stats.sites_eliminated_weaker
    )
    benchmark.extra_info["loops_peeled"] = plan.stats.loops_peeled
