"""The ``repro serve`` throughput benchmark: sustained jobs/sec under
concurrent load.

A real daemon subprocess (the exact ``repro serve`` entry point) is
hammered by a pool of client threads submitting a mixed corpus —
several distinct MJ programs across both engines plus recorded MJBL
binary logs and tuple-JSON logs — every submission ``wait=1`` so a
completed HTTP response means a completed detection job.  Each row
scales the worker pool (1 / 2 / 4 processes) against the same client
pressure, so the committed numbers show how detection throughput
scales with workers and what the content-addressed compile cache
contributes (the program corpus is deliberately smaller than the job
count, so steady state is mostly cache hits).  Every row runs twice:
once opening a fresh connection per request and once with each client
thread holding one persistent connection, exercising the daemon's
HTTP/1.1 keep-alive path and measuring what connection reuse buys.

Before any timing is accepted, the harness asserts the parity gate:
for every distinct program and log in the mix, the service's JSON
report is byte-identical to ``repro check --report-json`` run locally
on the same input.  A throughput number for a daemon that answers
*different* races than the CLI would be meaningless.

Running ``PYTHONPATH=src python benchmarks/bench_serve.py`` writes
``BENCH_serve.json`` at the repo root; ``--smoke`` (alias ``--quick``)
runs one small row and prints instead of writing (CI).
"""

from __future__ import annotations

import http.client
import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

from benchlib import ROOT, machine_metadata, runner_parser

#: (workers, client threads, total jobs) per committed row.
BENCH_ROWS = ((1, 4, 60), (2, 4, 60), (4, 8, 120))
SMOKE_ROWS = ((2, 2, 10),)

#: Distinct program count: small enough that a steady-state run is
#: mostly compile-cache hits, large enough to exercise misses.
PROGRAM_VARIANTS = 4

PROGRAM_TEMPLATE = """
class Main {{
  static def main() {{
    var d = new Data();
    d.x = {seed};
    var a = new Worker(d); var b = new Worker(d);
    start a; start b; join a; join b;
    print d.x;
  }}
}}
class Data {{ field x; }}
class Worker {{
  field d;
  def init(d) {{ this.d = d; }}
  def run() {{ this.d.x = this.d.x + {seed}; }}
}}
"""


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def _canonical(payload) -> str:
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=False
    )


class DaemonUnderTest:
    def __init__(self, workers: int, queue_depth: int):
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0",
                "--workers", str(workers),
                "--queue-depth", str(queue_depth),
                "--timeout", "120",
            ],
            env=_env(),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        banner = self.proc.stdout.readline()
        self.port = int(re.search(r":(\d+) \(", banner).group(1))

    def connect(self) -> http.client.HTTPConnection:
        """A persistent connection for the keep-alive arm."""
        return http.client.HTTPConnection(
            "127.0.0.1", self.port, timeout=300
        )

    def request(
        self,
        method: str,
        path: str,
        body: bytes = b"",
        conn: http.client.HTTPConnection | None = None,
    ):
        if conn is not None:
            # Persistent arm: ride the daemon's HTTP/1.1 keep-alive —
            # http.client reuses the socket as long as the server
            # answers ``Connection: keep-alive``.
            conn.request(method, path, body=body)
            response = conn.getresponse()
            return response.status, json.loads(response.read())
        conn = http.client.HTTPConnection(
            "127.0.0.1", self.port, timeout=300
        )
        try:
            conn.request(method, path, body=body)
            response = conn.getresponse()
            return response.status, json.loads(response.read())
        finally:
            conn.close()

    def close(self):
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
            try:
                self.proc.wait(timeout=60)
            except subprocess.TimeoutExpired:
                self.proc.kill()


def _build_corpus(tmp: Path) -> list[tuple[str, str, bytes]]:
    """The submission mix: (label, query suffix, body) triples, one
    per distinct input; engines alternate across program variants."""
    from repro.cli import main as repro_main

    corpus: list[tuple[str, str, bytes]] = []
    for index in range(PROGRAM_VARIANTS):
        engine = "compiled" if index % 2 else "ast"
        source = PROGRAM_TEMPLATE.format(seed=index + 1)
        path = tmp / f"variant{index}.mj"
        path.write_text(source)
        corpus.append((
            f"program-{index}-{engine}",
            f"engine={engine}&seed=1&filename={path}",
            source.encode(),
        ))
    # One recorded binary log and its tuple-JSON re-encoding.
    program = tmp / "logged.mj"
    program.write_text(PROGRAM_TEMPLATE.format(seed=9))
    log_path = tmp / "logged.mjbl"
    code = repro_main([
        "run", str(program), "--record-binary", str(log_path),
    ])
    assert code == 0, "recording the benchmark log failed"
    corpus.append(("binary-log", "", log_path.read_bytes()))

    from repro.runtime.binlog import read_binary_log
    from repro.runtime.events import dump_log

    tuple_payload = json.dumps(dump_log(read_binary_log(log_path)))
    corpus.append(("tuple-log", "", tuple_payload.encode()))
    return corpus


def _cli_report(label: str, query: str, body: bytes, tmp: Path) -> str:
    """What ``repro check --report-json`` prints for this input."""
    args = [sys.executable, "-m", "repro", "check", "--report-json"]
    if label.startswith("program"):
        match = re.search(r"filename=([^&]+)", query)
        engine = re.search(r"engine=([^&]+)", query).group(1)
        args += [match.group(1), "--engine", engine, "--seed", "1"]
    else:
        path = tmp / f"parity-{label}.log"
        path.write_bytes(body)
        args += ["--from-log", str(path)]
    proc = subprocess.run(
        args, env=_env(), capture_output=True, text=True
    )
    assert proc.returncode in (0, 1), proc.stderr
    return proc.stdout.strip()


def _assert_parity(daemon: DaemonUnderTest, corpus, tmp: Path) -> None:
    for label, query, body in corpus:
        status, record = daemon.request(
            "POST", f"/submit?wait=1&{query}" if query else "/submit?wait=1",
            body,
        )
        assert status == 200, (label, status, record)
        service_report = _canonical(record["result"]["report"])
        cli_report = _cli_report(label, query, body, tmp)
        assert service_report == cli_report, (
            f"{label}: service report diverges from repro check"
        )


def _measure_row(
    workers: int,
    clients: int,
    jobs: int,
    corpus,
    persistent: bool = False,
) -> dict:
    daemon = DaemonUnderTest(workers, queue_depth=max(64, jobs))
    try:
        import tempfile

        with tempfile.TemporaryDirectory(prefix="bench-serve-") as tmp:
            _assert_parity(daemon, corpus, Path(tmp))

        assignments = [corpus[i % len(corpus)] for i in range(jobs)]
        cursor = {"next": 0}
        lock = threading.Lock()
        failures: list = []

        def client():
            # Persistent arm: one connection per client thread, reused
            # for every job it drives (the daemon's keep-alive path).
            conn = daemon.connect() if persistent else None
            try:
                while True:
                    with lock:
                        index = cursor["next"]
                        if index >= len(assignments):
                            return
                        cursor["next"] = index + 1
                    label, query, body = assignments[index]
                    path = (
                        f"/submit?wait=1&{query}"
                        if query
                        else "/submit?wait=1"
                    )
                    try:
                        status, record = daemon.request(
                            "POST", path, body, conn=conn
                        )
                        if status != 200 or record["job"]["state"] != "done":
                            failures.append((label, status, record))
                    except Exception as error:  # noqa: BLE001
                        failures.append((label, repr(error)))
                        return
            finally:
                if conn is not None:
                    conn.close()

        threads = [threading.Thread(target=client) for _ in range(clients)]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - started
        assert not failures, failures[:3]

        _, stats = daemon.request("GET", "/stats")
    finally:
        daemon.close()
    cache = stats["compile_cache"]
    return {
        "workers": workers,
        "clients": clients,
        "jobs": jobs,
        "connection": "keep-alive" if persistent else "per-request",
        "seconds": round(elapsed, 3),
        "jobs_per_second": round(jobs / elapsed, 2),
        "cache_hits": cache["hits"],
        "cache_misses": cache["misses"],
        "cache_hit_rate": round(cache["hit_rate"], 3),
        "jobs_done": stats["jobs"]["done"],
        "parity_checked": True,
    }


def generate(quick: bool = False, repeats: int = 1) -> dict:
    import tempfile

    with tempfile.TemporaryDirectory(prefix="bench-serve-corpus-") as tmp:
        corpus = _build_corpus(Path(tmp))
        rows = []
        for workers, clients, jobs in (SMOKE_ROWS if quick else BENCH_ROWS):
            for persistent in (False, True):
                mode = "keep-alive" if persistent else "per-request"
                print(
                    f"[bench] serve: {workers} workers, {clients} clients, "
                    f"{jobs} jobs, {mode} connections ...",
                    flush=True,
                )
                best = None
                for _ in range(repeats):
                    row = _measure_row(
                        workers, clients, jobs, corpus, persistent=persistent
                    )
                    if best is None or row["seconds"] < best["seconds"]:
                        best = row
                rows.append(best)
                print(
                    f"[bench]   {best['seconds']:.2f}s = "
                    f"{best['jobs_per_second']:.1f} jobs/s, "
                    f"cache hit rate {best['cache_hit_rate']:.0%}",
                    flush=True,
                )
    return {
        "benchmark": (
            "repro serve: sustained detection jobs/sec under "
            "concurrent mixed load"
        ),
        "mix": (
            f"{PROGRAM_VARIANTS} distinct programs (ast + compiled "
            f"engines, seeded random schedule) + 1 MJBL binary log + "
            f"1 tuple-JSON log, submitted wait=1 round-robin"
        ),
        "parity_gate": (
            "before timing, every distinct input's service report is "
            "asserted byte-identical to `repro check --report-json`"
        ),
        "quick": quick,
        "repeats": repeats,
        "machine": machine_metadata(),
        "rows": rows,
    }


def main(argv=None) -> int:
    parser = runner_parser(
        "Measure repro serve throughput under concurrent load.",
        "BENCH_serve.json",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="alias for --quick (one small row, print, no JSON)",
    )
    parser.set_defaults(repeats=1)
    options = parser.parse_args(argv)
    quick = options.quick or options.smoke
    if options.repeats < 1:
        parser.error("--repeats must be at least 1")
    payload = generate(quick=quick, repeats=options.repeats)
    text = json.dumps(payload, indent=2)
    if quick:
        print(text)
    else:
        Path(options.output).write_text(text + "\n")
        print(f"[bench] wrote {options.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
