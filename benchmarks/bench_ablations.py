"""Ablation benchmarks for design choices DESIGN.md calls out.

* **Join pseudo-locks** (Section 2.3): with the ``S_j`` modeling the
  post-join statistics idiom reports nothing; without it the detector
  behaves like past work and reports spurious races.  Measures the
  bookkeeping cost and asserts the precision difference.
* **write-covers-read cache** (reproduction extension): a read lookup
  falling back to the write cache is sound (WRITE ⊑ READ); measures
  whether the extra probe pays for the extra hits.
* **FieldsMerged keying**: object-granularity merging trades precision
  for fewer tries; measures the cost/space effect on mtrt2.
"""

import pytest

from repro.detector import DetectorConfig, RaceDetector
from repro.harness import CONFIG_FULL, Configuration
from repro.instrument import PlannerConfig
from repro.workloads import ALL_WORKLOADS, BENCHMARKS

from conftest import prepare


def config_with(**detector_overrides):
    return Configuration(
        name="ablation",
        planner=PlannerConfig(),
        detector=DetectorConfig(**detector_overrides),
    )


class TestJoinPseudoLocks:
    @pytest.mark.parametrize("enabled", [True, False])
    def test_join_stats_precision(self, benchmark, enabled):
        spec = ALL_WORKLOADS["join_stats"]
        runner = prepare(spec, config_with(join_pseudolocks=enabled))
        benchmark.group = "ablation:join-pseudolocks"
        _, detector = benchmark(runner)
        count = detector.reports.object_count
        benchmark.extra_info["racy_objects"] = count
        if enabled:
            assert count == 0  # Mutually intersecting locksets.
        else:
            assert count >= 1  # The spurious post-join report.

    @pytest.mark.parametrize("enabled", [True, False])
    def test_mtrt2_cost(self, benchmark, enabled):
        spec = BENCHMARKS["mtrt2"]
        runner = prepare(spec, config_with(join_pseudolocks=enabled))
        benchmark.group = "ablation:join-pseudolocks-cost"
        _, detector = benchmark(runner)
        benchmark.extra_info["racy_objects"] = detector.reports.object_count


class TestWriteCoversRead:
    @pytest.mark.parametrize("extension", [False, True])
    def test_cache_extension(self, benchmark, extension):
        spec = BENCHMARKS["tsp2"]
        runner = prepare(
            spec, config_with(write_cache_covers_reads=extension)
        )
        benchmark.group = "ablation:write-covers-read"
        _, detector = benchmark(runner)
        benchmark.extra_info["cache_hits"] = detector.cache.stats.hits
        benchmark.extra_info["racy_objects"] = detector.reports.object_count
        # The extension is sound: the reported objects are identical.
        baseline_runner = prepare(spec, CONFIG_FULL)
        _, baseline = baseline_runner()
        assert (
            detector.reports.racy_objects == baseline.reports.racy_objects
        )


class TestFieldsMergedCost:
    @pytest.mark.parametrize("merged", [False, True])
    def test_mtrt2_keying(self, benchmark, merged):
        spec = BENCHMARKS["mtrt2"]
        runner = prepare(spec, config_with(fields_merged=merged))
        benchmark.group = "ablation:fields-merged"
        _, detector = benchmark(runner)
        benchmark.extra_info["monitored_locations"] = (
            detector.monitored_locations
        )
        benchmark.extra_info["trie_nodes"] = detector.total_trie_nodes()
        if merged:
            # Coarser keys → no more locations than the precise keying.
            precise_runner = prepare(spec, CONFIG_FULL)
            _, precise = precise_runner()
            assert detector.monitored_locations <= precise.monitored_locations
