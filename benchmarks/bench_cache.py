"""Section 4 — the runtime cache as a fast path.

Two families of benchmarks:

* microbenchmarks of the per-event fast path (the paper inlines the
  cache lookup to ten PowerPC instructions; here we compare a cache hit
  against the trie weakness check it replaces);
* the tsp2 cache-effectiveness run, asserting the paper's observation
  that "in many benchmarks almost all accesses are discarded this way"
  (hit rates well above 90%) and recording how much trie work the
  cache absorbs.
"""

import pytest

from repro.detector import AccessCache, LockTrie
from repro.harness import CONFIG_FULL, CONFIG_NO_CACHE
from repro.lang.ast import AccessKind
from repro.workloads import BENCHMARKS

from conftest import prepare


class TestFastPathMicro:
    def test_cache_hit_cost(self, benchmark):
        cache = AccessCache()
        cache.insert(1, ("m", "f"), AccessKind.READ, anchor_lock=None)
        benchmark.group = "cache:fast-path"

        def hit():
            return cache.lookup(1, ("m", "f"), AccessKind.READ)

        assert benchmark(hit)

    def test_trie_weak_check_cost_shallow(self, benchmark):
        trie = LockTrie()
        trie.insert(frozenset(), 1, AccessKind.READ)
        benchmark.group = "cache:fast-path"

        def check():
            return trie.find_weaker(frozenset(), 1, AccessKind.READ)

        assert benchmark(check)

    def test_trie_weak_check_cost_deep(self, benchmark):
        trie = LockTrie()
        for depth in range(1, 6):
            trie.insert(frozenset(range(depth)), 1, AccessKind.READ)
        lockset = frozenset(range(8))
        benchmark.group = "cache:fast-path"

        def check():
            return trie.find_weaker(lockset, 1, AccessKind.READ)

        assert benchmark(check)

    def test_cache_miss_and_insert_cost(self, benchmark):
        benchmark.group = "cache:fast-path"
        cache = AccessCache()
        keys = [("m", i) for i in range(512)]

        def miss_insert():
            for key in keys:
                if not cache.lookup(2, key, AccessKind.WRITE):
                    cache.insert(2, key, AccessKind.WRITE, anchor_lock=None)

        benchmark(miss_insert)


class TestCacheEffectiveness:
    def test_tsp2_hit_rate(self, benchmark):
        runner = prepare(BENCHMARKS["tsp2"], CONFIG_FULL)
        benchmark.group = "cache:tsp2"
        _, detector = benchmark(runner)
        rate = detector.cache.stats.hit_rate
        benchmark.extra_info["hit_rate"] = round(rate, 4)
        assert rate > 0.85  # "almost all accesses are discarded this way"

    def test_tsp2_trie_work_without_cache(self, benchmark):
        runner = prepare(BENCHMARKS["tsp2"], CONFIG_NO_CACHE)
        benchmark.group = "cache:tsp2"
        _, detector = benchmark(runner)
        checks = (
            detector.trie_stats.weaker_hits + detector.trie_stats.weaker_misses
        )
        benchmark.extra_info["trie_weak_checks"] = checks

        cached_runner = prepare(BENCHMARKS["tsp2"], CONFIG_FULL)
        _, cached = cached_runner()
        cached_checks = (
            cached.trie_stats.weaker_hits + cached.trie_stats.weaker_misses
        )
        benchmark.extra_info["trie_weak_checks_with_cache"] = cached_checks
        # The cache absorbs the overwhelming majority of detector work
        # (the paper's tsp NoCache row: 42% → 3722%).
        assert checks > 5 * max(cached_checks, 1)
