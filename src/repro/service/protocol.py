"""The service wire protocol: report schema, classification, taxonomy.

Everything machine-readable the daemon emits is defined here, and the
CLI's ``repro check --report-json`` builds its output from the same
functions — that is what makes "service report byte-identical to CLI
report" a testable contract rather than a hope: both sides serialize
:func:`detection_report` through :func:`canonical_json`.

The report shape follows the lotus concurrency checker's
``--report-json`` discipline (SNIPPETS.md): one stable, versioned JSON
object per analysis with classified findings, so downstream tooling
can diff reports across runs, builds, and transport (CLI vs HTTP).
"""

from __future__ import annotations

import json
from typing import Optional

from ..lang import MJError
from ..runtime.binlog import MAGIC
from ..runtime.events import (
    LogCorruptError,
    LogNotFoundError,
    LogSchemaError,
    LogSchemaMismatchError,
)

#: Version of the ``report`` object schema.  Bump when fields change
#: meaning or layout; additions are allowed within a version.
REPORT_SCHEMA_VERSION = 1

#: CLI exit codes for the log-error taxonomy (``repro`` man contract).
EXIT_CLEAN = 0
EXIT_RACY = 1
EXIT_ERROR = 2
EXIT_CORRUPT = 3
EXIT_SCHEMA_MISMATCH = 4


def canonical_json(payload) -> str:
    """The one canonical serialization: sorted keys, no whitespace.

    Byte-identity claims (cache-hit vs cold-run, service vs CLI) are
    all claims about this encoding.
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=False
    )


# ----------------------------------------------------------------------
# Payload classification (the upload trust boundary's first gate).


KIND_PROGRAM = "program"
KIND_TUPLE_LOG = "tuple-log"
KIND_BINARY_LOG = "binary-log"


def classify_payload(body: bytes) -> str:
    """Classify an uploaded body by magic bytes.

    ``MJBL`` magic → binary log; a leading ``{`` (after whitespace) →
    tuple-JSON log; anything else is treated as MJ source text.  The
    same magic-byte discipline :func:`repro.runtime.binlog.open_log`
    applies to on-disk paths, lifted to in-memory uploads.
    """
    if body[: len(MAGIC)] == MAGIC:
        return KIND_BINARY_LOG
    stripped = body.lstrip()
    if stripped[:1] == b"{":
        return KIND_TUPLE_LOG
    return KIND_PROGRAM


# ----------------------------------------------------------------------
# The shared report payload.


def _encode_lockset(lockset) -> list:
    return sorted(lockset)


def _race_payload(report) -> dict:
    """One :class:`~repro.detector.report.RaceReport`, JSON-safe."""
    from ..detector.weaker import THREAD_BOTTOM
    from ..lang.ast import AccessKind

    prior_thread = (
        None if report.prior.thread is THREAD_BOTTOM else report.prior.thread
    )
    return {
        "object": report.object_label,
        "field": report.field,
        "location": str(report.key),
        "site": report.site_descriptor
        or f"site {report.current.site_id}",
        "current": {
            "thread": report.current.thread_id,
            "kind": "write" if report.current.is_write else "read",
            "site_id": report.current.site_id,
            "locks": _encode_lockset(report.current_lockset),
        },
        "prior": {
            "thread": prior_thread,
            "kind": (
                "write"
                if report.prior.kind is AccessKind.WRITE
                else "read"
            ),
            "locks": _encode_lockset(report.prior.lockset),
        },
        "static_partners": list(report.static_partners),
        "message": report.describe(),
    }


def detection_report(
    reports,
    stats,
    cache_stats=None,
    output=(),
) -> dict:
    """The ``report`` object: the single schema the CLI prints and the
    daemon embeds in job results.

    ``reports`` is a sequence of race reports, ``stats`` the detector's
    :class:`~repro.detector.pipeline.PipelineStats`, ``cache_stats``
    the access-cache statistics (None when the cache is disabled or the
    run was sharded without cache counters), ``output`` the program's
    print lines (empty for log-only analysis).
    """
    races = [_race_payload(report) for report in reports]
    return {
        "schema": REPORT_SCHEMA_VERSION,
        "verdict": "racy" if races else "clean",
        "race_count": len(races),
        "races": races,
        "racy_locations": sorted({race["location"] for race in races}),
        "racy_objects": sorted({race["object"] for race in races}),
        "funnel": {
            "accesses": stats.accesses,
            "owned_filtered": stats.owned_filtered,
            "cache_hits": stats.cache_hits,
            "weaker_filtered": stats.detector_weaker_filtered,
            "detector_processed": stats.detector_processed,
            "races_reported": stats.races_reported,
        },
        "cache": None
        if cache_stats is None
        else {
            "hits": cache_stats.hits,
            "misses": cache_stats.misses,
            "hit_rate": cache_stats.hit_rate,
        },
        "output": list(output),
    }


def verdict_payload(name: str, locations, objects, races: int) -> dict:
    """One detector axis's normalized answer, for the NDJSON stream."""
    return {
        "axis": name,
        "racy_locations": sorted(str(key) for key in locations),
        "racy_objects": sorted(str(label) for label in objects),
        "races": races,
    }


# ----------------------------------------------------------------------
# Error taxonomy → exit codes and HTTP statuses.


def exit_code_for(error: BaseException) -> int:
    """The CLI exit code for a classified log error."""
    if isinstance(error, LogNotFoundError):
        return EXIT_ERROR
    if isinstance(error, LogCorruptError):
        return EXIT_CORRUPT
    if isinstance(error, LogSchemaMismatchError):
        return EXIT_SCHEMA_MISMATCH
    return EXIT_ERROR


def http_status_for(error: BaseException) -> int:
    """The HTTP status the daemon answers for a classified error.

    The same taxonomy as the CLI exit codes: missing → 404, damaged
    bytes → 422 (the body names the byte offset), schema skew or a
    payload that is not a log/program at all → 400.  MJ compile errors
    are 422 (well-formed request, unprocessable program); everything
    unclassified is a 500.
    """
    if isinstance(error, LogNotFoundError):
        return 404
    if isinstance(error, LogCorruptError):
        return 422
    if isinstance(error, LogSchemaMismatchError):
        return 400
    if isinstance(error, (MJError, LogSchemaError)):
        return 422
    return 500


def error_taxonomy(error: BaseException) -> str:
    """The stable machine name of an error class."""
    if isinstance(error, LogNotFoundError):
        return "not-found"
    if isinstance(error, LogCorruptError):
        return "corrupt"
    if isinstance(error, LogSchemaMismatchError):
        return "schema-mismatch"
    if isinstance(error, MJError):
        return "compile-error"
    if isinstance(error, LogSchemaError):
        return "log-error"
    return "internal"


def error_payload(error: BaseException) -> dict:
    """The JSON body of an error response (or errored job result)."""
    payload: dict = {
        "error": str(error),
        "taxonomy": error_taxonomy(error),
    }
    offset: Optional[int] = getattr(error, "offset", None)
    if offset is not None:
        payload["offset"] = offset
    return payload
