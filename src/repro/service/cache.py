"""The content-addressed compile cache.

MJ compilation is front-loaded: lexing, parsing, resolution, the static
datarace analysis, escape analysis, and instrumentation planning all
happen before the first event is executed — and a detection service
sees the same programs over and over (CI re-checking a commit, a fuzz
driver mutating one seed, a benchmark hammering one workload).  The
cache keys the *finished* front end by content: sha256 over the
submission's filename and source bytes plus the producing planner's
fingerprint (configuration + plan schema version) maps to the resolved
program plus its instrumentation plan, so each distinct program is
compiled once per worker lifetime and every later job reuses the
artifacts — and an entry can never be served to a lookup that would
have planned it differently.

Reuse is sound because a ``(resolved, plan)`` pair is immutable after
planning: the planner mutates the AST *during* planning (which is why
one may never re-plan a resolved program), but execution only reads
it, and every engine run constructs fresh runtime state (uid
allocator, scheduler, heap), so repeated runs over one cached entry
are byte-identical — the service's cache-parity test pins exactly
that.  The closure-compiled engine still lowers the cached AST to
closures per run (its compiled code deliberately closes over engine
instance state), but that is the cheap single AST walk; the expensive
analyses are what the cache amortizes.

The cache is process-local.  Each long-lived worker process owns one
instance; entries are never shipped across the pipe (resolved programs
close over AST nodes and are expensive to pickle), which is exactly
why the pool keeps workers alive across jobs instead of forking per
job.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

from ..instrument.planner import PlannerConfig, plan_instrumentation
from ..lang.resolver import compile_source

#: Cache-status values carried in job results.
HIT = "hit"
MISS = "miss"
UNCACHED = "n/a"

#: Bumped whenever the shape of the cached artifacts changes — a new
#: plan field, a different site-id assignment, a resolver change that
#: alters what execution reads from the cached front end.
PLAN_SCHEMA_VERSION = 2


def plan_fingerprint(planner: Optional[PlannerConfig] = None) -> str:
    """Fingerprint of the instrumentation-plan *producer*.

    Covers the planner configuration (every analysis toggle) and the
    plan schema version, so cached entries are addressed by what was
    compiled *and how*: two daemons (or two epochs of one codebase)
    that would plan the same source differently can never alias keys.
    """
    config = planner if planner is not None else PlannerConfig()
    digest = hashlib.sha256()
    digest.update(f"plan-schema:{PLAN_SCHEMA_VERSION}".encode("utf-8"))
    digest.update(b"\x00")
    digest.update(repr(config).encode("utf-8"))
    return digest.hexdigest()[:16]


def source_fingerprint(
    source: str,
    filename: str = "<input>",
    plan: Optional[str] = None,
) -> str:
    """sha256 over ``filename NUL source NUL plan`` — the content address.

    The filename participates because it is embedded in every site
    descriptor (and therefore in race-report bytes): the same source
    submitted under two names is two distinct report streams.  The
    ``plan`` component is the :func:`plan_fingerprint` of the planner
    that will compile on a miss — the original key hashed only the
    submission, so one address could name artifacts from two different
    planner configurations or plan schemas.
    """
    digest = hashlib.sha256()
    digest.update(filename.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(source.encode("utf-8"))
    digest.update(b"\x00")
    digest.update((plan if plan is not None else plan_fingerprint()).encode())
    return digest.hexdigest()


@dataclass
class CachedProgram:
    """One compiled front end: everything detection needs but the run."""

    fingerprint: str
    filename: str
    resolved: object
    plan: object
    #: Whether *this lookup* hit ("hit") or compiled fresh ("miss").
    status: str = MISS


class CompileCache:
    """Content-addressed map: fingerprint → :class:`CachedProgram`."""

    def __init__(
        self,
        max_entries: Optional[int] = None,
        planner: Optional[PlannerConfig] = None,
    ) -> None:
        #: FIFO-evicted when ``max_entries`` is set (insertion order —
        #: good enough for a daemon whose program population is small
        #: and recurring; no LRU bookkeeping on the hot path).
        self._entries: dict[str, CachedProgram] = {}
        self.max_entries = max_entries
        self.planner = planner if planner is not None else PlannerConfig()
        #: The plan component every key of this cache carries.
        self.plan_fingerprint = plan_fingerprint(self.planner)
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(
        self, source: str, filename: str = "<input>"
    ) -> CachedProgram:
        """The compiled front end for ``source``, compiling on miss.

        Compile errors propagate (and are *not* negatively cached: a
        malformed submission should not poison the address of a later
        valid one — fingerprints are content addresses, so a different
        body is a different key anyway).
        """
        fingerprint = source_fingerprint(
            source, filename, plan=self.plan_fingerprint
        )
        entry = self._entries.get(fingerprint)
        if entry is not None:
            self.hits += 1
            return CachedProgram(
                fingerprint=fingerprint,
                filename=filename,
                resolved=entry.resolved,
                plan=entry.plan,
                status=HIT,
            )
        self.misses += 1
        resolved = compile_source(source, filename=filename)
        plan = plan_instrumentation(resolved, self.planner)
        entry = CachedProgram(
            fingerprint=fingerprint,
            filename=filename,
            resolved=resolved,
            plan=plan,
            status=MISS,
        )
        if (
            self.max_entries is not None
            and len(self._entries) >= self.max_entries
        ):
            self._entries.pop(next(iter(self._entries)))
        self._entries[fingerprint] = entry
        return entry

    def counters(self) -> dict:
        """JSON-safe counters for ``/stats`` aggregation."""
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "plan_fingerprint": self.plan_fingerprint,
        }
