"""The asyncio HTTP/1.1 front end of ``repro serve``.

Stdlib only: :func:`asyncio.start_server` plus a small hand-rolled
HTTP/1.1 request parser with keep-alive (HTTP/1.1 requests reuse the
connection until the client sends ``Connection: close``; NDJSON
streams and oversized uploads always terminate it).  The event loop
owns accept/parse/respond and the job bookkeeping; all detection runs
in the worker pool
(:mod:`repro.service.jobs`), so a slow job never stalls health checks,
polls, or new submissions.

Endpoints (the full contract lives in ``docs/service.md``):

``POST /submit``
    Body is MJ source, a tuple-JSON log, or an MJBL binary log —
    classified by magic bytes.  Query parameters: ``engine``, ``seed``,
    ``filename`` (program jobs), ``wait=1`` (block until the job
    finishes and return the full result), ``stream=1`` (NDJSON: one
    line per detector-axis verdict as each completes, then the final
    job record).  Default is async: ``202`` with the job id, poll
    ``GET /jobs/<id>``.  A full queue answers ``429`` with
    ``Retry-After``; a draining daemon answers ``503``.  Uploaded logs
    are validated *at submission*, so damaged bytes fail fast with the
    log-error taxonomy mapped onto HTTP: missing → 404, corrupt →
    422 (body carries the byte offset), schema mismatch → 400.

``GET /jobs/<id>``
    The job record (state, timing, axis verdicts so far, result or
    error).  Polling always answers 200; the taxonomy status is on the
    ``wait=1`` response and inside the record.

``GET /stats``
    Pool counters, queue depth, and merged per-worker compile-cache
    counters.

``GET /healthz``
    Liveness (and whether the daemon is draining).

``SIGTERM``/``SIGINT`` starts a graceful drain: stop accepting
submissions, finish every queued and in-flight job, then exit.
"""

from __future__ import annotations

import asyncio
import signal
import sys
from dataclasses import dataclass
from typing import Optional
from urllib.parse import parse_qs, urlsplit

from ..lang import MJError
from ..runtime import DEFAULT_ENGINE, ENGINES, TIERING_MODES
from .jobs import WorkerPool
from .protocol import (
    KIND_BINARY_LOG,
    KIND_PROGRAM,
    KIND_TUPLE_LOG,
    canonical_json,
    classify_payload,
    error_payload,
    http_status_for,
)

_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Upload ceiling: a 64 MiB MJBL log is ~2.4M access records — far past
#: anything the harness produces; bigger uploads get a 413, not an OOM.
MAX_BODY_BYTES = 64 * 1024 * 1024


@dataclass
class ServeConfig:
    """``repro serve`` knobs, exactly the CLI flags."""

    host: str = "127.0.0.1"
    port: int = 8787
    workers: int = 2
    queue_depth: int = 16
    timeout: float = 30.0
    #: Engine worker program runs default to (per-job ``engine=`` query
    #: parameter overrides).
    engine: str = DEFAULT_ENGINE
    #: Tiering mode for worker program runs; None defers to the
    #: engine's ``REPRO_TIERING`` default.  Per-job ``tiering=`` query
    #: parameter overrides.
    tiering: Optional[str] = None


def _validate_upload(kind: str, body: bytes) -> None:
    """Fail fast at the submission trust boundary.

    Log uploads are validated here, in the parent, so a damaged log is
    a *request* error (422 with a byte offset) at submit time, not a
    failed job discovered by polling.  v1 binary logs validate
    structurally in O(1); v2 logs additionally inflate-check their
    compressed blocks (one zlib pass, no record decoding) so a garbled
    deflated span is caught here with its block offset.  Tuple logs pay
    their one parse+validate pass (they are the compatibility path —
    the daemon's bulk format is MJBL).  Program bodies only need to be
    text here; compile errors are real work and stay in the workers.
    """
    from ..runtime.binlog import open_log, temporary_binary_log

    if kind == KIND_PROGRAM:
        try:
            body.decode("utf-8")
        except UnicodeDecodeError as error:
            raise MJError(
                f"program source is not valid UTF-8 "
                f"(byte {error.start})"
            ) from error
        return
    suffix = ".mjbl" if kind == KIND_BINARY_LOG else ".json"
    with temporary_binary_log(suffix=suffix) as spool:
        spool.write_bytes(body)
        log = open_log(spool)
        try:
            validate = getattr(log, "validate_blocks", None)
            if validate is not None:
                validate()
        finally:
            close = getattr(log, "close", None)
            if close is not None:
                close()


class ServiceApp:
    """One daemon instance: HTTP server + worker pool + drain logic."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.pool = WorkerPool(
            workers=config.workers,
            timeout=config.timeout,
            queue_depth=config.queue_depth,
        )
        self.draining = False
        self._shutdown = asyncio.Event()
        self._server: Optional[asyncio.base_events.Server] = None
        self.port: Optional[int] = None

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        await self.pool.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    def request_shutdown(self) -> None:
        """Signal-safe: flip to draining and wake the main coroutine."""
        self.draining = True
        self._shutdown.set()

    async def run_until_shutdown(self) -> None:
        await self._shutdown.wait()
        # Graceful drain: stop accepting, let open connections finish,
        # run the queue dry, then stop the workers.
        self._server.close()
        await self._server.wait_closed()
        await self.pool.drain()

    async def stop(self) -> None:
        """Hard stop for tests: no drain, just tear everything down."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.pool.stop()

    # -- HTTP plumbing ---------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        # HTTP/1.1 keep-alive: serve requests off one connection until
        # the client closes, sends ``Connection: close``, or a response
        # that must terminate the connection (NDJSON streams, a 413
        # whose body was never read) is written.
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, target, headers, body, version = request
                keep_alive = body is not None and self._wants_keep_alive(
                    version, headers
                )
                must_close = await self._route(
                    writer, method, target, headers, body, keep_alive
                )
                await writer.drain()
                if must_close or not keep_alive:
                    break
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
        ):
            pass
        except Exception as error:  # noqa: BLE001 — last-resort 500
            try:
                self._respond(writer, 500, error_payload(error))
            except ConnectionError:
                pass
        finally:
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    @staticmethod
    def _wants_keep_alive(version: str, headers: dict) -> bool:
        """HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close; an
        explicit ``Connection`` header wins either way."""
        connection = headers.get("connection", "").lower()
        if "close" in connection:
            return False
        if "keep-alive" in connection:
            return True
        return version == "HTTP/1.1"

    async def _read_request(self, reader):
        line = await reader.readline()
        if not line:
            return None
        try:
            method, target, version = (
                line.decode("latin-1").rstrip("\r\n").split(" ", 2)
            )
        except ValueError:
            return None
        headers = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length") or 0)
        if length > MAX_BODY_BYTES:
            # 413 downstream; the unread body poisons the connection,
            # so the handler must close it after responding.
            return method, target, headers, None, version
        body = await reader.readexactly(length) if length else b""
        return method, target, headers, body, version

    def _respond(
        self, writer, status: int, payload, extra_headers=(),
        keep_alive: bool = False,
    ) -> None:
        body = canonical_json(payload).encode("utf-8") + b"\n"
        head = [
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
            *extra_headers,
            "",
            "",
        ]
        writer.write("\r\n".join(head).encode("latin-1") + body)

    def _start_stream(self, writer) -> None:
        head = [
            "HTTP/1.1 200 OK",
            "Content-Type: application/x-ndjson",
            "Connection: close",
            "",
            "",
        ]
        writer.write("\r\n".join(head).encode("latin-1"))

    async def _stream_line(self, writer, payload) -> None:
        writer.write(canonical_json(payload).encode("utf-8") + b"\n")
        await writer.drain()

    # -- routing ---------------------------------------------------------

    async def _route(
        self, writer, method, target, headers, body, keep_alive: bool
    ) -> bool:
        """Answer one request; returns True when the connection must
        close regardless of the keep-alive negotiation."""
        url = urlsplit(target)
        path = url.path
        if body is None:
            self._respond(
                writer,
                413,
                {
                    "error": f"body exceeds {MAX_BODY_BYTES} bytes",
                    "taxonomy": "too-large",
                },
            )
            return True
        if path == "/healthz":
            self._respond(
                writer, 200, {"ok": True, "draining": self.draining},
                keep_alive=keep_alive,
            )
            return False
        if path == "/stats":
            stats = self.pool.stats()
            stats["draining"] = self.draining
            self._respond(writer, 200, stats, keep_alive=keep_alive)
            return False
        if path.startswith("/jobs/"):
            record = self.pool.jobs.get(path[len("/jobs/"):])
            if record is None:
                self._respond(
                    writer,
                    404,
                    {"error": "no such job", "taxonomy": "not-found"},
                    keep_alive=keep_alive,
                )
            else:
                self._respond(
                    writer, 200, record.to_json(), keep_alive=keep_alive
                )
            return False
        if path == "/submit":
            if method != "POST":
                self._respond(
                    writer,
                    405,
                    {"error": "POST required", "taxonomy": "bad-request"},
                    keep_alive=keep_alive,
                )
                return False
            return await self._submit(writer, url, body, keep_alive)
        self._respond(
            writer,
            404,
            {"error": f"no route {path}", "taxonomy": "not-found"},
            keep_alive=keep_alive,
        )
        return False

    async def _submit(self, writer, url, body: bytes,
                      keep_alive: bool) -> bool:
        if self.draining:
            self._respond(
                writer,
                503,
                {"error": "daemon is draining", "taxonomy": "draining"},
                keep_alive=keep_alive,
            )
            return False
        query = parse_qs(url.query)

        def param(name: str) -> Optional[str]:
            values = query.get(name)
            return values[-1] if values else None

        engine = param("engine") or self.config.engine
        if engine not in ENGINES:
            self._respond(
                writer,
                400,
                {
                    "error": f"unknown engine {engine!r} "
                    f"(choose from: {', '.join(sorted(ENGINES))})",
                    "taxonomy": "bad-request",
                },
                keep_alive=keep_alive,
            )
            return False
        tiering = param("tiering") or self.config.tiering
        if tiering is not None and tiering not in TIERING_MODES:
            self._respond(
                writer,
                400,
                {
                    "error": f"unknown tiering mode {tiering!r} "
                    f"(choose from: {', '.join(TIERING_MODES)})",
                    "taxonomy": "bad-request",
                },
                keep_alive=keep_alive,
            )
            return False
        seed_raw = param("seed")
        try:
            seed = int(seed_raw) if seed_raw is not None else None
        except ValueError:
            self._respond(
                writer,
                400,
                {
                    "error": f"seed must be an integer, got {seed_raw!r}",
                    "taxonomy": "bad-request",
                },
                keep_alive=keep_alive,
            )
            return False

        kind = classify_payload(body)
        try:
            _validate_upload(kind, body)
        except Exception as error:  # noqa: BLE001 — taxonomy-mapped
            self._respond(
                writer, http_status_for(error), error_payload(error),
                keep_alive=keep_alive,
            )
            return False

        payload = {
            "kind": kind,
            "body": body,
            "engine": engine if kind == KIND_PROGRAM else None,
            "tiering": tiering if kind == KIND_PROGRAM else None,
            "seed": seed,
            "filename": param("filename") or "<input>",
        }
        record = self.pool.submit(kind, payload)
        if record is None:
            self._respond(
                writer,
                429,
                {
                    "error": "job queue is full",
                    "taxonomy": "backpressure",
                },
                extra_headers=("Retry-After: 1",),
                keep_alive=keep_alive,
            )
            return False

        if param("stream"):
            # Subscribe before the first await: the dispatcher cannot
            # have run yet, so no event can be missed.  The NDJSON
            # stream has no length framing, so it always terminates the
            # connection.
            queue: asyncio.Queue = asyncio.Queue()
            record.subscribers.append(queue)
            self._start_stream(writer)
            await self._stream_line(writer, record.to_json())
            while True:
                event = await queue.get()
                if event is None:
                    break
                _tag, payload = event
                await self._stream_line(writer, payload)
            return True
        if param("wait"):
            await record.completed.wait()
            status = 200 if record.error is None else record.status_code
            self._respond(
                writer, status, record.to_json(), keep_alive=keep_alive
            )
            return False
        self._respond(writer, 202, record.to_json(), keep_alive=keep_alive)
        return False


async def _serve(config: ServeConfig) -> int:
    app = ServiceApp(config)
    await app.start()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, app.request_shutdown)
        except (NotImplementedError, RuntimeError):
            pass  # non-Unix loops; Ctrl-C still raises KeyboardInterrupt
    print(
        f"repro serve: listening on {config.host}:{app.port} "
        f"({config.workers} workers, queue depth {config.queue_depth}, "
        f"timeout {config.timeout:g}s, engine {config.engine}, "
        f"tiering {config.tiering or 'default'})",
        flush=True,
    )
    try:
        await app.run_until_shutdown()
    finally:
        print("repro serve: drained, shutting down", file=sys.stderr,
              flush=True)
    return 0


def serve_forever(config: ServeConfig) -> int:
    """Run the daemon until SIGTERM/SIGINT; returns the exit code."""
    try:
        return asyncio.run(_serve(config))
    except KeyboardInterrupt:
        return 0
