"""Race-detection-as-a-service: the ``repro serve`` daemon.

The paper's pitch is that precise datarace detection is cheap enough to
run routinely; this package is how "routinely" scales past one CLI
invocation.  A long-lived asyncio HTTP daemon accepts POSTed MJ
programs, tuple-JSON event logs, or MJBL binary logs, classifies them
by magic bytes, and dispatches detection jobs to a bounded pool of
long-lived worker processes — CPU-bound detection never blocks the
event loop, and each worker's content-addressed compile cache compiles
a distinct program exactly once per daemon lifetime.

Layout (see ``docs/service.md`` for the HTTP contract):

* :mod:`repro.service.protocol` — the machine-readable report schema
  shared with ``repro check --report-json``, payload classification,
  and the log-error-taxonomy → HTTP-status mapping.
* :mod:`repro.service.cache` — the content-addressed compile cache
  (sha256 of filename + source → resolved program + instrumentation
  plan), process-local to each worker.
* :mod:`repro.service.jobs` — job records, the worker-side execution
  of one job, and the bounded worker pool with per-job wall-clock
  timeouts (timeout kills the worker and respawns it).
* :mod:`repro.service.app` — the asyncio HTTP/1.1 front end: submit /
  poll / stream endpoints, FIFO queue with 429 backpressure, graceful
  SIGTERM drain.
"""

from .app import ServeConfig, serve_forever
from .cache import CompileCache
from .jobs import JobRecord, WorkerPool
from .protocol import (
    REPORT_SCHEMA_VERSION,
    canonical_json,
    classify_payload,
    detection_report,
    error_payload,
    http_status_for,
)

__all__ = [
    "CompileCache",
    "JobRecord",
    "REPORT_SCHEMA_VERSION",
    "ServeConfig",
    "WorkerPool",
    "canonical_json",
    "classify_payload",
    "detection_report",
    "error_payload",
    "http_status_for",
    "serve_forever",
]
