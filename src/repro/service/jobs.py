"""Detection jobs and the bounded worker pool.

Detection is CPU-bound Python, so the daemon never runs it on the
event loop: jobs go to a small pool of **long-lived** worker processes
(long-lived is what makes the per-worker
:class:`~repro.service.cache.CompileCache` worth having — a fork-per-
job pool would start every job cold).  Each worker owns one duplex
pipe; the parent dispatches one job at a time to an idle worker and a
single reader thread multiplexes all pipes back into the event loop
with :func:`multiprocessing.connection.wait`.

Per-job wall-clock timeouts are enforced with real cancellation: a
watchdog kills the worker process (SIGKILL — CPU-bound detection holds
the GIL, so nothing gentler is reliable), marks the job ``timeout``,
and respawns a fresh worker so pool capacity is restored.  A worker
that dies for any other reason mid-job fails that job and is respawned
the same way.

Worker-side execution mirrors the CLI exactly — same engine runners,
same detector configuration, same report payload — which is what makes
the service's reports byte-identical to ``repro check --report-json``
for the same inputs.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import multiprocessing.connection
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Optional

from .cache import UNCACHED, CompileCache
from .protocol import (
    KIND_BINARY_LOG,
    KIND_PROGRAM,
    KIND_TUPLE_LOG,
    detection_report,
    error_payload,
    http_status_for,
    verdict_payload,
)

#: Job states, in lifecycle order.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
ERROR = "error"
TIMEOUT = "timeout"

#: The detector axes a job replays beyond the paper detector, in the
#: order their verdicts stream out.
EXTRA_AXES = ("hb", "eraser")


# ----------------------------------------------------------------------
# Worker-side execution.


def execute_job(payload: dict, cache: CompileCache, emit) -> dict:
    """Run one job to completion inside a worker process.

    ``payload`` carries the raw upload plus options; ``emit`` receives
    one :func:`~repro.service.protocol.verdict_payload` per detector
    axis as it completes (the NDJSON stream rides on this).  Returns
    the job result; log/compile errors propagate to the caller, which
    maps them through the error taxonomy.
    """
    kind = payload["kind"]
    if kind == KIND_PROGRAM:
        return _execute_program(payload, cache, emit)
    if kind in (KIND_TUPLE_LOG, KIND_BINARY_LOG):
        return _execute_log(payload, emit)
    raise ValueError(f"unknown job kind {kind!r}")


def _policy(seed):
    from ..runtime import RandomPolicy, RoundRobinPolicy

    return RandomPolicy(seed) if seed is not None else RoundRobinPolicy()


def _replay_axes(replay, emit) -> list:
    """Replay the recorded stream through the non-paper axes, emitting
    each verdict as it completes.  ``replay`` is a callable delivering
    the full stream (including run-end) into the sink it is given —
    ``BinaryLogReader.replay_into`` for mapped uploads (batched decode,
    no tuple materialization), a ``replay_entries`` closure otherwise."""
    from ..baselines import EraserDetector, HappensBeforeDetector

    detectors = {
        "hb": HappensBeforeDetector,
        "eraser": EraserDetector,
    }
    verdicts = []
    for axis in EXTRA_AXES:
        detector = detectors[axis]()
        replay(detector)
        verdict = verdict_payload(
            axis,
            detector.racy_locations,
            detector.racy_objects,
            len(detector.reports),
        )
        verdicts.append(verdict)
        emit(verdict)
    return verdicts


def _execute_program(payload: dict, cache: CompileCache, emit) -> dict:
    from ..detector import RaceDetector
    from ..harness import TimedRaceDetector
    from ..runtime import MulticastSink, RecordingSink, engine_runner

    source = payload["body"].decode("utf-8")
    engine = payload["engine"]
    tiering = payload.get("tiering")

    started = time.perf_counter()
    cached = cache.lookup(source, payload.get("filename", "<input>"))
    compile_seconds = time.perf_counter() - started

    log = RecordingSink()
    detector = TimedRaceDetector(
        resolved=cached.resolved,
        static_races=cached.plan.static_races,
    )
    tier_counters = None
    if tiering == "on" and engine == "compiled":
        # Tiering only engages with the detector as the sole sink, so
        # the tiered path runs detection and recording as two runs: the
        # tiered run produces the report and the execute timing (the
        # time a tiered client pays), the recording run feeds the extra
        # replay axes.  Reports are byte-identical either way — the
        # tiering contract, enforced by the difflab gate and the
        # service parity tests.
        started = time.perf_counter()
        result = engine_runner(engine)(
            cached.resolved,
            sink=detector,
            trace_sites=cached.plan.trace_sites,
            policy=_policy(payload.get("seed")),
            tiering="on",
        )
        execute_seconds = time.perf_counter() - started
        engine_runner(engine)(
            cached.resolved,
            sink=log,
            trace_sites=cached.plan.trace_sites,
            policy=_policy(payload.get("seed")),
        )
        tier_counters = (
            detector.tiering.as_dict()
            if detector.tiering is not None
            else None
        )
    else:
        started = time.perf_counter()
        result = engine_runner(engine)(
            cached.resolved,
            sink=MulticastSink([log, detector]),
            trace_sites=cached.plan.trace_sites,
            policy=_policy(payload.get("seed")),
            tiering=tiering,
        )
        execute_seconds = time.perf_counter() - started

    paper = verdict_payload(
        "paper",
        (str(key) for key in detector.reports.racy_locations),
        detector.reports.racy_objects,
        len(detector.reports.reports),
    )
    emit(paper)
    started = time.perf_counter()
    from ..runtime.events import replay_entries

    axes = [paper] + _replay_axes(
        lambda sink: replay_entries(log.log, sink), emit
    )
    detect_seconds = time.perf_counter() - started

    report = detection_report(
        detector.reports.reports,
        detector.stats,
        detector.cache.stats if detector.cache else None,
        output=result.output,
    )
    return {
        "kind": KIND_PROGRAM,
        "engine": engine,
        "tiering": tier_counters,
        "cache": {
            "status": cached.status,
            "fingerprint": cached.fingerprint,
        },
        "timing": {
            "compile_seconds": compile_seconds,
            "execute_seconds": execute_seconds,
            "detect_seconds": detect_seconds,
            # The same attribution split as ``repro check
            # --phase-times`` / run_workload_phases: interpret vs
            # filter vs cache vs lockset/trie inside the recorded run.
            "phases": detector.phase_seconds(execute_seconds),
        },
        "report": report,
        "axes": axes,
    }


def _execute_log(payload: dict, emit) -> dict:
    from ..detector import DetectorConfig, detect_sharded
    from ..runtime.binlog import (
        BinaryLogReader,
        as_log_entries,
        open_log,
        temporary_binary_log,
    )

    kind = payload["kind"]
    suffix = ".mjbl" if kind == KIND_BINARY_LOG else ".json"
    started = time.perf_counter()
    with temporary_binary_log(suffix=suffix) as spool:
        spool.write_bytes(payload["body"])
        log = open_log(spool)
        try:
            # The exact `repro check --from-log` code path: one shard,
            # serial, default configuration, open_log as the single
            # validation point.
            sharded = detect_sharded(
                log,
                1,
                config=DetectorConfig(),
                validate=False,
            )
            paper = verdict_payload(
                "paper",
                (str(key) for key in sharded.reports.racy_locations),
                sharded.reports.racy_objects,
                len(sharded.reports.reports),
            )
            emit(paper)
            if isinstance(log, BinaryLogReader):
                replay = log.replay_into
            else:
                from ..runtime.events import replay_entries

                replay = lambda sink: replay_entries(  # noqa: E731
                    as_log_entries(log), sink
                )
            axes = [paper] + _replay_axes(replay, emit)
        finally:
            if isinstance(log, BinaryLogReader):
                log.close()
    detect_seconds = time.perf_counter() - started

    report = detection_report(
        sharded.reports.reports,
        sharded.stats,
        sharded.cache_stats,
        output=(),
    )
    return {
        "kind": kind,
        "engine": None,
        "cache": {"status": UNCACHED, "fingerprint": None},
        "timing": {
            "compile_seconds": 0.0,
            "execute_seconds": 0.0,
            "detect_seconds": detect_seconds,
            "phases": None,
        },
        "report": report,
        "axes": axes,
    }


#: The tier-transition counters each worker accumulates across its
#: lifetime for ``/stats`` aggregation.
TIERING_TOTAL_KEYS = (
    "inline_owned",
    "inline_cache_hits",
    "elided_static",
    "elided_settled",
    "elided_total",
)


def _worker_main(conn) -> None:
    """The worker process body: serve jobs until the pipe closes."""
    cache = CompileCache()
    tiering_totals = {key: 0 for key in TIERING_TOTAL_KEYS}
    tiering_totals["tiered_jobs"] = 0
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        job_id, payload = message

        def emit(event, _job_id=job_id):
            conn.send(("axis", _job_id, event))

        try:
            result = execute_job(payload, cache, emit)
            result["compile_cache"] = cache.counters()
            tier = result.get("tiering")
            if tier is not None:
                tiering_totals["tiered_jobs"] += 1
                for key in TIERING_TOTAL_KEYS:
                    tiering_totals[key] += tier.get(key, 0)
            result["tiering_totals"] = dict(tiering_totals)
            conn.send(("done", job_id, result))
        except BaseException as error:  # noqa: BLE001 — taxonomy-mapped
            conn.send(
                ("error", job_id, error_payload(error),
                 http_status_for(error))
            )
    conn.close()


# ----------------------------------------------------------------------
# Parent-side job records and the pool.


@dataclass
class JobRecord:
    """Everything the daemon knows about one job."""

    id: str
    kind: str
    engine: Optional[str]
    state: str = QUEUED
    submitted_monotonic: float = 0.0
    started_monotonic: Optional[float] = None
    finished_monotonic: Optional[float] = None
    result: Optional[dict] = None
    error: Optional[dict] = None
    #: HTTP status a waier/poller should surface for a failed job.
    status_code: int = 200
    #: Verdicts per detector axis, in completion order.
    axes: list = field(default_factory=list)
    #: NDJSON subscribers: asyncio queues fed axis/final events.
    subscribers: list = field(default_factory=list)
    #: Set once the job reaches a terminal state.
    completed: asyncio.Event = field(default_factory=asyncio.Event)

    @property
    def queue_seconds(self) -> float:
        if self.started_monotonic is None:
            return time.monotonic() - self.submitted_monotonic
        return self.started_monotonic - self.submitted_monotonic

    @property
    def run_seconds(self) -> Optional[float]:
        if self.started_monotonic is None:
            return None
        end = self.finished_monotonic
        if end is None:
            end = time.monotonic()
        return end - self.started_monotonic

    def to_json(self) -> dict:
        payload = {
            "job": {
                "id": self.id,
                "kind": self.kind,
                "engine": self.engine,
                "state": self.state,
                "queue_seconds": self.queue_seconds,
                "run_seconds": self.run_seconds,
            },
            "axes": list(self.axes),
            "result": self.result,
            "error": self.error,
        }
        return payload

    def _publish(self, event) -> None:
        for queue in self.subscribers:
            queue.put_nowait(event)

    def finish(
        self,
        state: str,
        result: Optional[dict] = None,
        error: Optional[dict] = None,
        status_code: int = 200,
    ) -> None:
        self.state = state
        self.result = result
        self.error = error
        self.status_code = status_code
        self.finished_monotonic = time.monotonic()
        self.completed.set()
        self._publish(("final", self.to_json()))
        self._publish(None)  # stream sentinel
        self.subscribers.clear()


@dataclass
class _Worker:
    index: int
    process: multiprocessing.Process
    conn: object
    job_id: Optional[str] = None
    deadline: Optional[float] = None
    dead: bool = False


class WorkerPool:
    """Bounded workers + FIFO queue + timeouts + graceful drain."""

    def __init__(
        self,
        workers: int = 2,
        timeout: float = 30.0,
        queue_depth: int = 16,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be positive")
        if queue_depth < 1:
            raise ValueError("queue_depth must be positive")
        self.worker_count = workers
        self.timeout = timeout
        self.queue_depth = queue_depth
        self.jobs: dict[str, JobRecord] = {}
        self.counters = {
            "submitted": 0,
            "rejected": 0,
            "done": 0,
            "error": 0,
            "timeout": 0,
        }
        #: Latest compile-cache counters reported by each worker slot.
        self.worker_cache: dict[int, dict] = {}
        #: Latest tier-transition totals reported by each worker slot.
        self.worker_tiering: dict[int, dict] = {}
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=queue_depth)
        self._idle: asyncio.Queue = asyncio.Queue()
        self._workers: list[_Worker] = []
        self._by_job: dict[str, _Worker] = {}
        self._mp = multiprocessing.get_context("fork")
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._tasks: list = []
        self._reader: Optional[threading.Thread] = None
        self._stopping = False
        self._next_index = 0

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        for _ in range(self.worker_count):
            worker = self._spawn()
            self._workers.append(worker)
            self._idle.put_nowait(worker)
        self._reader = threading.Thread(
            target=self._reader_main, name="repro-serve-reader", daemon=True
        )
        self._reader.start()
        self._tasks = [
            asyncio.create_task(self._dispatch_loop()),
            asyncio.create_task(self._watchdog_loop()),
        ]

    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self._mp.Pipe()
        process = self._mp.Process(
            target=_worker_main,
            args=(child_conn,),
            name=f"repro-serve-worker-{self._next_index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        worker = _Worker(
            index=self._next_index, process=process, conn=parent_conn
        )
        self._next_index += 1
        return worker

    async def drain(self) -> None:
        """Finish every queued and in-flight job, then stop workers."""
        while self._queue.qsize() or self._by_job:
            await asyncio.sleep(0.05)
        await self.stop()

    async def stop(self) -> None:
        """Stop now: cancel loops, shut workers down, join the reader."""
        self._stopping = True
        for task in self._tasks:
            task.cancel()
        for worker in self._workers:
            if worker.dead:
                continue
            try:
                worker.conn.send(None)
            except (OSError, BrokenPipeError, ValueError):
                pass
        if self._reader is not None:
            self._reader.join(timeout=2.0)
        for worker in self._workers:
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout=2.0)
            worker.conn.close()

    # -- submission ------------------------------------------------------

    def submit(self, kind: str, payload: dict) -> Optional[JobRecord]:
        """Enqueue one job; None means the queue is full (HTTP 429)."""
        record = JobRecord(
            id=uuid.uuid4().hex[:12],
            kind=kind,
            engine=payload.get("engine"),
            submitted_monotonic=time.monotonic(),
        )
        try:
            self._queue.put_nowait((record, payload))
        except asyncio.QueueFull:
            self.counters["rejected"] += 1
            return None
        self.counters["submitted"] += 1
        self.jobs[record.id] = record
        return record

    def stats(self) -> dict:
        cache_totals = {"hits": 0, "misses": 0, "entries": 0}
        plan_fp = None
        for counters in self.worker_cache.values():
            for key in cache_totals:
                cache_totals[key] += counters.get(key, 0)
            plan_fp = counters.get("plan_fingerprint", plan_fp)
        lookups = cache_totals["hits"] + cache_totals["misses"]
        tiering_totals = {key: 0 for key in TIERING_TOTAL_KEYS}
        tiering_totals["tiered_jobs"] = 0
        for totals in self.worker_tiering.values():
            for key in tiering_totals:
                tiering_totals[key] += totals.get(key, 0)
        return {
            "workers": self.worker_count,
            "queue_depth": self.queue_depth,
            "queued": self._queue.qsize(),
            "running": len(self._by_job),
            "jobs": dict(self.counters),
            "compile_cache": {
                **cache_totals,
                "hit_rate": (
                    cache_totals["hits"] / lookups if lookups else 0.0
                ),
                # All workers share one planner config, so one
                # fingerprint describes every key in the pool.
                "plan_fingerprint": plan_fp,
            },
            "tiering": tiering_totals,
        }

    # -- internals -------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            # Idle worker first, queue second: a job stays *in* the
            # queue until a worker can take it, so "queue full" (429)
            # means exactly `queue_depth` jobs pending — the dispatcher
            # never holds an extra one in flight.
            worker = await self._idle.get()
            while worker.dead:
                worker = await self._idle.get()
            record, payload = await self._queue.get()
            record.state = RUNNING
            record.started_monotonic = time.monotonic()
            worker.job_id = record.id
            worker.deadline = time.monotonic() + self.timeout
            self._by_job[record.id] = worker
            try:
                worker.conn.send((record.id, payload))
            except (OSError, BrokenPipeError, ValueError):
                self._fail_worker(worker, "worker pipe closed at dispatch")

    async def _watchdog_loop(self) -> None:
        while True:
            await asyncio.sleep(0.05)
            now = time.monotonic()
            for worker in list(self._workers):
                if (
                    worker.dead
                    or worker.job_id is None
                    or worker.deadline is None
                    or now < worker.deadline
                ):
                    continue
                record = self.jobs.get(worker.job_id)
                self._retire(worker, kill=True)
                if record is not None and not record.completed.is_set():
                    self.counters["timeout"] += 1
                    record.finish(
                        TIMEOUT,
                        error={
                            "error": (
                                f"job exceeded the {self.timeout:g}s "
                                f"wall-clock budget; worker killed"
                            ),
                            "taxonomy": "timeout",
                        },
                        status_code=504,
                    )

    def _retire(self, worker: _Worker, kill: bool) -> None:
        """Take a worker out of service and restore pool capacity."""
        worker.dead = True
        if worker.job_id is not None:
            self._by_job.pop(worker.job_id, None)
            worker.job_id = None
        if kill and worker.process.is_alive():
            worker.process.kill()
        try:
            worker.conn.close()
        except OSError:
            pass
        self._workers.remove(worker)
        replacement = self._spawn()
        self._workers.append(replacement)
        self._idle.put_nowait(replacement)

    def _fail_worker(self, worker: _Worker, reason: str) -> None:
        record = (
            self.jobs.get(worker.job_id)
            if worker.job_id is not None
            else None
        )
        self._retire(worker, kill=True)
        if record is not None and not record.completed.is_set():
            self.counters["error"] += 1
            record.finish(
                ERROR,
                error={"error": reason, "taxonomy": "worker-died"},
                status_code=500,
            )

    def _reader_main(self) -> None:
        wait = multiprocessing.connection.wait
        while not self._stopping:
            by_conn = {
                worker.conn: worker
                for worker in list(self._workers)
                if not worker.dead
            }
            if not by_conn:
                time.sleep(0.05)
                continue
            try:
                ready = wait(list(by_conn), timeout=0.2)
            except OSError:
                continue
            for conn in ready:
                worker = by_conn[conn]
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    if not worker.dead and not self._stopping:
                        self._loop.call_soon_threadsafe(
                            self._fail_worker,
                            worker,
                            "worker process died mid-job",
                        )
                    continue
                self._loop.call_soon_threadsafe(
                    self._on_message, worker, message
                )

    def _on_message(self, worker: _Worker, message) -> None:
        tag, job_id = message[0], message[1]
        record = self.jobs.get(job_id)
        if record is None or record.completed.is_set():
            # A late message from a worker whose job already timed out.
            return
        if tag == "axis":
            record.axes.append(message[2])
            record._publish(("axis", message[2]))
            return
        if tag == "done":
            result = message[2]
            self.worker_cache[worker.index] = result.pop(
                "compile_cache", {}
            )
            self.worker_tiering[worker.index] = result.pop(
                "tiering_totals", {}
            )
            self.counters["done"] += 1
            record.finish(DONE, result=result)
        elif tag == "error":
            self.counters["error"] += 1
            record.finish(ERROR, error=message[2], status_code=message[3])
        if worker.job_id == job_id and not worker.dead:
            worker.job_id = None
            worker.deadline = None
            self._by_job.pop(job_id, None)
            self._idle.put_nowait(worker)
