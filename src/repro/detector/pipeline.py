"""The assembled dynamic detection pipeline (Figure 1, runtime half).

Event flow for each access::

    runtime access event
      → lockset attachment        (LockTracker, Section 2.4's e.L)
      → ownership filter          (Section 7; optional)
      → per-thread R/W caches     (Section 4;  optional)
      → trie detector             (Section 3: weaker-check, race-check,
                                   insert, prune)

Monitor and thread lifecycle events maintain the locksets, drive cache
eviction (outermost monitorexit), and implement the ``S_j`` join
pseudo-locks (Section 2.3).

The pipeline is an :class:`~repro.runtime.events.EventSink`, so it can
be attached directly to the interpreter (on-the-fly detection) or fed
from a :class:`~repro.runtime.events.RecordingSink` log (post-mortem
detection).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..lang.ast import AccessKind
from ..lang.resolver import ResolvedProgram
from ..runtime.events import AccessEvent, EventSink, LocationInterner, ObjectKind
from .cache import AccessCache
from .config import DetectorConfig
from .locksets import LockTracker, join_pseudo_lock
from .ownership import SHARED, OwnershipFilter
from .report import RaceReport, ReportCollector
from .trie import LockTrie, TrieStats
from .trie_packed import PackedLockTrie


@dataclass
class PipelineStats:
    """End-to-end counters; the per-stage funnel of the event stream."""

    accesses: int = 0
    owned_filtered: int = 0
    cache_hits: int = 0
    detector_weaker_filtered: int = 0
    detector_processed: int = 0
    races_reported: int = 0

    def funnel(self) -> str:
        return (
            f"{self.accesses} accesses → "
            f"{self.accesses - self.owned_filtered} shared → "
            f"{self.accesses - self.owned_filtered - self.cache_hits} cache misses → "
            f"{self.detector_processed} trie-processed → "
            f"{self.races_reported} race reports"
        )

    def merge(self, other: "PipelineStats") -> None:
        """Accumulate another pipeline's counters (shard merging)."""
        self.accesses += other.accesses
        self.owned_filtered += other.owned_filtered
        self.cache_hits += other.cache_hits
        self.detector_weaker_filtered += other.detector_weaker_filtered
        self.detector_processed += other.detector_processed
        self.races_reported += other.races_reported


def static_partner_descriptors(resolved, static_races, site_id: int) -> tuple:
    """Descriptors of the static may-race partners of a site (mapped
    through loop-peeling origins), capped for readability.

    Module-level so the sharded engine can post-fill descriptors for
    reports produced by process-pool workers that ran without the
    resolved program.
    """
    if static_races is None or resolved is None:
        return ()
    origin = (
        resolved.origin_of(site_id) if site_id in resolved.sites else site_id
    )
    partners = sorted(static_races.partners_of(origin))
    descriptors = [
        resolved.sites[partner].descriptor
        for partner in partners[:4]
        if partner in resolved.sites
    ]
    if len(partners) > 4:
        descriptors.append(f"... and {len(partners) - 4} more")
    return tuple(descriptors)


class RaceDetector(EventSink):
    """On-the-fly datarace detector: ownership + caches + lockset tries."""

    #: The per-location trie implementation.  Overridable so the difflab
    #: can inject deliberately broken variants and prove the differential
    #: harness catches them (:mod:`repro.difflab.inject`).
    trie_class = LockTrie

    def __init__(
        self,
        config: Optional[DetectorConfig] = None,
        resolved: Optional[ResolvedProgram] = None,
        static_races=None,
    ):
        self.config = config if config is not None else DetectorConfig()
        self._resolved = resolved
        #: Optional StaticRaceSet: lets reports name the statically
        #: identified partner sites (Section 2.6's debugging support).
        self._static_races = static_races
        self.locks = LockTracker()
        self.ownership = OwnershipFilter() if self.config.ownership else None
        self.cache = (
            AccessCache(
                size=self.config.cache_size,
                write_covers_read=self.config.write_cache_covers_reads,
            )
            if self.config.cache
            else None
        )
        self.trie_stats = TrieStats()
        self._tries: dict = {}
        self._packed: PackedLockTrie | None = (
            PackedLockTrie(self.trie_stats) if self.config.packed_tries else None
        )
        self.reports = ReportCollector()
        self.stats = PipelineStats()
        #: Tier-transition counters, set at run end by the compiled
        #: engine's tiering layer (None when tiering never engaged).
        self.tiering = None
        #: Canonical location keys: one MemoryLocation per (object,
        #: field) pair, reused by every event touching that location.
        self.interner = LocationInterner()
        self._fields_merged = self.config.fields_merged
        # Pre-bound hot-path state: `on_access_parts` runs once per
        # emitted access, so attribute chains are resolved here once.
        # The ownership table/stats are reached into directly — the
        # admission logic is inlined in `on_access_parts` (it must stay
        # counter-identical to `OwnershipFilter.admit`).
        self._intern = self.interner.intern
        self._owners = self.ownership._owners if self.ownership else None
        self._own_stats = self.ownership.stats if self.ownership else None
        self._cache_access = self.cache.access_tracked if self.cache else None
        # The sync-event handlers run in the batched binary-log replay's
        # tight per-block loops, so the tracker methods are pre-bound
        # alongside the access-path state above.
        self._locks_enter = self.locks.enter
        self._locks_exit = self.locks.exit
        self._cache_release = self.cache.on_lock_release if self.cache else None
        # Main thread's own pseudo-lock, for uniformity with children.
        if self.config.join_pseudolocks:
            self.locks.acquire_pseudo(0, join_pseudo_lock(0))

    # ------------------------------------------------------------------
    # Location keying.

    def _key(self, event: AccessEvent):
        if self._fields_merged:
            # Praun/Gross-style coarsening within our detector: all
            # fields of one object map to one location (Table 3's
            # "FieldsMerged" column).  Static fields of a class remain
            # distinguished per the paper's parenthetical — class
            # objects are exempted from merging.
            if event.object_kind is ObjectKind.CLASS:
                return event.location
            return event.location.object_uid
        return event.location

    # ------------------------------------------------------------------
    # Synchronization events.

    def on_monitor_enter(self, thread_id: int, lock_uid: int, reentrant: bool) -> None:
        if reentrant:
            return  # Nested enter: lockset unchanged (Section 4.2).
        self._locks_enter(thread_id, lock_uid)

    def on_monitor_exit(self, thread_id: int, lock_uid: int, reentrant: bool) -> None:
        if reentrant:
            return
        self._locks_exit(thread_id, lock_uid)
        release = self._cache_release
        if release is not None:
            release(thread_id, lock_uid)

    def on_thread_start(self, parent_id: int, child_id: int) -> None:
        if self.config.join_pseudolocks:
            # mon-enter(S_j) at the start of T_j's execution.
            self.locks.acquire_pseudo(child_id, join_pseudo_lock(child_id))

    def on_thread_end(self, thread_id: int) -> None:
        if self.config.join_pseudolocks:
            # mon-exit(S_j) at the end of T_j's execution.
            self.locks.release_pseudo(thread_id, join_pseudo_lock(thread_id))

    def on_thread_join(self, joiner_id: int, joined_id: int) -> None:
        if self.config.join_pseudolocks:
            # The joiner performs mon-enter(S_j) after the join completes
            # and holds it from then on: operations after the join cannot
            # run concurrently with T_j's operations.
            self.locks.acquire_pseudo(joiner_id, join_pseudo_lock(joined_id))

    # ------------------------------------------------------------------
    # Access events.

    def on_access(self, event: AccessEvent) -> None:
        """Event-object entry point (compat path; recorded logs and
        manually constructed events).  Delegates to the scalar fast
        path, which re-interns the location."""
        location = event.location
        self.on_access_parts(
            location.object_uid,
            location.field,
            event.thread_id,
            event.kind,
            event.site_id,
            event.object_kind,
            event.object_label,
        )

    def on_access_parts(
        self,
        object_uid: int,
        field: str,
        thread_id: int,
        kind: AccessKind,
        site_id: int,
        object_kind: ObjectKind,
        object_label: str,
    ) -> None:
        """The hot path: one access, no event object, interned key.

        An :class:`AccessEvent` is materialized only if the access ends
        up in a race report — the overwhelmingly common filtered cases
        (owned, cache hit, weaker-than) allocate nothing.
        """
        stats = self.stats
        stats.accesses += 1
        if self._fields_merged and object_kind is not ObjectKind.CLASS:
            key = object_uid
        else:
            key = self._intern(object_uid, field)

        owners = self._owners
        if owners is not None:
            # Inlined OwnershipFilter.admit — the per-event method call
            # and result tuple are measurable at this rate.  Counters
            # must track the method exactly (see tests/unit/test_ownership).
            owner = owners.get(key)
            if owner is SHARED:
                self._own_stats.shared_passed += 1
            elif owner is None:
                owners[key] = thread_id
                self._own_stats.owned_filtered += 1
                stats.owned_filtered += 1
                return
            elif owner == thread_id:
                self._own_stats.owned_filtered += 1
                stats.owned_filtered += 1
                return
            else:
                owners[key] = SHARED
                self._own_stats.transitions += 1
                if self.cache is not None:
                    # The owner may have cached accesses to this
                    # location while it was owned; those entries were
                    # never sent to the detector and must not suppress
                    # future events.
                    self.cache.on_location_shared(key)

        cache_access = self._cache_access
        if cache_access is not None and cache_access(
            thread_id, key, kind, self.locks
        ):
            stats.cache_hits += 1
            return

        self._detect_parts(
            key, object_uid, field, thread_id, kind, site_id, object_kind,
            object_label,
        )

    def _detect_parts(
        self, key, object_uid, field, thread_id, kind, site_id, object_kind,
        object_label,
    ) -> None:
        lockset = self.locks.lockset(thread_id)
        prior = None
        if self._packed is not None:
            trie = self._packed
            if trie.find_weaker(key, lockset, thread_id, kind):
                self.stats.detector_weaker_filtered += 1
                return
            self.stats.detector_processed += 1
            prior = trie.find_race(
                key,
                lockset,
                thread_id,
                kind,
                read_read_races=self.config.read_read_races,
            )
            node, merged = trie.insert(key, lockset, thread_id, kind)
            trie.prune_stronger(key, lockset, merged[0], merged[1], keep=node)
        else:
            trie = self._tries.get(key)
            if trie is None:
                trie = self.trie_class(self.trie_stats)
                self._tries[key] = trie

            # Weakness check: the vast majority of accesses stop here.
            if trie.find_weaker(lockset, thread_id, kind):
                self.stats.detector_weaker_filtered += 1
                return
            self.stats.detector_processed += 1

            prior = trie.find_race(
                lockset,
                thread_id,
                kind,
                read_read_races=self.config.read_read_races,
            )
            node = trie.insert(lockset, thread_id, kind)
            # Prune with the node's *post-meet* value: if the insert
            # merged threads to t⊥ (or kinds to WRITE), the node now
            # covers strictly more stored accesses than the raw event
            # would.
            trie.prune_stronger(lockset, node.thread, node.kind, keep=node)
        if prior is not None:
            event = AccessEvent(
                location=self.interner.intern(object_uid, field),
                thread_id=thread_id,
                kind=kind,
                site_id=site_id,
                object_kind=object_kind,
                object_label=object_label,
            )
            self._report(key, event, lockset, prior)

    def _report(self, key, event, lockset, prior) -> None:
        descriptor = ""
        if self._resolved is not None and event.site_id in self._resolved.sites:
            descriptor = self._resolved.sites[event.site_id].descriptor
        report = RaceReport(
            key=key,
            field=event.location.field,
            object_label=event.object_label,
            current=event,
            current_lockset=lockset,
            prior=prior,
            site_descriptor=descriptor,
            static_partners=self._static_partners_of(event.site_id),
        )
        self.reports.add(report)
        self.stats.races_reported += 1

    def _static_partners_of(self, site_id: int) -> tuple:
        return static_partner_descriptors(
            self._resolved, self._static_races, site_id
        )

    # ------------------------------------------------------------------
    # Introspection.

    @property
    def monitored_locations(self) -> int:
        """Locations with trie history (the paper reports 6562 for tsp)."""
        if self._packed is not None:
            return self._packed.location_count
        return len(self._tries)

    def total_trie_nodes(self) -> int:
        """Live trie nodes (the paper reports 7967 for tsp)."""
        if self._packed is not None:
            return self._packed.node_count()
        return sum(trie.node_count() for trie in self._tries.values())
