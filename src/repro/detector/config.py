"""Configuration of the dynamic detection pipeline.

The flags correspond to the paper's experimental configurations:

* ``cache=False``          → the ``NoCache`` column of Table 2;
* ``ownership=False``      → the ``NoOwnership`` column of Table 3;
* ``fields_merged=True``   → the ``FieldsMerged`` column of Table 3;
* ``join_pseudolocks``     → the ``S_j`` modeling of Section 2.3 (on by
  default; turning it off shows the spurious post-join reports the
  paper contrasts with Eraser in Section 8.3);
* ``read_read_races``      → footnote 2's memory-model variant;
* ``write_cache_covers_reads`` → reproduction extension (see
  :mod:`repro.detector.cache`).

The *static* configurations of Table 2 (``NoStatic``, ``NoDominators``,
``NoPeeling``) live in :class:`repro.instrument.planner.PlannerConfig`,
since they select which sites are instrumented rather than how events
are processed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class DetectorConfig:
    ownership: bool = True
    cache: bool = True
    cache_size: int = 256
    fields_merged: bool = False
    join_pseudolocks: bool = True
    read_read_races: bool = False
    write_cache_covers_reads: bool = False
    #: Use the packed (lockset-major) trie the paper teases in
    #: Section 8.2: one shared trie whose nodes carry per-location
    #: entries, instead of one trie per location.  Behaviourally
    #: identical; node counts scale with distinct locksets rather than
    #: with locations.
    packed_tries: bool = False

    def but(self, **changes) -> "DetectorConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)


#: The paper's complete algorithm ("Full" in Tables 2 and 3).
FULL = DetectorConfig()
#: Table 3 variants.
FIELDS_MERGED = FULL.but(fields_merged=True)
NO_OWNERSHIP = FULL.but(ownership=False)
#: Table 2 variant (dynamic side).
NO_CACHE = FULL.but(cache=False)
