"""Dynamic potential-deadlock detection (the paper's Section 10 plan).

The conclusions announce "we plan to broaden the static/dynamic
coanalysis approach to tackle other problems such as deadlock
detection"; this module supplies that extension with the classic
GoodLock-style *lock-order graph*:

* whenever a thread acquires lock ``l2`` while already holding ``l1``,
  record the edge ``l1 → l2`` together with its context — the acquiring
  thread and the *gate set* (the other locks held at that moment);
* a cycle in the graph is a **potential deadlock** when its edges can
  be attributed to pairwise-distinct threads whose gate sets are
  pairwise disjoint (a common gate lock serializes the acquisitions
  and makes the cycle harmless).

Like the race detector, this reports *feasible* problems: the observed
run need not actually deadlock — the interleaving that would is
inferred from the order structure, mirroring the paper's feasible-race
philosophy (Section 2.2) applied to deadlocks.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from ..runtime.events import EventSink


@dataclass(frozen=True)
class LockEdge:
    """One observed acquisition-order fact: holder → acquired."""

    holder: int
    acquired: int
    thread_id: int
    #: Other locks held at acquisition time (candidates for gate locks).
    gates: frozenset


@dataclass
class DeadlockReport:
    """A potential deadlock: a cycle of locks with witnessing threads."""

    #: The lock cycle, e.g. ``(l1, l2)`` means l1→l2→l1.
    cycle: tuple
    #: One witnessing thread per edge, in cycle order.
    threads: tuple

    def describe(self) -> str:
        hops = []
        locks = list(self.cycle)
        for index, lock in enumerate(locks):
            nxt = locks[(index + 1) % len(locks)]
            hops.append(
                f"thread {self.threads[index]} holds L{lock} "
                f"while taking L{nxt}"
            )
        return "POTENTIAL DEADLOCK: " + "; ".join(hops)


class DeadlockDetector(EventSink):
    """Builds the lock-order graph online; query cycles at any point."""

    def __init__(self, max_cycle_length: int = 4):
        if max_cycle_length < 2:
            raise ValueError("cycles need at least two locks")
        self._max_cycle_length = max_cycle_length
        #: thread id -> current stack of held lock uids.
        self._held: dict[int, list[int]] = defaultdict(list)
        #: (holder, acquired) -> list of contexts (thread, gates).
        self._edges: dict[tuple, list] = defaultdict(list)
        self._edge_keys: set = set()
        self.reports: list[DeadlockReport] = []
        self._reported_cycles: set = set()

    # ------------------------------------------------------------------
    # Event intake.

    def on_monitor_enter(self, thread_id: int, lock_uid: int, reentrant: bool) -> None:
        if reentrant:
            return
        held = self._held[thread_id]
        for position, holder in enumerate(held):
            gates = frozenset(held[:position] + held[position + 1:])
            key = (holder, lock_uid, thread_id, gates)
            if key not in self._edge_keys:
                self._edge_keys.add(key)
                self._edges[(holder, lock_uid)].append(
                    LockEdge(holder, lock_uid, thread_id, gates)
                )
        held.append(lock_uid)

    def on_monitor_exit(self, thread_id: int, lock_uid: int, reentrant: bool) -> None:
        if reentrant:
            return
        held = self._held[thread_id]
        if held and held[-1] == lock_uid:
            held.pop()
        elif lock_uid in held:  # Defensive: tolerate non-LIFO streams.
            held.remove(lock_uid)

    def on_run_end(self) -> None:
        self.analyze()

    # ------------------------------------------------------------------
    # Cycle search.

    def analyze(self) -> list[DeadlockReport]:
        """Search the lock-order graph for valid cycles; returns (and
        accumulates) the reports."""
        successors: dict[int, set[int]] = defaultdict(set)
        for holder, acquired in self._edges:
            successors[holder].add(acquired)

        for start in sorted(successors):
            self._search(start, [start], successors)
        return self.reports

    def _search(self, start: int, path: list[int], successors) -> None:
        current = path[-1]
        for nxt in sorted(successors.get(current, ())):
            if nxt == start and len(path) >= 2:
                self._try_report(tuple(path))
            elif (
                nxt > start  # Canonical: cycle rooted at its minimum.
                and nxt not in path
                and len(path) < self._max_cycle_length
            ):
                self._search(start, path + [nxt], successors)

    def _try_report(self, cycle: tuple) -> None:
        canonical = self._canonical(cycle)
        if canonical in self._reported_cycles:
            return
        witnesses = self._witnesses(cycle)
        if witnesses is None:
            return
        self._reported_cycles.add(canonical)
        self.reports.append(DeadlockReport(cycle=cycle, threads=witnesses))

    @staticmethod
    def _canonical(cycle: tuple) -> tuple:
        pivot = cycle.index(min(cycle))
        return cycle[pivot:] + cycle[:pivot]

    def _witnesses(self, cycle: tuple):
        """Pick one edge context per hop such that threads are pairwise
        distinct and gate sets pairwise disjoint; None if impossible."""
        hops = [
            (cycle[i], cycle[(i + 1) % len(cycle)])
            for i in range(len(cycle))
        ]
        chosen: list[LockEdge] = []

        def backtrack(index: int) -> bool:
            if index == len(hops):
                return True
            for edge in self._edges.get(hops[index], ()):
                if any(edge.thread_id == c.thread_id for c in chosen):
                    continue
                if any(edge.gates & c.gates for c in chosen):
                    continue
                chosen.append(edge)
                if backtrack(index + 1):
                    return True
                chosen.pop()
            return False

        if backtrack(0):
            return tuple(edge.thread_id for edge in chosen)
        return None

    # ------------------------------------------------------------------

    @property
    def edge_count(self) -> int:
        return sum(len(contexts) for contexts in self._edges.values())

    def describe_all(self) -> str:
        return "\n".join(report.describe() for report in self.reports)
