"""The ownership model (Sections 2.3 and 7).

``start`` ordering is approximated with per-location *ownership*: the
first thread to access a location owns it, and accesses by the owner
are invisible to the detector.  The first access by a *different*
thread moves the location to the shared state; that access and all
subsequent ones flow through to the rest of the pipeline.  This
captures the ubiquitous idiom of one thread initializing data that a
child thread later processes without locking, which would otherwise be
reported as a race (the paper's ``NoOwnership`` column in Table 3 shows
the flood of spurious reports without it).

State machine, per location::

    VIRGIN (absent) ──first access by t──▶ EXCLUSIVE(t)
    EXCLUSIVE(t)    ──access by t──▶ EXCLUSIVE(t)      (filtered)
    EXCLUSIVE(t)    ──access by u≠t──▶ SHARED           (transition)
    SHARED          ──any access──▶ SHARED              (admitted)

``SHARED`` is *terminal*: no edge leaves it (``reown`` is restricted to
still-owned locations).  ``EXCLUSIVE(t)`` is terminal *relative to a
sole surviving thread t*: if every other thread has ended and no new
thread can ever be started, only the ``t``-loop edge remains reachable.
The tiered compiler (:mod:`repro.runtime.tiering`) promotes on exactly
these terminal states — promotion is irreversible because the states
themselves admit no escaping transition.
"""

from __future__ import annotations

from dataclasses import dataclass


#: Marker for locations in the shared state (owner = ⊥ in the paper).
SHARED = object()


@dataclass
class OwnershipStats:
    owned_filtered: int = 0
    transitions: int = 0
    shared_passed: int = 0


class OwnershipFilter:
    """Tracks each location's owner and filters owned accesses."""

    def __init__(self) -> None:
        self._owners: dict = {}
        self.stats = OwnershipStats()

    def admit(self, key, thread_id: int) -> tuple[bool, bool]:
        """Process an access to ``key`` by ``thread_id``.

        Returns ``(admit, transitioned)``: ``admit`` is True when the
        event must flow to the detector; ``transitioned`` is True when
        this very access moved the location from owned to shared (the
        pipeline must then evict the location from all caches before
        processing the event — Section 7.2).
        """
        owner = self._owners.get(key, None)
        if owner is SHARED:
            self.stats.shared_passed += 1
            return True, False
        if owner is None:
            self._owners[key] = thread_id
            self.stats.owned_filtered += 1
            return False, False
        if owner == thread_id:
            self.stats.owned_filtered += 1
            return False, False
        self._owners[key] = SHARED
        self.stats.transitions += 1
        return True, True

    def reown(self, key, thread_id: int) -> None:
        """Re-assign ownership of a still-owned location (condition-sync
        handoff): the access that would have transitioned the location to
        shared is instead treated as the new owner's first access and
        stays filtered.  Callers must not use this on SHARED locations.
        """
        self._owners[key] = thread_id
        self.stats.owned_filtered += 1

    def is_shared(self, key) -> bool:
        return self._owners.get(key) is SHARED

    def owner_of(self, key):
        """The owner thread id, ``SHARED``, or ``None`` (never accessed)."""
        return self._owners.get(key)

    def would_filter(self, key, thread_id: int) -> bool:
        """Pure predicate: would :meth:`admit` filter this access?

        True exactly when the access is in a state whose only effect is
        the two ``owned_filtered`` counters (plus a virgin claim) —
        the elision-eligibility condition of the tiered compiler.
        Never mutates the owner table or the statistics.
        """
        owner = self._owners.get(key, None)
        if owner is SHARED:
            return False
        return owner is None or owner == thread_id

    def fold_elided(self, count: int) -> None:
        """Account ``count`` accesses the tiered engine proved would be
        filtered and therefore never materialized.  Each elided access
        is, by :meth:`would_filter`, an access whose untired effect is
        exactly ``owned_filtered += 1`` — so folding the count restores
        counter parity with the untired pipeline."""
        self.stats.owned_filtered += count
