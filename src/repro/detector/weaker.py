"""The weaker-than relation (Section 3.1 of the paper).

Given two past access events ``p`` and ``q``, if every future access
that races with ``q`` also races with ``p``, then ``q`` is redundant for
race detection and only ``p`` (the *weaker* event) need be kept.  The
paper's sufficient dynamic condition is the partial order

.. math::

    p \\sqsubseteq q \\iff p.m = q.m \\land p.L \\subseteq q.L
                     \\land p.t \\sqsubseteq q.t \\land p.a \\sqsubseteq q.a

with the thread order ``t_i ⊑ t_j ⟺ t_i = t_j ∨ t_i = t⊥`` and the
access order ``a_i ⊑ a_j ⟺ a_i = a_j ∨ a_i = WRITE``.

``t⊥`` ("bottom": at least two distinct threads) and ``t⊤`` ("top": no
threads, used for internal trie nodes) are module-level sentinels here.
Thread ids in events are plain ints; the sentinels are private singleton
objects that compare unequal to every int.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Union

from ..lang.ast import AccessKind


class _ThreadSentinel:
    """Singleton sentinel for the t⊥ / t⊤ pseudo-thread values."""

    __slots__ = ("_name",)

    def __init__(self, name: str):
        self._name = name

    def __repr__(self) -> str:
        return self._name

    def __reduce__(self):
        # Sentinels are compared by identity; unpickling (e.g. when a
        # race report crosses a process-pool boundary in the sharded
        # post-mortem engine) must yield the canonical singleton.
        return (_sentinel_by_name, (self._name,))


def _sentinel_by_name(name: str) -> "_ThreadSentinel":
    return THREAD_BOTTOM if name == "t⊥" else THREAD_TOP


#: "At least two distinct threads" — the merged-thread value (Section 3.1).
THREAD_BOTTOM = _ThreadSentinel("t⊥")
#: "No threads" — the value of trie nodes that represent no accesses.
THREAD_TOP = _ThreadSentinel("t⊤")

ThreadValue = Union[int, _ThreadSentinel]


def thread_leq(t_i: ThreadValue, t_j: ThreadValue) -> bool:
    """The thread partial order ``t_i ⊑ t_j``."""
    return t_i == t_j or t_i is THREAD_BOTTOM


def access_leq(a_i: AccessKind, a_j: AccessKind) -> bool:
    """The access-type partial order ``a_i ⊑ a_j``."""
    return a_i is a_j or a_i is AccessKind.WRITE


def thread_meet(t_i: ThreadValue, t_j: ThreadValue) -> ThreadValue:
    """The meet operator ⊓ on thread values (Section 3.2.1)."""
    if t_i is THREAD_TOP:
        return t_j
    if t_j is THREAD_TOP:
        return t_i
    if t_i == t_j:
        return t_i
    return THREAD_BOTTOM


def access_meet(a_i: AccessKind, a_j: AccessKind) -> AccessKind:
    """The meet operator ⊓ on access types."""
    if a_i is a_j:
        return a_i
    return AccessKind.WRITE


@dataclass(frozen=True)
class StoredAccess:
    """An access event as the detector stores it: ``(m, t, L, a)``.

    The memory location is kept outside (detector state is partitioned
    by location), so this is the per-location residue ``(t, L, a)`` plus
    the location key for the standalone helpers below.
    """

    location: object
    thread: ThreadValue
    lockset: FrozenSet[int]
    kind: AccessKind


def weaker_than(p: StoredAccess, q: StoredAccess) -> bool:
    """Definition 2: ``p ⊑ q``."""
    return (
        p.location == q.location
        and p.lockset <= q.lockset
        and thread_leq(p.thread, q.thread)
        and access_leq(p.kind, q.kind)
    )


def is_race(
    e_i: StoredAccess, e_j: StoredAccess, read_read_races: bool = False
) -> bool:
    """``IsRace(e_i, e_j)`` from Section 2.4.

    Only meaningful for *concrete* events (integer thread ids); events
    whose thread is t⊥ represent merged history, and racing against
    them is the trie's job (Case II), not this predicate's.

    ``read_read_races`` implements footnote 2: under some memory models
    two reads may race, in which case the write requirement is dropped.
    """
    if not (isinstance(e_i.thread, int) and isinstance(e_j.thread, int)):
        raise ValueError("IsRace is defined on concrete thread ids only")
    if e_i.location != e_j.location:
        return False
    if e_i.thread == e_j.thread:
        return False
    if e_i.lockset & e_j.lockset:
        return False
    if read_read_races:
        return True
    return e_i.kind is AccessKind.WRITE or e_j.kind is AccessKind.WRITE
