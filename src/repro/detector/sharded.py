"""Sharded parallel post-mortem detection.

The paper's detector state is *per memory location* — each location has
its own lockset trie, ownership record, and cache slots — so a recorded
event log partitions cleanly: route every access event to the shard
owning its object uid, replicate every synchronization event (monitor
enter/exit, thread start/end/join) to *all* shards, and each shard's
:class:`~repro.detector.pipeline.RaceDetector` sees exactly the
per-thread lockset history it would have seen in a serial run.  N
independent detectors then run with no shared state, and their outputs
merge into a single deterministic report.

Why the result is *identical* to a serial run, for every shard count:

* Locksets are driven only by the replicated sync events, so each
  shard's :class:`LockTracker` state at every access is exact.
* Tries, ownership, and race decisions are keyed per location, and
  every access of one location lands in one shard (routing is by
  object uid, which both normal and ``FieldsMerged`` keying are
  functions of).
* The per-thread caches only ever suppress events that the trie's
  weaker-than check would also have filtered (a cache hit certifies a
  previously recorded access that is weaker than the incoming one, and
  weaker-than is transitive), so cache effects can redistribute events
  between the ``cache_hits`` and ``detector_weaker_filtered`` counters
  but never change trie state, monitored locations, or reported races.

Merged counters therefore obey: ``races``, ``monitored_locations``,
``trie node totals``, ``accesses``, ``owned_filtered`` and
``detector_processed`` are invariant across shard counts, while
``cache_hits + detector_weaker_filtered`` is invariant as a *sum*.

Executors: ``"serial"`` (in-process loop; mapped logs decode once,
multiplexed across all shard detectors), ``"thread"`` (thread pool;
modest wins, the GIL serializes the hot path), and ``"process"``
(process pool; real parallelism — the compact tuple-encoded log entries
are cheap to pickle).  Process workers run without the resolved program;
the parent post-fills site descriptors and static-partner lists so the
reports are field-for-field identical to a serial run's.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence

from ..lang.resolver import ResolvedProgram
from ..runtime.binlog import BinaryLogReader, open_log
from ..runtime.events import RecordingSink, replay_entries, validate_entries
from .cache import CacheStats
from .config import DetectorConfig
from .pipeline import PipelineStats, RaceDetector, static_partner_descriptors
from .report import RaceReport, ReportCollector
from .trie import TrieStats

_EXECUTORS = ("serial", "thread", "process")


def partition_log(
    entries: Sequence[tuple], shards: int
) -> tuple[list[list[tuple]], int, int]:
    """Split a recorded event log into per-shard event streams.

    Access events are routed by ``object_uid % shards`` (all detector
    keys are functions of the uid, so every location's history lands in
    exactly one shard); synchronization events are replicated to every
    shard so each shard's lockset tracking is exact.

    Returns ``(shard_entries, access_events, sync_events)``.
    """
    if shards < 1:
        raise ValueError("shard count must be positive")
    access = RecordingSink.ACCESS
    shard_entries: list[list[tuple]] = [[] for _ in range(shards)]
    accesses = 0
    syncs = 0
    for entry in entries:
        if entry[0] == access:
            accesses += 1
            shard_entries[entry[1] % shards].append(entry)
        else:
            syncs += 1
            for stream in shard_entries:
                stream.append(entry)
    return shard_entries, accesses, syncs


@dataclass
class ShardOutcome:
    """One shard's detection output, compact enough to cross a process
    boundary."""

    shard_index: int
    reports: list[RaceReport]
    stats: PipelineStats
    trie_stats: TrieStats
    cache_stats: Optional[CacheStats]
    monitored_locations: int
    trie_nodes: int
    interned_locksets: int
    access_events: int


def _shard_outcome(shard_index: int, detector: RaceDetector) -> ShardOutcome:
    """Pack one shard detector's final state, identically for every
    executor and log format."""
    return ShardOutcome(
        shard_index=shard_index,
        reports=detector.reports.reports,
        stats=detector.stats,
        trie_stats=detector.trie_stats,
        cache_stats=detector.cache.stats if detector.cache is not None else None,
        monitored_locations=detector.monitored_locations,
        trie_nodes=detector.total_trie_nodes(),
        interned_locksets=detector.locks.interned_locksets,
        access_events=detector.stats.accesses,
    )


def _detect_shard(
    shard_index: int, entries: list[tuple], config: Optional[DetectorConfig]
) -> ShardOutcome:
    """Run one shard's detector over its partition of the log.

    Module-level (picklable) so it can be submitted to a process pool.
    Runs without the resolved program — site descriptors are post-filled
    by the parent — so only the config and the compact log entries cross
    the process boundary.
    """
    detector = RaceDetector(config=config)
    replay_entries(entries, detector)
    return _shard_outcome(shard_index, detector)


def _detect_shard_mapped(
    shard_index: int,
    path,
    shards: int,
    config: Optional[DetectorConfig],
) -> ShardOutcome:
    """Run one shard's detector over a *mapped* binary log.

    Module-level and picklable: only ``(path, shard, shards, config)``
    cross a process boundary — each worker opens its own mmap view and
    decodes batched, so no shard's event stream is ever materialized or
    pickled.  The shard index confines decoding to the byte ranges this
    shard consumes (its uid partition plus replicated sync blocks), and
    :meth:`~repro.runtime.binlog.BinaryLogReader.replay_into` feeds the
    detector columnar — whole record runs per ``iter_unpack`` sweep,
    no intermediate schema-v3 tuples.
    """
    detector = RaceDetector(config=config)
    with BinaryLogReader(path) as reader:
        reader.replay_into(detector, shard_index, shards)
    return _shard_outcome(shard_index, detector)


def _detect_shards_mapped_multiplexed(
    reader: BinaryLogReader, shards: int, config: Optional[DetectorConfig]
) -> list[ShardOutcome]:
    """All shards in one decode pass, through the already-open reader.

    The serial mapped executor's decode amplification fix: instead of N
    passes over the file (each inflating and unpacking every
    sync-bearing block to keep just its own uid partition),
    :meth:`~repro.runtime.binlog.BinaryLogReader.replay_sharded_into`
    decodes the file *once* and dispatches each access to the shard
    owning its uid straight from the unpack loop, broadcasting every
    sync event.  Each shard detector receives exactly the stream its
    own filtered pass would have delivered, in the same order, so the
    merged result is byte-identical; only the decode cost changes.
    """
    detectors = [RaceDetector(config=config) for _ in range(shards)]
    reader.replay_sharded_into(detectors)
    return [
        _shard_outcome(index, detector)
        for index, detector in enumerate(detectors)
    ]


def canonical_report_order(reports: Sequence[RaceReport]) -> list[RaceReport]:
    """Reports in the canonical cross-shard order: sorted by location
    key (stably, so each location's reports keep their log order).

    Apply to a serial detector's reports before comparing against a
    :class:`ShardedDetectionResult` — a location's reports are ordered
    identically in both, but locations interleave differently.
    """
    return sorted(reports, key=lambda report: str(report.key))


@dataclass
class ShardedDetectionResult:
    """The merged output of a sharded post-mortem run."""

    shards: int
    executor: str
    outcomes: list[ShardOutcome]
    #: Merged reports, in :func:`canonical_report_order`.
    reports: ReportCollector
    stats: PipelineStats
    trie_stats: TrieStats
    cache_stats: Optional[CacheStats]
    monitored_locations: int
    trie_nodes: int
    interned_locksets: int
    #: How the log split: accesses partitioned once, syncs copied
    #: to every shard.
    partitioned_accesses: int = 0
    replicated_sync_events: int = 0

    @property
    def races(self) -> int:
        return len(self.reports.reports)

    def shard_summary(self) -> str:
        loads = ", ".join(
            f"shard {outcome.shard_index}: {outcome.access_events}"
            for outcome in self.outcomes
        )
        return (
            f"{self.shards} shards ({self.executor}); access events per "
            f"shard: {loads}; {self.replicated_sync_events} sync events "
            f"replicated to each"
        )


def detect_sharded(
    log,
    shards: int,
    config: Optional[DetectorConfig] = None,
    resolved: Optional[ResolvedProgram] = None,
    static_races=None,
    executor: str = "serial",
    max_workers: Optional[int] = None,
    validate: bool = True,
) -> ShardedDetectionResult:
    """Run sharded post-mortem detection over a recorded event log.

    ``log`` is a :class:`~repro.runtime.events.RecordingSink`, a raw
    list of its tuple-encoded entries, a mapped
    :class:`~repro.runtime.binlog.BinaryLogReader`, or a path to an
    on-disk log of either format (auto-detected by magic bytes).
    ``executor`` selects how shards run: ``"serial"``, ``"thread"``, or
    ``"process"``.  The merged result is identical (races, monitored
    locations, trie node totals) to a serial
    :func:`~repro.detector.postmortem.detect_from_log` run, for every
    shard count, executor, and log format.

    Validation happens exactly once per log.  Tuple logs: ``validate``
    (default on) schema-checks before partitioning, so stale layouts
    fail with a clear :class:`~repro.runtime.events.LogSchemaError`
    rather than misdecoding inside a shard worker; callers holding a
    log they already validated (or recorded in-process this run) pass
    ``validate=False``.  Binary logs were validated structurally when
    the reader opened — no O(n) pre-scan happens here, and shard
    workers map only the byte ranges their partition consumes.
    """
    if executor not in _EXECUTORS:
        raise ValueError(f"unknown executor {executor!r}; choose from {_EXECUTORS}")
    if isinstance(log, (str, Path)):
        log = open_log(log)
        validate = False  # open_log is the single validation point
    if isinstance(log, BinaryLogReader):
        return _detect_sharded_mapped(
            log, shards, config, resolved, static_races, executor, max_workers
        )
    entries = log.log if isinstance(log, RecordingSink) else log
    if validate:
        validate_entries(entries)
    shard_entries, accesses, syncs = partition_log(entries, shards)

    if executor == "serial" or shards == 1:
        outcomes = [
            _detect_shard(index, stream, config)
            for index, stream in enumerate(shard_entries)
        ]
    else:
        pool_cls = (
            ProcessPoolExecutor if executor == "process" else ThreadPoolExecutor
        )
        workers = min(max_workers or shards, shards)
        with pool_cls(max_workers=workers) as pool:
            futures = [
                pool.submit(_detect_shard, index, stream, config)
                for index, stream in enumerate(shard_entries)
            ]
            outcomes = [future.result() for future in futures]

    return _merge_outcomes(
        outcomes, shards, executor, resolved, static_races, accesses, syncs
    )


def _detect_sharded_mapped(
    reader: BinaryLogReader,
    shards: int,
    config: Optional[DetectorConfig],
    resolved: Optional[ResolvedProgram],
    static_races,
    executor: str,
    max_workers: Optional[int],
) -> ShardedDetectionResult:
    """Sharded detection over a mapped binary log: no partitioning pass,
    no materialized shard streams — each shard decodes its own byte
    ranges straight off the mmap (its own process's mmap, for the
    process executor; only the path crosses the boundary)."""
    path = reader.path
    if shards == 1:
        outcomes = [_detect_shard_mapped(0, path, 1, config)]
    elif executor == "serial":
        # One decode pass multiplexed across all shard detectors —
        # serial sharding pays the file's decode cost once, not once
        # per shard.
        outcomes = _detect_shards_mapped_multiplexed(reader, shards, config)
    else:
        pool_cls = (
            ProcessPoolExecutor if executor == "process" else ThreadPoolExecutor
        )
        workers = min(max_workers or shards, shards)
        with pool_cls(max_workers=workers) as pool:
            futures = [
                pool.submit(_detect_shard_mapped, index, path, shards, config)
                for index in range(shards)
            ]
            outcomes = [future.result() for future in futures]
    return _merge_outcomes(
        outcomes,
        shards,
        executor,
        resolved,
        static_races,
        reader.access_count,
        reader.sync_count,
    )


def _merge_outcomes(
    outcomes: list[ShardOutcome],
    shards: int,
    executor: str,
    resolved: Optional[ResolvedProgram],
    static_races,
    accesses: int,
    syncs: int,
) -> ShardedDetectionResult:
    """Deterministic merge of per-shard outcomes into one result —
    shared by the tuple-partitioned and mmap-backed paths so both
    produce byte-identical reports and counters."""
    outcomes.sort(key=lambda outcome: outcome.shard_index)

    # Post-fill source context: shard workers run without the resolved
    # program, so reports come back with empty descriptors regardless of
    # executor; filling here keeps all three executors byte-identical.
    if resolved is not None:
        for outcome in outcomes:
            for report in outcome.reports:
                site_id = report.current.site_id
                if site_id in resolved.sites:
                    report.site_descriptor = resolved.sites[site_id].descriptor
                report.static_partners = static_partner_descriptors(
                    resolved, static_races, site_id
                )

    merged_reports = ReportCollector()
    for report in canonical_report_order(
        [report for outcome in outcomes for report in outcome.reports]
    ):
        merged_reports.add(report)

    stats = PipelineStats()
    trie_stats = TrieStats()
    cache_stats: Optional[CacheStats] = None
    monitored = 0
    nodes = 0
    locksets = 0
    for outcome in outcomes:
        stats.merge(outcome.stats)
        trie_stats.merge(outcome.trie_stats)
        if outcome.cache_stats is not None:
            if cache_stats is None:
                cache_stats = CacheStats()
            cache_stats.merge(outcome.cache_stats)
        monitored += outcome.monitored_locations
        nodes += outcome.trie_nodes
        locksets = max(locksets, outcome.interned_locksets)

    return ShardedDetectionResult(
        shards=shards,
        executor=executor,
        outcomes=outcomes,
        reports=merged_reports,
        stats=stats,
        trie_stats=trie_stats,
        cache_stats=cache_stats,
        monitored_locations=monitored,
        trie_nodes=nodes,
        interned_locksets=locksets,
        partitioned_accesses=accesses,
        replicated_sync_events=syncs,
    )


def detect_sharded_post_mortem(
    resolved: ResolvedProgram,
    shards: int,
    config: Optional[DetectorConfig] = None,
    trace_sites: Optional[set] = None,
    policy=None,
    executor: str = "serial",
    max_workers: Optional[int] = None,
    max_steps: int = 10_000_000,
) -> tuple[ShardedDetectionResult, RecordingSink]:
    """The whole sharded workflow: record one execution, then detect
    over the partitioned log."""
    from .postmortem import record_execution

    _, log = record_execution(
        resolved, trace_sites=trace_sites, policy=policy, max_steps=max_steps
    )
    result = detect_sharded(
        log,
        shards,
        config=config,
        resolved=resolved,
        executor=executor,
        max_workers=max_workers,
    )
    return result, log
