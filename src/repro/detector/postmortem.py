"""Post-mortem datarace detection (Section 1's alternative mode).

    "our approach could be easily modified to perform post-mortem
    datarace detection by creating a log of access events during
    program execution and performing the final datarace detection
    phase off-line."

The moving parts already exist — :class:`~repro.runtime.events.
RecordingSink` logs the stream, every detector is an
:class:`~repro.runtime.events.EventSink` — so this module is the thin
workflow layer: run once while logging, then analyze the log offline
with any combination of detectors (including the quadratic FullRace
oracle, which is exactly what one defers to post-mortem time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..lang.resolver import ResolvedProgram
from ..runtime.events import RecordingSink, replay_entries, validate_entries
from ..runtime.interpreter import RunResult, run_program
from .config import DetectorConfig
from .pipeline import RaceDetector
from .reference import ReferenceDetector


@dataclass
class PostMortemResult:
    """Everything the offline phase produced."""

    run: RunResult
    log: RecordingSink
    detector: RaceDetector
    #: The full pair enumeration, when requested (None otherwise).
    full_race: Optional[list] = None

    @property
    def reports(self):
        return self.detector.reports.reports


def record_execution(
    resolved: ResolvedProgram,
    trace_sites: Optional[set] = None,
    policy=None,
    max_steps: int = 10_000_000,
) -> tuple[RunResult, RecordingSink]:
    """Phase 1: execute once, logging the full event stream."""
    log = RecordingSink()
    result = run_program(
        resolved,
        sink=log,
        trace_sites=trace_sites,
        policy=policy,
        max_steps=max_steps,
    )
    return result, log


def detect_from_log(
    log: RecordingSink,
    config: Optional[DetectorConfig] = None,
    resolved: Optional[ResolvedProgram] = None,
    static_races=None,
    enumerate_full_race: bool = False,
    validate: bool = True,
) -> tuple[RaceDetector, Optional[list]]:
    """Phase 2: run the detector (and optionally the FullRace oracle)
    over a recorded log.

    ``log`` is a :class:`~repro.runtime.events.RecordingSink`, a raw
    list of its tuple-encoded entries (e.g. the output of
    :func:`~repro.runtime.events.load_log`), a mapped
    :class:`~repro.runtime.binlog.BinaryLogReader`, or a path to an
    on-disk log of either format (auto-detected by magic bytes).

    Validation happens exactly once per log: for tuple logs,
    ``validate`` (default on) checks the current tuple schema first, so
    a stale or corrupted log fails with a
    :class:`~repro.runtime.events.LogSchemaError` instead of being
    misdecoded; binary logs were already validated structurally when
    the reader opened, so no O(n) pre-scan runs here.
    """
    from pathlib import Path

    from ..runtime.binlog import BinaryLogReader, open_log

    if isinstance(log, (str, Path)):
        log = open_log(log)
        validate = False  # open_log is the single validation point
    if isinstance(log, BinaryLogReader):
        entries = None
    else:
        entries = log.log if isinstance(log, RecordingSink) else log
        if validate:
            validate_entries(entries)
    detector = RaceDetector(
        config=config, resolved=resolved, static_races=static_races
    )
    if entries is None:
        # Mapped binary log: the batched columnar decode pushes whole
        # record runs straight into the detector's scalar spine.
        log.replay_into(detector)
    else:
        replay_entries(entries, detector)
    pairs: Optional[list] = None
    if enumerate_full_race:
        oracle = ReferenceDetector(config)
        if entries is None:
            log.replay_into(oracle)
        else:
            replay_entries(entries, oracle)
        pairs = oracle.full_race
    return detector, pairs


def detect_post_mortem(
    resolved: ResolvedProgram,
    config: Optional[DetectorConfig] = None,
    trace_sites: Optional[set] = None,
    policy=None,
    enumerate_full_race: bool = False,
    max_steps: int = 10_000_000,
) -> PostMortemResult:
    """The whole workflow: record, then detect offline."""
    run, log = record_execution(
        resolved, trace_sites=trace_sites, policy=policy, max_steps=max_steps
    )
    detector, pairs = detect_from_log(
        log,
        config=config,
        resolved=resolved,
        enumerate_full_race=enumerate_full_race,
    )
    return PostMortemResult(run=run, log=log, detector=detector, full_race=pairs)
