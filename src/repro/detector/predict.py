"""Sound predictive race detection from a single recorded trace.

Every other member of the battery judges the *observed* interleaving
(the FullRace reference judges observed locksets).  The predictors here
follow Sulzmann & Stadtmüller's hybrid dynamic race prediction (arXiv
2004.06969): from one recorded trace they report races realizable in
*schedulable reorderings* of that trace.

Two predictors share one engine:

* :class:`SHBPredictor` — a schedulable-happens-before pass.  The SHB
  relation keeps the HB edges that survive **every** schedulable
  reordering of the trace — program order, thread start/join, and
  notify→wait condition edges — but *drops* the lock release→acquire
  coupling: two critical sections on the same lock happened in some
  order, yet the opposite order is schedulable, so the lock edge is an
  artifact of the observed schedule.  In its place SHB adds
  *lock-coupled write→read edges*: when a read observes a write and
  both held a common **real** lock, mutual exclusion forces the
  writer's critical section to complete before the reader's began in
  any reordering that preserves the read's value, so the edge is
  stable.  Because every SHB edge is also an HB edge (the common-lock
  write→read edge is implied by HB's release→acquire chain), the SHB
  relation is a subset of the HB relation and therefore — with the
  identical Djit check-then-update structure — **every HB-reported race
  is SHB-reported**: prediction only ever adds reports
  (``predicted-not-observed``), never loses one.

* :class:`HybridPredictor` — SHB plus the lockset conjunct: report only
  pairs that are SHB-unordered **and** hold disjoint locksets
  (including the ``S_j`` join pseudo-locks, ownership off — exactly the
  ``reference-raw`` admission rule).  The conjunct filters pure SHB's
  one false-positive family (conflicting accesses in different critical
  sections on a common lock, which no reordering can overlap) and makes
  every hybrid report a lockset race the FullRace reference also
  enumerates.

Both consume schema-v3 event logs through the same trust boundary as
:func:`~repro.detector.postmortem.detect_from_log`: a
:class:`~repro.runtime.events.RecordingSink`, a raw tuple list, a
mapped :class:`~repro.runtime.binlog.BinaryLogReader`, or an on-disk
path of either format (validated once by ``open_log``).

``predicted-not-observed`` reports are backed by execution, not
assertion: :func:`find_witness` searches schedulable reorderings for a
decision trace under which the plain HB detector *observes* a race at
the predicted location, and :func:`replay_witness` re-executes that
trace (on any engine) to re-confirm it.  See ``docs/prediction.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from ..baselines.happens_before import HappensBeforeDetector, VectorClock
from ..lang.ast import AccessKind
from ..runtime.events import (
    AccessEvent,
    EventSink,
    RecordingSink,
    replay_entries,
    validate_entries,
)
from .locksets import LockTracker, join_pseudo_lock

#: Predictor registry for CLI/difflab flag values.
PREDICTORS = ("shb", "hybrid")


@dataclass(frozen=True)
class PredictedRace:
    """One predicted racing pair, mirroring the HB report shape."""

    location: object
    object_label: str
    current_thread: int
    prior_thread: int
    site_id: int
    kind: str  # "write-write" | "write-read" | "read-write"

    def describe(self) -> str:
        return (
            f"predicted {self.kind} race on {self.location} "
            f"({self.object_label}): thread {self.prior_thread} vs "
            f"thread {self.current_thread} at site {self.site_id}"
        )


@dataclass
class _PredictHistory:
    """Per-location state: last write + last read per thread.

    The write keeps the writer's full clock snapshot (the write→read
    edge joins it into the reader) and its lockset (edge coupling and
    the hybrid conjunct); reads keep epoch + lockset per thread.
    """

    #: (thread, epoch, clock snapshot, lockset), or None.
    write: Optional[tuple] = None
    write_label: str = ""
    #: thread id -> (epoch, lockset).
    reads: dict = field(default_factory=dict)


def _real_locks_intersect(a: frozenset, b: frozenset) -> bool:
    """A common *real* lock (positive uid).  Pseudo-locks (negative)
    are excluded: the mutual-exclusion argument that makes the
    write→read edge schedulable-stable only holds for real monitors,
    and the start/join edges already order every sound pseudo-lock
    case."""
    if len(a) > len(b):
        a, b = b, a
    for lock in a:
        if lock >= 0 and lock in b:
            return True
    return False


class SHBPredictor(EventSink):
    """Schedulable-happens-before race prediction over one trace.

    Structurally a :class:`HappensBeforeDetector` clone — same sparse
    vector clocks, same epoch increments, same check-then-update per
    access — with the lock clocks removed and lock-coupled write→read
    edges added.  Keeping the increments identical (monitor exit,
    start, notify, join all tick the local clock even though the exit
    no longer publishes an edge) keeps epoch numbering aligned with the
    HB baseline, which is what makes the superset theorem hold
    pointwise: every clock entry here is ≤ the HB detector's entry at
    the same trace point, so every HB "unordered" verdict is also an
    SHB "unordered" verdict.
    """

    name = "shb"

    def __init__(self) -> None:
        self._thread_clocks: dict[int, VectorClock] = {0: VectorClock({0: 1})}
        self._cond_clocks: dict[int, VectorClock] = {}
        self.locks = LockTracker()
        self.locks.acquire_pseudo(0, join_pseudo_lock(0))
        self._locations: dict = {}
        self.reports: list[PredictedRace] = []
        self.racy_locations: set = set()
        self.racy_objects: set = set()

    # -- clock plumbing (identical to the HB baseline) -------------------

    def _clock(self, thread_id: int) -> VectorClock:
        clock = self._thread_clocks.get(thread_id)
        if clock is None:
            clock = VectorClock({thread_id: 1})
            self._thread_clocks[thread_id] = clock
        return clock

    def _increment(self, thread_id: int) -> None:
        clock = self._clock(thread_id)
        clock[thread_id] = clock.get(thread_id, 0) + 1

    # -- synchronization events ------------------------------------------

    def on_monitor_enter(self, thread_id, lock_uid, reentrant) -> None:
        # No release→acquire edge: the opposite acquisition order is
        # schedulable (paper §2.2's feasible races are exactly the
        # races this edge hides).  The tracker still records the lock
        # for edge coupling and the hybrid conjunct.
        if not reentrant:
            self.locks.enter(thread_id, lock_uid)

    def on_monitor_exit(self, thread_id, lock_uid, reentrant) -> None:
        if not reentrant:
            self.locks.exit(thread_id, lock_uid)
            self._increment(thread_id)

    def on_thread_start(self, parent_id: int, child_id: int) -> None:
        child = self._clock(child_id)
        child.join(self._clock(parent_id))
        self._increment(parent_id)
        self.locks.acquire_pseudo(child_id, join_pseudo_lock(child_id))

    def on_thread_end(self, thread_id: int) -> None:
        self.locks.release_pseudo(thread_id, join_pseudo_lock(thread_id))

    def on_thread_join(self, joiner_id: int, joined_id: int) -> None:
        # Same phantom-epoch guard as the HB baseline: only join a
        # clock the joined thread actually established.
        joined = self._thread_clocks.get(joined_id)
        if joined is not None:
            self._clock(joiner_id).join(joined)
        self._increment(joiner_id)
        self.locks.acquire_pseudo(joiner_id, join_pseudo_lock(joined_id))

    def on_notify(self, thread_id, cond_uid, notify_all) -> None:
        cond = self._cond_clocks.get(cond_uid)
        if cond is None:
            self._cond_clocks[cond_uid] = cond = VectorClock()
        cond.join(self._clock(thread_id))
        self._increment(thread_id)

    def on_wait(self, thread_id: int, cond_uid: int) -> None:
        cond = self._cond_clocks.get(cond_uid)
        if cond is not None:
            self._clock(thread_id).join(cond)

    # -- accesses ---------------------------------------------------------

    def _admit(self, event, prior_thread, prior_lockset, clock) -> bool:
        """Hook for the hybrid's lockset conjunct; pure SHB admits all."""
        return True

    def on_access(self, event: AccessEvent) -> None:
        history = self._locations.get(event.location)
        if history is None:
            history = _PredictHistory()
            self._locations[event.location] = history
        thread = event.thread_id
        clock = self._clock(thread)
        lockset = self.locks.lockset(thread)

        if event.kind is AccessKind.WRITE:
            if history.write is not None:
                w_thread, w_epoch, _w_clock, w_locks = history.write
                if (
                    w_thread != thread
                    and not clock.happened_before(w_thread, w_epoch)
                    and self._admit(event, w_thread, w_locks, clock)
                ):
                    self._report(event, w_thread, "write-write")
            for r_thread, (r_epoch, r_locks) in history.reads.items():
                if (
                    r_thread != thread
                    and not clock.happened_before(r_thread, r_epoch)
                    and self._admit(event, r_thread, r_locks, clock)
                ):
                    self._report(event, r_thread, "read-write")
            history.write = (
                thread,
                clock.get(thread, 0),
                clock.copy(),
                lockset,
            )
            history.write_label = event.object_label
            history.reads = {}
        else:
            if history.write is not None:
                w_thread, w_epoch, w_clock, w_locks = history.write
                if w_thread != thread and _real_locks_intersect(
                    w_locks, lockset
                ):
                    # The lock-coupled write→read edge: the reader saw
                    # a value written inside a critical section on a
                    # lock it also holds, so the writer's section
                    # completed first in every value-preserving
                    # reordering.  Joining before the check makes the
                    # pair ordered, exactly as HB's lock edge does.
                    clock.join(w_clock)
                if (
                    w_thread != thread
                    and not clock.happened_before(w_thread, w_epoch)
                    and self._admit(event, w_thread, w_locks, clock)
                ):
                    self._report(event, w_thread, "write-read")
            history.reads[thread] = (clock.get(thread, 0), lockset)

    def _report(self, event, prior_thread: int, kind: str) -> None:
        self.racy_locations.add(event.location)
        self.racy_objects.add(event.object_label)
        self.reports.append(
            PredictedRace(
                location=event.location,
                object_label=event.object_label,
                current_thread=event.thread_id,
                prior_thread=prior_thread,
                site_id=event.site_id,
                kind=kind,
            )
        )


class HybridPredictor(SHBPredictor):
    """SHB prediction with the lockset conjunct (the hybrid of arXiv
    2004.06969): report only SHB-unordered pairs whose locksets are
    disjoint.

    The lockset semantics mirror ``reference-raw`` exactly — real locks
    from the monitor stream, the monotone ``S_j`` join pseudo-locks, no
    ownership filter — so every hybrid report names a pair the FullRace
    reference also admits: ``hybrid ⊆ reference-raw`` is a theorem, and
    its converse gap is the ``lockset-fp-refuted`` class (disjoint-
    lockset pairs that start/join/condition edges order in every
    schedulable reordering, e.g. initialization writes the child only
    reads after ``start``).
    """

    name = "hybrid"

    def _admit(self, event, prior_thread, prior_lockset, clock) -> bool:
        current = self.locks.lockset(event.thread_id)
        return not (current & prior_lockset)


def make_predictor(mode: str):
    """Instantiate a predictor by registry name (``shb`` / ``hybrid``)."""
    if mode == "shb":
        return SHBPredictor()
    if mode == "hybrid":
        return HybridPredictor()
    raise ValueError(
        f"unknown predictor {mode!r} (have: {', '.join(PREDICTORS)})"
    )


def predict_races(log, mode: str = "hybrid", validate: bool = True):
    """Run one predictor over a recorded log; returns the predictor.

    ``log`` accepts the same shapes as
    :func:`~repro.detector.postmortem.detect_from_log`: a
    :class:`~repro.runtime.events.RecordingSink`, a raw list of
    tuple-encoded entries, a mapped
    :class:`~repro.runtime.binlog.BinaryLogReader`, or a path to an
    on-disk log of either format (auto-detected by magic bytes, with
    ``open_log`` as the single validation point).
    """
    from ..runtime.binlog import BinaryLogReader, open_log

    if isinstance(log, (str, Path)):
        log = open_log(log)
        validate = False
    predictor = make_predictor(mode)
    if isinstance(log, BinaryLogReader):
        # Batched columnar decode straight into the predictor — same
        # stream as entries(), without materializing schema-v3 tuples.
        log.replay_into(predictor)
        return predictor
    entries = log.log if isinstance(log, RecordingSink) else log
    if validate:
        validate_entries(entries)
    replay_entries(entries, predictor)
    return predictor


# ---------------------------------------------------------------------------
# Witnesses: prediction soundness checked by execution.


@dataclass(frozen=True)
class Witness:
    """A machine-checkable reordering witnessing one predicted race.

    ``choices`` is a complete scheduler decision trace (the
    record/replay format of :mod:`repro.runtime.replay`); replaying it
    produces an interleaving in which the plain HB detector *observes*
    a race at ``location`` — turning a ``predicted-not-observed``
    report into an observed one.
    """

    location: str
    choices: tuple

    def to_json(self) -> dict:
        return {"location": self.location, "choices": list(self.choices)}

    @classmethod
    def from_json(cls, payload: dict) -> "Witness":
        return cls(
            location=payload["location"],
            choices=tuple(payload["choices"]),
        )


def _hb_locations_for_trace(
    resolved, policy, max_steps: int, engine: str
) -> tuple:
    """Run under ``policy`` recording decisions; return the HB-observed
    racy locations (as strings) plus the recorded decision trace."""
    from ..runtime import engine_runner
    from ..runtime.replay import RecordingPolicy

    recording = RecordingPolicy(policy)
    hb = HappensBeforeDetector()
    engine_runner(engine)(
        resolved, sink=hb, policy=recording, max_steps=max_steps
    )
    return (
        {str(location) for location in hb.racy_locations},
        tuple(recording.trace.choices),
    )


def find_witness(
    source: str,
    location: str,
    seeds: int = 64,
    max_steps: int = 200_000,
    engine: str = "ast",
) -> Optional[Witness]:
    """Search schedulable reorderings for one that *observes* a race at
    ``location`` (stringified) under the plain HB detector.

    Candidates: round-robin, then ``seeds`` seeded random schedules.
    Every candidate run records its full decision trace, so a hit
    yields an exact, engine-portable :class:`Witness`.  Returns None
    when no candidate observes the race — either the prediction is one
    of pure SHB's documented lock-protected false positives, or the
    search budget was too small.
    """
    from ..lang.errors import MJError
    from ..lang.resolver import compile_source
    from ..runtime.scheduler import (
        DeadlockError,
        RandomPolicy,
        RoundRobinPolicy,
        StepLimitExceeded,
    )

    policies = [RoundRobinPolicy()]
    policies.extend(RandomPolicy(seed) for seed in range(seeds))
    for policy in policies:
        try:
            observed, choices = _hb_locations_for_trace(
                compile_source(source), policy, max_steps, engine
            )
        except (MJError, DeadlockError, StepLimitExceeded, RecursionError):
            continue
        if location in observed:
            return Witness(location=location, choices=choices)
    return None


def replay_witness(
    source: str,
    witness: Witness,
    max_steps: int = 200_000,
    engine: str = "ast",
) -> bool:
    """Re-execute a witness decision-for-decision (exact replay, both
    exhaustion directions checked) and return whether the HB detector
    observed a race at the witnessed location."""
    from ..lang.resolver import compile_source
    from ..runtime.replay import ScheduleTrace, replay_run

    hb = HappensBeforeDetector()
    replay_run(
        compile_source(source),
        ScheduleTrace(list(witness.choices)),
        sink=hb,
        max_steps=max_steps,
        engine=engine,
    )
    return witness.location in {str(loc) for loc in hb.racy_locations}
