"""Packed lockset tries — the scheme the paper teases in Section 8.2.

    "We have a scheme for packing information for multiple locations
    into one trie which we cannot present due to space limitations."

The observation behind any such scheme: programs use few distinct
locksets but many memory locations, so per-location tries duplicate the
same small lock-path structure thousands of times (tsp: 7,967 nodes for
6,562 locations).  This module implements the natural packing: **one**
global trie over locksets whose nodes carry a per-location table of
``(thread, kind)`` meets.

* structure (nodes, edges) is shared by *all* locations — the node
  count is bounded by the number of distinct locksets, not locations;
* the three traversals are the same Cases I/II/III walks, consulting
  each visited node's entry for the queried location only;
* insertion and pruning update one location's entries, leaving other
  locations' data untouched.

The packed detector is behaviourally identical to the per-location one
(`tests/property/test_packed_trie.py` checks equivalence on random
streams); ``benchmarks/bench_space.py``-style numbers come out via
:meth:`PackedLockTrie.node_count` vs the per-location total.
Enable with ``DetectorConfig(packed_tries=True)``.
"""

from __future__ import annotations

from typing import Optional

from ..lang.ast import AccessKind
from .trie import PriorAccess, TrieStats
from .weaker import THREAD_BOTTOM, access_meet, thread_meet

#: Hot traversals inline the one-line partial-order helpers of
#: :mod:`repro.detector.weaker`, exactly as :class:`~.trie.LockTrie`
#: does — see the note there.
_WRITE = AccessKind.WRITE


class PackedNode:
    """A lockset node holding per-location access summaries."""

    __slots__ = ("children", "entries")

    def __init__(self) -> None:
        self.children: dict[int, "PackedNode"] = {}
        #: location key -> (thread_value, AccessKind).
        self.entries: dict = {}


class PackedLockTrie:
    """One trie for every location (lockset-major organization)."""

    def __init__(self, stats: Optional[TrieStats] = None):
        self.stats = stats if stats is not None else TrieStats()
        self.root = PackedNode()
        self.stats.nodes_allocated += 1
        self._locations: set = set()

    # ------------------------------------------------------------------

    def find_weaker(self, key, lockset: frozenset, thread: int,
                    kind: AccessKind) -> bool:
        found = self._find_weaker(self.root, key, lockset, thread, kind)
        if found:
            self.stats.weaker_hits += 1
        else:
            self.stats.weaker_misses += 1
        return found

    def _find_weaker(self, node, key, lockset, thread, kind) -> bool:
        entry = node.entries.get(key)
        if (
            entry is not None
            and (entry[0] == thread or entry[0] is THREAD_BOTTOM)
            and (entry[1] is kind or entry[1] is _WRITE)
        ):
            return True
        children = node.children
        if not children:
            return False
        # Intersect edges with the lockset from whichever side is smaller.
        if len(children) <= len(lockset):
            for lock, child in children.items():
                if lock in lockset and self._find_weaker(
                    child, key, lockset, thread, kind
                ):
                    return True
        else:
            get = children.get
            for lock in lockset:
                child = get(lock)
                if child is not None and self._find_weaker(
                    child, key, lockset, thread, kind
                ):
                    return True
        return False

    # ------------------------------------------------------------------

    def find_race(
        self,
        key,
        lockset: frozenset,
        thread: int,
        kind: AccessKind,
        read_read_races: bool = False,
    ) -> Optional[PriorAccess]:
        return self._find_race(
            self.root, [], key, lockset, thread, kind, read_read_races
        )

    def _find_race(self, node, path, key, lockset, thread, kind, rr):
        entry = node.entries.get(key)
        if entry is not None and (
            entry[0] != thread or entry[0] is THREAD_BOTTOM
        ):
            if rr or entry[1] is _WRITE or kind is _WRITE:
                self.stats.races_found += 1
                return PriorAccess(
                    thread=entry[0], lockset=frozenset(path), kind=entry[1]
                )
        for lock, child in node.children.items():
            if lock in lockset:
                continue  # Case I.
            # ``path`` is a shared mutable stack — push/pop instead of a
            # fresh tuple per edge; a hit freezes it before unwinding.
            path.append(lock)
            race = self._find_race(child, path, key, lockset, thread, kind, rr)
            if race is not None:
                return race
            path.pop()
        return None

    # ------------------------------------------------------------------

    def insert(self, key, lockset: frozenset, thread: int,
               kind: AccessKind) -> tuple:
        self._locations.add(key)
        node = self.root
        for lock in sorted(lockset):
            child = node.children.get(lock)
            if child is None:
                child = PackedNode()
                self.stats.nodes_allocated += 1
                node.children[lock] = child
            node = child
        entry = node.entries.get(key)
        if entry is None:
            self.stats.inserts += 1
            merged = (thread, kind)
        else:
            self.stats.updates += 1
            merged = (
                thread_meet(entry[0], thread),
                access_meet(entry[1], kind),
            )
        node.entries[key] = merged
        return node, merged

    def prune_stronger(self, key, lockset: frozenset, thread, kind,
                       keep: PackedNode) -> int:
        removed = self._prune(self.root, tuple(sorted(lockset)), key, thread,
                              kind, keep)
        return removed

    def _prune(self, node, required, key, thread, kind, keep) -> int:
        # Targeted walk (see LockTrie._prune): paths are sorted, so an
        # edge labeled above the smallest still-required lock can never
        # lead to a superset of the lockset — skip the subtree.
        removed = 0
        if not required and node is not keep:
            entry = node.entries.get(key)
            if (
                entry is not None
                and (thread == entry[0] or thread is THREAD_BOTTOM)
                and (kind is entry[1] or kind is _WRITE)
            ):
                del node.entries[key]
                removed += 1
        dead = []
        if required:
            first = required[0]
            rest = required[1:]
            for lock, child in node.children.items():
                if lock > first:
                    continue
                removed += self._prune(
                    child, rest if lock == first else required, key, thread,
                    kind, keep,
                )
                if not child.children and not child.entries and child is not keep:
                    dead.append(lock)
        else:
            for lock, child in node.children.items():
                removed += self._prune(child, required, key, thread, kind, keep)
                if not child.children and not child.entries and child is not keep:
                    dead.append(lock)
        for lock in dead:
            del node.children[lock]
            self.stats.nodes_freed += 1
        return removed

    # ------------------------------------------------------------------

    def stored_accesses(self, key) -> list:
        """One location's stored set, as (lockset, thread, kind)."""
        out: list = []
        self._collect(self.root, (), key, out)
        return out

    def _collect(self, node, path, key, out) -> None:
        entry = node.entries.get(key)
        if entry is not None:
            out.append((frozenset(path), entry[0], entry[1]))
        for lock, child in node.children.items():
            self._collect(child, path + (lock,), key, out)

    def node_count(self) -> int:
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.children.values())
        return count

    def entry_count(self) -> int:
        total = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            total += len(node.entries)
            stack.extend(node.children.values())
        return total

    @property
    def location_count(self) -> int:
        return len(self._locations)
