"""Race reports and their collection (Sections 2.5 and 2.6).

The detector reports a racing access *at the moment it occurs*, with
the current access's full context (thread, lockset, source site) and
what is known about some earlier conflicting access — its lockset and
access type always, its thread when the ``t⊥`` space optimization has
not merged it away (Section 3.1).

Reports are aggregated three ways, matching how the paper counts:

* by *memory location* — the unit of the reporting guarantee
  (Definition 1: at least one reported access per racy location);
* by *object* — Table 3 counts distinct objects with dataraces;
* the raw report list, for debugging support (Section 2.6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from ..lang.ast import AccessKind
from ..runtime.events import AccessEvent
from .trie import PriorAccess
from .weaker import THREAD_BOTTOM


def _render_lockset(lockset: frozenset) -> str:
    if not lockset:
        return "{}"
    parts = []
    for lock in sorted(lockset):
        if lock < 0:
            parts.append(f"S{-lock - 1}")  # Join pseudo-lock S_j.
        else:
            parts.append(f"L{lock}")
    return "{" + ", ".join(parts) + "}"


@dataclass
class RaceReport:
    """One reported datarace."""

    #: The detector's location key (coarsened under FieldsMerged).
    key: object
    #: Field name involved (from the current access).
    field: str
    #: Human label of the racy object, e.g. ``Task#17``.
    object_label: str
    #: The access that triggered the report.
    current: AccessEvent
    current_lockset: frozenset
    #: What is known about the earlier conflicting access.
    prior: PriorAccess
    #: Where in the source the current access is (site descriptor).
    site_descriptor: str = ""
    #: Section 2.6 debugging support: descriptors of the statically
    #: identified sites that could race with the current access.
    static_partners: tuple = ()

    def describe(self) -> str:
        prior_thread = (
            "some earlier thread(s)"
            if self.prior.thread is THREAD_BOTTOM
            else f"thread {self.prior.thread}"
        )
        current_kind = "write" if self.current.is_write else "read"
        prior_kind = "write" if self.prior.kind is AccessKind.WRITE else "read"
        text = (
            f"DATARACE on {self.object_label}.{self.field}: "
            f"thread {self.current.thread_id} {current_kind} with locks "
            f"{_render_lockset(self.current_lockset)} at "
            f"{self.site_descriptor or f'site {self.current.site_id}'} "
            f"conflicts with a {prior_kind} by {prior_thread} with locks "
            f"{_render_lockset(self.prior.lockset)}"
        )
        if self.static_partners:
            partners = "; ".join(self.static_partners)
            text += f" [static candidates: {partners}]"
        return text


@dataclass
class ReportCollector:
    """Accumulates race reports and the paper's summary counts."""

    reports: list[RaceReport] = field(default_factory=list)
    racy_locations: set = field(default_factory=set)
    racy_objects: set = field(default_factory=set)
    racy_fields: set = field(default_factory=set)
    racy_sites: set = field(default_factory=set)

    def add(self, report: RaceReport) -> None:
        self.reports.append(report)
        self.racy_locations.add(report.key)
        self.racy_objects.add(report.object_label)
        self.racy_fields.add((report.object_label, report.field))
        self.racy_sites.add(report.current.site_id)

    @property
    def object_count(self) -> int:
        """Number of distinct objects with reported races (Table 3)."""
        return len(self.racy_objects)

    @property
    def location_count(self) -> int:
        return len(self.racy_locations)

    def describe_all(self) -> str:
        return "\n".join(report.describe() for report in self.reports)
