"""The per-location lockset trie (Section 3.2 of the paper).

For each memory location the detector keeps an edge-labeled trie: edges
carry lock ids, and each node represents the (possibly empty) set of
past accesses whose lockset is the node's root path.  Nodes hold the
*meet* of their accesses' thread and access-type values, so a node is a
lossy-but-sufficient summary:

* ``t`` — a concrete thread id, ``t⊥`` (two or more distinct threads),
  or ``t⊤`` (no accesses; pure internal node);
* ``a`` — READ or WRITE (internal nodes use READ, the meet identity).

Insertion canonicalizes locksets by storing them along the *sorted*
sequence of lock ids, so a given lockset always maps to one node.

Three traversals implement the algorithm of Section 3.2.1:

``find_weaker``
    Is there a stored access weaker than the incoming event?  Follows
    only edges labeled with locks in ``e.L`` (guaranteeing the subset
    condition) and tests each node's ``(t, a)`` against the partial
    orders.  In practice this filters the vast majority of events.

``find_race``
    Case I — the incoming edge's lock is in ``e.L``: the whole subtree
    shares a lock with ``e``; skip it.
    Case II — ``e.t ⊓ n.t = t⊥`` and ``e.a ⊓ n.a = WRITE``: datarace;
    report and stop.
    Case III — recurse into the children.

``insert`` + ``prune_stronger``
    Update the node for ``e.L`` with the meets, then remove stored
    accesses that the new access makes redundant (strictly stronger
    nodes), demoting their nodes to internal status and trimming
    childless internal nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..lang.ast import AccessKind
from .weaker import THREAD_BOTTOM, THREAD_TOP, ThreadValue

#: The traversals below inline the one-line partial-order helpers of
#: :mod:`repro.detector.weaker` (``thread_leq``, ``access_leq``, and
#: the ⊓-is-t⊥ / ⊓-is-WRITE tests) — at millions of node visits per
#: detection run the function-call overhead is measurable.  The inlined
#: forms are exact for every value the detector produces; incoming
#: event threads are concrete ids (or ``t⊥`` after a meet), never
#: ``t⊤``.
_WRITE = AccessKind.WRITE


class TrieNode:
    """One node of a lockset trie."""

    __slots__ = ("thread", "kind", "children")

    def __init__(self) -> None:
        self.thread: ThreadValue = THREAD_TOP
        self.kind: AccessKind = AccessKind.READ
        self.children: dict[int, "TrieNode"] = {}

    @property
    def holds_accesses(self) -> bool:
        """True if this node summarizes at least one stored access."""
        return self.thread is not THREAD_TOP

    def clear_accesses(self) -> None:
        self.thread = THREAD_TOP
        self.kind = AccessKind.READ


@dataclass
class PriorAccess:
    """What is known about the earlier access of a reported race.

    Because of the ``t⊥`` space optimization the earlier thread cannot
    always be identified (Section 3.1); ``thread`` is then ``t⊥``.
    """

    thread: ThreadValue
    lockset: frozenset
    kind: AccessKind


@dataclass
class TrieStats:
    """Operation counters, reported by the space/overhead benchmarks."""

    nodes_allocated: int = 0
    nodes_freed: int = 0
    weaker_hits: int = 0
    weaker_misses: int = 0
    races_found: int = 0
    inserts: int = 0
    updates: int = 0

    @property
    def live_nodes(self) -> int:
        return self.nodes_allocated - self.nodes_freed

    def merge(self, other: "TrieStats") -> None:
        """Accumulate another detector's counters (shard merging)."""
        self.nodes_allocated += other.nodes_allocated
        self.nodes_freed += other.nodes_freed
        self.weaker_hits += other.weaker_hits
        self.weaker_misses += other.weaker_misses
        self.races_found += other.races_found
        self.inserts += other.inserts
        self.updates += other.updates


class LockTrie:
    """The access history of one memory location."""

    def __init__(self, stats: Optional[TrieStats] = None):
        self.stats = stats if stats is not None else TrieStats()
        self.root = TrieNode()
        self.stats.nodes_allocated += 1

    # ------------------------------------------------------------------
    # Weakness check.

    def find_weaker(
        self, lockset: frozenset, thread: int, kind: AccessKind
    ) -> bool:
        """True iff some stored access is weaker than ``(lockset, thread,
        kind)`` (so the incoming event can be ignored)."""
        found = self._find_weaker(self.root, lockset, thread, kind)
        if found:
            self.stats.weaker_hits += 1
        else:
            self.stats.weaker_misses += 1
        return found

    def _find_weaker(
        self, node: TrieNode, lockset: frozenset, thread: int, kind: AccessKind
    ) -> bool:
        node_thread = node.thread
        if (
            node_thread is not THREAD_TOP
            and (node_thread == thread or node_thread is THREAD_BOTTOM)
            and (node.kind is kind or node.kind is _WRITE)
        ):
            return True
        children = node.children
        if not children:
            return False
        # Only edges labeled with locks in the event's lockset may be
        # followed; intersect from whichever side is smaller.
        if len(children) <= len(lockset):
            for lock, child in children.items():
                if lock in lockset and self._find_weaker(
                    child, lockset, thread, kind
                ):
                    return True
        else:
            get = children.get
            for lock in lockset:
                child = get(lock)
                if child is not None and self._find_weaker(
                    child, lockset, thread, kind
                ):
                    return True
        return False

    # ------------------------------------------------------------------
    # Race check.

    def find_race(
        self,
        lockset: frozenset,
        thread: int,
        kind: AccessKind,
        read_read_races: bool = False,
    ) -> Optional[PriorAccess]:
        """Search for a stored access racing with the incoming event.

        Returns information about the prior access of the first race
        found (depth-first order), or ``None``.
        """
        return self._find_race(
            self.root, [], lockset, thread, kind, read_read_races
        )

    def _find_race(
        self,
        node: TrieNode,
        path: list,
        lockset: frozenset,
        thread: int,
        kind: AccessKind,
        read_read_races: bool,
    ) -> Optional[PriorAccess]:
        # Case II: this node's accesses are lock-disjoint from the event
        # (guaranteed by Case I pruning below), involve another thread
        # (``n.t ⊓ e.t = t⊥``), and at least one side wrote.
        node_thread = node.thread
        if node_thread is not THREAD_TOP and (
            node_thread != thread or node_thread is THREAD_BOTTOM
        ):
            if read_read_races or node.kind is _WRITE or kind is _WRITE:
                self.stats.races_found += 1
                return PriorAccess(
                    thread=node_thread,
                    lockset=frozenset(path),
                    kind=node.kind,
                )
        for lock, child in node.children.items():
            # Case I: the subtree's accesses all hold `lock`, which the
            # incoming event also holds — no race anywhere below.
            if lock in lockset:
                continue
            # Case III: recurse.  ``path`` is a shared mutable stack —
            # push/pop instead of allocating a tuple per edge; a hit
            # freezes it before unwinding.
            path.append(lock)
            race = self._find_race(
                child, path, lockset, thread, kind, read_read_races
            )
            if race is not None:
                return race
            path.pop()
        return None

    # ------------------------------------------------------------------
    # Insertion and pruning.

    def insert(self, lockset: frozenset, thread: int, kind: AccessKind) -> TrieNode:
        """Record the access, creating or updating the node for ``lockset``."""
        node = self.root
        for lock in sorted(lockset):
            child = node.children.get(lock)
            if child is None:
                child = TrieNode()
                self.stats.nodes_allocated += 1
                node.children[lock] = child
            node = child
        node_thread = node.thread
        if node_thread is THREAD_TOP:
            self.stats.inserts += 1
            node.thread = thread
        else:
            self.stats.updates += 1
            if node_thread != thread:
                node.thread = THREAD_BOTTOM
        if node.kind is not kind:
            node.kind = _WRITE
        return node

    def prune_stronger(
        self, lockset: frozenset, thread: int, kind: AccessKind, keep: TrieNode
    ) -> int:
        """Remove stored accesses strictly stronger than the new access.

        A stored access at node ``n`` (path lockset ``n.L``) is stronger
        iff ``lockset ⊆ n.L ∧ thread ⊑ n.t ∧ kind ⊑ n.a``.  ``keep`` is
        the node just inserted (it trivially satisfies the condition and
        must survive).  Returns the number of nodes demoted.

        The walk is targeted, not exhaustive: paths are stored in sorted
        lock order, so once the smallest still-required lock is smaller
        than an edge's label the whole subtree below that edge can never
        satisfy ``lockset ⊆ n.L`` and is skipped.  (Skipped subtrees are
        untouched, and the trie holds no dead internal nodes between
        prunes, so skipping never strands a trimmable node.)
        """
        removed = self._prune(self.root, tuple(sorted(lockset)), thread, kind, keep)
        return removed

    def _prune(
        self,
        node: TrieNode,
        required: tuple,
        thread: int,
        kind: AccessKind,
        keep: TrieNode,
    ) -> int:
        removed = 0
        if not required and node is not keep:
            node_thread = node.thread
            if (
                node_thread is not THREAD_TOP
                and (thread == node_thread or thread is THREAD_BOTTOM)
                and (kind is node.kind or kind is _WRITE)
            ):
                node.clear_accesses()
                removed += 1
        dead_children = []
        if required:
            first = required[0]
            rest = required[1:]
            for lock, child in node.children.items():
                if lock > first:
                    # Edges below carry strictly larger labels, so
                    # ``first`` can never join the path: skip.
                    continue
                removed += self._prune(
                    child, rest if lock == first else required, thread, kind,
                    keep,
                )
                if (
                    not child.children
                    and child.thread is THREAD_TOP
                    and child is not keep
                ):
                    dead_children.append(lock)
        else:
            for lock, child in node.children.items():
                removed += self._prune(child, required, thread, kind, keep)
                if (
                    not child.children
                    and child.thread is THREAD_TOP
                    and child is not keep
                ):
                    dead_children.append(lock)
        for lock in dead_children:
            del node.children[lock]
            self.stats.nodes_freed += 1
        return removed

    # ------------------------------------------------------------------
    # Introspection (tests, space accounting).

    def stored_accesses(self) -> list[tuple[frozenset, ThreadValue, AccessKind]]:
        """All stored accesses as ``(lockset, thread, kind)`` triples."""
        result = []
        self._collect(self.root, (), result)
        return result

    def _collect(self, node: TrieNode, path: tuple, out: list) -> None:
        if node.holds_accesses:
            out.append((frozenset(path), node.thread, node.kind))
        for lock, child in node.children.items():
            self._collect(child, path + (lock,), out)

    def node_count(self) -> int:
        count = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.children.values())
        return count
