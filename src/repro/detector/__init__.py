"""The dynamic datarace detector — the paper's core runtime contribution.

Quick use::

    from repro.lang import compile_source
    from repro.runtime import run_program
    from repro.detector import RaceDetector

    resolved = compile_source(source_text)
    detector = RaceDetector(resolved=resolved)
    run_program(resolved, sink=detector)
    for report in detector.reports.reports:
        print(report.describe())
"""

from .cache import AccessCache, CacheStats
from .deadlock import DeadlockDetector, DeadlockReport, LockEdge
from .config import (
    FIELDS_MERGED,
    FULL,
    NO_CACHE,
    NO_OWNERSHIP,
    DetectorConfig,
)
from .locksets import LockTracker, join_pseudo_lock
from .ownership import SHARED, OwnershipFilter, OwnershipStats
from .pipeline import PipelineStats, RaceDetector
from .postmortem import (
    PostMortemResult,
    detect_from_log,
    detect_post_mortem,
    record_execution,
)
from .predict import (
    PREDICTORS,
    HybridPredictor,
    PredictedRace,
    SHBPredictor,
    Witness,
    find_witness,
    make_predictor,
    predict_races,
    replay_witness,
)
from .sharded import (
    ShardedDetectionResult,
    ShardOutcome,
    canonical_report_order,
    detect_sharded,
    detect_sharded_post_mortem,
    partition_log,
)
from .trie_packed import PackedLockTrie, PackedNode
from .reference import RacePair, RecordedAccess, ReferenceDetector
from .report import RaceReport, ReportCollector
from .trie import LockTrie, PriorAccess, TrieNode, TrieStats
from .weaker import (
    THREAD_BOTTOM,
    THREAD_TOP,
    StoredAccess,
    access_leq,
    access_meet,
    is_race,
    thread_leq,
    thread_meet,
    weaker_than,
)

__all__ = [
    "AccessCache",
    "DeadlockDetector",
    "DeadlockReport",
    "LockEdge",
    "CacheStats",
    "DetectorConfig",
    "FIELDS_MERGED",
    "FULL",
    "HybridPredictor",
    "LockTracker",
    "LockTrie",
    "NO_CACHE",
    "NO_OWNERSHIP",
    "PREDICTORS",
    "PredictedRace",
    "SHBPredictor",
    "Witness",
    "OwnershipFilter",
    "OwnershipStats",
    "PackedLockTrie",
    "PackedNode",
    "PipelineStats",
    "PostMortemResult",
    "PriorAccess",
    "RaceDetector",
    "RacePair",
    "RaceReport",
    "RecordedAccess",
    "ReferenceDetector",
    "ReportCollector",
    "SHARED",
    "ShardOutcome",
    "ShardedDetectionResult",
    "StoredAccess",
    "THREAD_BOTTOM",
    "THREAD_TOP",
    "TrieNode",
    "TrieStats",
    "canonical_report_order",
    "detect_from_log",
    "detect_post_mortem",
    "detect_sharded",
    "detect_sharded_post_mortem",
    "find_witness",
    "make_predictor",
    "partition_log",
    "predict_races",
    "record_execution",
    "replay_witness",
    "access_leq",
    "access_meet",
    "is_race",
    "join_pseudo_lock",
    "thread_leq",
    "thread_meet",
    "weaker_than",
]
