"""A naïve reference detector: the ground truth for the optimized one.

Section 2.5 observes that enumerating ``FullRace`` — *all* racing access
pairs — needs worst-case ``O(N²)`` time and space, which is exactly what
this module does.  It stores every admitted access event and checks
``IsRace`` pairwise.  It exists for two purposes:

* the test suite's oracle: Definition 1 guarantees the optimized
  detector reports at least one access for every location with a
  non-empty ``MemRace(m)``; property-based tests compare the optimized
  detector's racy-location set against this reference on random event
  streams and schedules;
* the paper's *post-mortem* remark (Section 2.6): full ``FullRace``
  reconstruction is feasible offline; this is that reconstruction.

The reference applies the same front-half semantics as the pipeline
(join pseudo-locks, optional ownership filtering, optional field
merging) so the two detectors see identical event streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..lang.ast import AccessKind
from ..runtime.events import AccessEvent, EventSink, ObjectKind
from .config import DetectorConfig
from .locksets import LockTracker, join_pseudo_lock
from .ownership import OwnershipFilter


@dataclass(frozen=True)
class RecordedAccess:
    """One stored access with its attached lockset."""

    thread_id: int
    lockset: frozenset
    kind: AccessKind
    site_id: int
    object_label: str


@dataclass(frozen=True)
class RacePair:
    """An element of ``FullRace``: two conflicting accesses on one location."""

    key: object
    earlier: RecordedAccess
    later: RecordedAccess


class ReferenceDetector(EventSink):
    """Quadratic full-enumeration detector (the FullRace oracle)."""

    def __init__(self, config: Optional[DetectorConfig] = None):
        self.config = config if config is not None else DetectorConfig()
        self.locks = LockTracker()
        self.ownership = OwnershipFilter() if self.config.ownership else None
        self._history: dict = {}
        self.pairs: list[RacePair] = []
        self.racy_locations: set = set()
        self.racy_objects: set = set()
        if self.config.join_pseudolocks:
            self.locks.acquire_pseudo(0, join_pseudo_lock(0))

    # -- synchronization events (same semantics as the pipeline) --------

    def on_monitor_enter(self, thread_id: int, lock_uid: int, reentrant: bool) -> None:
        if not reentrant:
            self.locks.enter(thread_id, lock_uid)

    def on_monitor_exit(self, thread_id: int, lock_uid: int, reentrant: bool) -> None:
        if not reentrant:
            self.locks.exit(thread_id, lock_uid)

    def on_thread_start(self, parent_id: int, child_id: int) -> None:
        if self.config.join_pseudolocks:
            self.locks.acquire_pseudo(child_id, join_pseudo_lock(child_id))

    def on_thread_end(self, thread_id: int) -> None:
        if self.config.join_pseudolocks:
            self.locks.release_pseudo(thread_id, join_pseudo_lock(thread_id))

    def on_thread_join(self, joiner_id: int, joined_id: int) -> None:
        if self.config.join_pseudolocks:
            self.locks.acquire_pseudo(joiner_id, join_pseudo_lock(joined_id))

    # -- accesses --------------------------------------------------------

    def _key(self, event: AccessEvent):
        if self.config.fields_merged:
            if event.object_kind is ObjectKind.CLASS:
                return event.location
            return event.location.object_uid
        return event.location

    def on_access(self, event: AccessEvent) -> None:
        key = self._key(event)
        if self.ownership is not None:
            admit, _ = self.ownership.admit(key, event.thread_id)
            if not admit:
                return
        current = RecordedAccess(
            thread_id=event.thread_id,
            lockset=self.locks.lockset(event.thread_id),
            kind=event.kind,
            site_id=event.site_id,
            object_label=event.object_label,
        )
        history = self._history.setdefault(key, [])
        for earlier in history:
            if self._is_race(earlier, current):
                self.pairs.append(RacePair(key=key, earlier=earlier, later=current))
                self.racy_locations.add(key)
                self.racy_objects.add(current.object_label)
        history.append(current)

    def _is_race(self, e_i: RecordedAccess, e_j: RecordedAccess) -> bool:
        if e_i.thread_id == e_j.thread_id:
            return False
        if e_i.lockset & e_j.lockset:
            return False
        if self.config.read_read_races:
            return True
        return e_i.kind is AccessKind.WRITE or e_j.kind is AccessKind.WRITE

    # -- results ----------------------------------------------------------

    @property
    def full_race(self) -> list[RacePair]:
        """The complete ``FullRace`` set for the observed execution."""
        return self.pairs

    def mem_race(self, key) -> list[RacePair]:
        """``MemRace(m)``: the racing pairs on one location."""
        return [pair for pair in self.pairs if pair.key == key]
