"""The runtime optimizer: per-thread access caches (Section 4).

Each thread has two direct-mapped caches — one for reads, one for
writes — indexed by memory location.  The design guarantees that any
entry found on lookup corresponds to a previously recorded access that
is *weaker than* the incoming access, so a hit means the event can be
dropped without reaching the trie detector:

* per-thread caches        →  ``p.t = q.t``;
* separate read/write caches →  ``p.a = q.a``;
* eviction on monitorexit  →  ``p.L ⊆ q.L`` (every cached entry's
  lockset is a subset of the thread's *current* lockset at all times);
* location-indexed lookup  →  ``p.m = q.m``.

Eviction exploits Java's nested (LIFO) locking discipline: when an
entry is created, the thread's most recently acquired *real* lock is
the first of the entry's real locks that will be released, so the entry
is linked onto that lock's eviction list; releasing the lock evicts the
whole list (Section 4.2).  Entries created while holding no real lock
are unconditional — only an ownership transition (Section 7.2) or a
conflict replacement can remove them.  Join pseudo-locks ``S_j`` are
deliberately *not* eviction anchors: they are monotone (never released
during the thread's lifetime), so they can never invalidate the subset
condition.

The hash follows the paper's implementation (Section 4.3): multiply the
location key's hash by a constant and take the upper bits of a 32-bit
product.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..lang.ast import AccessKind

#: Knuth-style multiplicative hashing constant (the paper multiplies the
#: 32-bit address by a constant and keeps the upper 16 bits).
_HASH_MULTIPLIER = 0x9E3779B1
_MASK32 = 0xFFFFFFFF


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    conflict_evictions: int = 0
    lock_evictions: int = 0
    ownership_evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0


class _Entry:
    """One cache entry: a location key plus its slot and eviction links."""

    __slots__ = ("key", "index", "valid")

    def __init__(self, key, index: int):
        self.key = key
        self.index = index
        self.valid = True


class _DirectMappedCache:
    """A single direct-mapped cache (one access type of one thread)."""

    def __init__(self, size: int, stats: CacheStats):
        self._size = size
        self._slots: list[Optional[_Entry]] = [None] * size
        self._stats = stats
        #: lock uid -> entries to evict when the lock is released.
        self._lock_lists: dict[int, list[_Entry]] = {}
        #: location key -> entry, for O(1) targeted (ownership) eviction.
        self._by_key: dict = {}

    def _index(self, key) -> int:
        product = (hash(key) * _HASH_MULTIPLIER) & _MASK32
        return (product >> 16) % self._size

    def lookup(self, key) -> bool:
        entry = self._slots[self._index(key)]
        if entry is not None and entry.valid and entry.key == key:
            self._stats.hits += 1
            return True
        self._stats.misses += 1
        return False

    def insert(self, key, anchor_lock: Optional[int]) -> None:
        index = self._index(key)
        old = self._slots[index]
        if old is not None and old.valid:
            old.valid = False
            del self._by_key[old.key]
            self._stats.conflict_evictions += 1
        entry = _Entry(key, index)
        self._slots[index] = entry
        self._by_key[key] = entry
        if anchor_lock is not None:
            self._lock_lists.setdefault(anchor_lock, []).append(entry)

    def evict_lock(self, lock_uid: int) -> None:
        entries = self._lock_lists.pop(lock_uid, None)
        if not entries:
            return
        for entry in entries:
            if entry.valid:
                entry.valid = False
                self._slots[entry.index] = None
                del self._by_key[entry.key]
                self._stats.lock_evictions += 1

    def evict_key(self, key) -> None:
        entry = self._by_key.pop(key, None)
        if entry is not None and entry.valid:
            entry.valid = False
            self._slots[entry.index] = None
            self._stats.ownership_evictions += 1


class ThreadCaches:
    """The read and write caches of one thread."""

    def __init__(self, size: int, stats: CacheStats):
        self.read = _DirectMappedCache(size, stats)
        self.write = _DirectMappedCache(size, stats)

    def cache_for(self, kind: AccessKind) -> _DirectMappedCache:
        return self.write if kind is AccessKind.WRITE else self.read


class AccessCache:
    """All threads' caches plus the eviction triggers.

    ``size`` defaults to the paper's 256 entries per cache.
    ``write_covers_read`` is a reproduction extension (off by default,
    matching the paper): when on, a read lookup that misses the read
    cache also consults the write cache — sound because a previous
    *write* with the same ``(m, t)`` and subset lockset is weaker than
    a read (``WRITE ⊑ READ`` in the access order).
    """

    def __init__(self, size: int = 256, write_covers_read: bool = False):
        if size < 1:
            raise ValueError("cache size must be positive")
        self._size = size
        self._write_covers_read = write_covers_read
        self._threads: dict[int, ThreadCaches] = {}
        self.stats = CacheStats()

    def _caches(self, thread_id: int) -> ThreadCaches:
        caches = self._threads.get(thread_id)
        if caches is None:
            caches = ThreadCaches(self._size, self.stats)
            self._threads[thread_id] = caches
        return caches

    def lookup(self, thread_id: int, key, kind: AccessKind) -> bool:
        """True on a hit — a weaker access is already recorded."""
        caches = self._caches(thread_id)
        if caches.cache_for(kind).lookup(key):
            return True
        if self._write_covers_read and kind is AccessKind.READ:
            # Extension: the write cache holds writes by this thread with
            # subset locksets; a write is weaker than this read.
            return caches.write.lookup(key)
        return False

    def insert(
        self, thread_id: int, key, kind: AccessKind, anchor_lock: Optional[int]
    ) -> None:
        """Record the access after a miss.

        ``anchor_lock`` is the thread's most recently acquired real lock
        (or ``None``); the entry is evicted when that lock is released.
        """
        self._caches(thread_id).cache_for(kind).insert(key, anchor_lock)

    def on_lock_release(self, thread_id: int, lock_uid: int) -> None:
        """Outermost monitorexit: evict entries anchored to the lock."""
        caches = self._threads.get(thread_id)
        if caches is not None:
            caches.read.evict_lock(lock_uid)
            caches.write.evict_lock(lock_uid)

    def on_location_shared(self, key) -> None:
        """Ownership transition: forcibly evict ``key`` from *every*
        thread's caches (Section 7.2's fix for the run-time optimizer)."""
        for caches in self._threads.values():
            caches.read.evict_key(key)
            caches.write.evict_key(key)
