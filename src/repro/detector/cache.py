"""The runtime optimizer: per-thread access caches (Section 4).

Each thread has two direct-mapped caches — one for reads, one for
writes — indexed by memory location.  The design guarantees that any
entry found on lookup corresponds to a previously recorded access that
is *weaker than* the incoming access, so a hit means the event can be
dropped without reaching the trie detector:

* per-thread caches        →  ``p.t = q.t``;
* separate read/write caches →  ``p.a = q.a``;
* eviction on monitorexit  →  ``p.L ⊆ q.L`` (every cached entry's
  lockset is a subset of the thread's *current* lockset at all times);
* location-indexed lookup  →  ``p.m = q.m``.

Eviction exploits Java's nested (LIFO) locking discipline: when an
entry is created, the thread's most recently acquired *real* lock is
the first of the entry's real locks that will be released, so the entry
is linked onto that lock's eviction list; releasing the lock evicts the
whole list (Section 4.2).  Entries created while holding no real lock
are unconditional — only an ownership transition (Section 7.2) or a
conflict replacement can remove them.  Join pseudo-locks ``S_j`` are
deliberately *not* eviction anchors: they are monotone (never released
during the thread's lifetime), so they can never invalidate the subset
condition.

The hash follows the paper's implementation (Section 4.3): multiply the
location key's hash by a constant and take the upper bits of a 32-bit
product.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..lang.ast import AccessKind

#: Knuth-style multiplicative hashing constant (the paper multiplies the
#: 32-bit address by a constant and keeps the upper 16 bits).
_HASH_MULTIPLIER = 0x9E3779B1
_MASK32 = 0xFFFFFFFF


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    conflict_evictions: int = 0
    lock_evictions: int = 0
    ownership_evictions: int = 0
    #: Lazy compactions of the lock eviction lists (dead-entry sweeps).
    list_compactions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def merge(self, other: "CacheStats") -> None:
        """Accumulate another collector's counters (shard merging)."""
        self.hits += other.hits
        self.misses += other.misses
        self.conflict_evictions += other.conflict_evictions
        self.lock_evictions += other.lock_evictions
        self.ownership_evictions += other.ownership_evictions
        self.list_compactions += other.list_compactions


#: Compact the lock eviction lists only once they hold at least this
#: many entries (avoids churn on tiny lists).
_COMPACT_MIN_LISTED = 16


class _Entry:
    """One cache entry: a location key plus its slot and eviction links."""

    __slots__ = ("key", "index", "valid", "anchored")

    def __init__(self, key, index: int):
        self.key = key
        self.index = index
        self.valid = True
        self.anchored = False


class _DirectMappedCache:
    """A single direct-mapped cache (one access type of one thread)."""

    def __init__(self, size: int, stats: CacheStats):
        self._size = size
        self._slots: list[Optional[_Entry]] = [None] * size
        self._stats = stats
        #: lock uid -> entries to evict when the lock is released.
        self._lock_lists: dict[int, list[_Entry]] = {}
        #: location key -> entry, for O(1) targeted (ownership) eviction.
        self._by_key: dict = {}
        #: Entries currently linked on some eviction list / of those,
        #: how many were invalidated by conflict or ownership eviction
        #: (dead weight a long-held lock would otherwise accumulate).
        self._listed = 0
        self._dead_listed = 0

    def _index(self, key) -> int:
        product = (hash(key) * _HASH_MULTIPLIER) & _MASK32
        return (product >> 16) % self._size

    def probe(self, key) -> bool:
        """Membership test without touching the hit/miss statistics."""
        entry = self._slots[self._index(key)]
        return entry is not None and entry.valid and entry.key == key

    def lookup(self, key) -> bool:
        entry = self._slots[self._index(key)]
        if entry is not None and entry.valid and entry.key == key:
            self._stats.hits += 1
            return True
        self._stats.misses += 1
        return False

    def access(self, key, anchor_lock: Optional[int]) -> bool:
        """Fused lookup+insert: one index computation for the whole
        hot-path transaction.  Returns True on a hit (event suppressed);
        on a miss records the access and returns False.  Exactly one
        hit or one miss is counted per call."""
        index = self._index(key)
        entry = self._slots[index]
        if entry is not None and entry.valid and entry.key == key:
            self._stats.hits += 1
            return True
        self._stats.misses += 1
        self._insert_at(index, key, anchor_lock)
        return False

    def insert(self, key, anchor_lock: Optional[int]) -> None:
        self._insert_at(self._index(key), key, anchor_lock)

    def _insert_at(self, index: int, key, anchor_lock: Optional[int]) -> None:
        old = self._slots[index]
        if old is not None and old.valid:
            old.valid = False
            del self._by_key[old.key]
            self._stats.conflict_evictions += 1
            if old.anchored:
                self._dead_listed += 1
        entry = _Entry(key, index)
        self._slots[index] = entry
        self._by_key[key] = entry
        if anchor_lock is not None:
            entry.anchored = True
            self._lock_lists.setdefault(anchor_lock, []).append(entry)
            self._listed += 1
            if (
                self._dead_listed * 2 > self._listed
                and self._listed >= _COMPACT_MIN_LISTED
            ):
                self._compact_lock_lists()

    def _compact_lock_lists(self) -> None:
        """Drop invalidated entries from every eviction list.

        Conflict and ownership evictions invalidate entries in place but
        leave them linked on their anchor lock's list; a long-held lock
        would accumulate dead entries without bound.  Run lazily once
        more than half of the listed entries are dead."""
        self._stats.list_compactions += 1
        for lock_uid in list(self._lock_lists):
            live = [entry for entry in self._lock_lists[lock_uid] if entry.valid]
            if live:
                self._lock_lists[lock_uid] = live
            else:
                del self._lock_lists[lock_uid]
        self._listed = sum(len(entries) for entries in self._lock_lists.values())
        self._dead_listed = 0

    def evict_lock(self, lock_uid: int) -> None:
        entries = self._lock_lists.pop(lock_uid, None)
        if not entries:
            return
        self._listed -= len(entries)
        for entry in entries:
            if entry.valid:
                entry.valid = False
                self._slots[entry.index] = None
                del self._by_key[entry.key]
                self._stats.lock_evictions += 1
            else:
                self._dead_listed -= 1

    def evict_key(self, key) -> None:
        entry = self._by_key.pop(key, None)
        if entry is not None and entry.valid:
            entry.valid = False
            self._slots[entry.index] = None
            self._stats.ownership_evictions += 1
            if entry.anchored:
                self._dead_listed += 1

    @property
    def listed_entries(self) -> tuple[int, int]:
        """(total, dead) entries on the lock eviction lists — test hook."""
        return self._listed, self._dead_listed


class ThreadCaches:
    """The read and write caches of one thread."""

    def __init__(self, size: int, stats: CacheStats):
        self.read = _DirectMappedCache(size, stats)
        self.write = _DirectMappedCache(size, stats)

    def cache_for(self, kind: AccessKind) -> _DirectMappedCache:
        return self.write if kind is AccessKind.WRITE else self.read


class AccessCache:
    """All threads' caches plus the eviction triggers.

    ``size`` defaults to the paper's 256 entries per cache.
    ``write_covers_read`` is a reproduction extension (off by default,
    matching the paper): when on, a read lookup that misses the read
    cache also consults the write cache — sound because a previous
    *write* with the same ``(m, t)`` and subset lockset is weaker than
    a read (``WRITE ⊑ READ`` in the access order).
    """

    def __init__(self, size: int = 256, write_covers_read: bool = False):
        if size < 1:
            raise ValueError("cache size must be positive")
        self._size = size
        self._write_covers_read = write_covers_read
        self._threads: dict[int, ThreadCaches] = {}
        self.stats = CacheStats()

    def _caches(self, thread_id: int) -> ThreadCaches:
        caches = self._threads.get(thread_id)
        if caches is None:
            caches = ThreadCaches(self._size, self.stats)
            self._threads[thread_id] = caches
        return caches

    def lookup(self, thread_id: int, key, kind: AccessKind) -> bool:
        """True on a hit — a weaker access is already recorded.

        Counts exactly one hit or one miss per call: a read that
        consults both the read and (under ``write_covers_read``) the
        write cache is still one logical lookup.
        """
        caches = self._caches(thread_id)
        if self._write_covers_read and kind is AccessKind.READ:
            # Extension: the write cache holds writes by this thread with
            # subset locksets; a write is weaker than this read.
            if caches.read.probe(key) or caches.write.probe(key):
                self.stats.hits += 1
                return True
            self.stats.misses += 1
            return False
        return caches.cache_for(kind).lookup(key)

    def access(
        self, thread_id: int, key, kind: AccessKind, anchor_lock: Optional[int]
    ) -> bool:
        """Fused lookup+insert, the hot-path entry point.

        Returns True on a hit (the event is suppressed); on a miss the
        access is recorded under ``anchor_lock`` and False is returned.
        """
        caches = self._threads.get(thread_id)
        if caches is None:
            caches = ThreadCaches(self._size, self.stats)
            self._threads[thread_id] = caches
        if kind is AccessKind.WRITE:
            return caches.write.access(key, anchor_lock)
        if self._write_covers_read:
            if caches.read.probe(key) or caches.write.probe(key):
                self.stats.hits += 1
                return True
            self.stats.misses += 1
            caches.read.insert(key, anchor_lock)
            return False
        return caches.read.access(key, anchor_lock)

    def access_tracked(self, thread_id: int, key, kind: AccessKind, locks) -> bool:
        """Fused lookup+insert with *lazy* anchoring.

        Identical to :meth:`access`, except the anchor lock is obtained
        from ``locks`` (a :class:`~repro.detector.locksets.LockTracker`)
        only on a miss — hits, the overwhelmingly common case, never
        query the lock stack at all.
        """
        caches = self._threads.get(thread_id)
        if caches is None:
            caches = ThreadCaches(self._size, self.stats)
            self._threads[thread_id] = caches
        if kind is AccessKind.WRITE:
            cache = caches.write
        elif self._write_covers_read:
            if caches.read.probe(key) or caches.write.probe(key):
                self.stats.hits += 1
                return True
            self.stats.misses += 1
            caches.read.insert(key, locks.last_real_lock(thread_id))
            return False
        else:
            cache = caches.read
        index = cache._index(key)
        entry = cache._slots[index]
        if entry is not None and entry.valid and entry.key == key:
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        cache._insert_at(index, key, locks.last_real_lock(thread_id))
        return False

    def insert(
        self, thread_id: int, key, kind: AccessKind, anchor_lock: Optional[int]
    ) -> None:
        """Record the access after a miss.

        ``anchor_lock`` is the thread's most recently acquired real lock
        (or ``None``); the entry is evicted when that lock is released.
        """
        self._caches(thread_id).cache_for(kind).insert(key, anchor_lock)

    def on_lock_release(self, thread_id: int, lock_uid: int) -> None:
        """Outermost monitorexit: evict entries anchored to the lock."""
        caches = self._threads.get(thread_id)
        if caches is not None:
            caches.read.evict_lock(lock_uid)
            caches.write.evict_lock(lock_uid)

    def on_location_shared(self, key) -> None:
        """Ownership transition: forcibly evict ``key`` from *every*
        thread's caches (Section 7.2's fix for the run-time optimizer)."""
        for caches in self._threads.values():
            caches.read.evict_key(key)
            caches.write.evict_key(key)
