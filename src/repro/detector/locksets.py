"""Per-thread lockset tracking for the detection pipeline.

The runtime's access events carry no lockset; the detector observes
monitor enter/exit notifications and maintains each thread's current set
of held locks — component ``e.L`` of the paper's access-event 5-tuple
(Section 2.4).

Two kinds of locks are tracked:

* **real locks** — uids of MJ objects whose monitors the thread holds.
  They follow Java's nested (LIFO) locking discipline, which the cache's
  eviction lists rely on (Section 4.2);
* **pseudo-locks** — the dummy ``S_j`` synchronization objects that
  model ``join`` ordering (Section 2.3).  Pseudo-locks are *monotone*
  within a thread's lifetime: a thread holds its own ``S_j`` from its
  first event, and permanently gains ``S_k`` when it joins thread ``k``.
  Monotonicity is what keeps the cache sound in their presence: an
  entry's lockset can only lose *real* locks, and those evictions are
  handled by the per-lock LIFO lists.

Pseudo-lock ids are negative (``-(thread_id + 1)``) so they can never
collide with object uids, which are positive.

Locksets are **interned and versioned**: programs cycle through a
handful of distinct locksets, so the tracker keeps one canonical
(pre-hashed) frozenset per distinct value and hands the same object out
to every thread currently holding that combination.  A per-thread
version counter ticks on every lockset mutation, letting consumers
detect "lockset unchanged since I last looked" without comparing sets.
Sharing canonical frozensets across events is sound because locksets
are immutable values — a mutation *replaces* a thread's lockset, it
never updates one in place.
"""

from __future__ import annotations

from typing import Optional

_EMPTY_LOCKSET: frozenset = frozenset()


def join_pseudo_lock(thread_id: int) -> int:
    """The dummy lock ``S_j`` for thread ``j`` (Section 2.3)."""
    return -(thread_id + 1)


class LockTracker:
    """Tracks every thread's held locks from the monitor event stream."""

    def __init__(self) -> None:
        #: thread id -> real lock uids in acquisition order (LIFO stack).
        self._stacks: dict[int, list[int]] = {}
        #: thread id -> set of held pseudo-locks.
        self._pseudo: dict[int, set[int]] = {}
        #: thread id -> cached canonical lockset (invalidated on change).
        self._cached: dict[int, Optional[frozenset]] = {}
        #: thread id -> mutation counter.
        self._versions: dict[int, int] = {}
        #: value -> canonical pre-hashed frozenset (the intern table).
        self._intern: dict[frozenset, frozenset] = {
            _EMPTY_LOCKSET: _EMPTY_LOCKSET
        }

    def _invalidate(self, thread_id: int) -> None:
        self._cached[thread_id] = None
        self._versions[thread_id] = self._versions.get(thread_id, 0) + 1

    # ------------------------------------------------------------------
    # Real locks (monitor events; the pipeline filters out reentrant ones).

    def enter(self, thread_id: int, lock_uid: int) -> None:
        """Record an outermost monitorenter."""
        self._stacks.setdefault(thread_id, []).append(lock_uid)
        self._invalidate(thread_id)

    def exit(self, thread_id: int, lock_uid: int) -> None:
        """Record an outermost monitorexit (the actual lock release)."""
        stack = self._stacks.get(thread_id)
        if not stack or stack[-1] != lock_uid:
            # Java enforces block-structured locking, and the MJ runtime
            # only has `sync` blocks, so releases are always LIFO.
            raise AssertionError(
                f"non-LIFO monitorexit of {lock_uid} by thread {thread_id}: "
                f"stack {stack}"
            )
        stack.pop()
        self._invalidate(thread_id)

    # ------------------------------------------------------------------
    # Pseudo-locks (thread lifecycle events).

    def acquire_pseudo(self, thread_id: int, pseudo_lock: int) -> None:
        self._pseudo.setdefault(thread_id, set()).add(pseudo_lock)
        self._invalidate(thread_id)

    def release_pseudo(self, thread_id: int, pseudo_lock: int) -> None:
        held = self._pseudo.get(thread_id)
        if held is not None:
            held.discard(pseudo_lock)
        self._invalidate(thread_id)

    # ------------------------------------------------------------------
    # Queries.

    def lockset(self, thread_id: int) -> frozenset:
        """The thread's current lockset (real + pseudo), as a canonical
        interned frozenset (identical object for identical value)."""
        cached = self._cached.get(thread_id)
        if cached is not None:
            return cached
        stack = self._stacks.get(thread_id)
        pseudo = self._pseudo.get(thread_id)
        if stack:
            result = frozenset(stack).union(pseudo) if pseudo else frozenset(stack)
        elif pseudo:
            result = frozenset(pseudo)
        else:
            result = _EMPTY_LOCKSET
        canonical = self._intern.get(result)
        if canonical is None:
            # First sighting of this value: it becomes the canonical
            # object.  The dict insertion also computes (and frozenset
            # caches) its hash, so every later use is pre-hashed.
            self._intern[result] = canonical = result
        self._cached[thread_id] = canonical
        return canonical

    def version(self, thread_id: int) -> int:
        """Mutation counter for the thread's lockset (ticks on every
        enter/exit/pseudo-lock change)."""
        return self._versions.get(thread_id, 0)

    @property
    def interned_locksets(self) -> int:
        """Number of distinct lockset values seen so far."""
        return len(self._intern)

    def last_real_lock(self, thread_id: int) -> Optional[int]:
        """The most recently acquired *real* lock still held, or ``None``.

        This is the lock under which the cache registers new entries:
        by the LIFO discipline it is the first of the entry's (real)
        locks to be released, so evicting the entry then keeps the
        cache's subset invariant (Section 4.2).
        """
        stack = self._stacks.get(thread_id)
        if stack:
            return stack[-1]
        return None

    def holds(self, thread_id: int, lock_uid: int) -> bool:
        return lock_uid in self.lockset(thread_id)
