"""Automatic counterexample shrinking (delta debugging).

When the lab classifies a discrepancy as a violation, the raw
counterexample is a fuzzer-sized MJ program plus an arbitrary schedule.
This module minimizes both while re-validating after every candidate
step that (a) the program still satisfies the fuzzer's structural
guarantees — it compiles, terminates within the step budget, is
deterministic, and acquires nested locks in ascending index order —
and (b) the case still exhibits the *same* classified reason.

Program reduction is hierarchical delta debugging over brace-balanced
line segments, preceded by structure-aware passes that understand the
fuzzer's program shape:

1. drop whole worker classes (with their ``var/start/join`` plumbing);
2. drop whole shared fields (declaration plus every access);
3. remove or unwrap statement segments (a ``sync``/``while``/``if``
   block can be deleted outright or replaced by its body);
4. drop now-unused lock plumbing.

Schedule reduction tries, in order of preference: plain round-robin, a
small scheduling seed, and a recorded-trace *prefix* (binary-searched
to the shortest length that still steers the run into the failure,
replayed through :class:`~repro.runtime.replay.FallbackReplayPolicy`,
then ddmin-reduced decision by decision so interior choices the
failure does not depend on are dropped too).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..lang.errors import MJError
from ..lang.resolver import compile_source
from ..runtime.replay import RecordingPolicy
from ..runtime.scheduler import DeadlockError, StepLimitExceeded
from .verdicts import ScheduleSpec

@dataclass
class ShrinkStats:
    """Bookkeeping for the harness report and the CLI summary."""

    initial_statements: int = 0
    final_statements: int = 0
    candidates_tried: int = 0
    candidates_accepted: int = 0
    rounds: int = 0
    initial_schedule: str = ""
    final_schedule: str = ""

    def describe(self) -> str:
        return (
            f"{self.initial_statements} → {self.final_statements} "
            f"statements in {self.rounds} rounds "
            f"({self.candidates_tried} candidates, "
            f"{self.candidates_accepted} accepted); schedule "
            f"{self.initial_schedule} → {self.final_schedule}"
        )


@dataclass
class ShrinkResult:
    source: str
    schedule: ScheduleSpec
    stats: ShrinkStats


def count_statements(source: str) -> int:
    """MJ statements: semicolon-terminated lines plus block headers
    (``sync``/``while``/``if``), excluding declarations."""
    count = 0
    for line in source.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith(("class ", "field ")):
            continue
        if stripped.endswith(";"):
            count += 1
        elif re.match(r"(sync|while|if)\b", stripped):
            count += 1
    return count


# ----------------------------------------------------------------------
# Structural validation (the fuzzer's guarantees, re-checked).


_SYNC_RE = re.compile(r"sync\s*\(\s*this\.lock(\d+)\s*\)")


def lock_order_ascending(source: str) -> bool:
    """Syntactic check of the fuzzer's global-lock-order guarantee:
    nested ``sync (this.lockN)`` blocks acquire strictly ascending
    lock indexes."""
    depth = 0
    stack: list[tuple[int, int]] = []  # (lock index, entry depth)
    for line in source.splitlines():
        header = _SYNC_RE.search(line)
        if header is not None:
            lock = int(header.group(1))
            if stack and lock <= stack[-1][0]:
                return False
            stack.append((lock, depth))
        depth += line.count("{") - line.count("}")
        while stack and depth <= stack[-1][1]:
            stack.pop()
    return True


def validate_structure(
    source: str,
    run_case: Callable[[str], object],
    check_determinism: bool = False,
) -> bool:
    """The fuzzer's structural guarantees on a shrink candidate.

    ``run_case`` executes the candidate under the case's schedule and
    returns the program output (raising on compile errors, deadlock, or
    step-budget exhaustion).  Determinism is verified by running twice
    only when requested — it doubles the cost, so the shrink loop saves
    it for final validation.
    """
    if not lock_order_ascending(source):
        return False
    try:
        compile_source(source)
        output = run_case(source)
        if check_determinism and run_case(source) != output:
            return False
    except (MJError, DeadlockError, StepLimitExceeded, RecursionError):
        return False
    return True


# ----------------------------------------------------------------------
# Brace-balanced line segments.


@dataclass
class Segment:
    """A removable unit: one statement line or one balanced block."""

    start: int
    end: int  # inclusive
    is_block: bool = False
    children: list = field(default_factory=list)


def parse_segments(lines: list, start: int, end: int) -> list:
    """Split ``lines[start:end+1]`` into sibling segments.

    A line with net positive brace balance opens a block running to the
    line restoring the entry depth (``} else {`` lines stay inside
    their ``if`` block, so an if/else is one segment).
    """
    segments: list = []
    index = start
    while index <= end:
        line = lines[index]
        balance = line.count("{") - line.count("}")
        if balance > 0:
            depth = balance
            close = index
            while depth > 0 and close < end:
                close += 1
                depth += lines[close].count("{") - lines[close].count("}")
            children = parse_segments(lines, index + 1, close - 1)
            segments.append(
                Segment(start=index, end=close, is_block=True, children=children)
            )
            index = close + 1
        else:
            segments.append(Segment(start=index, end=index))
            index += 1
    return segments


def _without(lines: list, spans: list) -> str:
    dropped = set()
    for start, end in spans:
        dropped.update(range(start, end + 1))
    return "\n".join(
        line for index, line in enumerate(lines) if index not in dropped
    )


def _unwrap(lines: list, segment: Segment) -> str:
    """Replace a block segment with its interior (minus ``} else {``
    separators, which would dangle)."""
    kept = []
    for index, line in enumerate(lines):
        if index == segment.start or index == segment.end:
            continue
        if segment.start < index < segment.end and line.strip() == "} else {":
            continue
        kept.append(line)
    return "\n".join(kept)


# ----------------------------------------------------------------------
# Structure-aware passes.


def _worker_indexes(source: str) -> list:
    return sorted(
        {int(match) for match in re.findall(r"class Worker(\d+)", source)}
    )


def _remove_worker(source: str, index: int) -> Optional[str]:
    lines = source.splitlines()
    spans = []
    in_class = False
    depth = 0
    for number, line in enumerate(lines):
        if re.match(rf"class Worker{index}\b", line.strip()):
            in_class = True
            start = number
            depth = 0
        if in_class:
            depth += line.count("{") - line.count("}")
            if depth == 0 and line.count("}"):
                spans.append((start, number))
                in_class = False
        elif re.search(rf"\bw{index}\b", line):
            spans.append((number, number))
    if not spans:
        return None
    return _without(lines, spans)


def _field_names(source: str) -> list:
    return sorted(set(re.findall(r"field (f\d+);", source)))


def _remove_field(source: str, name: str) -> Optional[str]:
    lines = source.splitlines()
    pattern = re.compile(rf"\.{name}\b|field {name};")
    spans = [
        (number, number)
        for number, line in enumerate(lines)
        if pattern.search(line)
    ]
    if not spans:
        return None
    return _without(lines, spans)


def _lock_indexes(source: str) -> list:
    return sorted(
        {int(match) for match in re.findall(r"var lock(\d+) = new LockObj", source)}
    )


def _remove_lock(source: str, index: int) -> Optional[str]:
    """Strip lock ``index``'s plumbing — only once no sync block uses it."""
    if re.search(rf"sync\s*\(\s*this\.lock{index}\s*\)", source):
        return None
    lines = []
    for line in source.splitlines():
        stripped = line.strip()
        if stripped in (
            f"var lock{index} = new LockObj();",
            f"field lock{index};",
            f"this.lock{index} = l{index};",
        ):
            continue
        # Constructor calls and parameter lists mention the lock by name.
        line = re.sub(rf", lock{index}\b", "", line)
        line = re.sub(rf"\block{index}, ", "", line)
        line = re.sub(rf", l{index}\b", "", line)
        line = re.sub(rf"\bl{index}, ", "", line)
        lines.append(line)
    candidate = "\n".join(lines)
    return candidate if candidate != source else None


# ----------------------------------------------------------------------
# The shrink loop.


#: Main-method plumbing the segment pass must not touch (handled by the
#: structure-aware passes instead).
_PROTECTED_RE = re.compile(
    r"var shared = new Shared|var lock\d+ = |var w\d+ = new Worker|"
    r"start w\d+;|join w\d+;|def |class |^\s*}\s*$|this\.|var s = this\.s"
)


def _segment_candidates(source: str) -> list:
    """All single-step segment reductions of ``source`` (removals and
    block unwraps), most aggressive first."""
    lines = source.splitlines()
    segments = parse_segments(lines, 0, len(lines) - 1)
    flat: list = []

    def walk(items):
        for segment in items:
            flat.append(segment)
            walk(segment.children)

    walk(segments)
    candidates: list = []
    # Larger segments first: removing a whole block beats line-by-line.
    for segment in sorted(
        flat, key=lambda item: item.end - item.start, reverse=True
    ):
        text = lines[segment.start].strip()
        if _PROTECTED_RE.search(text) and not segment.is_block:
            continue
        if segment.is_block and text.startswith(("class", "def")):
            continue
        candidates.append(_without(lines, [(segment.start, segment.end)]))
        if segment.is_block:
            candidates.append(_unwrap(lines, segment))
    return candidates


def shrink_program(
    source: str,
    interesting: Callable[[str], bool],
    max_rounds: int = 40,
    stats: Optional[ShrinkStats] = None,
) -> tuple[str, ShrinkStats]:
    """Greedy fixpoint reduction of ``source`` under ``interesting``.

    ``interesting`` must return True iff the candidate still compiles,
    still satisfies the structural guarantees, and still fails for the
    same classified reason — the caller owns that predicate.
    """
    if stats is None:
        stats = ShrinkStats()
    stats.initial_statements = count_statements(source)
    current = source
    for _ in range(max_rounds):
        stats.rounds += 1
        changed = False

        def try_candidate(candidate: Optional[str]) -> bool:
            nonlocal current, changed
            if candidate is None or candidate == current:
                return False
            stats.candidates_tried += 1
            if interesting(candidate):
                stats.candidates_accepted += 1
                current = candidate
                changed = True
                return True
            return False

        for index in reversed(_worker_indexes(current)):
            if len(_worker_indexes(current)) <= 1:
                break
            try_candidate(_remove_worker(current, index))
        for name in _field_names(current):
            try_candidate(_remove_field(current, name))
        for candidate in _segment_candidates(current):
            if try_candidate(candidate):
                break  # Line numbering shifted; re-derive candidates.
        for index in _lock_indexes(current):
            try_candidate(_remove_lock(current, index))
        if not changed:
            break
    stats.final_statements = count_statements(current)
    return current, stats


def shrink_schedule(
    source: str,
    schedule: ScheduleSpec,
    interesting: Callable[[str, ScheduleSpec], bool],
    record_trace: Callable[[str, ScheduleSpec], list],
    seed_candidates=range(8),
) -> ScheduleSpec:
    """Minimize the schedule for an already-shrunk program.

    Preference order: round-robin, a small :class:`RandomPolicy` seed,
    the original spec with its recorded decision trace cut to the
    shortest prefix that still reaches the failure (binary search; the
    suffix is handed to the round-robin fallback) and then ddmin-reduced
    over the surviving decisions, so a long trace whose failure hinges
    on a handful of choices shrinks to just those choices instead of
    being abandoned for the unreduced seed.
    """
    round_robin = ScheduleSpec(kind="roundrobin")
    if interesting(source, round_robin):
        return round_robin
    for seed in seed_candidates:
        candidate = ScheduleSpec(kind="random", seed=seed)
        if interesting(source, candidate):
            adopted = candidate
            break
    else:
        adopted = schedule
    if not interesting(source, adopted):  # Paranoia: keep the original.
        return schedule

    choices = record_trace(source, adopted)
    low, high = 0, len(choices)
    # Invariant: prefix of length `high` is interesting (the full trace
    # reproduces the adopted schedule exactly, fallback unused).
    if not interesting(
        source, ScheduleSpec(kind="prefix", choices=tuple(choices))
    ):
        return adopted
    while low < high:
        mid = (low + high) // 2
        if interesting(
            source, ScheduleSpec(kind="prefix", choices=tuple(choices[:mid]))
        ):
            high = mid
        else:
            low = mid + 1
    if high == 0:
        return round_robin
    reduced = _ddmin_choices(source, tuple(choices[:high]), interesting)
    return ScheduleSpec(kind="prefix", choices=reduced)


def _ddmin_choices(
    source: str,
    choices: tuple,
    interesting: Callable[[str, ScheduleSpec], bool],
) -> tuple:
    """Delta-debug a decision sequence down to a 1-minimal subsequence.

    The binary-searched prefix only trims the tail; interior decisions
    the failure does not depend on survive it (the replay policy hands
    unmatched decisions to the fallback, so *any* subsequence is a
    valid schedule).  Classic ddmin: try dropping chunks at shrinking
    granularity until no single decision can be removed.
    """
    current = list(choices)
    granularity = 2
    while len(current) >= 2:
        chunk = max(1, len(current) // granularity)
        reduced = False
        start = 0
        while start < len(current):
            candidate = current[:start] + current[start + chunk:]
            if candidate and interesting(
                source, ScheduleSpec(kind="prefix", choices=tuple(candidate))
            ):
                current = candidate
                reduced = True
                # Keep ``start`` in place: the list shifted left.
            else:
                start += chunk
        if not reduced:
            if chunk <= 1:
                break
            granularity = min(granularity * 2, len(current))
        else:
            granularity = max(granularity - 1, 2)
    return tuple(current)


def record_schedule_trace(source: str, schedule: ScheduleSpec, max_steps: int):
    """One execution's scheduling decisions under ``schedule``."""
    from ..runtime.interpreter import run_program

    resolved = compile_source(source)
    policy = RecordingPolicy(schedule.policy())
    run_program(resolved, policy=policy, max_steps=max_steps)
    return list(policy.trace.choices)
