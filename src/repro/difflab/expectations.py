"""The declarative expectation matrix.

Every pairwise relation between two detectors' verdicts is either a
*theorem* of the designs involved (its failure is a **violation** — a
soundness/precision bug in this codebase) or a *documented precision
gap* (its occurrence is an **expected** discrepancy class — the very
differences the paper's Sections 2.2, 8.3 and 9 discuss).  The matrix
below encodes, for each ordered pair and set domain, what extra
elements on each side mean.

Hard expectations (violations when broken):

* ``reference == paper`` on locations — Definition 1 completeness in
  one direction, the paper's precision claim in the other.  Verified
  empirically over large fuzz sweeps before being encoded here.
* ``paper ⊆ reference-raw`` — the ownership filter only removes
  events, so it can never manufacture a racy location.
* ``hb ⊆ reference-raw`` — a happened-before race has no common lock
  (a common lock would have created the ordering edge), hence it is a
  lockset race (§2.2); join pseudo-locks mirror the HB start/join
  edges exactly.
* ``paper-live == paper`` — on-the-fly and post-mortem replay consume
  the identical event stream and must agree report-for-report.
* ``paper-sharded-k == paper`` — the PR-1 sharding theorem: reports,
  monitored locations, trie node totals, ``accesses``,
  ``owned_filtered`` and ``detector_processed`` are invariant across
  shard counts, and ``cache_hits + weaker_filtered`` is invariant as a
  sum.
* ``hb ⊆ shb`` — the predictive superset theorem: the SHB relation
  drops HB edges (lock release→acquire) and adds only edges already
  implied by HB (lock-coupled write→read), so with the identical
  check-then-update structure prediction can only *add* reports.
* ``hybrid ⊆ shb`` — the hybrid is SHB plus a lockset conjunct; a
  conjunction never admits more than one of its conjuncts.
* ``hybrid ⊆ reference-raw`` — every hybrid report is a conflicting
  disjoint-lockset pair between different threads under reference-raw
  lockset semantics, hence a pair FullRace also enumerates.

Expected discrepancy classes (documented gaps, never violations):

* ``feasible-race-gap`` — lockset races HB misses because an observed
  lock ordering hid them (§2.2's central argument).
* ``ownership-suppressed`` — races on initialization-phase accesses
  the ownership filter deliberately hides (§7, Table 3's NoOwnership
  flood in reverse).
* ``eraser-single-lock-fp`` — Eraser's single-common-lock discipline
  flagging pairwise-consistent locking (the mtrt idiom, §8.3).
* ``eraser-deferral-miss`` — races Eraser misses because its state
  machine was still in Virgin/Exclusive/Shared when they happened, it
  reports at most once per location, or the race needed the join
  modeling Eraser lacks.
* ``object-granularity-fp`` / ``object-deferral-miss`` — the Praun &
  Gross whole-object coarsening (§8.3, Table 3) versus its single-lock
  deferral and first-report-only behaviour.
* ``static-elimination-miss`` / ``ownership-timing-shift`` — the
  optimized instrumentation plan (§5–§7) emits fewer events; races can
  disappear outright, and the §7.2 interaction (fewer events move the
  owned→shared transition) can shift which accesses are visible in
  either direction.
* ``predicted-not-observed`` — races SHB predicts in schedulable
  reorderings of the trace that the observed interleaving's HB order
  hid (the predictive detector's whole point; corpus entries of this
  class carry an executable witness schedule).
* ``lockset-fp-refuted`` — disjoint-lockset pairs the FullRace
  reference flags that the hybrid predictor refutes: a start/join/
  condition or write→read edge orders them in *every* schedulable
  reordering (the classic case is initialization-phase writes the
  child thread only ever reads after ``start``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .verdicts import DEFAULT_SHARDS, Verdict

VIOLATION = "violation"
EXPECTED = "expected"


@dataclass(frozen=True)
class Expectation:
    """One ordered pairwise relation in the matrix.

    ``on_left_extra`` / ``on_right_extra`` name the discrepancy class
    assigned when that side holds elements the other lacks; the
    ``violation:`` prefix marks the class as a violation, anything else
    is an expected class.  ``None`` means that direction is impossible
    by construction (not checked).
    """

    left: str
    right: str
    domain: str  # "locations" | "objects"
    on_left_extra: Optional[str]
    on_right_extra: Optional[str]
    why: str


MATRIX = (
    Expectation(
        left="reference",
        right="paper",
        domain="locations",
        on_left_extra="violation:definition1-miss",
        on_right_extra="violation:precision-loss",
        why="Definition 1: the trie detector reports every location "
        "with a non-empty MemRace(m), and only those (paper §2.5/§3).",
    ),
    Expectation(
        left="paper",
        right="reference-raw",
        domain="locations",
        on_left_extra="violation:ownership-admitted-extra",
        on_right_extra="ownership-suppressed",
        why="The ownership filter only removes events, so every "
        "reported location must also race without it (§7).",
    ),
    Expectation(
        left="hb",
        right="reference-raw",
        domain="locations",
        on_left_extra="violation:hb-inclusion-break",
        on_right_extra="feasible-race-gap",
        why="An HB-unordered conflicting pair shares no lock, so it is "
        "a lockset race; the converse gap is §2.2's feasible races.",
    ),
    Expectation(
        left="eraser",
        right="paper",
        domain="locations",
        on_left_extra="eraser-single-lock-fp",
        on_right_extra="eraser-deferral-miss",
        why="Eraser demands one lock common to all accesses and defers "
        "through its initialization states (§8.3, §9).",
    ),
    Expectation(
        left="objectrace",
        right="paper",
        domain="objects",
        on_left_extra="object-granularity-fp",
        on_right_extra="object-deferral-miss",
        why="Whole-object candidate sets coarsen the location space "
        "(Praun & Gross; Table 3's FieldsMerged isolates the effect).",
    ),
    Expectation(
        left="paper-static",
        right="paper",
        domain="locations",
        on_left_extra="ownership-timing-shift",
        on_right_extra="static-elimination-miss",
        why="The optimized plan emits fewer events; §7.2's "
        "ownership-timing interaction can shift reports either way.",
    ),
    Expectation(
        left="shb",
        right="hb",
        domain="locations",
        on_left_extra="predicted-not-observed",
        on_right_extra="violation:predictive-superset-break",
        why="Every SHB edge is an HB edge, so prediction can only add "
        "reports: races realizable in reorderings of the trace.",
    ),
    Expectation(
        left="hybrid",
        right="shb",
        domain="locations",
        on_left_extra="violation:hybrid-exceeds-shb",
        # The converse direction — SHB locations the hybrid filters —
        # is the lockset conjunct doing its job on pure SHB's
        # lock-protected false positives; it is not a distinct class
        # (the interesting refutations surface against reference-raw).
        on_right_extra=None,
        why="The hybrid is SHB restricted by the lockset conjunct; a "
        "conjunction cannot admit more than one conjunct alone.",
    ),
    Expectation(
        left="hybrid",
        right="reference-raw",
        domain="locations",
        on_left_extra="violation:hybrid-lockset-break",
        on_right_extra="lockset-fp-refuted",
        why="Every hybrid report is a disjoint-lockset conflicting "
        "pair, hence in FullRace; the converse gap is a lockset false "
        "positive that prediction refutes (SHB-ordered in every "
        "schedulable reordering).",
    ),
)

#: Counters that must be exactly invariant across shard counts.
PARITY_COUNTERS = (
    "accesses",
    "owned_filtered",
    "detector_processed",
    "filtered_sum",
    "monitored_locations",
    "trie_nodes",
    "report_signature",
)


@dataclass(frozen=True)
class Discrepancy:
    """One classified difference between two verdicts."""

    left: str
    right: str
    domain: str
    #: The discrepancy class, e.g. ``feasible-race-gap`` or
    #: ``definition1-miss``.
    klass: str
    #: ``"expected"`` or ``"violation"``.
    classification: str
    #: The offending elements (location/object strings), sorted.
    items: tuple
    detail: str = ""

    @property
    def is_violation(self) -> bool:
        return self.classification == VIOLATION

    def describe(self) -> str:
        marker = "VIOLATION" if self.is_violation else "expected"
        body = ", ".join(self.items[:4])
        if len(self.items) > 4:
            body += f", ... ({len(self.items)} total)"
        detail = f" [{self.detail}]" if self.detail else ""
        return (
            f"[{marker}] {self.klass}: {self.left} vs {self.right} "
            f"({self.domain}): {body}{detail}"
        )


def _classify(klass_spec: str) -> tuple[str, str]:
    if klass_spec.startswith("violation:"):
        return klass_spec[len("violation:"):], VIOLATION
    return klass_spec, EXPECTED


def classify_case(verdicts: dict, shards=DEFAULT_SHARDS) -> list:
    """Apply the whole matrix to one case's verdicts.

    Returns the list of :class:`Discrepancy` objects (empty when every
    detector pair agrees exactly where it must and differs nowhere it
    may).  Matrix rows whose detectors were not run (e.g. the static
    axis was disabled, or sharding was skipped under bug injection) are
    silently skipped.
    """
    discrepancies: list = []
    for expectation in MATRIX:
        left = verdicts.get(expectation.left)
        right = verdicts.get(expectation.right)
        if left is None or right is None:
            continue
        left_set = getattr(left, expectation.domain)
        right_set = getattr(right, expectation.domain)
        extra_left = left_set - right_set
        extra_right = right_set - left_set
        if extra_left and expectation.on_left_extra is not None:
            klass, classification = _classify(expectation.on_left_extra)
            discrepancies.append(
                Discrepancy(
                    left=expectation.left,
                    right=expectation.right,
                    domain=expectation.domain,
                    klass=klass,
                    classification=classification,
                    items=tuple(sorted(extra_left)),
                )
            )
        if extra_right and expectation.on_right_extra is not None:
            klass, classification = _classify(expectation.on_right_extra)
            discrepancies.append(
                Discrepancy(
                    left=expectation.left,
                    right=expectation.right,
                    domain=expectation.domain,
                    klass=klass,
                    classification=classification,
                    items=tuple(sorted(extra_right)),
                )
            )
    discrepancies.extend(_mode_parity(verdicts))
    discrepancies.extend(_sharded_parity(verdicts, shards))
    discrepancies.extend(_binlog_parity(verdicts))
    return discrepancies


def _binlog_parity(verdicts: dict) -> list:
    """paper-binlog vs paper: the at-rest-format theorem — the tuple →
    binary → tuple round trip is entry-for-entry lossless, so the
    detector battery over the decoded stream must agree with the
    in-memory path on every counter and report."""
    binlog = verdicts.get("paper-binlog")
    paper = verdicts.get("paper")
    if binlog is None or paper is None:
        return []
    binlog_counters = binlog.counter_map()
    serial_counters = paper.counter_map()
    broken = [
        name
        for name in PARITY_COUNTERS
        if serial_counters.get(name) != binlog_counters.get(name)
    ]
    if not binlog_counters.get("roundtrip_identical", True):
        broken.append("roundtrip_identical")
    if binlog.locations != paper.locations or broken:
        return [
            Discrepancy(
                left="paper-binlog",
                right="paper",
                domain="locations",
                klass="binlog-parity-break",
                classification=VIOLATION,
                items=tuple(sorted(binlog.locations ^ paper.locations)),
                detail="counters: " + ", ".join(
                    f"{name}={binlog_counters.get(name)!r}"
                    f"!={serial_counters.get(name)!r}"
                    for name in broken
                )
                if broken
                else "report sets differ",
            )
        ]
    return []


def _mode_parity(verdicts: dict) -> list:
    """paper-live vs paper: identical stream, identical everything."""
    live = verdicts.get("paper-live")
    paper = verdicts.get("paper")
    if live is None or paper is None:
        return []
    problems = []
    if live.locations != paper.locations or live.races != paper.races:
        problems.append(
            Discrepancy(
                left="paper-live",
                right="paper",
                domain="locations",
                klass="mode-parity-break",
                classification=VIOLATION,
                items=tuple(sorted(live.locations ^ paper.locations)),
                detail=f"races {live.races} vs {paper.races}",
            )
        )
    return problems


def _sharded_parity(verdicts: dict, shards) -> list:
    """paper-sharded-k vs paper: the PR-1 merge theorem, per counter."""
    paper = verdicts.get("paper")
    if paper is None:
        return []
    serial_counters = paper.counter_map()
    problems = []
    for count in shards:
        sharded = verdicts.get(f"paper-sharded-{count}")
        if sharded is None:
            continue
        sharded_counters = sharded.counter_map()
        broken = [
            name
            for name in PARITY_COUNTERS
            if serial_counters.get(name) != sharded_counters.get(name)
        ]
        if sharded.locations != paper.locations or broken:
            problems.append(
                Discrepancy(
                    left=sharded.detector,
                    right="paper",
                    domain="locations",
                    klass="sharded-parity-break",
                    classification=VIOLATION,
                    items=tuple(sorted(sharded.locations ^ paper.locations)),
                    detail="counters: " + ", ".join(
                        f"{name}={sharded_counters.get(name)!r}"
                        f"!={serial_counters.get(name)!r}"
                        for name in broken
                    )
                    if broken
                    else "report sets differ",
                )
            )
    return problems


def expected_classes() -> tuple:
    """All expected discrepancy class names the matrix can emit."""
    names = []
    for expectation in MATRIX:
        for spec in (expectation.on_left_extra, expectation.on_right_extra):
            if spec is not None and not spec.startswith("violation:"):
                names.append(spec)
    return tuple(sorted(set(names)))


def violation_classes() -> tuple:
    """All violation class names the matrix (and parity checks) can emit."""
    names = {"mode-parity-break", "sharded-parity-break", "binlog-parity-break"}
    for expectation in MATRIX:
        for spec in (expectation.on_left_extra, expectation.on_right_extra):
            if spec is not None and spec.startswith("violation:"):
                names.add(spec[len("violation:"):])
    return tuple(sorted(names))
