"""Hand-injected detector bugs, for validating the lab itself.

A differential oracle is only trustworthy if it demonstrably *fails*
when the detector is broken.  This module provides deliberately wrong
:class:`~repro.detector.pipeline.RaceDetector` variants, selectable by
name from the CLI (``repro difflab --inject NAME``) and used by the
test suite to assert end-to-end: injected bug → classified violation →
shrunk reproducer.

Each :class:`Injection` pairs a *detector factory* (zero-argument
callable producing the broken detector) with the
:class:`~repro.detector.config.DetectorConfig` the rest of the battery
must run under so the comparison is apples-to-apples.  The config
matters: under the default ``join_pseudolocks`` modeling every thread's
lockset contains its own ``S_t`` pseudo-lock, so two distinct threads
never insert at the same trie node and the ``t⊥`` thread meet is
unreachable — a bug there is only observable with pseudo-locks
disabled (an empirical fact the lab itself surfaced; see
``docs/difflab.md``).

When a factory is injected the lab skips the sharded battery — shard
workers build plain detectors internally, so the parity axis would
compare a broken serial detector against correct shards and bury the
interesting Definition-1 violation under parity noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..detector.config import DetectorConfig
from ..detector.pipeline import RaceDetector
from ..detector.trie import LockTrie, PriorAccess, TrieNode
from ..lang.ast import AccessKind
from ..detector.weaker import THREAD_BOTTOM, THREAD_TOP, access_meet, thread_meet


@dataclass(frozen=True)
class Injection:
    """One named detector bug plus the battery config it needs."""

    name: str
    factory: Callable[[], RaceDetector]
    #: Config for the battery's reference detectors (and the factory's
    #: own detector) — the legitimate semantics the bug deviates from.
    config: DetectorConfig
    description: str


class NoMeetLockTrie(LockTrie):
    """BUG (deliberate): drops the ``t⊥`` thread meet on insert.

    When a second thread stores an access under an already-populated
    lockset node, the node keeps the *first* thread instead of meeting
    to ``t⊥``.  A later access by that first thread with a disjoint
    lockset then looks same-thread to ``find_race`` and the race with
    the second thread's stored access is silently missed — a
    Definition 1 completeness break (the §3.1 optimization done wrong).
    """

    def insert(self, lockset, thread, kind):
        node = self.root
        for lock in sorted(lockset):
            child = node.children.get(lock)
            if child is None:
                child = TrieNode()
                self.stats.nodes_allocated += 1
                node.children[lock] = child
            node = child
        if node.holds_accesses:
            self.stats.updates += 1
        else:
            self.stats.inserts += 1
        # The bug: keep the existing thread value instead of meeting.
        if node.thread is THREAD_TOP:
            node.thread = thread
        node.kind = access_meet(node.kind, kind)
        return node


class ReadBlindLockTrie(LockTrie):
    """BUG (deliberate): ``find_race`` demands two writes.

    Case II of the race check requires ``e.a ⊓ n.a = WRITE`` — one
    write suffices.  This variant requires *both* sides to be writes,
    as if read-write conflicts were as benign as read-read ones.  Any
    location raced only through read-write pairs (one thread reads it,
    another writes it) is silently missed, which the fuzzer's generated
    reader/writer mixes hit readily under the default config.
    """

    def _find_race(self, node, path, lockset, thread, kind, read_read_races):
        if node.holds_accesses and thread_meet(node.thread, thread) is THREAD_BOTTOM:
            # The bug: `node.kind is WRITE and kind is WRITE` instead of
            # the meet (which detects read-write conflicts too).
            if node.kind is AccessKind.WRITE and kind is AccessKind.WRITE:
                self.stats.races_found += 1
                return PriorAccess(
                    thread=node.thread,
                    lockset=frozenset(path),
                    kind=node.kind,
                )
        for lock, child in node.children.items():
            if lock in lockset:
                continue
            path.append(lock)
            race = self._find_race(
                child, path, lockset, thread, kind, read_read_races
            )
            if race is not None:
                return race
            path.pop()
        return None


#: The pseudo-lock-free semantics the t⊥ injection is observable under.
_NO_PSEUDOLOCKS = DetectorConfig(join_pseudolocks=False)


class DropTBottomMeetDetector(RaceDetector):
    """Paper detector wired to the broken no-meet trie."""

    trie_class = NoMeetLockTrie

    def __init__(self):
        super().__init__(config=_NO_PSEUDOLOCKS)


class ReadBlindDetector(RaceDetector):
    """Paper detector wired to the write-write-only race check."""

    trie_class = ReadBlindLockTrie


def drop_join_pseudolocks() -> RaceDetector:
    """Injection: the detector ignores the S_j join modeling (§2.3).

    Post-join accesses by the parent then look concurrent with the
    joined child's accesses: spurious reports, i.e. a precision-loss
    violation against the FullRace reference (which keeps the correct
    config).
    """
    return RaceDetector(config=DetectorConfig(join_pseudolocks=False))


#: Injection registry: name → Injection.
INJECTIONS = {
    injection.name: injection
    for injection in (
        Injection(
            name="read-write-blind",
            factory=ReadBlindDetector,
            config=DetectorConfig(),
            description="find_race only reports write-write pairs; "
            "read-write races are missed (definition1-miss).",
        ),
        Injection(
            name="drop-tbottom-meet",
            factory=DropTBottomMeetDetector,
            config=_NO_PSEUDOLOCKS,
            description="trie insert keeps the first thread instead of "
            "meeting to t-bottom; races against merged-away accesses "
            "are missed (definition1-miss; observable only without "
            "join pseudo-locks).",
        ),
        Injection(
            name="drop-join-pseudolocks",
            factory=drop_join_pseudolocks,
            config=DetectorConfig(),
            description="detector drops the S_j join pseudo-locks; "
            "post-join accesses spuriously race (precision-loss).",
        ),
    )
}
