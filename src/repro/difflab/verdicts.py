"""Executing one (program, schedule) case through every detector.

One *case* is a fully deterministic pair: MJ source text plus a
:class:`ScheduleSpec`.  :func:`execute_case` runs it once with every
access site traced (recording the tuple-encoded log and an on-the-fly
paper detector simultaneously), and optionally a second time under the
full static instrumentation plan (the §5–§7 optimized pipeline), whose
event stream legitimately differs.

:func:`compute_verdicts` then fans the recorded log out to the whole
detector battery and normalizes each detector's answer into a
:class:`Verdict`: racy locations and objects as plain strings, the
report count, and the counters the sharded-parity expectations check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..baselines import (
    EraserDetector,
    HappensBeforeDetector,
    ObjectRaceDetector,
)
from ..detector.config import DetectorConfig
from ..detector.pipeline import RaceDetector
from ..detector.predict import make_predictor
from ..detector.reference import ReferenceDetector
from ..detector.sharded import canonical_report_order, detect_sharded
from ..instrument.planner import PlannerConfig, plan_instrumentation
from ..lang.resolver import compile_source
from ..runtime.events import MulticastSink, RecordingSink, replay_entries
from ..runtime.replay import FallbackReplayPolicy, ScheduleTrace
from ..runtime.scheduler import RandomPolicy, RoundRobinPolicy

#: Shard counts the lab exercises by default (the PR-1 engine's edge
#: cases live at 1 and at counts above the object population).
DEFAULT_SHARDS = (1, 2, 8)


@dataclass(frozen=True)
class ScheduleSpec:
    """A deterministic, serializable schedule description.

    ``kind`` is one of ``"roundrobin"`` (fixed-quantum round-robin),
    ``"random"`` (the seeded :class:`RandomPolicy`), or ``"prefix"`` (a
    recorded decision prefix replayed via
    :class:`~repro.runtime.replay.FallbackReplayPolicy`, falling back to
    round-robin — the shrinker's output form).
    """

    kind: str = "roundrobin"
    seed: int = 0
    choices: tuple = ()

    def policy(self):
        if self.kind == "roundrobin":
            return RoundRobinPolicy()
        if self.kind == "random":
            return RandomPolicy(self.seed)
        if self.kind == "prefix":
            return FallbackReplayPolicy(ScheduleTrace(list(self.choices)))
        raise ValueError(f"unknown schedule kind {self.kind!r}")

    def describe(self) -> str:
        if self.kind == "roundrobin":
            return "round-robin"
        if self.kind == "random":
            return f"random(seed={self.seed})"
        return f"prefix({len(self.choices)} steps, then round-robin)"

    def to_json(self) -> dict:
        payload: dict = {"kind": self.kind}
        if self.kind == "random":
            payload["seed"] = self.seed
        if self.kind == "prefix":
            payload["choices"] = list(self.choices)
        return payload

    @classmethod
    def from_json(cls, payload: dict) -> "ScheduleSpec":
        return cls(
            kind=payload["kind"],
            seed=payload.get("seed", 0),
            choices=tuple(payload.get("choices", ())),
        )


@dataclass
class CaseRun:
    """The raw material of one executed case."""

    source: str
    schedule: ScheduleSpec
    #: Tuple-encoded event log with every access site traced.
    log: list
    #: The paper detector that ran on-the-fly during the recording run.
    live_detector: RaceDetector
    #: Program output of the recording run (determinism checks).
    output: list
    #: Log recorded under the full static instrumentation plan, or None
    #: when the static axis is disabled.
    static_log: Optional[list] = None


@dataclass(frozen=True)
class Verdict:
    """One detector's normalized answer for one case."""

    detector: str
    locations: frozenset
    objects: frozenset
    races: int
    #: Counters for the exact-parity expectations (sharded vs serial).
    counters: tuple = ()

    def counter_map(self) -> dict:
        return dict(self.counters)


def _norm_locations(keys) -> frozenset:
    return frozenset(str(key) for key in keys)


def _norm_objects(labels) -> frozenset:
    return frozenset(str(label) for label in labels)


class EngineDivergence(Exception):
    """The selected engine and the AST reference engine disagreed."""


class TieringDivergence(Exception):
    """A tiered rerun's verdict differed from the untired detector.

    Tiering's contract is *byte-identical* detection: the tiered
    compiled engine must reproduce the untired run's race reports and
    every pipeline counter exactly.  The lab enforces it by rerunning
    each case with tiering engaged and comparing the full paper
    verdict, counters included."""


def execute_case(
    source: str,
    schedule: ScheduleSpec,
    detector_factory: Optional[Callable[[], RaceDetector]] = None,
    include_static_axis: bool = True,
    max_steps: int = 2_000_000,
    engine: str = "ast",
    tiering: Optional[str] = None,
) -> CaseRun:
    """Run one case, recording the all-sites log plus a live detector.

    The program is compiled fresh per run (the planner mutates the AST
    in place), and each run gets a fresh policy instance so the
    schedules are identical across runs of the same spec.

    With ``engine`` other than ``"ast"``, the recording run executes on
    that engine and the AST interpreter reruns the same case as the
    differential reference: program output and the tuple-encoded event
    log must match exactly, otherwise :class:`EngineDivergence` is
    raised (and surfaces as a lab error).

    With ``tiering="on"`` and a non-ast engine, the case additionally
    runs once more with the detector as the sole sink and tiering
    engaged (the recording run's multicast sink never engages tiering,
    keeping the log byte-identical by construction); its full verdict —
    counters included — must equal the live detector's, otherwise
    :class:`TieringDivergence` is raised.  Skipped under an injected
    ``detector_factory``: tiering only engages on the real pipeline.
    """
    factory = detector_factory if detector_factory is not None else RaceDetector
    if tiering is None:
        from ..runtime.tiering import DEFAULT_TIERING

        tiering = DEFAULT_TIERING
    resolved = compile_source(source)
    log = RecordingSink()
    live = factory()
    result = _run(
        resolved,
        MulticastSink([log, live]),
        trace_sites=None,
        policy=schedule.policy(),
        max_steps=max_steps,
        engine=engine,
    )
    if engine != "ast":
        reference_log = RecordingSink()
        reference_result = _run(
            compile_source(source),
            reference_log,
            trace_sites=None,
            policy=schedule.policy(),
            max_steps=max_steps,
            engine="ast",
        )
        if reference_result.output != result.output:
            raise EngineDivergence(
                f"engine {engine!r} output diverged from the ast "
                f"reference: {result.output!r} != "
                f"{reference_result.output!r}"
            )
        if reference_log.log != log.log:
            raise EngineDivergence(
                f"engine {engine!r} event log diverged from the ast "
                f"reference ({len(log.log)} vs "
                f"{len(reference_log.log)} entries)"
            )
    if tiering == "on" and engine != "ast" and detector_factory is None:
        tiered = RaceDetector()
        _run(
            compile_source(source),
            tiered,
            trace_sites=None,
            policy=schedule.policy(),
            max_steps=max_steps,
            engine=engine,
            tiering="on",
        )
        expected = _paper_verdict("paper-live", live)
        got = _paper_verdict("paper-live", tiered)
        if got != expected:
            drifted = [
                name
                for (name, a), (_, b) in zip(got.counters, expected.counters)
                if a != b
            ]
            raise TieringDivergence(
                f"tiered rerun diverged from the untired detector: "
                f"locations {sorted(got.locations)!r} vs "
                f"{sorted(expected.locations)!r}, races {got.races} vs "
                f"{expected.races}, drifted counters: {drifted or 'none'}"
            )
    static_log: Optional[list] = None
    if include_static_axis:
        resolved_static = compile_source(source)
        plan = plan_instrumentation(resolved_static, PlannerConfig())
        static_sink = RecordingSink()
        _run(
            resolved_static,
            static_sink,
            trace_sites=plan.trace_sites,
            policy=schedule.policy(),
            max_steps=max_steps,
            engine=engine,
        )
        static_log = static_sink.log
    return CaseRun(
        source=source,
        schedule=schedule,
        log=log.log,
        live_detector=live,
        output=result.output,
        static_log=static_log,
    )


def _run(resolved, sink, trace_sites, policy, max_steps, engine="ast",
         tiering=None):
    from ..runtime import engine_runner

    return engine_runner(engine)(
        resolved,
        sink=sink,
        trace_sites=trace_sites,
        policy=policy,
        max_steps=max_steps,
        tiering=tiering,
    )


def _paper_verdict(name: str, detector: RaceDetector) -> Verdict:
    reports = detector.reports
    stats = detector.stats
    return Verdict(
        detector=name,
        locations=_norm_locations(reports.racy_locations),
        objects=_norm_objects(reports.racy_objects),
        races=len(reports.reports),
        counters=(
            ("accesses", stats.accesses),
            ("owned_filtered", stats.owned_filtered),
            ("detector_processed", stats.detector_processed),
            ("filtered_sum", stats.cache_hits + stats.detector_weaker_filtered),
            ("monitored_locations", detector.monitored_locations),
            ("trie_nodes", detector.total_trie_nodes()),
            (
                "report_signature",
                tuple(
                    (str(r.key), r.current.thread_id, r.current.site_id)
                    for r in canonical_report_order(reports.reports)
                ),
            ),
        ),
    )


def compute_verdicts(
    case: CaseRun,
    shards: Sequence[int] = DEFAULT_SHARDS,
    detector_factory: Optional[Callable[[], RaceDetector]] = None,
    config: Optional[DetectorConfig] = None,
) -> dict:
    """Run the full battery over one executed case.

    Returns ``{detector name: Verdict}``.  When ``detector_factory`` is
    given (bug injection), the sharded battery is skipped — the shard
    workers construct plain :class:`RaceDetector` instances internally,
    so an injected bug would make the parity axis compare a broken
    serial detector against correct shards and drown the interesting
    violation in parity noise.
    """
    factory = detector_factory if detector_factory is not None else RaceDetector
    cfg = config if config is not None else DetectorConfig()
    verdicts: dict = {}

    verdicts["paper-live"] = _paper_verdict("paper-live", case.live_detector)

    paper = factory()
    replay_entries(case.log, paper)
    verdicts["paper"] = _paper_verdict("paper", paper)

    # The at-rest-format axis: round-trip the tuple log through the
    # MJBL binary format and rerun the paper detector over the decoded
    # stream.  Entry-for-entry round-trip identity and verdict parity
    # are both theorems; either breaking is a lab violation
    # (``binlog-parity-break``).
    from ..runtime.binlog import (
        read_binary_log,
        temporary_binary_log,
        write_binary_log,
    )

    with temporary_binary_log() as roundtrip_path:
        write_binary_log(case.log, roundtrip_path)
        decoded = read_binary_log(roundtrip_path)
    binlog_paper = factory()
    replay_entries(decoded, binlog_paper)
    binlog_verdict = _paper_verdict("paper-binlog", binlog_paper)
    verdicts["paper-binlog"] = Verdict(
        detector="paper-binlog",
        locations=binlog_verdict.locations,
        objects=binlog_verdict.objects,
        races=binlog_verdict.races,
        counters=binlog_verdict.counters
        + (("roundtrip_identical", decoded == list(case.log)),),
    )

    if detector_factory is None:
        for count in shards:
            sharded = detect_sharded(case.log, count, config=cfg, validate=False)
            verdicts[f"paper-sharded-{count}"] = Verdict(
                detector=f"paper-sharded-{count}",
                locations=_norm_locations(sharded.reports.racy_locations),
                objects=_norm_objects(sharded.reports.racy_objects),
                races=sharded.races,
                counters=(
                    ("accesses", sharded.stats.accesses),
                    ("owned_filtered", sharded.stats.owned_filtered),
                    ("detector_processed", sharded.stats.detector_processed),
                    (
                        "filtered_sum",
                        sharded.stats.cache_hits
                        + sharded.stats.detector_weaker_filtered,
                    ),
                    ("monitored_locations", sharded.monitored_locations),
                    ("trie_nodes", sharded.trie_nodes),
                    (
                        "report_signature",
                        tuple(
                            (str(r.key), r.current.thread_id, r.current.site_id)
                            for r in sharded.reports.reports
                        ),
                    ),
                ),
            )

    reference = ReferenceDetector(cfg)
    replay_entries(case.log, reference)
    verdicts["reference"] = Verdict(
        detector="reference",
        locations=_norm_locations(reference.racy_locations),
        objects=_norm_objects(reference.racy_objects),
        races=len(reference.pairs),
    )

    reference_raw = ReferenceDetector(cfg.but(ownership=False))
    replay_entries(case.log, reference_raw)
    verdicts["reference-raw"] = Verdict(
        detector="reference-raw",
        locations=_norm_locations(reference_raw.racy_locations),
        objects=_norm_objects(reference_raw.racy_objects),
        races=len(reference_raw.pairs),
    )

    eraser = EraserDetector()
    replay_entries(case.log, eraser)
    verdicts["eraser"] = Verdict(
        detector="eraser",
        locations=_norm_locations(eraser.racy_locations),
        objects=_norm_objects(eraser.racy_objects),
        races=len(eraser.reports),
    )

    hb = HappensBeforeDetector()
    replay_entries(case.log, hb)
    verdicts["hb"] = Verdict(
        detector="hb",
        locations=_norm_locations(hb.racy_locations),
        objects=_norm_objects(hb.racy_objects),
        races=len(hb.reports),
    )

    # The predictive axes: SHB and the hybrid lockset+HB predictor run
    # over the same recorded stream.  Their expectation rows are
    # theorems of the battery designs: shb ⊇ hb (prediction only adds
    # reports) and hybrid ⊆ reference-raw (every hybrid report is a
    # lockset race); the expected directions are the two predictive
    # discrepancy classes.
    for mode in ("shb", "hybrid"):
        predictor = make_predictor(mode)
        replay_entries(case.log, predictor)
        verdicts[mode] = Verdict(
            detector=mode,
            locations=_norm_locations(predictor.racy_locations),
            objects=_norm_objects(predictor.racy_objects),
            races=len(predictor.reports),
        )

    objectrace = ObjectRaceDetector()
    replay_entries(case.log, objectrace)
    verdicts["objectrace"] = Verdict(
        detector="objectrace",
        locations=frozenset(),
        objects=_norm_objects(objectrace.racy_objects),
        races=len(objectrace.reports),
    )

    if case.static_log is not None:
        static = factory()
        replay_entries(case.static_log, static)
        verdicts["paper-static"] = Verdict(
            detector="paper-static",
            locations=_norm_locations(static.reports.racy_locations),
            objects=_norm_objects(static.reports.racy_objects),
            races=len(static.reports.reports),
        )

    return verdicts
