"""Differential race-oracle lab with automatic counterexample shrinking.

See :mod:`repro.difflab.expectations` for the declarative matrix,
:mod:`repro.difflab.lab` for the campaign driver, and
``docs/difflab.md`` for the triage guide.
"""

from .corpus import (
    DEFAULT_CORPUS,
    CorpusEntry,
    check_witness,
    load_corpus,
    save_entry,
    verify_corpus,
    verify_entry,
)
from .expectations import (
    EXPECTED,
    MATRIX,
    VIOLATION,
    Discrepancy,
    Expectation,
    classify_case,
    expected_classes,
    violation_classes,
)
from .inject import INJECTIONS
from .lab import (
    CampaignResult,
    CaseResult,
    Find,
    Violation,
    case_classes,
    class_items,
    fingerprint,
    run_campaign,
    run_case,
    shrink_case,
    synthesize_witness,
)
from .shrink import (
    ShrinkResult,
    ShrinkStats,
    count_statements,
    lock_order_ascending,
    shrink_program,
    shrink_schedule,
    validate_structure,
)
from .verdicts import (
    DEFAULT_SHARDS,
    CaseRun,
    EngineDivergence,
    ScheduleSpec,
    TieringDivergence,
    Verdict,
    compute_verdicts,
    execute_case,
)

__all__ = [
    "DEFAULT_CORPUS",
    "DEFAULT_SHARDS",
    "CampaignResult",
    "CaseResult",
    "CaseRun",
    "CorpusEntry",
    "Discrepancy",
    "EXPECTED",
    "EngineDivergence",
    "Expectation",
    "Find",
    "INJECTIONS",
    "MATRIX",
    "ScheduleSpec",
    "ShrinkResult",
    "ShrinkStats",
    "TieringDivergence",
    "Verdict",
    "VIOLATION",
    "Violation",
    "case_classes",
    "check_witness",
    "class_items",
    "classify_case",
    "compute_verdicts",
    "count_statements",
    "execute_case",
    "expected_classes",
    "fingerprint",
    "load_corpus",
    "lock_order_ascending",
    "run_campaign",
    "run_case",
    "save_entry",
    "shrink_case",
    "shrink_program",
    "shrink_schedule",
    "synthesize_witness",
    "validate_structure",
    "verify_corpus",
    "verify_entry",
    "violation_classes",
]
