"""Committed reproducer corpus (``tests/corpus/``).

Every corpus entry is a pair of files sharing a stem:

* ``<name>.mj`` — the (usually shrunk) MJ program, runnable on its own;
* ``<name>.json`` — metadata: the schedule spec, a stable fingerprint,
  the discrepancy classes the entry exhibits with their classification,
  the full per-detector verdict matrix (racy locations/objects and
  report counts) observed when the entry was minted, and free-form
  notes explaining *why* the discrepancy is the documented one.

The corpus serves two masters: the fast PR gate re-runs every entry and
asserts the verdict matrix byte-for-byte (a regression in any detector
or baseline flips a matrix cell), and the lab's ``--corpus`` mode uses
the class annotations to prove each documented discrepancy class is
actually reproduced by at least one committed case.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from .expectations import EXPECTED
from .lab import DEFAULT_MAX_STEPS, case_classes, fingerprint, run_case
from .verdicts import DEFAULT_SHARDS, ScheduleSpec

#: Repo-relative default corpus directory.
DEFAULT_CORPUS = Path(__file__).resolve().parents[3] / "tests" / "corpus"


@dataclass
class CorpusEntry:
    name: str
    source: str
    schedule: ScheduleSpec
    #: ``"expected"`` or ``"violation"`` — committed entries are always
    #: expected; violation entries exist transiently in ``--out`` dirs.
    classification: str
    #: Discrepancy classes this entry must exhibit.
    classes: tuple
    fingerprint: str
    #: ``{detector: {"locations": [...], "objects": [...], "races": n}}``
    verdicts: dict = field(default_factory=dict)
    notes: str = ""
    #: For ``predicted-not-observed`` entries: a
    #: :class:`~repro.detector.predict.Witness` payload — a recorded
    #: scheduler decision trace whose exact replay makes the plain HB
    #: detector *observe* a race at the predicted location.  The gate
    #: re-executes it on every verification.
    witness: Optional[dict] = None

    def describe(self) -> str:
        return (
            f"{self.name} [{self.classification}: {', '.join(self.classes)}] "
            f"schedule={self.schedule.describe()}"
        )


def verdict_matrix(result) -> dict:
    """The serializable per-detector matrix for a classified case."""
    raise_on = result.error
    if raise_on is not None:
        raise ValueError(f"case errored, no matrix: {raise_on}")
    matrix: dict = {}
    for detector, verdict in result.verdicts.items():
        matrix[detector] = {
            "locations": sorted(verdict.locations),
            "objects": sorted(verdict.objects),
            "races": verdict.races,
        }
    return matrix


def save_entry(
    directory: Path,
    name: str,
    source: str,
    schedule: ScheduleSpec,
    classes: Sequence[str],
    classification: str = EXPECTED,
    notes: str = "",
    shards: Sequence[int] = DEFAULT_SHARDS,
    max_steps: int = DEFAULT_MAX_STEPS,
    witness=None,
) -> CorpusEntry:
    """Mint and write a corpus entry, recording its verdict matrix.

    ``predicted-not-observed`` entries must supply a ``witness`` (a
    :class:`~repro.detector.predict.Witness` or its JSON payload); it
    is replay-validated before anything is written.
    """
    from ..detector.predict import Witness, replay_witness

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    result = run_case(source, schedule, shards=shards, max_steps=max_steps)
    if result.error is not None:
        raise ValueError(f"corpus candidate errored: {result.error}")
    exhibited = case_classes(result, violations_only=classification != EXPECTED)
    missing = set(classes) - exhibited
    if missing:
        raise ValueError(
            f"corpus candidate does not exhibit {sorted(missing)} "
            f"(got {sorted(exhibited)})"
        )
    if witness is not None and not isinstance(witness, Witness):
        witness = Witness.from_json(witness)
    if "predicted-not-observed" in classes and witness is None:
        raise ValueError(
            f"corpus entry {name} is annotated predicted-not-observed "
            f"but carries no witness schedule — predictions are "
            f"verified by execution, not assertion"
        )
    if witness is not None and not replay_witness(
        source, witness, max_steps=max_steps
    ):
        raise ValueError(
            f"corpus entry {name}: witness replay does not observe an "
            f"HB race at {witness.location}"
        )
    entry = CorpusEntry(
        name=name,
        source=source,
        schedule=schedule,
        classification=classification,
        classes=tuple(sorted(classes)),
        fingerprint=fingerprint(source, schedule, classes),
        verdicts=verdict_matrix(result),
        notes=notes,
        witness=witness.to_json() if witness is not None else None,
    )
    (directory / f"{name}.mj").write_text(source)
    payload = {
        "fingerprint": entry.fingerprint,
        "schedule": schedule.to_json(),
        "classification": classification,
        "classes": list(entry.classes),
        "verdicts": entry.verdicts,
        "notes": notes,
    }
    if entry.witness is not None:
        payload["witness"] = entry.witness
    (directory / f"{name}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    return entry


def load_corpus(directory: Optional[Path] = None) -> list:
    """All corpus entries under ``directory``, sorted by name."""
    directory = Path(directory) if directory is not None else DEFAULT_CORPUS
    entries = []
    for meta_path in sorted(directory.glob("*.json")):
        source_path = meta_path.with_suffix(".mj")
        if not source_path.exists():
            raise FileNotFoundError(
                f"corpus entry {meta_path.name} has no matching .mj file"
            )
        payload = json.loads(meta_path.read_text())
        entries.append(
            CorpusEntry(
                name=meta_path.stem,
                source=source_path.read_text(),
                schedule=ScheduleSpec.from_json(payload["schedule"]),
                classification=payload.get("classification", EXPECTED),
                classes=tuple(payload.get("classes", ())),
                fingerprint=payload.get("fingerprint", ""),
                verdicts=payload.get("verdicts", {}),
                notes=payload.get("notes", ""),
                witness=payload.get("witness"),
            )
        )
    return entries


def verify_entry(
    entry: CorpusEntry,
    shards: Sequence[int] = DEFAULT_SHARDS,
    max_steps: int = DEFAULT_MAX_STEPS,
    engine: str = "ast",
    tiering=None,
) -> list:
    """Re-run one committed entry; return human-readable problems.

    Checks, in order: the case still executes cleanly; no *new*
    violations appeared; every annotated class is still exhibited; and
    the recorded per-detector verdict matrix still matches exactly.
    """
    problems: list = []
    result = run_case(
        entry.source, entry.schedule, label=entry.name, shards=shards,
        max_steps=max_steps, engine=engine, tiering=tiering,
    )
    if result.error is not None:
        return [f"{entry.name}: execution failed: {result.error}"]
    if entry.classification == EXPECTED and result.violations:
        problems.extend(
            f"{entry.name}: unexpected violation: {d.describe()}"
            for d in result.violations
        )
    exhibited = case_classes(
        result, violations_only=entry.classification != EXPECTED
    )
    for klass in entry.classes:
        if klass not in exhibited:
            problems.append(
                f"{entry.name}: no longer exhibits {klass} "
                f"(got {sorted(exhibited)})"
            )
    fresh = verdict_matrix(result)
    for detector, recorded in entry.verdicts.items():
        current = fresh.get(detector)
        if current is None:
            problems.append(
                f"{entry.name}: detector {detector} missing from battery"
            )
        elif current != recorded:
            problems.append(
                f"{entry.name}: {detector} verdict drifted: "
                f"recorded {recorded} vs current {current}"
            )
    if "predicted-not-observed" in entry.classes and entry.witness is None:
        problems.append(
            f"{entry.name}: predicted-not-observed entry carries no "
            f"witness schedule"
        )
    if entry.witness is not None:
        problems.extend(check_witness(entry, max_steps=max_steps, engine=engine))
    return problems


def check_witness(
    entry: CorpusEntry,
    max_steps: int = DEFAULT_MAX_STEPS,
    engine: str = "ast",
) -> list:
    """Replay one entry's witness; return human-readable problems.

    The witness is an exact decision trace: the replay must consume it
    completely (both exhaustion directions checked) and the plain HB
    detector must *observe* a race at the predicted location — the
    executable proof behind a ``predicted-not-observed`` annotation.
    """
    from ..detector.predict import Witness, replay_witness
    from ..runtime.replay import ReplayDivergence

    if entry.witness is None:
        return [f"{entry.name}: no witness to check"]
    witness = Witness.from_json(entry.witness)
    try:
        observed = replay_witness(
            entry.source, witness, max_steps=max_steps, engine=engine
        )
    except ReplayDivergence as exc:
        return [
            f"{entry.name}: witness replay diverged ({engine} engine): {exc}"
        ]
    if not observed:
        return [
            f"{entry.name}: witness replays but the HB detector does "
            f"not observe a race at {witness.location} ({engine} engine)"
        ]
    return []


def verify_corpus(
    directory: Optional[Path] = None,
    shards: Sequence[int] = DEFAULT_SHARDS,
    engine: str = "ast",
    tiering=None,
) -> tuple:
    """Verify every entry; returns ``(entries, problems)``.

    With ``tiering="on"`` (and a non-ast engine) every entry's verdict
    matrix is additionally gated against a tiered rerun — the corpus
    half of the cross-tier parity gate."""
    entries = load_corpus(directory)
    problems: list = []
    for entry in entries:
        problems.extend(
            verify_entry(entry, shards=shards, engine=engine, tiering=tiering)
        )
    return entries, problems
