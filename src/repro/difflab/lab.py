"""The differential race-oracle lab: campaign driver.

A *campaign* sweeps a corpus of fuzzed (program seed, schedule seed)
cases through the whole detector battery
(:func:`~repro.difflab.verdicts.compute_verdicts`), classifies every
pairwise discrepancy against the expectation matrix
(:func:`~repro.difflab.expectations.classify_case`), and — on any
*violation* — invokes the automatic shrinker to minimize the failing
program and schedule before reporting it.

The lab is the repo's standing answer to "is the detector still
correct?": expected discrepancy classes are *evidence the battery has
teeth* (the baselines really do disagree in the documented ways), while
a single violation is a soundness/precision bug, delivered as a small
reproducer rather than a 100-line fuzz program.
"""

from __future__ import annotations

import hashlib
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..detector.config import DetectorConfig
from ..lang.errors import MJError
from ..runtime.scheduler import DeadlockError, StepLimitExceeded
from ..workloads.fuzz import generate_program
from .expectations import classify_case
from .shrink import (
    ShrinkStats,
    count_statements,
    lock_order_ascending,
    record_schedule_trace,
    shrink_program,
    shrink_schedule,
)
from .verdicts import (
    DEFAULT_SHARDS,
    EngineDivergence,
    ScheduleSpec,
    TieringDivergence,
    compute_verdicts,
    execute_case,
)

#: Step budget per fuzz case: generous for fuzzer-sized programs, small
#: enough that a pathological candidate fails fast during shrinking.
DEFAULT_MAX_STEPS = 200_000


@dataclass
class CaseResult:
    """One classified case."""

    label: str
    source: str
    schedule: ScheduleSpec
    discrepancies: list
    #: ``{detector name: Verdict}`` — empty when the case errored.
    verdicts: dict = field(default_factory=dict)
    error: Optional[str] = None

    @property
    def violations(self) -> list:
        return [d for d in self.discrepancies if d.is_violation]

    @property
    def expected(self) -> list:
        return [d for d in self.discrepancies if not d.is_violation]


@dataclass
class Violation:
    """A shrunk, fingerprinted counterexample for one violating case."""

    fingerprint: str
    classes: tuple
    source: str
    schedule: ScheduleSpec
    original_label: str
    stats: ShrinkStats
    discrepancies: list = field(default_factory=list)


@dataclass
class Find:
    """A shrunk reproducer for a *hunted* expected class.

    Hunting campaigns (``difflab --predict``) target documented
    discrepancy classes rather than violations: the first case
    exhibiting each hunted class is DDmin-shrunk into a committable
    reproducer.  ``predicted-not-observed`` finds additionally carry a
    synthesized witness schedule (when the search locates one) proving
    the prediction by execution.
    """

    fingerprint: str
    klass: str
    source: str
    schedule: ScheduleSpec
    original_label: str
    stats: ShrinkStats
    #: The offending locations, from the shrunk case.
    items: tuple = ()
    #: ``Witness.to_json()`` payload, or None.
    witness: Optional[dict] = None


@dataclass
class CampaignResult:
    cases_run: int = 0
    errors: list = field(default_factory=list)
    #: expected discrepancy class → number of cases exhibiting it.
    expected_counts: Counter = field(default_factory=Counter)
    violations: list = field(default_factory=list)
    #: shrunk reproducers for hunted expected classes (non-failing).
    finds: list = field(default_factory=list)
    duration: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations and not self.errors

    def summary(self) -> str:
        lines = [
            f"difflab: {self.cases_run} cases in {self.duration:.1f}s, "
            f"{len(self.violations)} violation(s), "
            f"{len(self.errors)} error(s)"
        ]
        for klass, count in sorted(self.expected_counts.items()):
            lines.append(f"  expected {klass}: {count} case(s)")
        for violation in self.violations:
            lines.append(
                f"  VIOLATION {violation.fingerprint} "
                f"[{', '.join(violation.classes)}] from "
                f"{violation.original_label}: {violation.stats.describe()}"
            )
        for find in self.finds:
            witness = "with witness" if find.witness else "no witness"
            lines.append(
                f"  FIND {find.fingerprint} [{find.klass}] ({witness}) "
                f"from {find.original_label}: {find.stats.describe()}"
            )
        for label, message in self.errors:
            lines.append(f"  ERROR {label}: {message}")
        return "\n".join(lines)


def fingerprint(source: str, schedule: ScheduleSpec, classes: Sequence[str]) -> str:
    """Stable short id for a reproducer: program + schedule + classes."""
    digest = hashlib.sha256()
    digest.update(source.encode())
    digest.update(repr(schedule.to_json()).encode())
    digest.update(",".join(sorted(classes)).encode())
    return digest.hexdigest()[:12]


def run_case(
    source: str,
    schedule: ScheduleSpec,
    label: str = "case",
    detector_factory: Optional[Callable] = None,
    config: Optional["DetectorConfig"] = None,
    shards: Sequence[int] = DEFAULT_SHARDS,
    include_static_axis: bool = True,
    max_steps: int = DEFAULT_MAX_STEPS,
    engine: str = "ast",
    tiering: Optional[str] = None,
) -> CaseResult:
    """Execute and classify one case; runtime failures become errors.

    A :class:`TieringDivergence` from the tiered cross-check surfaces
    as a case error, which fails the campaign like any violation."""
    if detector_factory is None and config is not None:
        # A plain config sweep: the paper detectors must run under the
        # same semantics as the references they are compared against.
        from ..detector.pipeline import RaceDetector

        detector_factory = lambda: RaceDetector(config=config)  # noqa: E731
    try:
        case = execute_case(
            source,
            schedule,
            detector_factory=detector_factory,
            include_static_axis=include_static_axis,
            max_steps=max_steps,
            engine=engine,
            tiering=tiering,
        )
    except (
        MJError,
        DeadlockError,
        StepLimitExceeded,
        RecursionError,
        EngineDivergence,
        TieringDivergence,
    ) as exc:
        return CaseResult(
            label=label,
            source=source,
            schedule=schedule,
            discrepancies=[],
            error=f"{type(exc).__name__}: {exc}",
        )
    verdicts = compute_verdicts(
        case, shards=shards, detector_factory=detector_factory, config=config
    )
    return CaseResult(
        label=label,
        source=source,
        schedule=schedule,
        discrepancies=classify_case(verdicts, shards=shards),
        verdicts=verdicts,
    )


def case_classes(result: CaseResult, violations_only: bool = True) -> frozenset:
    pool = result.violations if violations_only else result.discrepancies
    return frozenset(d.klass for d in pool)


def make_predicate(
    target_classes: frozenset,
    violations_only: bool = True,
    detector_factory: Optional[Callable] = None,
    config: Optional["DetectorConfig"] = None,
    shards: Sequence[int] = DEFAULT_SHARDS,
    include_static_axis: bool = True,
    max_steps: int = DEFAULT_MAX_STEPS,
    extra_check: Optional[Callable[[CaseResult], bool]] = None,
    engine: str = "ast",
    tiering: Optional[str] = None,
):
    """Build the shrinker's *interesting* test.

    A candidate is interesting iff it keeps the fuzzer's syntactic lock
    order, executes cleanly, and still exhibits **every** target class
    with the same classification — "fails for the same classified
    reason", not merely "fails somehow".  ``extra_check`` lets callers
    impose additional shape constraints on the minimized case (e.g. the
    corpus generator insists the discrepancy stays on a shared data
    field rather than collapsing into the constructor-init pattern).
    """

    def interesting(source: str, schedule: ScheduleSpec) -> bool:
        if not lock_order_ascending(source):
            return False
        result = run_case(
            source,
            schedule,
            detector_factory=detector_factory,
            config=config,
            shards=shards,
            include_static_axis=include_static_axis,
            max_steps=max_steps,
            engine=engine,
            tiering=tiering,
        )
        if result.error is not None:
            return False
        if not target_classes <= case_classes(result, violations_only):
            return False
        return extra_check is None or extra_check(result)

    return interesting


def shrink_case(
    source: str,
    schedule: ScheduleSpec,
    target_classes: frozenset,
    violations_only: bool = True,
    detector_factory: Optional[Callable] = None,
    config: Optional["DetectorConfig"] = None,
    shards: Sequence[int] = DEFAULT_SHARDS,
    include_static_axis: bool = True,
    max_steps: int = DEFAULT_MAX_STEPS,
    max_rounds: int = 40,
    extra_check: Optional[Callable[[CaseResult], bool]] = None,
    engine: str = "ast",
    tiering: Optional[str] = None,
) -> tuple:
    """Minimize (source, schedule) while preserving ``target_classes``.

    Returns ``(source, schedule, stats)``.  Program first (schedule
    fixed), then schedule (program fixed) — re-running the program pass
    after a schedule change rarely pays for its cost on fuzzer-sized
    inputs.
    """
    interesting = make_predicate(
        target_classes,
        violations_only=violations_only,
        detector_factory=detector_factory,
        config=config,
        shards=shards,
        include_static_axis=include_static_axis,
        max_steps=max_steps,
        extra_check=extra_check,
        engine=engine,
        tiering=tiering,
    )
    stats = ShrinkStats(
        initial_schedule=schedule.describe(),
    )
    small, stats = shrink_program(
        source,
        lambda candidate: interesting(candidate, schedule),
        max_rounds=max_rounds,
        stats=stats,
    )
    small_schedule = shrink_schedule(
        small,
        schedule,
        interesting,
        lambda src, spec: record_schedule_trace(src, spec, max_steps),
    )
    stats.final_schedule = small_schedule.describe()
    # Final validation: determinism (double run) on the shrunk case.
    final = run_case(
        small, small_schedule, detector_factory=detector_factory,
        config=config, shards=shards,
        include_static_axis=include_static_axis, max_steps=max_steps,
        engine=engine, tiering=tiering,
    )
    if final.error is not None or not (
        target_classes <= case_classes(final, violations_only)
    ):  # pragma: no cover - defensive; predicate already enforced this.
        return source, schedule, stats
    return small, small_schedule, stats


def class_items(result: CaseResult, klass: str) -> tuple:
    """The offending location/object strings for one class, sorted."""
    items: set = set()
    for discrepancy in result.discrepancies:
        if discrepancy.klass == klass:
            items.update(discrepancy.items)
    return tuple(sorted(items))


def synthesize_witness(
    source: str,
    items: Sequence[str],
    max_steps: int = DEFAULT_MAX_STEPS,
    engine: str = "ast",
    seeds: int = 64,
):
    """Search for a witness schedule for any of ``items``.

    Returns the first :class:`~repro.detector.predict.Witness` whose
    replay observes an HB race at a predicted location, or None when
    every item resists the search budget (pure SHB's lock-protected
    false positives have no witness by design).
    """
    from ..detector.predict import find_witness

    for item in items:
        witness = find_witness(
            source, item, seeds=seeds, max_steps=max_steps, engine=engine
        )
        if witness is not None:
            return witness
    return None


def default_schedules(count: int) -> list:
    """The campaign's schedule axis: round-robin, then seeded random."""
    specs = [ScheduleSpec(kind="roundrobin")]
    specs.extend(
        ScheduleSpec(kind="random", seed=seed) for seed in range(max(count - 1, 0))
    )
    return specs[:count]


def run_campaign(
    programs: int = 12,
    schedules: int = 3,
    budget: Optional[float] = None,
    seed0: int = 0,
    fuzzer_kwargs: Optional[dict] = None,
    detector_factory: Optional[Callable] = None,
    config: Optional["DetectorConfig"] = None,
    shards: Sequence[int] = DEFAULT_SHARDS,
    shrink: bool = True,
    include_static_axis: bool = True,
    max_steps: int = DEFAULT_MAX_STEPS,
    progress: Optional[Callable[[str], None]] = None,
    engine: str = "ast",
    tiering: Optional[str] = None,
    hunt_classes: Optional[frozenset] = None,
) -> CampaignResult:
    """Sweep fuzzed cases; classify; shrink every violating case.

    With a ``budget`` (seconds) the sweep keeps drawing program seeds
    past ``programs`` until time is up; without one it runs exactly
    ``programs × schedules`` cases.  Violations with a fingerprint
    already seen (same shrunk source/schedule/classes) are deduplicated.

    ``hunt_classes`` names *expected* discrepancy classes to hunt: the
    first case exhibiting each is shrunk (preserving the class) into a
    :class:`Find`; ``predicted-not-observed`` finds get a witness
    synthesis pass.  Hunting never fails a campaign — finds are
    candidate corpus entries, not bugs.
    """
    kwargs = dict(fuzzer_kwargs or {})
    kwargs.setdefault("n_workers", 3)
    kwargs.setdefault("n_fields", 3)
    kwargs.setdefault("n_locks", 2)
    specs = default_schedules(schedules)
    started = time.monotonic()
    result = CampaignResult()
    seen_fingerprints = set()
    hunted_found: set = set()

    program_index = 0
    while True:
        if budget is not None:
            if time.monotonic() - started >= budget:
                break
        elif program_index >= programs:
            break
        seed = seed0 + program_index
        source = generate_program(seed, **kwargs)
        for spec in specs:
            if budget is not None and time.monotonic() - started >= budget:
                break
            label = f"fuzz(seed={seed}, schedule={spec.describe()})"
            case = run_case(
                source,
                spec,
                label=label,
                detector_factory=detector_factory,
                config=config,
                shards=shards,
                include_static_axis=include_static_axis,
                max_steps=max_steps,
                engine=engine,
                tiering=tiering,
            )
            result.cases_run += 1
            if case.error is not None:
                result.errors.append((label, case.error))
                continue
            for klass in {d.klass for d in case.expected}:
                result.expected_counts[klass] += 1
            if hunt_classes:
                for klass in sorted(
                    (hunt_classes & {d.klass for d in case.expected})
                    - hunted_found
                ):
                    hunted_found.add(klass)
                    if progress is not None:
                        progress(f"hunted {klass} in {label}, shrinking")
                    if shrink:
                        small, small_spec, stats = shrink_case(
                            case.source,
                            spec,
                            frozenset([klass]),
                            violations_only=False,
                            detector_factory=detector_factory,
                            config=config,
                            shards=shards,
                            include_static_axis=include_static_axis,
                            max_steps=max_steps,
                            engine=engine,
                            tiering=tiering,
                        )
                    else:
                        small, small_spec = case.source, spec
                        stats = ShrinkStats(
                            initial_statements=count_statements(case.source),
                            final_statements=count_statements(case.source),
                            initial_schedule=spec.describe(),
                            final_schedule=spec.describe(),
                        )
                    shrunk = run_case(
                        small, small_spec, detector_factory=detector_factory,
                        config=config, shards=shards,
                        include_static_axis=include_static_axis,
                        max_steps=max_steps, engine=engine, tiering=tiering,
                    )
                    items = class_items(shrunk, klass)
                    witness = None
                    if klass == "predicted-not-observed":
                        witness = synthesize_witness(
                            small, items, max_steps=max_steps, engine=engine
                        )
                    result.finds.append(
                        Find(
                            fingerprint=fingerprint(small, small_spec, [klass]),
                            klass=klass,
                            source=small,
                            schedule=small_spec,
                            original_label=label,
                            stats=stats,
                            items=items,
                            witness=witness.to_json() if witness else None,
                        )
                    )
            violating = case_classes(case, violations_only=True)
            if violating:
                if progress is not None:
                    progress(f"violation in {label}: {sorted(violating)}")
                if shrink:
                    small, small_spec, stats = shrink_case(
                        case.source,
                        spec,
                        violating,
                        detector_factory=detector_factory,
                        config=config,
                        shards=shards,
                        include_static_axis=include_static_axis,
                        max_steps=max_steps,
                        engine=engine,
                        tiering=tiering,
                    )
                else:
                    small, small_spec = case.source, spec
                    stats = ShrinkStats(
                        initial_statements=count_statements(case.source),
                        final_statements=count_statements(case.source),
                        initial_schedule=spec.describe(),
                        final_schedule=spec.describe(),
                    )
                print_classes = tuple(sorted(violating))
                fp = fingerprint(small, small_spec, print_classes)
                if fp in seen_fingerprints:
                    continue
                seen_fingerprints.add(fp)
                shrunk_result = run_case(
                    small,
                    small_spec,
                    detector_factory=detector_factory,
                    config=config,
                    shards=shards,
                    include_static_axis=include_static_axis,
                    max_steps=max_steps,
                    engine=engine,
                    tiering=tiering,
                )
                result.violations.append(
                    Violation(
                        fingerprint=fp,
                        classes=print_classes,
                        source=small,
                        schedule=small_spec,
                        original_label=label,
                        stats=stats,
                        discrepancies=shrunk_result.violations,
                    )
                )
        program_index += 1

    result.duration = time.monotonic() - started
    return result
