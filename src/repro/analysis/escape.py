"""Escape analysis plus the paper's thread-specific extension (Section 5.4).

Two refinements keep provably race-free accesses out of the static
datarace set:

**Thread-local objects** (classic escape analysis): an abstract object
that is never reachable — through the points-to graph — from a static
field or from a started thread object can only ever be touched by its
creating thread, so its accesses cannot race.

**Thread-specific objects and fields** (the paper's extension): Java
threads routinely store per-thread state in fields of the thread object
itself.  Those fields *escape* to the creating thread (the parent
constructs the thread), so classic escape analysis gives up on them —
yet they are race-free when they are only touched (a) while the thread
object is being constructed, before it starts, or (b) by the thread
itself.  Following Section 5.4:

* the *thread-specific methods* of a thread class are its ``init``,
  its ``run`` when never invoked explicitly, and any non-static method
  all of whose call sites sit in thread-specific methods of the class
  and pass their own ``this`` as the receiver;
* the *thread-specific fields* are those accessed only through
  ``this`` inside thread-specific methods;
* a thread is *unsafe* when its constructor can transitively call
  ``start`` or leaks ``this``; only **safe** threads get the exemption;
* an object is *thread-specific* to a safe thread when it is reachable
  only from thread-specific fields/locals of that thread.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from ..lang.resolver import ResolvedProgram
from . import ir
from .pointsto import (
    AbstractObject,
    ObjectCategory,
    PointsToResult,
)


@dataclass
class EscapeInfo:
    """Results of both refinements."""

    #: Abstract objects reachable by more than one thread.
    shared_objects: set
    #: Allocated objects proven local to their creating thread.
    thread_local_objects: set
    #: Thread class name -> its thread-specific method qualified names.
    thread_specific_methods: dict[str, set[str]]
    #: Thread class name -> its thread-specific field names.
    thread_specific_fields: dict[str, set[str]]
    #: Thread classes proven *safe* (Section 5.4).
    safe_thread_classes: set[str]
    #: Thread class name -> abstract objects thread-specific to it.
    thread_specific_objects: dict[str, set]

    def is_thread_local(self, obj: AbstractObject) -> bool:
        return obj in self.thread_local_objects

    def field_is_thread_specific(self, obj: AbstractObject, field_name: str) -> bool:
        """True when ``obj`` is a safe thread object and ``field_name``
        is one of its thread-specific fields."""
        if obj.category is not ObjectCategory.INSTANCE:
            return False
        if obj.class_name not in self.safe_thread_classes:
            return False
        return field_name in self.thread_specific_fields.get(obj.class_name, ())

    def object_is_thread_specific(self, obj: AbstractObject) -> bool:
        return any(
            obj in objects for objects in self.thread_specific_objects.values()
        )


class EscapeAnalysis:
    def __init__(self, resolved: ResolvedProgram, points_to: PointsToResult):
        self._resolved = resolved
        self._pts = points_to

    def analyze(self) -> EscapeInfo:
        all_objects = self._collect_objects()
        shared = self._compute_shared()
        thread_local = {
            obj
            for obj in all_objects
            if obj.category in (ObjectCategory.INSTANCE, ObjectCategory.ARRAY)
            and obj not in shared
        }
        ts_methods = self._thread_specific_methods()
        safe = self._safe_thread_classes(ts_methods)
        ts_fields = self._thread_specific_fields(ts_methods)
        ts_objects = self._thread_specific_objects(ts_methods, ts_fields, safe)
        return EscapeInfo(
            shared_objects=shared,
            thread_local_objects=thread_local,
            thread_specific_methods=ts_methods,
            thread_specific_fields=ts_fields,
            safe_thread_classes=safe,
            thread_specific_objects=ts_objects,
        )

    # ------------------------------------------------------------------
    # Thread-local (reachability) part.

    def _collect_objects(self) -> set:
        objects = set()
        for node in self._pts.nodes_to_objects:  # noqa: SLF001 — same-package access.
            objects.update(self._pts.nodes_to_objects[node])
        return objects

    def _field_edges(self) -> dict:
        """obj -> set of objects reachable via one field edge."""
        edges = defaultdict(set)
        for node, pts in self._pts.nodes_to_objects.items():  # noqa: SLF001
            if node[0] == "field":
                _, obj, _field_name = node
                edges[obj].update(pts)
        return edges

    def _compute_shared(self) -> set:
        roots = set()
        # Static fields are visible to every thread.
        for node, pts in self._pts.nodes_to_objects.items():  # noqa: SLF001
            if node[0] == "static":
                roots.update(pts)
        # Started thread objects cross the parent/child boundary.
        for edge in self._pts.start_edges:
            roots.add(edge.thread_object)
        edges = self._field_edges()
        shared = set()
        stack = list(roots)
        while stack:
            obj = stack.pop()
            if obj in shared:
                continue
            shared.add(obj)
            stack.extend(edges.get(obj, ()))
        return shared

    # ------------------------------------------------------------------
    # Thread-specific methods (the recursive definition).

    def _thread_classes(self) -> set[str]:
        return {
            edge.thread_object.class_name
            for edge in self._pts.start_edges
            if edge.thread_object.category is ObjectCategory.INSTANCE
        }

    def _run_explicitly_invoked(self, run_method: str) -> bool:
        return any(edge.callee == run_method for edge in self._pts.call_edges)

    def _thread_specific_methods(self) -> dict[str, set[str]]:
        call_edges_by_callee = defaultdict(list)
        for edge in self._pts.call_edges:
            call_edges_by_callee[edge.callee].append(edge)

        result: dict[str, set[str]] = {}
        for class_name in self._thread_classes():
            info = self._resolved.classes.get(class_name)
            if info is None:
                continue
            specific: set[str] = set()
            init = info.resolve_method("init")
            if init is not None and not init.is_static:
                specific.add(init.qualified_name)
            run = info.resolve_method("run")
            if (
                run is not None
                and not run.is_static
                and not self._run_explicitly_invoked(run.qualified_name)
            ):
                specific.add(run.qualified_name)

            # Fixpoint: add methods all of whose callers are thread-
            # specific methods of this class passing `this` through.
            changed = True
            while changed:
                changed = False
                for method in self._pts.reachable_methods:
                    if method in specific:
                        continue
                    decl = self._find_method_decl(method)
                    if decl is None or decl.is_static:
                        continue
                    edges = call_edges_by_callee.get(method)
                    if not edges:
                        continue
                    if all(
                        edge.caller in specific and edge.receiver_is_this
                        for edge in edges
                        if not edge.is_init
                    ) and all(edge.caller in specific for edge in edges):
                        specific.add(method)
                        changed = True
            result[class_name] = specific
        return result

    def _find_method_decl(self, qualified_name: str):
        class_name, _, method_name = qualified_name.partition(".")
        info = self._resolved.classes.get(class_name)
        if info is None:
            return None
        return info.own_methods.get(method_name)

    # ------------------------------------------------------------------
    # Safe threads.

    def _safe_thread_classes(self, ts_methods) -> set[str]:
        safe = set()
        for class_name in self._thread_classes():
            info = self._resolved.classes.get(class_name)
            if info is None:
                continue
            init = info.resolve_method("init")
            if init is None:
                # No constructor: nothing can start the thread or leak
                # `this` during construction.
                safe.add(class_name)
                continue
            if self._constructor_calls_start(init.qualified_name):
                continue
            if self._this_escapes(init.qualified_name):
                continue
            safe.add(class_name)
        return safe

    def _constructor_calls_start(self, init_method: str) -> bool:
        """Can ``init`` transitively reach a ``start`` instruction?"""
        call_succ = defaultdict(set)
        for edge in self._pts.call_edges:
            call_succ[edge.caller].add(edge.callee)
        seen = {init_method}
        stack = [init_method]
        while stack:
            method = stack.pop()
            function = self._pts.functions.get(method)
            if function is not None:
                for block in function.blocks:
                    for instr in block.instrs:
                        if isinstance(instr, ir.StartT):
                            return True
            for succ in call_succ.get(method, ()):
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return False

    def _this_escapes(self, method: str) -> bool:
        """Conservatively: does ``this`` leave the method other than as
        a call receiver or a field-access base?"""
        function = self._pts.functions.get(method)
        if function is None:
            return True
        for block in function.blocks:
            for instr in block.instrs:
                if isinstance(instr, ir.Move) and instr.src == "this":
                    return True
                if isinstance(instr, (ir.PutField, ir.PutStatic, ir.AStore)):
                    if instr.src == "this":
                        return True
                if isinstance(instr, ir.Invoke):
                    if "this" in instr.args:
                        return True
                if isinstance(instr, ir.Ret) and instr.src == "this":
                    return True
                if isinstance(instr, ir.StartT) and instr.thread == "this":
                    return True
        return False

    # ------------------------------------------------------------------
    # Thread-specific fields.

    def _thread_specific_fields(self, ts_methods) -> dict[str, set[str]]:
        result: dict[str, set[str]] = {}
        for class_name, specific_methods in ts_methods.items():
            info = self._resolved.classes.get(class_name)
            if info is None:
                continue
            thread_objs = {
                edge.thread_object
                for edge in self._pts.start_edges
                if edge.thread_object.class_name == class_name
            }
            candidate_fields = set(info.instance_fields())
            for site in self._pts.site_bases.values():
                if site.kind != "instance":
                    continue
                if site.field_name not in candidate_fields:
                    continue
                bases = self._pts.points_to(site.base)
                if not (bases & thread_objs):
                    continue
                # An access that may touch this thread class's objects:
                # it must be a this-access from a thread-specific method.
                if site.method not in specific_methods or not site.base_is_this:
                    candidate_fields.discard(site.field_name)
            result[class_name] = candidate_fields
        return result

    # ------------------------------------------------------------------
    # Thread-specific objects.

    def _thread_specific_objects(
        self, ts_methods, ts_fields, safe_classes
    ) -> dict[str, set]:
        result: dict[str, set] = {}
        for class_name in safe_classes:
            specific_methods = ts_methods.get(class_name, set())
            specific_fields = ts_fields.get(class_name, set())
            thread_objs = {
                edge.thread_object
                for edge in self._pts.start_edges
                if edge.thread_object.class_name == class_name
            }
            # Iterate to a fixpoint: an object is thread-specific when
            # every pointer to it comes from a thread-specific place.
            specific_objs: set = set()
            candidates = self._collect_objects() - thread_objs
            changed = True
            while changed:
                changed = False
                for obj in list(candidates):
                    if obj in specific_objs:
                        continue
                    if obj.category is not ObjectCategory.INSTANCE and (
                        obj.category is not ObjectCategory.ARRAY
                    ):
                        continue
                    if self._only_thread_specific_pointers(
                        obj,
                        specific_methods,
                        specific_fields,
                        thread_objs,
                        specific_objs,
                    ):
                        specific_objs.add(obj)
                        changed = True
            result[class_name] = specific_objs
        return result

    def _only_thread_specific_pointers(
        self, obj, specific_methods, specific_fields, thread_objs, specific_objs
    ) -> bool:
        found_pointer = False
        for node, pts in self._pts.nodes_to_objects.items():  # noqa: SLF001
            if obj not in pts:
                continue
            found_pointer = True
            kind = node[0]
            if kind == "local":
                if node[1] not in specific_methods:
                    return False
            elif kind == "field":
                holder = node[1]
                field_name = node[2]
                if holder in thread_objs:
                    if field_name not in specific_fields:
                        return False
                elif holder not in specific_objs:
                    return False
            else:  # static or ret node.
                return False
        return found_pointer


def analyze_escape(
    resolved: ResolvedProgram, points_to: PointsToResult
) -> EscapeInfo:
    """Run both escape refinements."""
    return EscapeAnalysis(resolved, points_to).analyze()
