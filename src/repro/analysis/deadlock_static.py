"""Static potential-deadlock analysis — the static half of Section 10.

The conclusions promise to "broaden the static/dynamic coanalysis
approach to tackle other problems such as deadlock detection".  The
dynamic half (:mod:`repro.detector.deadlock`) watches real lock
acquisitions; this module predicts them ahead of time from the same
ingredients the static datarace analysis already computes:

* a **may-held** lockset per ICG node (union-meet dataflow over the
  interthread call graph, Gen = the may points-to set of each sync
  block's lock expression);
* a **static lock-order graph**: an edge ``h → l`` whenever a sync
  block acquiring abstract lock ``l`` can execute while ``h`` may be
  held;
* cycle search over abstract lock objects, pruned by the analysis's
  must-information — a cycle is discarded when

  - *same thread*: some thread object must execute every hop (a single
    thread cannot deadlock with itself on reentrant monitors), or
  - *gate lock*: some lock outside the cycle is **must**-held at every
    hop (the acquisitions are serialized).

Like ``IsMayRace``, the result is conservative: reported cycles *may*
deadlock; absence of reports is a proof only up to the analysis's
abstractions (allocation-site locks, context insensitivity).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from ..lang.resolver import ResolvedProgram
from . import ir
from .dataflow import TOP, DataflowProblem, solve_forward
from .icfg import ICG, build_icg, method_node, sync_node
from .pointsto import AbstractObject, PointsToResult, analyze_points_to, local_node
from .single_instance import SingleInstanceInfo, analyze_single_instance


def meet_union(values):
    """Union meet for may-analyses (TOP = "not yet computed" = ∅)."""
    result = set()
    saw_value = False
    for value in values:
        if value is TOP:
            continue
        saw_value = True
        result |= value
    return result if saw_value else set()


@dataclass(frozen=True)
class StaticLockEdge:
    """``holder → acquired`` with its acquisition context."""

    holder: AbstractObject
    acquired: AbstractObject
    method: str
    #: Thread objects that MUST execute this acquisition (∅ = unknown).
    must_threads: frozenset
    #: Locks MUST-held at this acquisition (gate candidates).
    must_gates: frozenset


@dataclass
class StaticDeadlockReport:
    cycle: tuple  # AbstractObjects, in order.
    methods: tuple

    def describe(self) -> str:
        hops = []
        locks = list(self.cycle)
        for index, lock in enumerate(locks):
            nxt = locks[(index + 1) % len(locks)]
            hops.append(
                f"{self.methods[index]} may hold {lock!r} while "
                f"taking {nxt!r}"
            )
        return "POTENTIAL STATIC DEADLOCK: " + "; ".join(hops)


class StaticDeadlockAnalysis:
    def __init__(
        self,
        resolved: ResolvedProgram,
        points_to: PointsToResult | None = None,
        single: SingleInstanceInfo | None = None,
        icg: ICG | None = None,
        max_cycle_length: int = 4,
    ):
        self._resolved = resolved
        self._pts = points_to if points_to is not None else analyze_points_to(resolved)
        self._single = (
            single
            if single is not None
            else analyze_single_instance(resolved, self._pts)
        )
        self._icg = (
            icg if icg is not None else build_icg(resolved, self._pts, self._single)
        )
        self._max_cycle_length = max_cycle_length

    # ------------------------------------------------------------------

    def analyze(self) -> list[StaticDeadlockReport]:
        may_held = self._solve_may_held()
        edges = self._build_edges(may_held)
        return self._find_cycles(edges)

    # ------------------------------------------------------------------
    # May-held locks per ICG node.

    def _sync_enters(self):
        """Yield (method, MonitorEnter instr) for every sync block."""
        for method in self._pts.reachable_methods:
            function = self._pts.functions.get(method)
            if function is None:
                continue
            for block in function.blocks:
                for instr in block.instrs:
                    if isinstance(instr, ir.MonitorEnter):
                        yield method, instr

    def _solve_may_held(self) -> dict:
        gens: dict = {}
        for method, enter in self._sync_enters():
            node = sync_node(method, enter.sync_id)
            gens[node] = set(
                self._pts.points_to(local_node(method, enter.lock))
            )

        nodes = set(self._icg.nodes)
        preds = self._icg.preds
        boundary = {method_node(self._resolved.main_method.qualified_name)}
        boundary.update(method_node(r) for r in self._icg.thread_roots)
        boundary &= nodes or boundary

        def transfer(node, in_value):
            if in_value is TOP:
                in_value = set()
            return set(in_value) | gens.get(node, set())

        problem = DataflowProblem(
            nodes=nodes,
            preds=lambda n: preds.get(n, ()),
            boundary_nodes=boundary & nodes if nodes else boundary,
            boundary_value=set(),
            transfer=transfer,
            meet=meet_union,
        )
        solution = solve_forward(problem)
        # May-held at a node's *entry*.
        return {node: in_value for node, (in_value, _) in solution.items()}

    # ------------------------------------------------------------------

    def _build_edges(self, may_held) -> dict:
        edges: dict = defaultdict(list)
        for method, enter in self._sync_enters():
            node = sync_node(method, enter.sync_id)
            held_in = may_held.get(node)
            if held_in is TOP or not held_in:
                continue
            acquired_set = self._pts.points_to(local_node(method, enter.lock))
            must_threads = self._icg.must_thread_of(method)
            must_gates = self._icg.must_sync_at(method, enter.sync_stack)
            for holder in held_in:
                for acquired in acquired_set:
                    if holder == acquired and self._single.object_is_single_instance(holder):
                        # One concrete lock: nested self-acquisition is
                        # just reentrancy, never a deadlock.
                        continue
                    edges[(holder, acquired)].append(
                        StaticLockEdge(
                            holder=holder,
                            acquired=acquired,
                            method=method,
                            must_threads=frozenset(must_threads),
                            must_gates=frozenset(must_gates),
                        )
                    )
        return edges

    def _find_cycles(self, edges) -> list[StaticDeadlockReport]:
        successors: dict = defaultdict(set)
        for holder, acquired in edges:
            successors[holder].add(acquired)

        order = {obj: index for index, obj in enumerate(sorted(
            successors, key=repr
        ))}
        reports: list[StaticDeadlockReport] = []
        seen_cycles: set = set()

        def search(start, path):
            current = path[-1]
            for nxt in sorted(successors.get(current, ()), key=repr):
                if nxt == start and len(path) >= 1:
                    # len(path) == 1 is a self-edge: a summarized
                    # allocation site covering several concrete locks
                    # acquired nested (e.g. dining philosophers' forks
                    # from one `new Fork()` in a loop).
                    self._try_report(tuple(path), edges, reports, seen_cycles)
                elif (
                    nxt in order
                    and order[nxt] > order[start]
                    and nxt not in path
                    and len(path) < self._max_cycle_length
                ):
                    search(start, path + [nxt])

        for start in sorted(successors, key=repr):
            search(start, [start])
        return reports

    def _try_report(self, cycle, edges, reports, seen_cycles) -> None:
        pivot = min(range(len(cycle)), key=lambda i: repr(cycle[i]))
        canonical = cycle[pivot:] + cycle[:pivot]
        if canonical in seen_cycles:
            return
        hops = [
            (cycle[i], cycle[(i + 1) % len(cycle)]) for i in range(len(cycle))
        ]
        choice = self._pick_witnesses(hops, edges, set(cycle))
        if choice is None:
            return
        seen_cycles.add(canonical)
        reports.append(
            StaticDeadlockReport(
                cycle=cycle, methods=tuple(edge.method for edge in choice)
            )
        )

    def _pick_witnesses(self, hops, edges, cycle_locks):
        """Backtracking choice of one edge per hop surviving the
        same-thread and gate-lock pruning rules."""
        chosen: list[StaticLockEdge] = []

        def viable(candidate: StaticLockEdge) -> bool:
            trial = chosen + [candidate]
            # Same-thread rule: a thread object must-executing EVERY
            # hop serializes the cycle.  (Not applicable to self-edge
            # cycles: one thread holding fork[i] while taking fork[j]
            # of the same allocation site can deadlock with a peer.)
            common_threads = None
            for edge in trial:
                if not edge.must_threads:
                    common_threads = frozenset()
                    break
                common_threads = (
                    edge.must_threads
                    if common_threads is None
                    else common_threads & edge.must_threads
                )
            if len(hops) > 1 and len(trial) == len(hops) and common_threads:
                return False
            # Gate rule: a non-cycle lock must-held at every hop.
            common_gates = None
            for edge in trial:
                gates = edge.must_gates - cycle_locks
                common_gates = (
                    gates if common_gates is None else common_gates & gates
                )
            if len(trial) == len(hops) and common_gates:
                return False
            return True

        def backtrack(index: int) -> bool:
            if index == len(hops):
                return True
            for edge in edges.get(hops[index], ()):
                if not viable(edge):
                    continue
                chosen.append(edge)
                if backtrack(index + 1):
                    return True
                chosen.pop()
            return False

        return tuple(chosen) if backtrack(0) else None


def analyze_static_deadlocks(resolved: ResolvedProgram) -> list[StaticDeadlockReport]:
    """Run the static lock-order analysis on a whole program."""
    return StaticDeadlockAnalysis(resolved).analyze()
