"""Static analyses: IR, CFG, dominators, SSA, value numbering, points-to,
ICG, single-instance, escape, and the static datarace set (Section 5)."""

from . import ir
from .cfg import FlowGraph
from .dataflow import TOP, DataflowProblem, meet_intersection, solve_forward
from .deadlock_static import (
    StaticDeadlockAnalysis,
    StaticDeadlockReport,
    StaticLockEdge,
    analyze_static_deadlocks,
)
from .dominators import DominatorInfo
from .escape import EscapeAnalysis, EscapeInfo, analyze_escape
from .icfg import ICG, ICGBuilder, build_icg, method_node, sync_node
from .immutability import (
    ImmutabilityAnalysis,
    ImmutabilityInfo,
    analyze_immutability,
)
from .lower import Lowerer, lower_program
from .pointsto import (
    MAIN_THREAD,
    AbstractObject,
    CallEdge,
    ObjectCategory,
    PointsToAnalysis,
    PointsToResult,
    SiteBase,
    StartEdge,
    analyze_points_to,
    field_node,
    local_node,
    ret_node,
    static_node,
)
from .raceset import (
    StaticRaceAnalysis,
    StaticRaceSet,
    StaticRaceStats,
    analyze_static_races,
)
from .single_instance import (
    Multiplicity,
    SingleInstanceInfo,
    analyze_single_instance,
)
from .ssa import UNDEF, SSABuilder, build_ssa
from .valnum import ValueNumbering, value_numbering

__all__ = [
    "AbstractObject",
    "CallEdge",
    "DataflowProblem",
    "DominatorInfo",
    "EscapeAnalysis",
    "EscapeInfo",
    "FlowGraph",
    "ICG",
    "ICGBuilder",
    "ImmutabilityAnalysis",
    "ImmutabilityInfo",
    "Lowerer",
    "MAIN_THREAD",
    "Multiplicity",
    "ObjectCategory",
    "PointsToAnalysis",
    "PointsToResult",
    "SSABuilder",
    "SingleInstanceInfo",
    "StaticDeadlockAnalysis",
    "StaticDeadlockReport",
    "StaticLockEdge",
    "SiteBase",
    "StartEdge",
    "StaticRaceAnalysis",
    "StaticRaceSet",
    "StaticRaceStats",
    "TOP",
    "UNDEF",
    "ValueNumbering",
    "analyze_escape",
    "analyze_immutability",
    "analyze_points_to",
    "analyze_single_instance",
    "analyze_static_deadlocks",
    "analyze_static_races",
    "build_icg",
    "build_ssa",
    "field_node",
    "ir",
    "local_node",
    "lower_program",
    "meet_intersection",
    "method_node",
    "ret_node",
    "solve_forward",
    "static_node",
    "sync_node",
    "value_numbering",
]
